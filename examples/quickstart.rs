//! Quickstart: compare QUIC and TCP loading one page, the way the paper
//! does — back-to-back runs, Welch-gated verdict.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use longlook_core::prelude::*;

fn main() {
    // A 100 KB page over a 10 Mbps, 36 ms RTT emulated path.
    let scenario =
        Scenario::new(NetProfile::baseline(10.0), PageSpec::single(100 * 1024)).with_rounds(10);

    let quic = ProtoConfig::Quic(QuicConfig::default());
    let tcp = ProtoConfig::Tcp(TcpConfig::default());

    let result = compare_pair(&quic, &tcp, &scenario);
    println!("QUIC PLTs (ms): {:?}", result.quic_ms);
    println!("TCP  PLTs (ms): {:?}", result.tcp_ms);
    println!(
        "QUIC vs TCP: {:+.1}% ({:?}, p = {})",
        result.comparison.percent,
        result.comparison.verdict,
        result
            .comparison
            .welch
            .map_or("n/a".into(), |w| format!("{:.4}", w.p)),
    );

    // Root-cause peek: the server's congestion-control state machine.
    let rec = run_page_load(&quic, &scenario, 0);
    let trace = rec.server_trace.expect("server trace");
    println!("\nserver state visits: {:?}", trace.labels());
    println!(
        "time in SlowStart: {:.0}%, ApplicationLimited: {:.0}%",
        trace.fraction_in("SlowStart") * 100.0,
        trace.fraction_in("ApplicationLimited") * 100.0,
    );
}
