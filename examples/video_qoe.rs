//! Video QoE demo (paper Sec 5.3, Table 6): stream a fixed-quality video
//! over each transport at 100 Mbps + 1% loss for 60 seconds and compare
//! QoE — differences only appear at the highest quality.
//!
//! ```text
//! cargo run --release --example video_qoe
//! ```

use longlook_core::prelude::*;
use longlook_http::host::{ClientHost, ServerHost};
use longlook_sim::world::World;
use longlook_sim::{FlowId, NodeId};

fn stream(proto: &ProtoConfig, cfg: &VideoConfig, seed: u64) -> QoeMetrics {
    let net = NetProfile::baseline(100.0).with_loss(0.01);
    let mut world = World::new(seed);
    let server_id = NodeId(1);
    let mut client = ClientHost::new(server_id, false);
    client.add(
        FlowId(1),
        proto,
        true,
        Box::new(VideoClient::new(cfg.clone())),
        Time::ZERO,
    );
    let c = world.add_node(Box::new(client), DeviceProfile::DESKTOP);
    let server = ServerHost::new(proto.clone(), cfg.catalog(), seed);
    world.add_node(Box::new(server), DeviceProfile::SERVER);
    world.connect(c, server_id, net.link(), net.link());
    world.kick(c);
    world.run_until(Time::ZERO + cfg.watch_time + Dur::from_secs(5));
    world
        .agent::<ClientHost>(c)
        .app::<VideoClient>(0)
        .qoe()
        .expect("watch window elapsed")
}

fn main() {
    println!("1-hour video, 60 s watch, 100 Mbps + 1% loss:\n");
    println!(
        "{:<8} {:<5} {:>10} {:>12} {:>12} {:>14}",
        "quality", "proto", "start (s)", "loaded (%)", "rebuffers", "buffer/play %"
    );
    for q in QUALITIES {
        let cfg = VideoConfig::table6(q);
        for (name, proto) in [
            ("QUIC", ProtoConfig::Quic(QuicConfig::default())),
            ("TCP", ProtoConfig::Tcp(TcpConfig::default())),
        ] {
            let m = stream(&proto, &cfg, 99);
            println!(
                "{:<8} {:<5} {:>10.1} {:>12.1} {:>12} {:>14.1}",
                q.name,
                name,
                m.time_to_start.map_or(f64::NAN, |d| d.as_secs_f64()),
                m.loaded_pct(cfg.video_secs),
                m.rebuffer_count,
                m.buffer_play_ratio_pct(),
            );
        }
    }
    println!(
        "\npaper finding: no meaningful QoE differences at tiny/medium/hd720;\n\
         at hd2160 QUIC loads more video and spends less time buffering."
    );
}
