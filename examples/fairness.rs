//! Fairness demo (paper Sec 5.1): put one QUIC flow and N TCP flows on the
//! same 5 Mbps bottleneck and watch QUIC take more than its share —
//! despite both running Cubic.
//!
//! ```text
//! cargo run --release --example fairness [n_tcp]
//! ```

use longlook_core::prelude::*;

fn main() {
    let n_tcp: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let quic = ProtoConfig::Quic(QuicConfig::default());
    let tcp = ProtoConfig::Tcp(TcpConfig::default());
    println!(
        "1 QUIC flow vs {n_tcp} TCP flow(s) over a shared 5 Mbps link \
         (RTT 36 ms, 30 KB buffer), 60 s:\n"
    );
    let run = quic_vs_n_tcp(&quic, &tcp, n_tcp, Dur::from_secs(60), 7);
    for f in &run.flows {
        let bar_len = (f.mean_mbps * 12.0) as usize;
        println!(
            "  {:<7} {:>5.2} Mbps |{}",
            f.label,
            f.mean_mbps,
            "#".repeat(bar_len)
        );
    }
    let fair = 5.0 / (n_tcp as f64 + 1.0);
    println!(
        "\nfair share would be {:.2} Mbps each; QUIC took {:.1}x its share.",
        fair,
        run.flows[0].mean_mbps / fair
    );
    println!(
        "(paper Table 4: QUIC 2.71 vs TCP 1.62 Mbps one-on-one; QUIC keeps\n\
         >50% of the link even against 2 or 4 TCP flows)"
    );
}
