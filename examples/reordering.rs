//! Reordering demo (paper Sec 5.2, Fig 10): jitter-induced packet
//! reordering makes QUIC's fixed NACK threshold declare false losses;
//! raising the threshold (or adapting it, as TCP's DSACK does) fixes it.
//!
//! ```text
//! cargo run --release --example reordering
//! ```

use longlook_core::prelude::*;

fn main() {
    // The paper's setup: 10 MB download, 112 ms RTT, ±10 ms jitter.
    let net = NetProfile::baseline(50.0)
        .with_extra_rtt(Dur::from_millis(76))
        .with_jitter(Dur::from_millis(10));
    let page = PageSpec::single(10 * 1024 * 1024);

    println!("10 MB download, 112 ms RTT, ±10 ms jitter (reordering):\n");
    println!(
        "{:<28} {:>10} {:>12} {:>12}",
        "sender", "PLT (ms)", "false loss", "spurious rtx"
    );

    for threshold in [3u32, 10, 25, 50] {
        let cfg = QuicConfig {
            nack_threshold: threshold,
            ..QuicConfig::default()
        };
        let sc = Scenario::new(net.clone(), page.clone()).with_rounds(1);
        let rec = run_page_load(&ProtoConfig::Quic(cfg), &sc, 0);
        let st = rec.server_stats.unwrap_or_default();
        println!(
            "{:<28} {:>10.0} {:>12} {:>12}",
            format!("QUIC, NACK threshold {threshold}"),
            rec.plt.map_or(f64::NAN, |d| d.as_millis_f64()),
            st.losses_detected,
            st.spurious_retransmissions,
        );
    }

    let sc = Scenario::new(net.clone(), page.clone()).with_rounds(1);
    let rec = run_page_load(&ProtoConfig::Tcp(TcpConfig::default()), &sc, 0);
    let st = rec.server_stats.unwrap_or_default();
    println!(
        "{:<28} {:>10.0} {:>12} {:>12}",
        "TCP (DSACK-adaptive)",
        rec.plt.map_or(f64::NAN, |d| d.as_millis_f64()),
        st.losses_detected,
        st.spurious_retransmissions,
    );

    println!(
        "\npaper finding: at the default threshold of 3, reordered packets are\n\
         misread as losses and QUIC collapses its window; TCP's DSACK raises\n\
         its dupthresh and sails through. Larger NACK thresholds restore QUIC."
    );
}
