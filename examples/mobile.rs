//! Mobile demo (paper Sec 5.2, Figs 12-13): the same transfer on a
//! desktop and on phone-class hardware, with the inferred state machine
//! explaining where QUIC's advantage goes.
//!
//! ```text
//! cargo run --release --example mobile
//! ```

use longlook_core::prelude::*;
use longlook_core::rootcause::infer_from_records;

fn main() {
    let page = PageSpec::single(10 * 1024 * 1024);
    let quic = ProtoConfig::Quic(QuicConfig::default());
    let tcp = ProtoConfig::Tcp(TcpConfig::default());

    println!("10 MB download at 50 Mbps (36 ms RTT) per device:\n");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "device", "QUIC (ms)", "TCP (ms)", "QUIC gain"
    );
    for device in [
        DeviceProfile::DESKTOP,
        DeviceProfile::NEXUS6,
        DeviceProfile::MOTOG,
    ] {
        let sc = Scenario::new(NetProfile::baseline(50.0), page.clone())
            .with_rounds(5)
            .on_device(device);
        let pair = compare_pair(&quic, &tcp, &sc);
        println!(
            "{:<10} {:>12.0} {:>12.0} {:>9.0}%",
            device.name,
            pair.comparison.candidate.mean(),
            pair.comparison.baseline.mean(),
            pair.comparison.percent,
        );
    }

    // Root cause: time spent Application-Limited (Fig 13).
    println!("\ninferred state machines (server side):");
    for device in [DeviceProfile::DESKTOP, DeviceProfile::MOTOG] {
        let sc = Scenario::new(NetProfile::baseline(50.0), page.clone())
            .with_rounds(3)
            .on_device(device);
        let records = run_records(&quic, &sc);
        let machine = infer_from_records(&records);
        println!(
            "  {:<8}: ApplicationLimited {:>4.0}% | SlowStart {:>4.0}% | CA+Maxed {:>4.0}%",
            device.name,
            machine.time_fraction("ApplicationLimited") * 100.0,
            machine.time_fraction("SlowStart") * 100.0,
            (machine.time_fraction("CongestionAvoidance")
                + machine.time_fraction("CongestionAvoidanceMaxed"))
                * 100.0,
        );
    }
    println!(
        "\npaper finding: on the MotoG the userspace receive path cannot keep\n\
         up, so the sender spends most of its time Application-Limited (58%\n\
         in the paper) and QUIC's desktop advantage largely evaporates."
    );
}
