//! Vendored, std-only subset of the `bytes` crate.
//!
//! The build environment has no reachable crate registry, so the workspace
//! vendors the small slice of the `bytes` API it actually uses: cheaply
//! cloneable immutable [`Bytes`] (an `Arc<Vec<u8>>` window), an append-only
//! [`BytesMut`] builder, and the big-endian cursor traits [`Buf`] /
//! [`BufMut`]. Semantics match the real crate for this subset (big-endian
//! integer accessors, panics on underflow, `slice` by absolute range).
//!
//! Backing the shared buffer with `Arc<Vec<u8>>` (rather than `Arc<[u8]>`)
//! keeps [`BytesMut::freeze`] zero-copy — the `Vec` moves into the `Arc`
//! unchanged — and lets a sole owner recover the allocation via
//! [`Bytes::try_into_vec`], which is what `longlook_sim::pool::PayloadPool`
//! builds its recycle loop on.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

fn empty_arc() -> Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            data: empty_arc(),
            start: 0,
            end: 0,
        }
    }
}

impl Bytes {
    /// An empty buffer (shared backing; allocation-free).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static byte slice (copied; the zero-copy optimization of the
    /// real crate is irrelevant at this scale).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-window of this buffer sharing the same backing allocation.
    /// The range is interpreted relative to this view, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Recover the backing allocation if this view is the sole owner.
    ///
    /// Succeeds only when no other `Bytes` clone (or slice) shares the
    /// backing `Arc`; the returned `Vec` keeps its full capacity, making it
    /// reusable as a write buffer. On failure the view is returned intact.
    /// Note the window (`advance`/`slice` offsets) is discarded — callers
    /// recycle the allocation, not the contents.
    pub fn try_into_vec(self) -> Result<Vec<u8>, Bytes> {
        let Bytes { data, start, end } = self;
        Arc::try_unwrap(data).map_err(|data| Bytes { data, start, end })
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Capacity of the underlying allocation.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Drop the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data);
    }

    /// Convert into an immutable [`Bytes`]. Zero-copy: the backing `Vec`
    /// moves into the shared allocation unchanged.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        BytesMut { vec }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read cursor over a contiguous byte region; integer accessors are
/// big-endian, like the network wire formats this workspace encodes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes (always the full remainder here — the vendored
    /// buffers are contiguous).
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Consume a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Copy `dst.len()` bytes out and consume them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor; integer writers are big-endian.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, data: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        let mut bytes = b.freeze();
        assert_eq!(bytes.remaining(), 15);
        assert_eq!(bytes.get_u8(), 0xAB);
        assert_eq!(bytes.get_u16(), 0x1234);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_and_shares_backing() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let inner = mid.slice(1..);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn advance_moves_window() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        b.advance(1);
        assert_eq!(&b[..], &[8, 7]);
        assert_eq!(b.get_u8(), 8);
    }

    #[test]
    #[should_panic]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }

    #[test]
    fn try_into_vec_recovers_sole_allocation() {
        let mut bm = BytesMut::with_capacity(64);
        bm.put_u32(7);
        let b = bm.freeze();
        let v = b.try_into_vec().expect("sole owner");
        assert_eq!(v.len(), 4);
        assert!(v.capacity() >= 64, "capacity preserved through freeze");
    }

    #[test]
    fn try_into_vec_fails_when_shared() {
        let b = Bytes::from(vec![1, 2, 3]);
        let clone = b.clone();
        let back = b.try_into_vec().expect_err("shared owner");
        assert_eq!(&back[..], &[1, 2, 3]);
        drop(clone);
        assert_eq!(back.try_into_vec().expect("now sole"), vec![1, 2, 3]);
    }

    #[test]
    fn advanced_view_still_reclaims_full_allocation() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        b.advance(2);
        let v = b.try_into_vec().expect("sole owner");
        assert_eq!(v, vec![1, 2, 3, 4], "window discarded, backing returned");
    }

    #[test]
    fn bytes_mut_clear_keeps_capacity() {
        let mut bm = BytesMut::from(Vec::with_capacity(128));
        bm.put_u64(9);
        bm.clear();
        assert!(bm.is_empty());
        assert!(bm.capacity() >= 128);
    }
}
