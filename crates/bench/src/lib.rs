//! The reproduction harness: one entry point per table and figure of the
//! paper, returning the regenerated artifact as text (and optionally DOT).
//!
//! Every experiment is a pure function of its seed; `LONGLOOK_ROUNDS`
//! overrides the default 10 rounds for quicker smoke runs.

pub mod experiments;
pub mod fuzz;
pub mod json;

pub use experiments::{list_experiments, run_experiment};

/// Rounds per measurement (paper: "at least 10"); override with the
/// `LONGLOOK_ROUNDS` environment variable.
pub fn rounds() -> u64 {
    std::env::var("LONGLOOK_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}
