//! Tables 1, 2, 3 and 5.

use longlook_core::prelude::*;
use longlook_transport::ccstate::CcState;
use std::fmt::Write as _;

/// Table 1: related-work matrix.
pub fn table1() -> String {
    format!(
        "Table 1 — contributions vs prior work\n\n{}",
        render_table1()
    )
}

/// Table 2: parameter space.
pub fn table2() -> String {
    format!(
        "Table 2 — parameters used in our tests\n\n{}",
        ParameterSpace::table2().render()
    )
}

/// Table 3: QUIC congestion-control states.
pub fn table3() -> String {
    let mut out = String::from("Table 3 — QUIC states (Cubic CC) and their meanings\n\n");
    let _ = writeln!(out, "{:<26} | Description", "State");
    let _ = writeln!(out, "{}-+-{}", "-".repeat(26), "-".repeat(50));
    for s in CcState::all() {
        let _ = writeln!(out, "{:<26} | {}", s.label(), s.description());
    }
    out
}

/// Table 5: target cellular characteristics and what the emulation
/// actually delivers (measured on a 60 s bulk transfer through each
/// profile's link).
pub fn table5() -> String {
    use longlook_sim::link::Verdict;
    use longlook_sim::{LinkDir, SimRng};

    let mut out = String::from("Table 5 — characteristics of tested cell networks\n\n");
    out.push_str("Target (from the paper's measurements):\n");
    out.push_str(&render_table5());
    out.push_str("\nEmulated (offered a 1000-packet probe stream):\n");
    let _ = writeln!(
        out,
        "{:<12} | {:>10} | {:>12} | {:>8}",
        "Network", "loss(%)", "reorder(%)", "RTT(ms)"
    );
    for p in CELL_PROFILES {
        let net = p.net_profile();
        let mut link = LinkDir::new(net.link(), SimRng::new(42));
        // Offer packets at roughly the link rate.
        let gap_ns = (1200.0 * 8.0 / (p.throughput_mbps * 1e6) * 1e9) as u64;
        for k in 0..5000u64 {
            let t = Time::ZERO + Dur::from_nanos(k * gap_ns);
            let _ = matches!(link.transit(t, 1200), Verdict::DeliverAt(_));
        }
        let st = link.stats();
        let _ = writeln!(
            out,
            "{:<12} | {:>10.2} | {:>12.2} | {:>8.0}",
            p.name,
            st.loss_rate() * 100.0,
            st.reorder_rate() * 100.0,
            st.mean_latency().as_millis_f64(),
        );
    }
    out.push_str(
        "\n(The emulated reorder/loss rates should match the target columns; \
         RTT shown is one-way latency including queueing.)\n",
    );
    out
}
