//! Table 6: video QoE at 100 Mbps + 1% loss across the quality ladder.

use crate::rounds;
use longlook_core::prelude::*;
use longlook_core::testbed::NetProfile;
use longlook_http::host::{ClientHost, ServerHost};
use longlook_sim::world::World;
use longlook_sim::{FlowId, NodeId};
use std::fmt::Write as _;

fn run_video(proto: &ProtoConfig, cfg: &VideoConfig, seed: u64) -> QoeMetrics {
    let net = NetProfile::baseline(100.0).with_loss(0.01);
    let mut world = World::new(seed);
    let server_id = NodeId(1);
    let mut client = ClientHost::new(server_id, false);
    client.add(
        FlowId(1),
        proto,
        true,
        Box::new(VideoClient::new(cfg.clone())),
        Time::ZERO,
    );
    let c = world.add_node(Box::new(client), DeviceProfile::DESKTOP);
    let server = ServerHost::new(proto.clone(), cfg.catalog(), seed ^ 0x1DE0);
    world.add_node(Box::new(server), DeviceProfile::SERVER);
    world.connect(c, server_id, net.link(), net.link());
    world.kick(c);
    world.run_until(Time::ZERO + cfg.watch_time + Dur::from_secs(5));
    world
        .agent::<ClientHost>(c)
        .app::<VideoClient>(0)
        .qoe()
        .expect("watch window elapsed")
}

/// Table 6: QoE metrics per quality for QUIC and TCP.
pub fn table6() -> String {
    let mut out = String::from(
        "Table 6 — video QoE (1-hour video, 100 Mbps + 1% loss, 60 s plays,\n\
         mean (std) over rounds)\n\n",
    );
    let _ = writeln!(
        out,
        "{:<8} {:<5} | {:>16} | {:>14} | {:>16} | {:>12} | {:>16}",
        "Quality",
        "Proto",
        "start (s)",
        "loaded (%)",
        "buffer/play (%)",
        "#rebuffers",
        "rebuf/play-sec"
    );
    for q in QUALITIES {
        let cfg = VideoConfig::table6(q);
        for (name, proto) in [
            ("QUIC", ProtoConfig::Quic(QuicConfig::default())),
            ("TCP", ProtoConfig::Tcp(TcpConfig::default())),
        ] {
            let mut start = Summary::new();
            let mut loaded = Summary::new();
            let mut ratio = Summary::new();
            let mut rebuf = Summary::new();
            let mut rps = Summary::new();
            for k in 0..rounds() {
                let m = run_video(&proto, &cfg, 1600 + k);
                start.add(
                    m.time_to_start
                        .map_or(cfg.watch_time.as_secs_f64(), |d| d.as_secs_f64()),
                );
                loaded.add(m.loaded_pct(cfg.video_secs));
                ratio.add(m.buffer_play_ratio_pct());
                rebuf.add(m.rebuffer_count as f64);
                rps.add(m.rebuffers_per_playing_sec());
            }
            let _ = writeln!(
                out,
                "{:<8} {:<5} | {:>16} | {:>14} | {:>16} | {:>12} | {:>16}",
                q.name,
                name,
                start.mean_std(),
                loaded.mean_std(),
                ratio.mean_std(),
                rebuf.mean_std(),
                format!("{:.3} ({:.3})", rps.mean(), rps.sample_std_dev()),
            );
        }
        let _ = writeln!(out);
    }
    out.push_str(
        "paper shape: no meaningful differences at tiny/medium/hd720; at\n\
         hd2160 QUIC loads a larger fraction of the video, spends a smaller\n\
         share of time buffering, and has fewer rebuffers per played second.\n",
    );
    out
}
