//! Historical comparison (Sec 5.4): PLT across QUIC versions 25-37 with a
//! fixed Chrome-side configuration.

use crate::rounds;
use longlook_core::prelude::*;
use std::fmt::Write as _;

/// Versions 25-36 should be indistinguishable; 37 should win for large
/// transfers at high bandwidth (MACW 2000).
pub fn historical() -> String {
    let mut out = String::from(
        "Sec 5.4 — historical comparison, mean PLT (ms) with the same\n\
         configuration across QUIC versions\n\n",
    );
    let scenarios = [
        (
            "1MB @ 10Mbps",
            NetProfile::baseline(10.0),
            PageSpec::single(1024 * 1024),
        ),
        (
            "10MB @ 100Mbps",
            NetProfile::baseline(100.0),
            PageSpec::single(10 * 1024 * 1024),
        ),
        (
            "10MB @ 100Mbps +100ms",
            NetProfile::baseline(100.0).with_extra_rtt(Dur::from_millis(100)),
            PageSpec::single(10 * 1024 * 1024),
        ),
    ];
    let _ = write!(out, "{:<8}", "version");
    for (label, _, _) in &scenarios {
        let _ = write!(out, " | {label:>22}");
    }
    let _ = writeln!(out);
    let mut v34_vals: Vec<f64> = Vec::new();
    let mut v37_vals: Vec<f64> = Vec::new();
    for v in QuicVersion::all() {
        let proto = ProtoConfig::Quic(v.config());
        let _ = write!(out, "Q{:03}    ", v.number());
        for (i, (_, net, page)) in scenarios.iter().enumerate() {
            let sc = Scenario::new(net.clone(), page.clone())
                .with_rounds(rounds().min(5))
                .with_seed(2000 + i as u64);
            let samples = plt_samples(&proto, &sc);
            let mean = Summary::of(&samples).mean();
            let _ = write!(out, " | {mean:>22.0}");
            if v.number() == 34 {
                v34_vals.push(mean);
            }
            if v.number() == 37 {
                v37_vals.push(mean);
            }
        }
        let _ = writeln!(out, "   ({})", v.changelog());
    }
    let _ = writeln!(
        out,
        "\npaper shape: versions 25-36 are indistinguishable under the same\n\
         configuration; Q037's larger MACW (2000) helps big transfers in\n\
         high-delay/high-bandwidth paths (v34 {:.0}ms vs v37 {:.0}ms on the\n\
         last column).",
        v34_vals.last().copied().unwrap_or(f64::NAN),
        v37_vals.last().copied().unwrap_or(f64::NAN),
    );
    out
}
