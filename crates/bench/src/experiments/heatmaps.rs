//! All heatmap figures: 6a/6b (desktop), 7 (0-RTT), 8 (impairments),
//! 12 (mobile), 14 (cellular), 15 (MACW), 17/18 (proxying).

use crate::rounds;
use longlook_core::prelude::*;
use std::fmt::Write as _;

fn quic() -> ProtoConfig {
    ProtoConfig::Quic(QuicConfig::default())
}

fn tcp() -> ProtoConfig {
    ProtoConfig::Tcp(TcpConfig::default())
}

/// Object sizes used on heatmap columns (Table 2 without the 210 MB bulk
/// object, which belongs to Fig 11).
const SIZES: [(u64, &str); 7] = [
    (5 * 1024, "5KB"),
    (10 * 1024, "10KB"),
    (100 * 1024, "100KB"),
    (200 * 1024, "200KB"),
    (500 * 1024, "500KB"),
    (1024 * 1024, "1MB"),
    (10 * 1024 * 1024, "10MB"),
];

const COUNTS: [(usize, &str); 6] = [
    (1, "1"),
    (2, "2"),
    (5, "5"),
    (10, "10"),
    (100, "100"),
    (200, "200"),
];

const RATES: [(f64, &str); 4] = [
    (5.0, "5Mbps"),
    (10.0, "10Mbps"),
    (50.0, "50Mbps"),
    (100.0, "100Mbps"),
];

fn labels<T: Copy>(axis: &[(T, &str)]) -> Vec<String> {
    axis.iter().map(|&(_, l)| l.to_string()).collect()
}

fn size_page(c: usize) -> PageSpec {
    PageSpec::single(SIZES[c].0)
}

fn count_page(c: usize) -> PageSpec {
    PageSpec::uniform(COUNTS[c].0, 10 * 1024)
}

/// Fig 6a: QUIC v34 vs TCP across object sizes and rates.
pub fn fig6a() -> String {
    let map = sweep_heatmap(
        "Fig 6a — QUIC vs TCP: object size x rate (RTT 36ms, no impairment)",
        &labels(&RATES),
        &labels(&SIZES),
        &quic(),
        &tcp(),
        |r, c| {
            Scenario::new(NetProfile::baseline(RATES[r].0), size_page(c))
                .with_rounds(rounds())
                .with_seed(600 + r as u64 * 16 + c as u64)
        },
    );
    map.render_ascii()
}

/// Fig 6b: QUIC v34 vs TCP across object counts and rates.
pub fn fig6b() -> String {
    let map = sweep_heatmap(
        "Fig 6b — QUIC vs TCP: number of 10KB objects x rate (RTT 36ms)",
        &labels(&RATES),
        &labels(&COUNTS),
        &quic(),
        &tcp(),
        |r, c| {
            Scenario::new(NetProfile::baseline(RATES[r].0), count_page(c))
                .with_rounds(rounds())
                .with_seed(660 + r as u64 * 16 + c as u64)
        },
    );
    map.render_ascii()
}

/// Fig 7: QUIC with 0-RTT (candidate) vs QUIC without (baseline).
pub fn fig7() -> String {
    let map = sweep_heatmap_with(
        "Fig 7 — QUIC with vs without 0-RTT (positive = 0-RTT gain)",
        &labels(&RATES),
        &labels(&SIZES),
        rounds(),
        |zero_rtt, r, c, k| {
            let mut sc = Scenario::new(NetProfile::baseline(RATES[r].0), size_page(c))
                .with_rounds(1)
                .with_seed(700 + r as u64 * 100 + c as u64 * 10);
            if !zero_rtt {
                sc = sc.cold();
            }
            run_page_load(&quic(), &sc, k)
                .plt
                .unwrap_or(sc.deadline)
                .as_millis_f64()
        },
    );
    map.render_ascii()
}

/// Fig 8: impairment panels (loss, extra delay, jitter) for sizes and
/// counts.
pub fn fig8() -> String {
    let mut out = String::new();
    type Impair = (&'static str, fn(NetProfile) -> NetProfile);
    let impairments: [Impair; 5] = [
        ("0.1% loss", |n| n.with_loss(0.001)),
        ("1% loss", |n| n.with_loss(0.01)),
        ("+50ms RTT", |n| n.with_extra_rtt(Dur::from_millis(50))),
        ("+100ms RTT", |n| n.with_extra_rtt(Dur::from_millis(100))),
        ("±10ms jitter (variable delay)", |n| {
            n.with_extra_rtt(Dur::from_millis(76))
                .with_jitter(Dur::from_millis(10))
        }),
    ];
    for (pi, (label, imp)) in impairments.iter().enumerate() {
        let map = sweep_heatmap(
            &format!("Fig 8 — object sizes, {label}"),
            &labels(&RATES),
            &labels(&SIZES),
            &quic(),
            &tcp(),
            |r, c| {
                Scenario::new(imp(NetProfile::baseline(RATES[r].0)), size_page(c))
                    .with_rounds(rounds())
                    .with_seed(800 + pi as u64 * 1000 + r as u64 * 16 + c as u64)
            },
        );
        let _ = writeln!(out, "{}", map.render_ascii());
        let map = sweep_heatmap(
            &format!("Fig 8 — object counts (10KB each), {label}"),
            &labels(&RATES),
            &labels(&COUNTS),
            &quic(),
            &tcp(),
            |r, c| {
                Scenario::new(imp(NetProfile::baseline(RATES[r].0)), count_page(c))
                    .with_rounds(rounds())
                    .with_seed(860 + pi as u64 * 1000 + r as u64 * 16 + c as u64)
            },
        );
        let _ = writeln!(out, "{}", map.render_ascii());
    }
    out
}

/// Fig 12: mobile devices (WiFi rates up to 50 Mbps per the paper).
pub fn fig12() -> String {
    let mut out = String::new();
    let rates = &RATES[..3]; // 5, 10, 50 Mbps
    for device in [DeviceProfile::MOTOG, DeviceProfile::NEXUS6] {
        let map = sweep_heatmap(
            &format!("Fig 12 — QUIC vs TCP on {} (object sizes)", device.name),
            &labels(rates),
            &labels(&SIZES),
            &quic(),
            &tcp(),
            |r, c| {
                Scenario::new(NetProfile::baseline(rates[r].0), size_page(c))
                    .with_rounds(rounds())
                    .with_seed(1200 + r as u64 * 16 + c as u64)
                    .on_device(device)
            },
        );
        let _ = writeln!(out, "{}", map.render_ascii());
    }
    out.push_str(
        "paper shape: QUIC still mostly wins on phones, but by far less than\n\
         on the desktop (compare with fig6a) — userspace packet processing\n\
         leaves the sender Application-Limited (see fig13).\n",
    );
    out
}

/// Fig 14: cellular networks. The base RTT is redrawn per round from the
/// measured (mean, std), reproducing the run-to-run variance that made
/// many 3G cells statistically insignificant.
pub fn fig14() -> String {
    let sizes: [(u64, &str); 4] = [
        (10 * 1024, "10KB"),
        (100 * 1024, "100KB"),
        (1024 * 1024, "1MB"),
        (5 * 1024 * 1024, "5MB"),
    ];
    let rows: Vec<String> = CELL_PROFILES.iter().map(|p| p.name.to_string()).collect();
    let cols: Vec<String> = sizes.iter().map(|&(_, l)| l.to_string()).collect();
    let map = sweep_heatmap_with(
        "Fig 14 — QUIC vs TCP over emulated cellular networks",
        &rows,
        &cols,
        rounds(),
        |is_quic, r, c, k| {
            let profile = CELL_PROFILES[r];
            let net = profile.net_profile_for_run(1400 + r as u64 * 100 + k);
            let sc = Scenario::new(net, PageSpec::single(sizes[c].0))
                .with_rounds(1)
                .with_seed(1400 + r as u64 * 100 + c as u64 * 10);
            let proto = if is_quic { quic() } else { tcp() };
            run_page_load(&proto, &sc, k)
                .plt
                .unwrap_or(sc.deadline)
                .as_millis_f64()
        },
    );
    let mut out = map.render_ascii();
    out.push_str(
        "\npaper shape: LTE looks like a low-bandwidth desktop (QUIC wins,\n\
         larger 0-RTT benefit); on 3G the benefits diminish and variance\n\
         produces white (insignificant) cells.\n",
    );
    out
}

/// Fig 15: QUIC 37 with MACW 430 vs MACW 2000 (against TCP). The MACW
/// binds when the path BDP approaches 430 x 1350 B = 580 KB, so the sweep
/// includes high-BDP rows (extra 100 ms of RTT).
pub fn fig15() -> String {
    let mut out = String::new();
    let rows: [(&str, f64, u64); 6] = [
        ("10Mbps", 10.0, 0),
        ("50Mbps", 50.0, 0),
        ("100Mbps", 100.0, 0),
        ("50Mbps+100ms", 50.0, 100),
        ("100Mbps+100ms", 100.0, 100),
        ("100Mbps+200ms", 100.0, 200),
    ];
    let row_labels: Vec<String> = rows.iter().map(|&(l, _, _)| l.to_string()).collect();
    for (macw, seed) in [(430u64, 1500u64), (2000, 1550)] {
        let mut cfg = QuicConfig::quic37();
        cfg.cubic.max_cwnd_packets = Some(macw);
        let q = ProtoConfig::Quic(cfg);
        let map = sweep_heatmap(
            &format!("Fig 15 — QUIC 37 (MACW={macw}) vs TCP, object sizes"),
            &row_labels,
            &labels(&SIZES),
            &q,
            &tcp(),
            |r, c| {
                let (_, rate, extra_ms) = rows[r];
                Scenario::new(
                    NetProfile::baseline(rate).with_extra_rtt(Dur::from_millis(extra_ms)),
                    size_page(c),
                )
                .with_rounds(rounds())
                .with_seed(seed + r as u64 * 16 + c as u64)
            },
        );
        let _ = writeln!(out, "{}", map.render_ascii());
    }
    out.push_str(
        "paper shape: MACW=2000 improves the large-transfer cells wherever\n\
         the path BDP exceeds 430 packets (the high-RTT rows here);\n\
         MACW=430 reproduces QUIC 34 (compare with fig6a).\n",
    );
    out
}

/// Fig 17: QUIC direct (candidate) vs TCP through a midpoint proxy
/// (baseline); red = QUIC still better.
pub fn fig17() -> String {
    let mut out = String::new();
    type Panel = (&'static str, fn(NetProfile) -> NetProfile);
    let panels: [Panel; 3] = [
        ("no impairment", |n| n),
        ("1% loss", |n| n.with_loss(0.01)),
        ("+100ms RTT", |n| n.with_extra_rtt(Dur::from_millis(100))),
    ];
    for (pi, (label, imp)) in panels.iter().enumerate() {
        let map = sweep_heatmap_with(
            &format!("Fig 17 — QUIC vs proxied TCP, {label}"),
            &labels(&RATES),
            &labels(&SIZES),
            rounds(),
            |is_quic_direct, r, c, k| {
                let net = imp(NetProfile::baseline(RATES[r].0));
                let sc = Scenario::new(net, size_page(c))
                    .with_rounds(1)
                    .with_seed(1700 + pi as u64 * 1000 + r as u64 * 60 + c as u64);
                if is_quic_direct {
                    run_page_load(&quic(), &sc, k)
                        .plt
                        .unwrap_or(sc.deadline)
                        .as_millis_f64()
                } else {
                    run_page_load_proxied(&tcp(), &tcp(), &sc, k)
                        .unwrap_or(sc.deadline)
                        .as_millis_f64()
                }
            },
        );
        let _ = writeln!(out, "{}", map.render_ascii());
    }
    out.push_str(
        "paper shape: a TCP proxy erases much of QUIC's edge in low-latency\n\
         and lossy cells, but QUIC keeps winning when delay is high (0-RTT).\n",
    );
    out
}

/// Fig 18: QUIC direct (candidate) vs QUIC through a proxy (baseline);
/// red = direct better, blue = the proxy helps.
pub fn fig18() -> String {
    let mut out = String::new();
    type Panel = (&'static str, fn(NetProfile) -> NetProfile);
    let panels: [Panel; 2] = [("no impairment", |n| n), ("1% loss", |n| n.with_loss(0.01))];
    for (pi, (label, imp)) in panels.iter().enumerate() {
        let map = sweep_heatmap_with(
            &format!("Fig 18 — QUIC direct vs proxied QUIC, {label}"),
            &labels(&RATES),
            &labels(&SIZES),
            rounds(),
            |is_direct, r, c, k| {
                let net = imp(NetProfile::baseline(RATES[r].0));
                let sc = Scenario::new(net, size_page(c))
                    .with_rounds(1)
                    .with_seed(1800 + pi as u64 * 1000 + r as u64 * 60 + c as u64);
                if is_direct {
                    run_page_load(&quic(), &sc, k)
                        .plt
                        .unwrap_or(sc.deadline)
                        .as_millis_f64()
                } else {
                    run_page_load_proxied(&quic(), &quic(), &sc, k)
                        .unwrap_or(sc.deadline)
                        .as_millis_f64()
                }
            },
        );
        let _ = writeln!(out, "{}", map.render_ascii());
    }
    out.push_str(
        "paper shape: the QUIC proxy hurts small objects (no 0-RTT through\n\
         it) but helps large transfers under loss (local recovery).\n",
    );
    out
}
