//! Fault-injection sweep: QUIC vs TCP under the trauma catalogue.
//!
//! One row per canonical fault plan: how often the load completes, the
//! mean PLT of completed rounds, and every typed error the watchdogs
//! surfaced. The final row is a blackout longer than the idle timeout,
//! where completion is impossible and both protocols must give up with a
//! typed error instead of hanging.

use crate::rounds;
use longlook_core::prelude::*;
use longlook_core::trauma::server_stats_or_zero;
use std::fmt::Write as _;

fn ev(at_ms: u64, dur_ms: u64, dir: FaultDir, kind: FaultKind) -> FaultEvent {
    FaultEvent {
        at: Time::ZERO + Dur::from_millis(at_ms),
        dur: Dur::from_millis(dur_ms),
        dir,
        kind,
    }
}

fn catalogue() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("clean (armed, no faults)", FaultPlan::new()),
        (
            "blackout 2s",
            FaultPlan::new().with_event(ev(1_000, 2_000, FaultDir::Both, FaultKind::Blackout)),
        ),
        (
            "flap 500ms/30%",
            FaultPlan::new().with_event(ev(
                1_000,
                4_000,
                FaultDir::Both,
                FaultKind::Flap {
                    period: Dur::from_millis(500),
                    down_pm: 300,
                },
            )),
        ),
        (
            "bw cliff to 10%",
            FaultPlan::new().with_event(ev(
                1_000,
                5_000,
                FaultDir::Both,
                FaultKind::BandwidthCliff { factor_pm: 100 },
            )),
        ),
        (
            "bw ramp to 20%",
            FaultPlan::new().with_event(ev(
                1_000,
                5_000,
                FaultDir::Both,
                FaultKind::BandwidthRamp { floor_pm: 200 },
            )),
        ),
        (
            "burst loss (GE)",
            FaultPlan::new().with_event(ev(
                1_000,
                4_000,
                FaultDir::Both,
                FaultKind::BurstLoss(GeParams {
                    p_enter_pm: 100,
                    p_exit_pm: 300,
                    loss_good_pm: 5,
                    loss_bad_pm: 600,
                }),
            )),
        ),
        (
            "duplicate 20%",
            FaultPlan::new().with_event(ev(
                1_000,
                4_000,
                FaultDir::Down,
                FaultKind::Duplicate { prob_pm: 200 },
            )),
        ),
        (
            "corrupt 10%",
            FaultPlan::new().with_event(ev(
                1_000,
                4_000,
                FaultDir::Both,
                FaultKind::Corrupt { prob_pm: 100 },
            )),
        ),
        (
            "server stall 1.5s",
            FaultPlan::new().with_event(ev(
                1_000,
                1_500,
                FaultDir::Both,
                FaultKind::PeerStall {
                    side: PeerSide::Server,
                },
            )),
        ),
        (
            "buffer shrink to 25%",
            FaultPlan::new().with_event(ev(
                1_000,
                4_000,
                FaultDir::Both,
                FaultKind::BufferShrink { factor_pm: 250 },
            )),
        ),
        (
            "blackout 75s (give-up)",
            FaultPlan::new().with_event(ev(1_000, 75_000, FaultDir::Both, FaultKind::Blackout)),
        ),
    ]
}

/// The trauma sweep table.
pub fn trauma() -> String {
    let mut out = String::from(
        "Fault-injection sweep — 2 MB page at 2 Mbps, 36 ms RTT\n\
         (watchdog armed: handshake 30 s, idle 60 s; mean over rounds)\n\n",
    );
    let _ = writeln!(
        out,
        "{:<26} | {:<5} | {:>9} | {:>11} | {:>9} | errors",
        "Fault plan", "Proto", "completed", "PLT ms", "retrans"
    );
    let protos = [
        ProtoConfig::Quic(QuicConfig::default()),
        ProtoConfig::Tcp(TcpConfig::default()),
    ];
    for (label, plan) in catalogue() {
        for proto in &protos {
            let sc = Scenario::new(
                NetProfile::baseline(2.0).with_fault(plan.clone()),
                PageSpec::single(2 * 1024 * 1024),
            )
            .with_rounds(rounds())
            .with_seed(9_000);
            let recs = run_trauma_records_par(proto, &sc, Parallelism::auto());
            let completed = recs.iter().filter(|r| r.completed).count();
            let mut plt = Summary::new();
            let mut retrans = Summary::new();
            let mut errors: Vec<String> = Vec::new();
            for rec in &recs {
                if let Some(d) = rec.record.plt {
                    plt.add(d.as_millis_f64());
                }
                retrans.add(server_stats_or_zero(rec).retransmissions as f64);
                for (side, err) in [("client", rec.client_error), ("server", rec.server_error)] {
                    if let Some(e) = err {
                        let tag = format!("{side}:{}", e.label());
                        if !errors.contains(&tag) {
                            errors.push(tag);
                        }
                    }
                }
            }
            let plt_cell = if plt.count() > 0 {
                format!("{:.0}", plt.mean())
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{:<26} | {:<5} | {:>6}/{:<2} | {:>11} | {:>9.1} | {}",
                label,
                proto.name(),
                completed,
                recs.len(),
                plt_cell,
                retrans.mean(),
                if errors.is_empty() {
                    "-".to_string()
                } else {
                    errors.join(", ")
                },
            );
        }
    }
    out.push_str(
        "\nEvery round must be accounted for: completed, or a typed error on an\n\
         endpoint. The 75 s blackout row demonstrates the watchdog give-up path;\n\
         shorter traumas are survived via RTO backoff and retransmission.\n",
    );
    out
}
