//! Ablation benches for the design choices DESIGN.md calls out: NACK
//! threshold policy, HyStart, pacing, and N-connection emulation.

use crate::rounds;
use longlook_core::prelude::*;
use std::fmt::Write as _;

/// NACK policy under reordering: fixed 3 vs fixed 25 vs adaptive
/// (DSACK-like doubling) vs time-based loss detection.
pub fn nack() -> String {
    let mut out = String::from(
        "Ablation — loss-detection policy under ±10 ms jitter reordering\n\
         (10 MB, 112 ms RTT, 50 Mbps; mean over rounds)\n\n",
    );
    let net = NetProfile::baseline(50.0)
        .with_extra_rtt(Dur::from_millis(76))
        .with_jitter(Dur::from_millis(10));
    let page = PageSpec::single(10 * 1024 * 1024);
    let variants: Vec<(&str, QuicConfig)> = vec![
        ("fixed threshold 3", QuicConfig::default()),
        (
            "fixed threshold 25",
            QuicConfig {
                nack_threshold: 25,
                ..QuicConfig::default()
            },
        ),
        (
            "adaptive (DSACK-like)",
            QuicConfig {
                adaptive_nack: true,
                ..QuicConfig::default()
            },
        ),
        (
            "time-based (1.25 sRTT)",
            QuicConfig {
                // A huge threshold effectively disables nack counting.
                nack_threshold: 1000,
                time_loss_detection: true,
                ..QuicConfig::default()
            },
        ),
    ];
    let _ = writeln!(
        out,
        "{:<24} | {:>16} | {:>10} | {:>12}",
        "Policy", "PLT ms (std)", "losses", "spurious"
    );
    for (label, cfg) in variants {
        let proto = ProtoConfig::Quic(cfg);
        let mut plt = Summary::new();
        let mut losses = Summary::new();
        let mut spurious = Summary::new();
        // Rounds are independent worlds: shard them, then fold the
        // summaries in round order so the printed stats are identical to
        // a serial sweep.
        let recs = run_ordered(Parallelism::auto(), rounds() as usize, |k| {
            let k = k as u64;
            let sc = Scenario::new(net.clone(), page.clone())
                .with_rounds(1)
                .with_seed(2100 + k);
            let rec = run_page_load(&proto, &sc, k);
            (
                rec.plt.unwrap_or(sc.deadline).as_millis_f64(),
                rec.server_stats.unwrap_or_default(),
            )
        });
        for (plt_ms, st) in recs {
            plt.add(plt_ms);
            losses.add(st.losses_detected as f64);
            spurious.add(st.spurious_retransmissions as f64);
        }
        let _ = writeln!(
            out,
            "{:<24} | {:>16} | {:>10.0} | {:>12.0}",
            label,
            plt.mean_std(),
            losses.mean(),
            spurious.mean(),
        );
    }
    out
}

/// HyStart on/off: where the delay-based slow-start exit matters.
pub fn hystart() -> String {
    let mut out = String::from(
        "Ablation — Hybrid Slow Start (mean over rounds, 36 ms RTT)\n\n\
         (a) Deep-buffered link: without HyStart, slow start overshoots the\n\
         BDP and dumps a burst of drop-tail losses; HyStart exits on the\n\
         rising round-trip before the cliff.\n\n",
    );
    let _ = writeln!(
        out,
        "{:<28} | {:>14} | {:>14} | {:>10}",
        "Scenario", "HyStart", "PLT ms", "losses"
    );
    // 20 MB at 50 Mbps through a 2-BDP buffer (450 KB); MACW 2000 so the
    // window cap doesn't mask the overshoot.
    let deep = NetProfile::baseline(50.0).with_buffer(450 * 1024);
    for hystart_on in [true, false] {
        let mut cfg = QuicConfig::quic37();
        cfg.cubic.hystart = hystart_on;
        let proto = ProtoConfig::Quic(cfg);
        let mut plt = Summary::new();
        let mut losses = Summary::new();
        let recs = run_ordered(Parallelism::auto(), rounds().min(5) as usize, |k| {
            let k = k as u64;
            let sc = Scenario::new(deep.clone(), PageSpec::single(20 * 1024 * 1024))
                .with_rounds(1)
                .with_seed(2200 + k);
            let rec = run_page_load(&proto, &sc, k);
            (
                rec.plt.unwrap_or(sc.deadline).as_millis_f64(),
                rec.server_stats.unwrap_or_default().losses_detected as f64,
            )
        });
        for (plt_ms, lost) in recs {
            plt.add(plt_ms);
            losses.add(lost);
        }
        let _ = writeln!(
            out,
            "{:<28} | {:>14} | {:>14.0} | {:>10.0}",
            "20MB @50Mbps, 2-BDP buffer",
            if hystart_on { "on" } else { "off" },
            plt.mean(),
            losses.mean(),
        );
    }
    out.push_str("\n(b) Many small objects (the paper's Sec 5.2 pathology):\n\n");
    let _ = writeln!(
        out,
        "{:<12} | {:>10} | {:>14} | {:>14}",
        "Page", "rate", "HyStart on", "HyStart off"
    );
    let pages = [
        ("1 x 1MB", PageSpec::single(1024 * 1024)),
        ("100 x 10KB", PageSpec::uniform(100, 10 * 1024)),
        ("200 x 10KB", PageSpec::uniform(200, 10 * 1024)),
    ];
    for rate in [10.0, 100.0] {
        for (label, page) in &pages {
            let mut row = format!("{label:<12} | {rate:>7}Mbps");
            for hystart_on in [true, false] {
                let mut cfg = QuicConfig::default();
                cfg.cubic.hystart = hystart_on;
                let sc = Scenario::new(NetProfile::baseline(rate), page.clone())
                    .with_rounds(rounds().min(5))
                    .with_seed(2250);
                let samples = plt_samples(&ProtoConfig::Quic(cfg), &sc);
                row.push_str(&format!(" | {:>14.0}", Summary::of(&samples).mean()));
            }
            let _ = writeln!(out, "{row}");
        }
    }
    out.push_str(
        "\nnote: the paper attributes the many-small-objects pathology to an\n\
         unexplained min-RTT jump triggering HyStart (they leave the cause\n\
         to future work). That jump does not arise in this testbed; here\n\
         the pathology is reproduced by the single-threaded toy QUIC\n\
         server serializing request handling (see DESIGN.md), so HyStart\n\
         on/off is neutral in panel (b) and decisive in panel (a).\n",
    );
    out
}

/// Pacing on/off under loss at high bandwidth.
pub fn pacing() -> String {
    let mut out =
        String::from("Ablation — pacing and bursty losses (10 MB @ 100 Mbps, small buffer)\n\n");
    let net = NetProfile::baseline(100.0).with_buffer(64 * 1024);
    let page = PageSpec::single(10 * 1024 * 1024);
    let _ = writeln!(
        out,
        "{:<12} | {:>16} | {:>16}",
        "Pacing", "PLT ms (std)", "losses (mean)"
    );
    for pacing_on in [true, false] {
        let cfg = QuicConfig {
            pacing: pacing_on,
            ..QuicConfig::default()
        };
        let proto = ProtoConfig::Quic(cfg);
        let mut plt = Summary::new();
        let mut losses = Summary::new();
        let recs = run_ordered(Parallelism::auto(), rounds() as usize, |k| {
            let k = k as u64;
            let sc = Scenario::new(net.clone(), page.clone())
                .with_rounds(1)
                .with_seed(2300 + k);
            let rec = run_page_load(&proto, &sc, k);
            (
                rec.plt.unwrap_or(sc.deadline).as_millis_f64(),
                rec.server_stats.unwrap_or_default().losses_detected as f64,
            )
        });
        for (plt_ms, lost) in recs {
            plt.add(plt_ms);
            losses.add(lost);
        }
        let _ = writeln!(
            out,
            "{:<12} | {:>16} | {:>16.1}",
            if pacing_on { "on" } else { "off" },
            plt.mean_std(),
            losses.mean(),
        );
    }
    out.push_str("\nexpected: pacing reduces drop-tail losses from slow-start bursts.\n");
    out
}

/// N-connection emulation's effect on fairness.
pub fn nconn() -> String {
    let mut out = String::from(
        "Ablation — N-connection emulation vs fairness (QUIC vs 1 TCP flow,\n\
         5 Mbps shared link, 30 s)\n\n",
    );
    let _ = writeln!(
        out,
        "{:<6} | {:>12} | {:>12} | {:>8}",
        "N", "QUIC Mbps", "TCP Mbps", "ratio"
    );
    for n in [1u32, 2] {
        let mut cfg = QuicConfig::default();
        cfg.cubic.num_connections = n;
        let mut q = Summary::new();
        let mut t = Summary::new();
        let runs = run_ordered(Parallelism::auto(), rounds().min(5) as usize, |k| {
            quic_vs_n_tcp(
                &ProtoConfig::Quic(cfg.clone()),
                &ProtoConfig::Tcp(TcpConfig::default()),
                1,
                Dur::from_secs(30),
                2400 + k as u64,
            )
        });
        for run in &runs {
            q.add(run.flows[0].mean_mbps);
            t.add(run.flows[1].mean_mbps);
        }
        let _ = writeln!(
            out,
            "{:<6} | {:>12.2} | {:>12.2} | {:>8.2}",
            n,
            q.mean(),
            t.mean(),
            q.mean() / t.mean().max(1e-9),
        );
    }
    out.push_str(
        "\npaper: \"we found that N had little impact on fairness\" — QUIC\n\
         overtakes TCP even with N=1, because per-ack window updates and\n\
         faster recovery matter more than the Cubic constants.\n",
    );
    out
}

/// Experimental BBR vs Cubic (Sec 5.4: Google reported BBR was "not yet
/// performing as well as Cubic in our deployment tests").
pub fn bbr() -> String {
    let mut out = String::from(
        "Ablation — experimental BBR vs Cubic (QUIC 34 transport, mean PLT\n\
         ms over rounds)\n\n",
    );
    let scenarios = [
        (
            "10MB @50Mbps clean",
            NetProfile::baseline(50.0),
            PageSpec::single(10 * 1024 * 1024),
        ),
        (
            "10MB @50Mbps 1% loss",
            NetProfile::baseline(50.0).with_loss(0.01),
            PageSpec::single(10 * 1024 * 1024),
        ),
        (
            "1MB @10Mbps +100ms",
            NetProfile::baseline(10.0).with_extra_rtt(Dur::from_millis(100)),
            PageSpec::single(1024 * 1024),
        ),
    ];
    let _ = writeln!(out, "{:<22} | {:>12} | {:>12}", "Scenario", "Cubic", "BBR");
    for (label, net, page) in scenarios {
        let mut row = format!("{label:<22}");
        for cc in [CcKind::Cubic, CcKind::Bbr] {
            let cfg = QuicConfig {
                cc,
                ..QuicConfig::default()
            };
            let sc = Scenario::new(net.clone(), page.clone())
                .with_rounds(rounds().min(5))
                .with_seed(2500);
            let samples = plt_samples(&ProtoConfig::Quic(cfg), &sc);
            row.push_str(&format!(" | {:>12.0}", Summary::of(&samples).mean()));
        }
        let _ = writeln!(out, "{row}");
    }
    out.push_str(
        "\npaper context: BBR was experimental and not yet deployed; Google\n\
         told the authors it did not yet match Cubic. Our simplified BBR v1\n\
         is likewise a state-machine-fidelity model, not a tuned controller.\n",
    );
    out
}
