//! Fairness artifacts: Fig 4 (throughput timelines), Fig 5 (congestion
//! windows while competing), Table 4 (average allocations over 10 runs).

use crate::rounds;
use longlook_core::prelude::*;
use longlook_core::testbed::{FlowSpec, Testbed};
use std::fmt::Write as _;

fn quic() -> ProtoConfig {
    ProtoConfig::Quic(QuicConfig::default())
}

fn tcp() -> ProtoConfig {
    ProtoConfig::Tcp(TcpConfig::default())
}

const RUN_SECS: u64 = 60;

/// Fig 4: throughput timelines for QUIC vs TCP and QUIC vs 2 TCP.
pub fn fig4() -> String {
    let mut out = String::from(
        "Fig 4 — timeline showing unfairness between QUIC and TCP over the same\n\
         5 Mbps bottleneck (RTT=36ms, buffer=30KB); Mbps per second\n",
    );
    for (title, n) in [("(a) QUIC vs TCP", 1usize), ("(b) QUIC vs TCPx2", 2)] {
        let run = quic_vs_n_tcp(&quic(), &tcp(), n, Dur::from_secs(RUN_SECS), 31);
        let _ = writeln!(out, "\n{title}");
        for f in &run.flows {
            let series: Vec<String> = f
                .timeline_mbps
                .iter()
                .step_by(4)
                .map(|v| format!("{v:4.1}"))
                .collect();
            let _ = writeln!(
                out,
                "  {:<7} mean {:4.2} Mbps | {}",
                f.label,
                f.mean_mbps,
                series.join(" ")
            );
        }
    }
    out
}

/// Fig 5: congestion windows of the competing flows.
pub fn fig5() -> String {
    let mut out = String::from(
        "Fig 5 — congestion window sizes for QUIC and TCP sharing a 5 Mbps link\n\
         (KB, sampled every 2 s)\n\n",
    );
    // Build the mixed world manually so we can read server-side cwnd.
    let catalog = PageSpec::single(210 * 1024 * 1024);
    let mut tb = Testbed::direct(
        33,
        &fairness_net(),
        DeviceProfile::DESKTOP,
        catalog,
        vec![
            FlowSpec {
                proto: quic(),
                zero_rtt: true,
                app: Box::new(BulkClient::new(0, Dur::from_secs(1))),
            },
            FlowSpec {
                proto: tcp(),
                zero_rtt: false,
                app: Box::new(BulkClient::new(0, Dur::from_secs(1))),
            },
        ],
        None,
        false,
    );
    tb.world.run_until(Time::ZERO + Dur::from_secs(RUN_SECS));
    let server = tb.server_host();
    for (flow, label) in tb.flows.iter().zip(["QUIC", "TCP "]) {
        let Some(tl) = server.cwnd_timeline(*flow) else {
            continue;
        };
        // Sample every 2 simulated seconds.
        let mut samples = Vec::new();
        let mut next = Dur::ZERO;
        for &(t, w) in tl {
            let since = t.saturating_since(Time::ZERO);
            if since >= next {
                samples.push(format!("{:3}", w / 1024));
                next += Dur::from_secs(2);
            }
        }
        let _ = writeln!(out, "  {label}: {}", samples.join(" "));
    }
    out.push_str(
        "\npaper shape: QUIC's window grows more aggressively (steeper slope,\n\
         more frequent increases) so it holds a larger share of the pipe.\n",
    );
    out
}

/// Table 4: average throughputs over 10 runs for the three scenarios.
pub fn table4() -> String {
    let mut out =
        String::from("Table 4 — average throughput (5 Mbps link, buffer=30KB) when competing\n\n");
    let _ = writeln!(
        out,
        "{:<16} | {:<7} | {:>22}",
        "Scenario", "Flow", "Avg Mbps (std)"
    );
    let _ = writeln!(out, "{}-+---------+-----------------------", "-".repeat(16));
    let scenarios: [(&str, usize); 3] = [
        ("QUIC vs TCP", 1),
        ("QUIC vs TCPx2", 2),
        ("QUIC vs TCPx4", 4),
    ];
    let mut quic_share_sum = 0.0;
    for (name, n) in scenarios {
        // Each round is an independent world: shard rounds, then
        // aggregate in round order (identical output to a serial sweep).
        let mut per_flow: Vec<Summary> = vec![Summary::new(); n + 1];
        let runs = run_ordered(Parallelism::auto(), rounds() as usize, |k| {
            quic_vs_n_tcp(&quic(), &tcp(), n, Dur::from_secs(RUN_SECS), 41 + k as u64)
        });
        for run in &runs {
            for (i, f) in run.flows.iter().enumerate() {
                per_flow[i].add(f.mean_mbps);
            }
        }
        let labels: Vec<String> = std::iter::once("QUIC".to_string())
            .chain((1..=n).map(|k| format!("TCP {k}")))
            .collect();
        for (label, s) in labels.iter().zip(&per_flow) {
            let _ = writeln!(out, "{:<16} | {:<7} | {:>22}", name, label, s.mean_std());
        }
        let tcp_total: f64 = per_flow[1..].iter().map(Summary::mean).sum();
        quic_share_sum += per_flow[0].mean() / (per_flow[0].mean() + tcp_total);
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "QUIC's mean share of the bottleneck across scenarios: {:.0}%\n\
         paper: QUIC consumes more than half the bottleneck even against 2\n\
         and 4 competing TCP flows (e.g. 2.71 vs 1.62 Mbps one-on-one).",
        quic_share_sum / 3.0 * 100.0
    );
    out
}
