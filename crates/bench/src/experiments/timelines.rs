//! Timeline figures: 9 (cwnd under loss), 10 (NACK threshold vs
//! reordering), 11 (variable bandwidth).

use crate::rounds;
use longlook_core::prelude::*;
use longlook_core::testbed::{FlowSpec, Testbed};
use std::fmt::Write as _;

fn quic() -> ProtoConfig {
    ProtoConfig::Quic(QuicConfig::default())
}

fn tcp() -> ProtoConfig {
    ProtoConfig::Tcp(TcpConfig::default())
}

/// Fig 9: congestion window over time at 100 Mbps with 1% loss.
pub fn fig9() -> String {
    let mut out = String::from(
        "Fig 9 — congestion window over time, 100 Mbps, 1% loss (KB, sampled\n\
         every 250 ms while downloading a 10 MB object)\n\n",
    );
    let net = NetProfile::baseline(100.0).with_loss(0.01);
    for proto in [quic(), tcp()] {
        let sc = Scenario::new(net.clone(), PageSpec::single(10 * 1024 * 1024))
            .with_rounds(1)
            .with_seed(900);
        let rec = run_page_load(&proto, &sc, 0);
        let mut samples = Vec::new();
        let mut next = Dur::ZERO;
        for &(t, w) in &rec.server_cwnd {
            let since = t.saturating_since(Time::ZERO);
            if since >= next {
                samples.push(format!("{:4}", w / 1024));
                next += Dur::from_millis(250);
            }
        }
        let stats = rec.server_stats.unwrap_or_default();
        let _ = writeln!(
            out,
            "{:<5} plt={:>6.0}ms losses={:<4} rtx={:<4} | {}",
            proto.name(),
            rec.plt.map_or(f64::NAN, |d| d.as_millis_f64()),
            stats.losses_detected,
            stats.retransmissions,
            samples.join(" ")
        );
    }
    out.push_str(
        "\npaper shape: under the same loss, QUIC recovers faster and holds a\n\
         larger window on average than TCP.\n",
    );
    out
}

/// Fig 10: larger NACK thresholds rescue QUIC from jitter-induced
/// reordering (10 MB, 112 ms RTT, ±10 ms jitter).
pub fn fig10() -> String {
    let mut out = String::from(
        "Fig 10 — QUIC vs TCP downloading 10 MB (112 ms RTT, ±10 ms jitter\n\
         causing packet reordering), mean PLT over rounds\n\n",
    );
    let net = NetProfile::baseline(50.0)
        .with_extra_rtt(Dur::from_millis(76))
        .with_jitter(Dur::from_millis(10));
    let page = PageSpec::single(10 * 1024 * 1024);
    let _ = writeln!(
        out,
        "{:<24} | {:>14} | {:>10} | {:>12}",
        "Sender", "PLT ms (std)", "false loss", "spurious rtx"
    );
    for threshold in [3u32, 10, 25, 50] {
        let cfg = QuicConfig {
            nack_threshold: threshold,
            ..QuicConfig::default()
        };
        let proto = ProtoConfig::Quic(cfg);
        let mut plt = Summary::new();
        let mut losses = Summary::new();
        let mut spurious = Summary::new();
        for k in 0..rounds() {
            let sc = Scenario::new(net.clone(), page.clone())
                .with_rounds(1)
                .with_seed(1000 + k);
            let rec = run_page_load(&proto, &sc, k);
            plt.add(rec.plt.unwrap_or(sc.deadline).as_millis_f64());
            let st = rec.server_stats.unwrap_or_default();
            losses.add(st.losses_detected as f64);
            spurious.add(st.spurious_retransmissions as f64);
        }
        let _ = writeln!(
            out,
            "{:<24} | {:>14} | {:>10.0} | {:>12.0}",
            format!("QUIC thresh={threshold}"),
            plt.mean_std(),
            losses.mean(),
            spurious.mean(),
        );
    }
    // TCP baseline with DSACK adaptation.
    let mut plt = Summary::new();
    let mut losses = Summary::new();
    let mut spurious = Summary::new();
    for k in 0..rounds() {
        let sc = Scenario::new(net.clone(), page.clone())
            .with_rounds(1)
            .with_seed(1000 + k);
        let rec = run_page_load(&tcp(), &sc, k);
        plt.add(rec.plt.unwrap_or(sc.deadline).as_millis_f64());
        let st = rec.server_stats.unwrap_or_default();
        losses.add(st.losses_detected as f64);
        spurious.add(st.spurious_retransmissions as f64);
    }
    let _ = writeln!(
        out,
        "{:<24} | {:>14} | {:>10.0} | {:>12.0}",
        "TCP (DSACK-adaptive)",
        plt.mean_std(),
        losses.mean(),
        spurious.mean(),
    );
    out.push_str(
        "\npaper shape: at the default threshold (3) reordering is misread as\n\
         loss and QUIC is much slower than TCP; raising the threshold\n\
         restores QUIC's performance.\n",
    );
    out
}

/// Fig 11: variable bandwidth (210 MB, rate redrawn from [50, 150] Mbps
/// every second).
pub fn fig11() -> String {
    let mut out = String::from(
        "Fig 11 — downloading 210 MB while the bottleneck rate is redrawn\n\
         uniformly from [50, 150] Mbps every second\n\n",
    );
    let run_secs = 20u64;
    let mut q_mean = Summary::new();
    let mut t_mean = Summary::new();
    for k in 0..rounds().min(5) {
        for (proto, acc) in [(quic(), &mut q_mean), (tcp(), &mut t_mean)] {
            // A home-router-sized buffer (the paper's OpenWRT testbed):
            // down-shifts in rate overflow it, and recovery speed decides
            // the average throughput.
            let mut net = NetProfile::baseline(100.0).with_buffer(100 * 1024);
            net.rate = RateSchedule::random_hold_mbps(50.0, 150.0, Dur::from_secs(1), 1100 + k);
            let catalog = PageSpec::single(210 * 1024 * 1024);
            let mut tb = Testbed::direct(
                1100 + k,
                &net,
                DeviceProfile::DESKTOP,
                catalog,
                vec![FlowSpec {
                    proto: proto.clone(),
                    zero_rtt: true,
                    app: Box::new(BulkClient::new(0, Dur::from_secs(1))),
                }],
                None,
                false,
            );
            tb.world.run_until(Time::ZERO + Dur::from_secs(run_secs));
            let app = tb.client_host().app::<BulkClient>(0);
            let tl = app.throughput_mbps();
            let steady = &tl[2.min(tl.len())..];
            let mean = if steady.is_empty() {
                0.0
            } else {
                steady.iter().sum::<f64>() / steady.len() as f64
            };
            acc.add(mean);
            if k == 0 {
                let series: Vec<String> = tl.iter().map(|v| format!("{v:3.0}")).collect();
                let _ = writeln!(out, "{:<5} Mbps/s: {}", proto.name(), series.join(" "));
            }
        }
    }
    let _ = writeln!(
        out,
        "\nQUIC mean throughput: {} Mbps\nTCP  mean throughput: {} Mbps\n\
         \npaper shape: QUIC tracks the fluctuating rate better (79 vs 46 Mbps\n\
         in the paper's testbed) thanks to unambiguous acks and faster\n\
         window recovery.",
        q_mean.mean_std(),
        t_mean.mean_std()
    );
    out
}
