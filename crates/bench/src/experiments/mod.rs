//! Experiment registry: every table and figure, addressable by id.

pub mod ablations;
pub mod calib;
pub mod fairness_exp;
pub mod fleet_exp;
pub mod heatmaps;
pub mod historical;
pub mod statemachines;
pub mod tables;
pub mod timelines;
pub mod trauma_sweep;
pub mod video_exp;

/// All experiment ids with one-line descriptions, in paper order.
pub fn list_experiments() -> Vec<(&'static str, &'static str)> {
    vec![
        ("table1", "related-work contribution matrix"),
        ("table2", "test parameter space"),
        ("table3", "QUIC congestion-control states (Cubic)"),
        ("fig2", "calibration: default vs GAE vs calibrated servers"),
        ("greybox", "grey-box parameter search (Sec 4.1)"),
        ("fig3a", "inferred QUIC Cubic state machine"),
        ("fig3b", "inferred QUIC BBR state machine"),
        (
            "fig4",
            "fairness throughput timelines (QUIC vs TCP / TCPx2)",
        ),
        ("fig5", "congestion windows while competing"),
        ("table4", "average throughput when competing (10 runs)"),
        ("fig6a", "PLT heatmap: object size x rate"),
        ("fig6b", "PLT heatmap: object count x rate"),
        ("fig7", "QUIC 0-RTT benefit heatmap"),
        ("fig8", "PLT heatmaps with loss / delay / variable delay"),
        ("fig9", "cwnd over time at 100 Mbps, 1% loss"),
        (
            "fig10",
            "reordering vs NACK threshold (10MB, 112ms RTT, 10ms jitter)",
        ),
        (
            "fig11",
            "variable bandwidth throughput (210MB, 50-150 Mbps)",
        ),
        ("fig12", "mobile heatmaps (Nexus6, MotoG)"),
        ("fig13", "state machines: Desktop vs MotoG, 50 Mbps"),
        (
            "table5",
            "cellular network characteristics (emulated vs target)",
        ),
        ("fig14", "cellular heatmaps (Verizon/Sprint 3G/LTE)"),
        ("table6", "video QoE at 100 Mbps + 1% loss"),
        ("fig15", "QUIC 37 with MACW 430 vs 2000"),
        ("historical", "PLT across QUIC versions 25-37"),
        ("fig17", "QUIC vs proxied TCP"),
        ("fig18", "QUIC direct vs proxied QUIC"),
        (
            "ablation_nack",
            "NACK threshold: fixed vs adaptive vs time-based",
        ),
        ("ablation_hystart", "HyStart on/off for many small objects"),
        ("ablation_pacing", "pacing on/off under loss"),
        ("ablation_nconn", "N-connection emulation vs fairness"),
        ("ablation_bbr", "experimental BBR vs Cubic"),
        (
            "trauma",
            "fault-injection sweep: completion and typed errors under trauma",
        ),
        (
            "fleet",
            "fleet-scale tail latency: arrival profiles x load, QUIC vs TCP p99",
        ),
    ]
}

/// Run one experiment by id; returns the rendered artifact.
pub fn run_experiment(id: &str) -> Option<String> {
    let out = match id {
        "table1" => tables::table1(),
        "table2" => tables::table2(),
        "table3" => tables::table3(),
        "table5" => tables::table5(),
        "fig2" => calib::fig2(),
        "greybox" => calib::greybox(),
        "fig3a" => statemachines::fig3a(),
        "fig3b" => statemachines::fig3b(),
        "fig13" => statemachines::fig13(),
        "fig4" => fairness_exp::fig4(),
        "fig5" => fairness_exp::fig5(),
        "table4" => fairness_exp::table4(),
        "fig6a" => heatmaps::fig6a(),
        "fig6b" => heatmaps::fig6b(),
        "fig7" => heatmaps::fig7(),
        "fig8" => heatmaps::fig8(),
        "fig12" => heatmaps::fig12(),
        "fig14" => heatmaps::fig14(),
        "fig15" => heatmaps::fig15(),
        "fig17" => heatmaps::fig17(),
        "fig18" => heatmaps::fig18(),
        "fig9" => timelines::fig9(),
        "fig10" => timelines::fig10(),
        "fig11" => timelines::fig11(),
        "table6" => video_exp::table6(),
        "historical" => historical::historical(),
        "ablation_nack" => ablations::nack(),
        "ablation_hystart" => ablations::hystart(),
        "ablation_pacing" => ablations::pacing(),
        "ablation_nconn" => ablations::nconn(),
        "ablation_bbr" => ablations::bbr(),
        "trauma" => trauma_sweep::trauma(),
        "fleet" => fleet_exp::fleet(),
        _ => return None,
    };
    Some(out)
}
