//! State-machine figures: 3a (Cubic), 3b (BBR), 13 (Desktop vs MotoG).

use longlook_core::prelude::*;
use longlook_core::rootcause::infer_from_records;
use std::fmt::Write as _;

/// The experiment mix used to exercise "all of our experiment
/// configurations" for Fig 3a: clean, lossy, jittery, high-delay, and
/// many-small-objects scenarios.
fn trace_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new(NetProfile::baseline(10.0), PageSpec::single(1024 * 1024))
            .with_rounds(2)
            .with_seed(301),
        Scenario::new(
            NetProfile::baseline(100.0).with_loss(0.01),
            PageSpec::single(5 * 1024 * 1024),
        )
        .with_rounds(2)
        .with_seed(302),
        Scenario::new(
            NetProfile::baseline(50.0)
                .with_extra_rtt(Dur::from_millis(76))
                .with_jitter(Dur::from_millis(10)),
            PageSpec::single(2 * 1024 * 1024),
        )
        .with_rounds(2)
        .with_seed(303),
        Scenario::new(NetProfile::baseline(5.0), PageSpec::uniform(100, 10 * 1024))
            .with_rounds(2)
            .with_seed(304),
        Scenario::new(
            NetProfile::baseline(100.0),
            PageSpec::single(10 * 1024 * 1024),
        )
        .with_rounds(2)
        .with_seed(305),
    ]
}

fn machine_for(
    proto: &ProtoConfig,
    scenarios: &[Scenario],
) -> longlook_statemachine::InferredMachine {
    let mut records = Vec::new();
    for sc in scenarios {
        records.extend(run_records(proto, sc));
    }
    infer_from_records(&records)
}

/// Fig 3a: the inferred Cubic state machine across all configurations.
pub fn fig3a() -> String {
    let machine = machine_for(
        &ProtoConfig::Quic(QuicConfig::default()),
        &trace_scenarios(),
    );
    let mut out =
        String::from("Fig 3a — QUIC (Cubic) state machine inferred from execution traces\n\n");
    out.push_str(&machine.render_text());
    let _ = writeln!(out, "\nmined invariants ({}):", machine.invariants.len());
    for inv in machine.invariants.iter().take(20) {
        let _ = writeln!(out, "  {inv}");
    }
    if machine.invariants.len() > 20 {
        let _ = writeln!(out, "  ... ({} more)", machine.invariants.len() - 20);
    }
    out.push_str("\nGraphviz DOT (also written to results/fig3a.dot):\n");
    out.push_str(&machine.to_dot("QUIC Cubic (Fig 3a)"));
    out
}

/// Fig 3b: the experimental BBR implementation's state machine.
pub fn fig3b() -> String {
    let cfg = QuicConfig {
        cc: CcKind::Bbr,
        ..QuicConfig::default()
    };
    let scenarios = vec![
        Scenario::new(
            NetProfile::baseline(10.0),
            PageSpec::single(5 * 1024 * 1024),
        )
        .with_rounds(2)
        .with_seed(311),
        Scenario::new(
            NetProfile::baseline(50.0).with_loss(0.005),
            PageSpec::single(20 * 1024 * 1024),
        )
        .with_rounds(2)
        .with_seed(312),
    ];
    let machine = machine_for(&ProtoConfig::Quic(cfg), &scenarios);
    let mut out =
        String::from("Fig 3b — QUIC (experimental BBR) state machine inferred from traces\n\n");
    out.push_str(&machine.render_text());
    out.push_str("\nGraphviz DOT (also written to results/fig3b.dot):\n");
    out.push_str(&machine.to_dot("QUIC BBR (Fig 3b)"));
    out
}

/// Fig 13: Desktop vs MotoG state machines at 50 Mbps, no impairment.
pub fn fig13() -> String {
    let page = PageSpec::single(10 * 1024 * 1024);
    let base = |seed: u64| {
        Scenario::new(NetProfile::baseline(50.0), page.clone())
            .with_rounds(3)
            .with_seed(seed)
    };
    let quic = ProtoConfig::Quic(QuicConfig::default());
    let desktop = {
        let records = run_records(&quic, &base(321));
        infer_from_records(&records)
    };
    let motog = {
        let records = run_records(&quic, &base(322).on_device(DeviceProfile::MOTOG));
        infer_from_records(&records)
    };
    let mut out = String::from(
        "Fig 13 — QUIC state transitions on MotoG vs Desktop (50 Mbps, no\n\
         added loss or delay); fraction of time in each state\n\n",
    );
    out.push_str(&longlook_core::rootcause::compare_machines(
        "Desktop", &desktop, "MotoG", &motog,
    ));
    let _ = writeln!(
        out,
        "\nApplicationLimited fraction: Desktop {:.0}%, MotoG {:.0}%\n\
         paper: 7% on desktop vs 58% on the MotoG — the phone cannot consume\n\
         packets fast enough in userspace, starving the sender.",
        desktop.time_fraction("ApplicationLimited") * 100.0,
        motog.time_fraction("ApplicationLimited") * 100.0,
    );
    out.push_str("\nDOT (Desktop):\n");
    out.push_str(&desktop.to_dot("Desktop (Fig 13)"));
    out.push_str("\nDOT (MotoG):\n");
    out.push_str(&motog.to_dot("MotoG (Fig 13)"));
    out
}
