//! Fig 2 and the grey-box calibration search (Sec 4.1).

use crate::rounds;
use longlook_core::prelude::*;
use std::fmt::Write as _;

/// Fig 2: wait vs download split for the three server profiles.
pub fn fig2() -> String {
    let mut out = String::from(
        "Fig 2 — GAE vs our QUIC servers on EC2 before and after configuring them\n\
         (10 MB image over a 100 Mbps link, 12 ms RTT; mean over rounds)\n\n",
    );
    let _ = writeln!(
        out,
        "{:<16} | {:>16} | {:>18} | {:>10}",
        "Server", "wait ms (std)", "download ms (std)", "total ms"
    );
    let profiles = [
        ServerProfile::PublicDefault,
        ServerProfile::GaeLike,
        ServerProfile::Calibrated,
    ];
    let mut totals = Vec::new();
    for p in profiles {
        let split = fig2_measure(p, rounds(), 11);
        let total = split.wait_ms.mean() + split.download_ms.mean();
        let _ = writeln!(
            out,
            "{:<16} | {:>16} | {:>18} | {:>10.0}",
            split.profile,
            split.wait_ms.mean_std(),
            split.download_ms.mean_std(),
            total,
        );
        totals.push((split.profile, total));
    }
    let default_total = totals[0].1;
    let calibrated_total = totals[2].1;
    let _ = writeln!(
        out,
        "\npaper shape: the public default takes ~2x the calibrated config \
         (here: {:.2}x); GAE shows a large, highly variable wait.",
        default_total / calibrated_total
    );
    out
}

/// The grey-box search demo.
pub fn greybox() -> String {
    let mut out = String::from(
        "Grey-box calibration (Sec 4.1): vary server parameters until the\n\
         performance matches the reference (deployed) servers.\n\n",
    );
    let reference = reference_plt_ms(rounds().min(5), 21);
    let _ = writeln!(
        out,
        "reference 10MB PLT (\"Google's servers\"): {reference:.0} ms\n"
    );
    let candidates = [
        Candidate {
            macw: 107,
            ssthresh_fixed: false,
        },
        Candidate {
            macw: 107,
            ssthresh_fixed: true,
        },
        Candidate {
            macw: 215,
            ssthresh_fixed: false,
        },
        Candidate {
            macw: 215,
            ssthresh_fixed: true,
        },
        Candidate {
            macw: 430,
            ssthresh_fixed: false,
        },
        Candidate {
            macw: 430,
            ssthresh_fixed: true,
        },
    ];
    let (best, err) = grey_box_search(reference, &candidates, rounds().min(5), 21);
    for c in candidates {
        let _ = writeln!(
            out,
            "  candidate MACW={:<4} ssthresh_fixed={:<5}{}",
            c.macw,
            c.ssthresh_fixed,
            if c.macw == best.macw && c.ssthresh_fixed == best.ssthresh_fixed {
                "   <- selected"
            } else {
                ""
            }
        );
    }
    let _ = writeln!(
        out,
        "\nselected MACW={} ssthresh_fixed={} (|PLT - reference| = {err:.1} ms)\n\
         paper: the deployed configuration is MACW=430 with the ssthresh fix.",
        best.macw, best.ssthresh_fixed
    );
    out
}
