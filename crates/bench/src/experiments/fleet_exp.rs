//! The fleet experiment: population-level QUIC vs TCP tail latency.
//!
//! Arrival profiles (poisson / flash-crowd / diurnal) × load multipliers
//! (0.5x / 1x / 2x of the base fleet), compared on p99 completion latency
//! with the usual Welch gate. The base fleet size defaults to 2 000
//! clients and is overridable with `LONGLOOK_FLEET_N`; rounds come from
//! `LONGLOOK_ROUNDS` like every other experiment. The representative
//! appendix fleets run through the sharded loop (`LONGLOOK_FLEET_SHARDS`,
//! default 1) — sharding never changes the reported observables (the
//! `fleet_shard_differential` referee pins that), it only spreads one
//! big cell across workers.

use crate::rounds;
use longlook_core::prelude::*;
use std::fmt::Write as _;

/// The fleet tail-latency heatmap plus a one-fleet metrics appendix.
pub fn fleet() -> String {
    let n = fleet_n(2_000);
    let base = FleetConfig::new(n);
    let map = fleet_heatmap(
        &QuicConfig::default(),
        &TcpConfig::default(),
        &base,
        rounds(),
        Parallelism::auto(),
    );
    let mut out = map.render_ascii();

    // One representative flash-crowd fleet per protocol, for the numbers
    // the heatmap compresses away: completion rate, tails, arena cost.
    // Sharded per the env knob so big interactive fleets can use the
    // worker threads the heatmap cells above leave idle.
    let shards = fleet_shards(1);
    for (label, proto) in [
        ("QUIC", ProtoConfig::Quic(QuicConfig::default())),
        ("TCP", ProtoConfig::Tcp(TcpConfig::default())),
    ] {
        let m = run_fleet_sharded(&proto, &base, shards, Parallelism::auto());
        let _ = write!(
            out,
            "\n{label}: {n} clients flash-crowd ({shards} shard(s)) — \
             {} completed, {} timed out; \
             latency p50/p99/p999 = {:.0}/{:.0}/{:.0} ms (mean {}); \
             {} events, peak {} scheduled, peak {} live conns, \
             arena {:.0} B/conn",
            m.completed,
            m.timed_out,
            m.p50_ms(),
            m.p99_ms(),
            m.p999_ms(),
            m.latency_ms.mean_std(),
            m.events,
            m.scheduled_peak,
            m.peak_live,
            m.bytes_per_conn(),
        );
    }
    out.push('\n');
    out
}
