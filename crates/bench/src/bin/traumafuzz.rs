//! `traumafuzz` — seeded fault-injection fuzzer with shrinking repros.
//!
//! ```text
//! traumafuzz --seeds 0..256                      # sweep; exit 1 on any violation
//! traumafuzz --seeds 0..64 --canary --expect-violation
//! traumafuzz --replay results/trauma/repro_17.json
//! ```
//!
//! Each seed deterministically derives a fault plan, runs a paired
//! QUIC/TCP trauma cell twice (the second run is the determinism oracle),
//! and checks the invariant oracles. A violating seed is shrunk to a
//! minimal plan and written as a JSON repro under `results/trauma/`; the
//! file is immediately parsed back and replayed to prove it still
//! reproduces.
//!
//! `--canary` arms the seeded bug (a QUIC watchdog that gives up without
//! surfacing its error); with `--expect-violation` the exit code inverts:
//! success means the fuzzer caught the canary, shrank every repro to at
//! most 3 events, and every written repro replayed its violation.

use longlook_bench::fuzz::{
    capture_trace, fuzz_seed, parse_repro, render_repro, replay, shrink, ReproCase,
};
use std::io::Write as _;

fn usage() -> ! {
    eprintln!("usage: traumafuzz [--seeds A..B] [--canary] [--expect-violation]");
    eprintln!("       traumafuzz --replay <repro.json>");
    eprintln!("  --seeds A..B        seed range to sweep (default 0..64)");
    eprintln!("  --canary            arm the seeded watchdog-muting bug");
    eprintln!("  --expect-violation  succeed only if a violation is caught, shrunk");
    eprintln!("                      to <=3 events, and its repro replays");
    eprintln!("  --replay FILE       replay a repro file; exit 0 iff it reproduces");
    std::process::exit(2);
}

fn parse_range(s: &str) -> Option<(u64, u64)> {
    let (a, b) = s.split_once("..")?;
    let lo: u64 = a.parse().ok()?;
    let hi: u64 = b.parse().ok()?;
    (lo < hi).then_some((lo, hi))
}

fn replay_file(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let case = match parse_repro(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "replaying seed {} ({} event(s), canary: {})",
        case.seed,
        case.plan.events.len(),
        case.canary
    );
    let violations = replay(&case);
    if violations.is_empty() {
        println!("no violation: the repro did NOT reproduce");
        std::process::exit(1);
    }
    for v in &violations {
        println!("  {v}");
    }
    println!("violation reproduced ({} oracle hit(s))", violations.len());
    std::process::exit(0);
}

fn save_repro(case: &ReproCase) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("results").join("trauma");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("repro_{}.json", case.seed));
    let mut f = std::fs::File::create(&path).ok()?;
    f.write_all(render_repro(case).as_bytes()).ok()?;
    Some(path)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut range = (0u64, 64u64);
    let mut canary = false;
    let mut expect_violation = false;
    while let Some(flag) = args.first().cloned() {
        match flag.as_str() {
            "--seeds" => {
                if args.len() < 2 {
                    usage();
                }
                range = parse_range(&args[1]).unwrap_or_else(|| usage());
                args.drain(..2);
            }
            "--canary" => {
                canary = true;
                args.remove(0);
            }
            "--expect-violation" => {
                expect_violation = true;
                args.remove(0);
            }
            "--replay" => {
                if args.len() < 2 {
                    usage();
                }
                replay_file(&args[1]);
            }
            _ => usage(),
        }
    }

    let started = std::time::Instant::now();
    let (lo, hi) = range;
    let mut violating_seeds = 0u64;
    let mut shrink_ok = true;
    let mut replay_ok = true;
    for seed in lo..hi {
        let (plan, violations) = fuzz_seed(seed, canary);
        if violations.is_empty() {
            continue;
        }
        violating_seeds += 1;
        eprintln!(
            "seed {seed}: {} violation(s) under a {}-event plan",
            violations.len(),
            plan.events.len()
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        let small = shrink(seed, &plan, canary);
        eprintln!(
            "  shrunk {} -> {} event(s)",
            plan.events.len(),
            small.events.len()
        );
        if small.events.len() > 3 {
            shrink_ok = false;
        }
        let mut case = ReproCase {
            seed,
            canary,
            plan: small,
            trace: None,
        };
        // Attach the shrunk case's event trace so the repro file explains
        // itself (`repro trace` renders it without re-running anything).
        case.trace = Some(capture_trace(&case));
        match save_repro(&case) {
            Some(path) => eprintln!("  repro written to {}", path.display()),
            None => eprintln!("  (could not write repro file)"),
        }
        // Round-trip through the serialized form and replay: the repro
        // must stand on its own.
        let reproduced = parse_repro(&render_repro(&case))
            .map(|c| !replay(&c).is_empty())
            .unwrap_or(false);
        if !reproduced {
            replay_ok = false;
            eprintln!("  WARNING: shrunk repro did not reproduce on replay");
        }
    }
    println!(
        "traumafuzz: {} seed(s) in {:.1}s, {} violating ({})",
        hi - lo,
        started.elapsed().as_secs_f64(),
        violating_seeds,
        if canary { "canary armed" } else { "canary off" },
    );

    let ok = if expect_violation {
        violating_seeds > 0 && shrink_ok && replay_ok
    } else {
        violating_seeds == 0
    };
    if !ok {
        if expect_violation && violating_seeds == 0 {
            eprintln!("expected a violation but the sweep came back clean");
        }
        std::process::exit(1);
    }
}
