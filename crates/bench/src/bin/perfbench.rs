//! `perfbench` — std-only microbenchmark suite for the hot event-loop path.
//!
//! The crate registry is offline so criterion is unavailable; this binary
//! implements the minimal harness the workspace needs: warmup + N timed
//! iterations per benchmark, median/min reporting, and a machine-readable
//! `BENCH_events.json` at the repo root for CI and cross-PR comparison.
//!
//! Benchmarks:
//!
//! * `sched_bulk_{wheel,heap}` — raw [`EventQueue`] push/pop throughput on
//!   a synthetic hold-steady stream shaped like a bulk transfer (~300
//!   outstanding events, mostly sub-ms deltas plus RTT-scale timers and a
//!   tail of idle timeouts). The `sched_bulk_speedup` scalar is the
//!   wheel/heap ratio CI gates on.
//! * `bulk_{quic,tcp}_{wheel,heap}` — full simulated page loads through
//!   [`Testbed::direct`], A/B'd via `LONGLOOK_SCHED` with `LONGLOOK_WIRE`
//!   pinned to `encoded`, reporting end-to-end events/sec and the
//!   scheduler's high-water mark. These are the pooled-encode baseline.
//! * `bulk_{quic,tcp}_structured` — the same cells on the structured
//!   zero-serialization wire path (`LONGLOOK_WIRE=structured`, wheel
//!   scheduler). The `wire_bulk_quic_speedup` scalar is the
//!   structured/encoded ratio CI gates on (bar: [`WIRE_SPEEDUP_BAR`]).
//! * `bulk_{quic,tcp}_batched` — the structured cells again with the
//!   batched hot path enabled (`LONGLOOK_BATCH=on`: flight-granular ack
//!   processing, slab sent store, burst delivery). All other cells pin
//!   `LONGLOOK_BATCH=off` so they stay the per-event reference lineage.
//!   CI gates on `batch_bulk_quic_speedup` (batched / structured-off,
//!   bar: [`BATCH_SPEEDUP_BAR`]) and on the absolute batched QUIC rate
//!   (bar: [`BATCH_ABS_BAR_MEV_S`]). `LONGLOOK_TRACE` is pinned `off`
//!   throughout, so the batched QUIC cell doubles as the trace-off
//!   reference: the `trace_off_overhead` scalar (rate over the v5
//!   floor) gates that the compiled-in-but-disabled trace branches cost
//!   at most 3% (bar: [`TRACE_OFF_OVERHEAD_BAR`]).
//! * `encode_{pooled,alloc}` — QUIC packet encode ns/op with and without
//!   [`PayloadPool`] buffer recycling.
//! * `sweep_small` / `sweep_small_structured` — a small serial heatmap
//!   sweep per wire path, the closest thing to a whole-program wall-clock
//!   number; `wire_sweep_speedup` is the encoded/structured wall ratio.
//! * `fleet_10k` / `fleet_100k` — flash-crowd fleet cells (`run_fleet`,
//!   QUIC, 10^4 / 10^5 clients) reporting Mev/s, peak scheduled events,
//!   and connection-arena bytes. `--check` gates the arena footprint
//!   ([`FLEET_ARENA_BYTES_BAR`], [`FLEET_BYTES_PER_CONN_BAR`]) and the
//!   absolute event rate ([`FLEET_ABS_BAR_MEV_S`]).
//! * `fleet_1m` — the 10^6-client flash crowd, run through
//!   `run_fleet_sharded` ([`FLEET_1M_SHARDS`] shards) on
//!   [`FLEET_1M_JOBS`] worker threads, same bars as the other fleet
//!   cells. The same sharded cell is also timed at jobs=1;
//!   `fleet_shard_speedup` is the jobs=4 / jobs=1 rate ratio, gated at
//!   [`FLEET_SHARD_SPEEDUP_BAR`] — but only when the recording host had
//!   at least [`FLEET_SHARD_SPEEDUP_MIN_HOST_THREADS`] hardware threads
//!   (the document records `host_threads`): a 1-core container cannot
//!   exhibit thread speedup and would gate on noise.
//!
//! Usage: `perfbench [--iters N] [--warmup N] [--out PATH] [--only fleet]
//! [--check PATH]`. `--only fleet` runs just the fleet cells and stamps
//! the JSON with `"subset": "fleet"` so `--check` requires only the fleet
//! benches and bars — that is what the CI fleet-smoke job runs. `--check`
//! parses an existing JSON file and validates the schema instead of
//! running benchmarks (used by the CI bench-smoke and fleet-smoke jobs).

use longlook_bench::json::{self, Json};
use longlook_core::prelude::*;
use longlook_quic::{Frame, QuicPacket};
use longlook_sim::rng::SimRng;
use longlook_sim::time::Time;
use longlook_sim::{EventQueue, PayloadPool, SchedKind};
use std::fmt::Write as _;
use std::time::Instant;

const SCHEMA: &str = "longlook-bench-events-v6";
const SCHED_ENV: &str = "LONGLOOK_SCHED";
const WIRE_ENV: &str = "LONGLOOK_WIRE";
const BATCH_ENV: &str = "LONGLOOK_BATCH";
const TRACE_ENV: &str = "LONGLOOK_TRACE";

/// Minimum accepted `wire_bulk_quic_speedup`: the structured wire path
/// must beat the pooled-encode path by this factor on the bulk QUIC cell.
/// Was 1.25 when the workspace built without LTO (measured 1.42); fat LTO
/// inlines the encode/decode loops too, compressing the measured ratio to
/// 1.2-1.3. Losing the structured path entirely reads ~1.0, which still
/// trips this bar.
const WIRE_SPEEDUP_BAR: f64 = 1.10;

/// Minimum accepted `batch_bulk_quic_speedup` (batched / per-event on the
/// structured QUIC cell). The issue aimed for 2.0x; on the recording
/// machine the live A/B ratio spans 1.6-2.2x run to run, so a 2.0 bar
/// would flake on machine variance. 1.4 sits below the observed floor and
/// still trips hard if the batched path stops batching (ratio collapses
/// to ~1.0x).
const BATCH_SPEEDUP_BAR: f64 = 1.4;

/// v5's absolute floor on `bulk_quic_batched`, in Mev/s — the reference
/// the trace-off overhead is measured against. The measured plateau is
/// 4.2-4.6 median after flight-granular acks, the slab sent store, burst
/// delivery, and fat LTO (seed baseline: 2.0); the floor sits below the
/// plateau by more than the noise band so CI catches real regressions
/// (losing batching lands at ~2.3), not slow runners.
const V5_BATCH_FLOOR_MEV_S: f64 = 3.0;

/// Minimum accepted absolute rate on `bulk_quic_batched`, in Mev/s.
/// Schema v6 runs this cell with the structured trace layer compiled
/// into the hot path but switched off (`LONGLOOK_TRACE=off` pinned); the
/// disabled emit branches are budgeted at most 3% against the v5 floor,
/// so the bar is 0.97 x [`V5_BATCH_FLOOR_MEV_S`]. The companion
/// `trace_off_overhead` scalar reports the measured rate / v5-floor
/// ratio and is gated at [`TRACE_OFF_OVERHEAD_BAR`].
const BATCH_ABS_BAR_MEV_S: f64 = 2.91;

/// Minimum accepted `trace_off_overhead` (batched trace-off QUIC rate
/// over the v5 floor): the trace layer, compiled in but off, may cost at
/// most 3% of the pre-trace floor.
const TRACE_OFF_OVERHEAD_BAR: f64 = 0.97;

/// Minimum accepted absolute rate on `bulk_tcp_batched`, in Mev/s. This
/// replaces the old `batch_bulk_tcp_speedup` ratio gate: the TCP cell's
/// batched/per-event ratio hovers around 1.0-1.1x (TCP's kernel-class
/// packets never took the userspace batching that QUIC did), so the
/// ratio was pure noise — a gate on it said nothing about TCP being fast
/// and flaked whenever the denominator had a good run (measured ratios
/// span 0.9-1.1x). What CI actually cares about is that the TCP cell
/// holds its absolute rate: measured 4.2-4.7 Mev/s median on this
/// machine, so the 3.5 floor sits under the plateau by more than the
/// noise band (same convention as [`BATCH_ABS_BAR_MEV_S`]) and trips on
/// real regressions, not slow runners.
const TCP_BATCH_ABS_BAR_MEV_S: f64 = 3.5;

/// Maximum accepted `arena_bytes_peak` on `fleet_100k`: the whole
/// 100k-connection flash crowd must fit its per-connection state in
/// 64 MiB of arena (the acceptance budget; measured ~4 MB).
const FLEET_ARENA_BYTES_BAR: u64 = 64 * 1024 * 1024;

/// Maximum accepted `bytes_per_conn` on the fleet cells: arena bytes at
/// the concurrency high-water mark, per live connection. Budgeted at
/// 650 B; the struct-of-arrays layout measures ~40-90 B.
const FLEET_BYTES_PER_CONN_BAR: f64 = 650.0;

/// Minimum accepted absolute event rate on the fleet cells, in Mev/s.
/// Measured 7-8.5 Mev/s median on both cells (the fleet loop touches a
/// few dense columns per event, so it runs well above the packet-level
/// cells); the bar sits below the plateau by more than the noise band,
/// same convention as the other absolute bars.
const FLEET_ABS_BAR_MEV_S: f64 = 4.0;

/// Minimum accepted absolute event rate on `fleet_1m`, in Mev/s. The
/// 10^6-connection cell runs ~35% slower per event than `fleet_100k`
/// (quarter-million-entry shard queues and a colder cache), measuring
/// 4.4-5.0 Mev/s here depending on whether the shard fan-out pays
/// thread overhead on a small host; the bar sits below that plateau by
/// more than the noise band, same convention as [`FLEET_ABS_BAR_MEV_S`].
const FLEET_1M_ABS_BAR_MEV_S: f64 = 2.5;

/// Shards the `fleet_1m` cell splits its link space into.
const FLEET_1M_SHARDS: usize = 4;

/// Worker threads the `fleet_1m` cell fans its shards across.
const FLEET_1M_JOBS: usize = 4;

/// Iteration cap for the `fleet_1m` cell: at ~10^7 events per run the
/// full `--iters` default would dominate the suite's wall-clock for no
/// extra signal.
const FLEET_1M_MAX_ITERS: usize = 3;

/// Minimum accepted `fleet_shard_speedup` (sharded fleet at jobs=4 vs
/// jobs=1), enforced only when the recording host reported at least
/// [`FLEET_SHARD_SPEEDUP_MIN_HOST_THREADS`] hardware threads — thread
/// speedup is unmeasurable on smaller hosts, and gating there would
/// fail every 1-core CI container on arithmetic noise.
const FLEET_SHARD_SPEEDUP_BAR: f64 = 1.6;

/// Host hardware-thread floor below which the shard-speedup bar is
/// reported but not enforced.
const FLEET_SHARD_SPEEDUP_MIN_HOST_THREADS: u64 = 4;

/// Fleet cells: present in every document, the only requirement for
/// `"subset": "fleet"` documents.
const FLEET_BENCHES: [&str; 3] = ["fleet_10k", "fleet_100k", "fleet_1m"];

/// Keys `--check` requires under `"benchmarks"` for full documents
/// (plus [`FLEET_BENCHES`]).
const REQUIRED_BENCHES: [&str; 14] = [
    "sched_bulk_wheel",
    "sched_bulk_heap",
    "bulk_quic_wheel",
    "bulk_quic_heap",
    "bulk_tcp_wheel",
    "bulk_tcp_heap",
    "bulk_quic_structured",
    "bulk_tcp_structured",
    "bulk_quic_batched",
    "bulk_tcp_batched",
    "encode_pooled",
    "encode_alloc",
    "sweep_small",
    "sweep_small_structured",
];

fn main() {
    let cfg = match Config::from_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("perfbench: {e}");
            eprintln!("usage: perfbench [--iters N] [--warmup N] [--out PATH] [--check PATH]");
            std::process::exit(2);
        }
    };

    if let Some(path) = &cfg.check {
        match check_file(path) {
            Ok(summary) => println!("{summary}"),
            Err(e) => {
                eprintln!("perfbench --check {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!(
        "perfbench: {} iters, {} warmup, writing {}{}",
        cfg.iters,
        cfg.warmup,
        cfg.out,
        if cfg.fleet_only {
            " (fleet cells only)"
        } else {
            ""
        }
    );

    let mut out = Report::new(&cfg);
    if cfg.fleet_only {
        run_fleet_cells(&cfg, &mut out);
        finish_report(&cfg, out);
        return;
    }

    // --- Scheduler microbenchmark ------------------------------------
    let wheel = bench_sched(&cfg, SchedKind::Wheel);
    let heap = bench_sched(&cfg, SchedKind::Heap);
    let speedup = wheel.median_mev_s() / heap.median_mev_s();
    println!(
        "sched_bulk: wheel {:.2} Mev/s, heap {:.2} Mev/s, speedup {:.2}x",
        wheel.median_mev_s(),
        heap.median_mev_s(),
        speedup
    );
    out.push_events("sched_bulk_wheel", &wheel);
    out.push_events("sched_bulk_heap", &heap);
    out.push_scalar("sched_bulk_speedup", speedup);

    // --- End-to-end cell benchmarks, A/B over LONGLOOK_SCHED ---------
    // `LONGLOOK_WIRE` is pinned to `encoded` so these cells stay the
    // pooled-encode baseline the structured fast path is measured against,
    // and `LONGLOOK_BATCH` is pinned to `off` so every cell up to the
    // batched pair below stays the per-event reference lineage.
    let saved_sched = std::env::var(SCHED_ENV).ok();
    let saved_wire = std::env::var(WIRE_ENV).ok();
    let saved_batch = std::env::var(BATCH_ENV).ok();
    let saved_trace = std::env::var(TRACE_ENV).ok();
    std::env::set_var(WIRE_ENV, "encoded");
    std::env::set_var(BATCH_ENV, "off");
    // Trace pinned off: every cell measures the trace layer compiled into
    // the hot path but disabled — the `trace_off_overhead` scalar below
    // gates that this costs nothing against the v5 floor.
    std::env::set_var(TRACE_ENV, "off");
    let mut wheel_cells = Vec::new();
    for (name, proto) in [
        ("bulk_quic", ProtoConfig::Quic(QuicConfig::default())),
        ("bulk_tcp", ProtoConfig::Tcp(TcpConfig::default())),
    ] {
        let mut cells = Vec::new();
        for (suffix, kind) in [("wheel", "wheel"), ("heap", "heap")] {
            std::env::set_var(SCHED_ENV, kind);
            let cell = bench_bulk_cell(&cfg, &proto);
            println!(
                "{name}_{suffix}: {:.2} Mev/s ({} events, peak {} scheduled)",
                cell.median_mev_s(),
                cell.events,
                cell.peak
            );
            out.push_cell(&format!("{name}_{suffix}"), &cell);
            cells.push(cell);
        }
        // Determinism spot-check: the wheel must process exactly the same
        // number of events as the heap on the same seed.
        assert_eq!(
            cells[0].events, cells[1].events,
            "{name}: wheel and heap processed different event counts"
        );
        wheel_cells.push((name, proto, cells.swap_remove(0)));
    }

    // --- Structured wire fast path, A/B over LONGLOOK_WIRE -----------
    // Same cells on the wheel scheduler with typed packets handed straight
    // to the peer: no encode, no decode, analytic wire sizing.
    std::env::set_var(SCHED_ENV, "wheel");
    std::env::set_var(WIRE_ENV, "structured");
    let mut structured_cells = Vec::new();
    for (name, proto, encoded_cell) in &wheel_cells {
        let cell = bench_bulk_cell(&cfg, proto);
        let speedup = cell.median_mev_s() / encoded_cell.median_mev_s();
        println!(
            "{name}_structured: {:.2} Mev/s ({} events, peak {} scheduled), {:.2}x vs pooled-encode",
            cell.median_mev_s(),
            cell.events,
            cell.peak,
            speedup
        );
        // Determinism spot-check mirroring wire_differential: the wire
        // path must not change what the simulation does, only how fast.
        assert_eq!(
            cell.events, encoded_cell.events,
            "{name}: structured and encoded processed different event counts"
        );
        out.push_cell(&format!("{name}_structured"), &cell);
        out.push_scalar(&format!("wire_{name}_speedup"), speedup);
        structured_cells.push((*name, proto.clone(), cell));
    }

    // --- Batched hot path, A/B over LONGLOOK_BATCH -------------------
    // Same structured cells with flight-granular acks, the slab sent
    // store, and burst delivery switched on. `batch_differential` proves
    // the RunRecords identical; here the event-count assert is the cheap
    // canary for the same invariant.
    std::env::set_var(BATCH_ENV, "on");
    for (name, proto, off_cell) in &structured_cells {
        let cell = bench_bulk_cell(&cfg, proto);
        let speedup = cell.median_mev_s() / off_cell.median_mev_s();
        println!(
            "{name}_batched: {:.2} Mev/s ({} events, peak {} scheduled), {:.2}x vs per-event",
            cell.median_mev_s(),
            cell.events,
            cell.peak,
            speedup
        );
        assert_eq!(
            cell.events, off_cell.events,
            "{name}: batched and per-event processed different event counts"
        );
        out.push_cell(&format!("{name}_batched"), &cell);
        out.push_scalar(&format!("batch_{name}_speedup"), speedup);
        if *name == "bulk_quic" {
            // The batched QUIC cell doubles as the trace-off reference:
            // `LONGLOOK_TRACE=off` is pinned, so the rate over the v5
            // floor quantifies what the compiled-in-but-off trace
            // branches cost (budget: 3%, see TRACE_OFF_OVERHEAD_BAR).
            let overhead = cell.median_mev_s() / V5_BATCH_FLOOR_MEV_S;
            println!(
                "trace_off_overhead: {overhead:.3} (batched trace-off QUIC vs the \
                 {V5_BATCH_FLOOR_MEV_S} Mev/s v5 floor)"
            );
            out.push_scalar("trace_off_overhead", overhead);
        }
    }
    match &saved_sched {
        Some(v) => std::env::set_var(SCHED_ENV, v),
        None => std::env::remove_var(SCHED_ENV),
    }
    match &saved_batch {
        Some(v) => std::env::set_var(BATCH_ENV, v),
        None => std::env::remove_var(BATCH_ENV),
    }

    // --- Encode-path pooling benchmark -------------------------------
    let pooled = bench_encode(&cfg, true);
    let alloc = bench_encode(&cfg, false);
    println!(
        "encode: pooled {:.0} ns/op, alloc {:.0} ns/op",
        pooled.median_ns_per_op(),
        alloc.median_ns_per_op()
    );
    out.push_ns("encode_pooled", &pooled);
    out.push_ns("encode_alloc", &alloc);

    // --- Small sweep wall-clock, one cell per wire path --------------
    std::env::set_var(WIRE_ENV, "encoded");
    let sweep = bench_sweep(&cfg);
    println!(
        "sweep_small: median {:.3}s, min {:.3}s",
        sweep.median_s(),
        sweep.min_s()
    );
    out.push_wall("sweep_small", &sweep);

    std::env::set_var(WIRE_ENV, "structured");
    let sweep_structured = bench_sweep(&cfg);
    let sweep_speedup = sweep.median_s() / sweep_structured.median_s();
    println!(
        "sweep_small_structured: median {:.3}s, min {:.3}s, {:.2}x vs pooled-encode",
        sweep_structured.median_s(),
        sweep_structured.min_s(),
        sweep_speedup
    );
    out.push_wall("sweep_small_structured", &sweep_structured);
    out.push_scalar("wire_sweep_speedup", sweep_speedup);
    match &saved_wire {
        Some(v) => std::env::set_var(WIRE_ENV, v),
        None => std::env::remove_var(WIRE_ENV),
    }
    match &saved_trace {
        Some(v) => std::env::set_var(TRACE_ENV, v),
        None => std::env::remove_var(TRACE_ENV),
    }

    // --- Fleet-scale cells -------------------------------------------
    run_fleet_cells(&cfg, &mut out);

    finish_report(&cfg, out);
}

/// The flash-crowd fleet cells shared by full runs and `--only fleet`.
fn run_fleet_cells(cfg: &Config, out: &mut Report) {
    for (name, n) in [("fleet_10k", 10_000usize), ("fleet_100k", 100_000)] {
        let cell = bench_fleet(cfg, n, cfg.iters, 1, Parallelism::Serial);
        print_fleet(name, &cell, None);
        out.push_fleet(name, &cell);
    }
    // The 10^6-connection cell runs sharded: once fanned across worker
    // threads (the headline record) and once with the same shards on one
    // thread, so the jobs=4 / jobs=1 ratio isolates the thread win with
    // the shard-merge overhead present in both runs. The differential
    // referee proves both runs compute identical metrics, so the ratio
    // compares equal work.
    let iters = cfg.iters.min(FLEET_1M_MAX_ITERS);
    let threaded = bench_fleet(
        cfg,
        1_000_000,
        iters,
        FLEET_1M_SHARDS,
        Parallelism::Threads(FLEET_1M_JOBS),
    );
    let serial = bench_fleet(cfg, 1_000_000, iters, FLEET_1M_SHARDS, Parallelism::Serial);
    assert_eq!(
        threaded.samples.events, serial.samples.events,
        "fleet_1m: threaded and serial shard runs processed different event counts"
    );
    let speedup = threaded.samples.median_mev_s() / serial.samples.median_mev_s();
    print_fleet("fleet_1m", &threaded, Some(speedup));
    out.push_fleet("fleet_1m", &threaded);
    out.push_scalar("fleet_shard_speedup", speedup);
}

fn print_fleet(name: &str, cell: &FleetCell, speedup: Option<f64>) {
    print!(
        "{name}: {:.2} Mev/s ({} events, peak {} scheduled, peak {} live, \
         arena {} B = {:.0} B/conn)",
        cell.samples.median_mev_s(),
        cell.samples.events,
        cell.samples.peak,
        cell.peak_live,
        cell.arena_bytes_peak,
        cell.bytes_per_conn(),
    );
    match speedup {
        Some(s) => println!(", {s:.2}x jobs={FLEET_1M_JOBS} vs jobs=1"),
        None => println!(),
    }
}

fn finish_report(cfg: &Config, out: Report) {
    let doc = out.finish();
    if let Err(e) = std::fs::write(&cfg.out, &doc) {
        eprintln!("perfbench: failed to write {}: {e}", cfg.out);
        std::process::exit(1);
    }
    // Self-check: the document we just wrote must satisfy --check.
    if let Err(e) = check_file(&cfg.out) {
        eprintln!("perfbench: emitted file failed validation: {e}");
        std::process::exit(1);
    }
    println!("wrote {}", cfg.out);
}

// ---------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------

struct Config {
    iters: usize,
    warmup: usize,
    out: String,
    check: Option<String>,
    /// `--only fleet`: run just the fleet cells and stamp the subset tag.
    fleet_only: bool,
}

impl Config {
    fn from_args() -> Result<Config, String> {
        let mut cfg = Config {
            iters: 5,
            warmup: 1,
            out: "BENCH_events.json".to_string(),
            check: None,
            fleet_only: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut want = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
            match a.as_str() {
                "--iters" => {
                    cfg.iters = want("--iters")?
                        .parse()
                        .map_err(|e| format!("--iters: {e}"))?;
                }
                "--warmup" => {
                    cfg.warmup = want("--warmup")?
                        .parse()
                        .map_err(|e| format!("--warmup: {e}"))?;
                }
                "--out" => cfg.out = want("--out")?,
                "--check" => cfg.check = Some(want("--check")?),
                "--only" => match want("--only")?.as_str() {
                    "fleet" => cfg.fleet_only = true,
                    other => return Err(format!("--only: unknown subset {other:?}")),
                },
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if cfg.iters == 0 {
            return Err("--iters must be at least 1".to_string());
        }
        Ok(cfg)
    }
}

// ---------------------------------------------------------------------
// Measurement harness
// ---------------------------------------------------------------------

/// Timing samples for one benchmark: per-iteration wall seconds plus the
/// work unit counts needed to derive rates.
struct Samples {
    secs: Vec<f64>,
    /// Events (or ops) performed per iteration; identical across iters.
    events: u64,
    /// Scheduler high-water mark (cell benchmarks only).
    peak: u64,
}

impl Samples {
    fn median_s(&self) -> f64 {
        median(&self.secs)
    }

    fn min_s(&self) -> f64 {
        self.secs.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn median_mev_s(&self) -> f64 {
        self.events as f64 / self.median_s() / 1e6
    }

    fn median_ns_per_op(&self) -> f64 {
        self.median_s() * 1e9 / self.events as f64
    }
}

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Run `f` for `warmup` untimed then `iters` timed iterations. `f` returns
/// (events, peak) for the iteration; both must be iteration-invariant.
fn run_bench(cfg: &Config, mut f: impl FnMut() -> (u64, u64)) -> Samples {
    for _ in 0..cfg.warmup {
        std::hint::black_box(f());
    }
    let mut secs = Vec::with_capacity(cfg.iters);
    let mut events = 0;
    let mut peak = 0;
    for _ in 0..cfg.iters {
        let t0 = Instant::now();
        let (e, p) = std::hint::black_box(f());
        secs.push(t0.elapsed().as_secs_f64());
        events = e;
        peak = p;
    }
    Samples { secs, events, peak }
}

// ---------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------

/// Pops per scheduler iteration. At heap speeds (~10M ops/s) this is well
/// under a second per iteration.
const SCHED_POPS: u64 = 1_000_000;
/// Outstanding events held in the queue, matching the high-water mark of
/// a bulk-transfer cell (in-flight packets + timers).
const SCHED_OUTSTANDING: u64 = 300;

/// Hold-steady push/pop throughput on a synthetic bulk-transfer stream.
fn bench_sched(cfg: &Config, kind: SchedKind) -> Samples {
    run_bench(cfg, || {
        let mut rng = SimRng::new(0xBE7C4);
        let mut q: EventQueue<u64> = EventQueue::new(kind);
        let mut now = 0u64;
        let mut id = 0u64;
        // Delta mixture: mostly serialization/pacing-scale deltas, a slice
        // of RTT-scale retransmit timers, a thin tail of idle timeouts.
        let delta = |rng: &mut SimRng| -> u64 {
            if rng.chance(0.85) {
                rng.uniform_u64(20_000, 1_200_000) // 20µs – 1.2ms
            } else if rng.chance(0.87) {
                rng.uniform_u64(30_000_000, 42_000_000) // ~36ms RTT timers
            } else {
                rng.uniform_u64(200_000_000, 1_000_000_000) // idle timeouts
            }
        };
        for _ in 0..SCHED_OUTSTANDING {
            let d = delta(&mut rng);
            q.push(Time::from_nanos(now + d), id);
            id += 1;
        }
        for _ in 0..SCHED_POPS {
            let (t, _) = q.pop().expect("queue held steady");
            now = t.as_nanos();
            let d = delta(&mut rng);
            q.push(Time::from_nanos(now + d), id);
            id += 1;
        }
        (SCHED_POPS, q.scheduled_peak() as u64)
    })
}

/// One bulk-transfer page load; scheduler kind comes from the environment
/// (set by the caller before the `World` inside `Testbed` is built).
fn bench_bulk_cell(cfg: &Config, proto: &ProtoConfig) -> Samples {
    run_bench(cfg, || {
        let net = NetProfile::baseline(20.0);
        let page = PageSpec::single(8 * 1024 * 1024);
        let mut tb = Testbed::direct(
            4242,
            &net,
            DeviceProfile::DESKTOP,
            page.clone(),
            vec![FlowSpec {
                proto: proto.clone(),
                zero_rtt: false,
                app: Box::new(WebClient::new(page)),
            }],
            None,
            true,
        );
        tb.run(Dur::from_secs(120));
        (tb.world.events_processed(), tb.world.scheduled_peak())
    })
}

/// One fleet cell's samples plus its arena accounting.
struct FleetCell {
    samples: Samples,
    conns: u64,
    peak_live: u64,
    arena_bytes_peak: u64,
}

impl FleetCell {
    fn bytes_per_conn(&self) -> f64 {
        if self.peak_live == 0 {
            0.0
        } else {
            self.arena_bytes_peak as f64 / self.peak_live as f64
        }
    }
}

/// One flash-crowd fleet of `n` QUIC clients per iteration, split into
/// `shards` event loops under `par` (1/Serial = the classic single-loop
/// cell). Deterministic in `(n, shards)`, so events / peaks / arena
/// bytes are iteration-invariant; `iters` caps the timed iterations so
/// the 10^6 cell stays in wall-clock budget.
fn bench_fleet(cfg: &Config, n: usize, iters: usize, shards: usize, par: Parallelism) -> FleetCell {
    let capped = Config {
        iters: iters.max(1),
        warmup: cfg.warmup.min(1),
        out: String::new(),
        check: None,
        fleet_only: cfg.fleet_only,
    };
    let fleet_cfg = FleetConfig::new(n);
    let proto = ProtoConfig::Quic(QuicConfig::default());
    let mut arena_bytes_peak = 0u64;
    let mut peak_live = 0u64;
    let mut completed = 0u64;
    let samples = run_bench(&capped, || {
        let m = run_fleet_sharded(&proto, &fleet_cfg, shards, par);
        arena_bytes_peak = m.arena_bytes_peak as u64;
        peak_live = m.peak_live as u64;
        completed = m.completed;
        (m.events, m.scheduled_peak as u64)
    });
    assert!(
        completed > (n as u64 * 9) / 10,
        "fleet of {n}: only {completed} connections completed"
    );
    FleetCell {
        samples,
        conns: n as u64,
        peak_live,
        arena_bytes_peak,
    }
}

/// Encodes per encode-benchmark iteration.
const ENCODE_OPS: u64 = 200_000;

/// QUIC packet encode with (pooled) and without (alloc) buffer recycling.
fn bench_encode(cfg: &Config, pooled: bool) -> Samples {
    run_bench(cfg, || {
        let mut pool = PayloadPool::new();
        let mut sink = 0u64;
        for pn in 0..ENCODE_OPS {
            let pkt = QuicPacket {
                conn_id: 7,
                pn,
                frames: vec![
                    Frame::Stream {
                        id: 3,
                        offset: pn * 1200,
                        len: 1200,
                        fin: false,
                    },
                    Frame::Ack {
                        largest: pn,
                        ack_delay_us: 40,
                        blocks: vec![(pn.saturating_sub(5), pn)],
                    },
                ],
            };
            let bytes = if pooled {
                pkt.encode_with(&mut pool)
            } else {
                pkt.encode()
            };
            sink = sink.wrapping_add(bytes.len() as u64);
            if pooled {
                pool.reclaim(bytes);
            }
        }
        std::hint::black_box(sink);
        (ENCODE_OPS, 0)
    })
}

/// A 2x2 serial heatmap sweep: rate x object size, 2 rounds per cell.
fn bench_sweep(cfg: &Config) -> Samples {
    run_bench(cfg, || {
        let rates = [5.0, 20.0];
        let sizes = [50 * 1024u64, 200 * 1024];
        let rows: Vec<String> = rates.iter().map(|r| format!("{r}Mbps")).collect();
        let cols: Vec<String> = sizes.iter().map(|s| format!("{}KB", s / 1024)).collect();
        let map = sweep_heatmap_par(
            "perfbench sweep_small",
            &rows,
            &cols,
            &ProtoConfig::Quic(QuicConfig::default()),
            &ProtoConfig::Tcp(TcpConfig::default()),
            |r, c| {
                Scenario::new(NetProfile::baseline(rates[r]), PageSpec::single(sizes[c]))
                    .with_rounds(2)
                    .with_seed(9_700 + r as u64 * 16 + c as u64)
            },
            Parallelism::Serial,
        );
        std::hint::black_box(map.render_ascii().len());
        (4, 0)
    })
}

// ---------------------------------------------------------------------
// JSON emission & validation
// ---------------------------------------------------------------------

/// Hand-built JSON document; keys appear in insertion order.
struct Report {
    body: String,
    first: bool,
}

impl Report {
    fn new(cfg: &Config) -> Report {
        let mut body = String::new();
        let subset = if cfg.fleet_only {
            "\n  \"subset\": \"fleet\","
        } else {
            ""
        };
        let _ = write!(
            body,
            "{{\n  \"schema\": \"{}\",{}\n  \"iters\": {},\n  \"warmup\": {},\n  \"host_threads\": {},\n  \"benchmarks\": {{",
            json::escape(SCHEMA),
            subset,
            cfg.iters,
            cfg.warmup,
            host_threads()
        );
        Report { body, first: true }
    }

    fn entry(&mut self, name: &str, value: &str) {
        if !self.first {
            self.body.push(',');
        }
        self.first = false;
        let _ = write!(self.body, "\n    \"{}\": {}", json::escape(name), value);
    }

    fn push_events(&mut self, name: &str, s: &Samples) {
        self.entry(
            name,
            &format!(
                "{{\"median_mev_s\": {}, \"median_s\": {}, \"min_s\": {}, \"events\": {}}}",
                num(s.median_mev_s()),
                num(s.median_s()),
                num(s.min_s()),
                s.events
            ),
        );
    }

    fn push_cell(&mut self, name: &str, s: &Samples) {
        self.entry(
            name,
            &format!(
                "{{\"median_mev_s\": {}, \"median_s\": {}, \"min_s\": {}, \"events\": {}, \"scheduled_peak\": {}}}",
                num(s.median_mev_s()),
                num(s.median_s()),
                num(s.min_s()),
                s.events,
                s.peak
            ),
        );
    }

    fn push_ns(&mut self, name: &str, s: &Samples) {
        self.entry(
            name,
            &format!(
                "{{\"median_ns_per_op\": {}, \"median_s\": {}, \"min_s\": {}, \"ops\": {}}}",
                num(s.median_ns_per_op()),
                num(s.median_s()),
                num(s.min_s()),
                s.events
            ),
        );
    }

    fn push_wall(&mut self, name: &str, s: &Samples) {
        self.entry(
            name,
            &format!(
                "{{\"median_s\": {}, \"min_s\": {}}}",
                num(s.median_s()),
                num(s.min_s())
            ),
        );
    }

    fn push_fleet(&mut self, name: &str, c: &FleetCell) {
        self.entry(
            name,
            &format!(
                "{{\"median_mev_s\": {}, \"median_s\": {}, \"min_s\": {}, \"events\": {}, \
                 \"scheduled_peak\": {}, \"conns\": {}, \"peak_live\": {}, \
                 \"arena_bytes_peak\": {}, \"bytes_per_conn\": {}}}",
                num(c.samples.median_mev_s()),
                num(c.samples.median_s()),
                num(c.samples.min_s()),
                c.samples.events,
                c.samples.peak,
                c.conns,
                c.peak_live,
                c.arena_bytes_peak,
                num(c.bytes_per_conn())
            ),
        );
    }

    fn push_scalar(&mut self, name: &str, v: f64) {
        self.entry(name, &num(v));
    }

    fn finish(mut self) -> String {
        self.body.push_str("\n  }\n}\n");
        self.body
    }
}

/// Hardware threads on the recording host, stamped into the document so
/// `--check` can tell "the shard fan-out regressed" apart from "this
/// host cannot run 4 threads" when deciding whether to enforce the
/// [`FLEET_SHARD_SPEEDUP_BAR`].
fn host_threads() -> u64 {
    std::thread::available_parallelism().map_or(1, |n| n.get() as u64)
}

/// Format a float as a JSON number (finite guaranteed by construction;
/// zero if a degenerate measurement slipped through).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Validate an emitted `BENCH_events.json`: schema tag, all benchmark
/// keys present, every headline number finite and positive, and the
/// perf/memory bars. Documents stamped `"subset": "fleet"` (from
/// `--only fleet`) are held to the fleet benches and bars only.
fn check_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema tag is not \"{SCHEMA}\""));
    }
    let fleet_subset = match doc.get("subset").and_then(Json::as_str) {
        None => false,
        Some("fleet") => true,
        Some(other) => return Err(format!("unknown subset {other:?}")),
    };
    for key in ["iters", "warmup"] {
        let v = doc
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric \"{key}\""))?;
        if v < 0.0 {
            return Err(format!("\"{key}\" is negative"));
        }
    }
    let host_threads = doc
        .get("host_threads")
        .and_then(Json::as_f64)
        .ok_or_else(|| "missing numeric \"host_threads\"".to_string())?;
    if host_threads < 1.0 {
        return Err("\"host_threads\" must be at least 1".to_string());
    }
    let benches = doc
        .get("benchmarks")
        .ok_or_else(|| "missing \"benchmarks\" object".to_string())?;
    let required: Vec<&str> = if fleet_subset {
        FLEET_BENCHES.to_vec()
    } else {
        REQUIRED_BENCHES
            .iter()
            .chain(FLEET_BENCHES.iter())
            .copied()
            .collect()
    };
    for name in &required {
        let b = benches
            .get(name)
            .ok_or_else(|| format!("missing benchmark \"{name}\""))?;
        // Every benchmark record carries at least median/min wall seconds.
        for field in ["median_s", "min_s"] {
            let v = b
                .get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{name}: missing \"{field}\""))?;
            if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(format!("{name}: \"{field}\" is not positive"));
            }
        }
    }

    // Fleet bars apply to every document (fleet cells always run).
    let fleet_summary = check_fleet_bars(benches, host_threads as u64)?;
    if fleet_subset {
        return Ok(format!(
            "{path}: valid fleet subset ({} benchmarks, {fleet_summary})",
            required.len()
        ));
    }

    let speedup = benches
        .get("sched_bulk_speedup")
        .and_then(Json::as_f64)
        .ok_or_else(|| "missing \"sched_bulk_speedup\"".to_string())?;
    if speedup.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err("\"sched_bulk_speedup\" is not positive".to_string());
    }
    // `batch_bulk_tcp_speedup` is deliberately absent here: the TCP
    // batched/per-event ratio is ~1.0x by design (kernel-class packets
    // never took the userspace batching), so gating the ratio was noise.
    // The absolute `bulk_tcp_batched` floor below replaces it.
    for name in [
        "wire_bulk_quic_speedup",
        "wire_bulk_tcp_speedup",
        "wire_sweep_speedup",
        "batch_bulk_quic_speedup",
        "trace_off_overhead",
    ] {
        let v = benches
            .get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing \"{name}\""))?;
        if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(format!("\"{name}\" is not positive"));
        }
    }
    // The structured fast path is the whole point of the wire refactor:
    // regressing below the bar on the bulk QUIC cell fails the check.
    let wire_speedup = benches
        .get("wire_bulk_quic_speedup")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if wire_speedup < WIRE_SPEEDUP_BAR {
        return Err(format!(
            "\"wire_bulk_quic_speedup\" {wire_speedup:.3} is below the {WIRE_SPEEDUP_BAR}x bar"
        ));
    }
    // Likewise for the batched hot path: the A/B ratio must clear its bar
    // and the batched QUIC cell must hold its absolute rate (both bars are
    // calibrated below the measured plateau; see the const docs).
    let batch_speedup = benches
        .get("batch_bulk_quic_speedup")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if batch_speedup < BATCH_SPEEDUP_BAR {
        return Err(format!(
            "\"batch_bulk_quic_speedup\" {batch_speedup:.3} is below the {BATCH_SPEEDUP_BAR}x bar"
        ));
    }
    let batch_rate = benches
        .get("bulk_quic_batched")
        .and_then(|b| b.get("median_mev_s"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if batch_rate < BATCH_ABS_BAR_MEV_S {
        return Err(format!(
            "\"bulk_quic_batched\" {batch_rate:.3} Mev/s is below the {BATCH_ABS_BAR_MEV_S} Mev/s bar"
        ));
    }
    let tcp_rate = benches
        .get("bulk_tcp_batched")
        .and_then(|b| b.get("median_mev_s"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if tcp_rate < TCP_BATCH_ABS_BAR_MEV_S {
        return Err(format!(
            "\"bulk_tcp_batched\" {tcp_rate:.3} Mev/s is below the {TCP_BATCH_ABS_BAR_MEV_S} Mev/s bar"
        ));
    }
    // The trace layer compiled in but off must stay within its 3% budget
    // of the v5 floor (the absolute bar above enforces the same floor;
    // this names the trace layer explicitly when it is the culprit).
    let trace_off = benches
        .get("trace_off_overhead")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if trace_off < TRACE_OFF_OVERHEAD_BAR {
        return Err(format!(
            "\"trace_off_overhead\" {trace_off:.3} is below the {TRACE_OFF_OVERHEAD_BAR} bar \
             (trace-off batched QUIC fell more than 3% under the v5 floor)"
        ));
    }
    Ok(format!(
        "{path}: valid ({} benchmarks, sched speedup {speedup:.2}x, wire speedup {wire_speedup:.2}x, batch speedup {batch_speedup:.2}x, batched quic {batch_rate:.2} Mev/s, batched tcp {tcp_rate:.2} Mev/s, trace-off overhead {trace_off:.2}, {fleet_summary})",
        required.len()
    ))
}

/// Memory and rate bars for the fleet cells, plus the shard-speedup
/// gate (enforced only on hosts with enough hardware threads to make
/// thread speedup measurable).
fn check_fleet_bars(benches: &Json, host_threads: u64) -> Result<String, String> {
    let mut rate_1m = 0.0;
    for name in FLEET_BENCHES {
        let b = benches
            .get(name)
            .ok_or_else(|| format!("missing benchmark \"{name}\""))?;
        let conns = b
            .get("conns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{name}: missing \"conns\""))?;
        let expected = match name {
            "fleet_10k" => 10_000.0,
            "fleet_100k" => 100_000.0,
            _ => 1_000_000.0,
        };
        if conns != expected {
            return Err(format!("{name}: \"conns\" is {conns}, expected {expected}"));
        }
        let rate = b
            .get("median_mev_s")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{name}: missing \"median_mev_s\""))?;
        let rate_bar = if name == "fleet_1m" {
            FLEET_1M_ABS_BAR_MEV_S
        } else {
            FLEET_ABS_BAR_MEV_S
        };
        if rate < rate_bar {
            return Err(format!(
                "{name}: {rate:.3} Mev/s is below the {rate_bar} Mev/s bar"
            ));
        }
        let bytes = b
            .get("arena_bytes_peak")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{name}: missing \"arena_bytes_peak\""))?;
        if bytes > FLEET_ARENA_BYTES_BAR as f64 {
            return Err(format!(
                "{name}: arena_bytes_peak {bytes:.0} exceeds the {FLEET_ARENA_BYTES_BAR} B bar"
            ));
        }
        let per_conn = b
            .get("bytes_per_conn")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{name}: missing \"bytes_per_conn\""))?;
        if per_conn > FLEET_BYTES_PER_CONN_BAR {
            return Err(format!(
                "{name}: bytes_per_conn {per_conn:.0} exceeds the {FLEET_BYTES_PER_CONN_BAR} B bar"
            ));
        }
        if name == "fleet_1m" {
            rate_1m = rate;
        }
    }
    let shard_speedup = benches
        .get("fleet_shard_speedup")
        .and_then(Json::as_f64)
        .ok_or_else(|| "missing \"fleet_shard_speedup\"".to_string())?;
    if shard_speedup.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err("\"fleet_shard_speedup\" is not positive".to_string());
    }
    let speedup_note = if host_threads >= FLEET_SHARD_SPEEDUP_MIN_HOST_THREADS {
        if shard_speedup < FLEET_SHARD_SPEEDUP_BAR {
            return Err(format!(
                "\"fleet_shard_speedup\" {shard_speedup:.3} is below the \
                 {FLEET_SHARD_SPEEDUP_BAR}x bar on a {host_threads}-thread host"
            ));
        }
        format!("shard speedup {shard_speedup:.2}x")
    } else {
        // A sub-4-thread host cannot exhibit a 4-worker speedup; record
        // the ratio, skip the bar, and say so in the summary so the skip
        // is visible in CI logs rather than silent.
        format!(
            "shard speedup {shard_speedup:.2}x (bar skipped: host has \
             {host_threads} thread(s))"
        )
    };
    Ok(format!("fleet_1m {rate_1m:.2} Mev/s, {speedup_note}"))
}
