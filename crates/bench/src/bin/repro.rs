//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro list            # show all experiment ids
//! repro fig6a           # run one experiment, print + save to results/
//! repro all             # run everything
//! repro -j 4 fig6a      # shard experiment cells across 4 threads
//! repro -j 4 --timing fig6a   # also print per-batch scheduler reports
//! repro trauma results/trauma/repro_17.json   # replay a traumafuzz repro
//! ```
//!
//! Set `LONGLOOK_ROUNDS` to lower the per-measurement rounds (default 10)
//! for quicker smoke runs. Experiment cells are sharded across worker
//! threads (`LONGLOOK_JOBS` or `-j N`; default: all hardware threads) in
//! chunks (`LONGLOOK_CHUNK`; default auto-tuned) — results are
//! bit-identical to a serial run regardless of either setting. With
//! `--timing`, every scheduler batch prints a `RunnerReport`: elapsed vs
//! summed cell time (achieved speedup), per-worker cells/chunks claimed,
//! and the slowest cells.

use longlook_bench::{list_experiments, run_experiment};
use longlook_core::runner::{self, Parallelism};
use std::io::Write as _;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: repro [-j N] [--timing] <experiment-id>|list|all");
    eprintln!("       repro trauma <repro.json>   # replay a traumafuzz repro file");
    eprintln!("       repro trace <file>          # analyze a trace (.jsonseq or a repro");
    eprintln!("                                   # file with an embedded trace): timeline,");
    eprintln!("                                   # per-state dwell, loss episodes");
    eprintln!("  -j N      shard cells across N threads (or set LONGLOOK_JOBS; 1 = serial)");
    eprintln!("  --timing  print a scheduler report per batch (jobs, chunk, speedup)");
    eprintln!("experiments:");
    for (id, desc) in list_experiments() {
        eprintln!("  {id:<18} {desc}");
    }
    std::process::exit(2);
}

fn save(id: &str, body: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{id}.txt"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(body.as_bytes());
    }
    // Extract DOT blocks into .dot files for Graphviz users.
    if body.contains("digraph") {
        let mut count = 0;
        let mut rest = body;
        while let Some(start) = rest.find("digraph") {
            let tail = &rest[start..];
            let Some(end) = tail.find("\n}") else { break };
            let dot = &tail[..end + 2];
            let path = dir.join(format!("{id}_{count}.dot"));
            if let Ok(mut f) = std::fs::File::create(&path) {
                let _ = f.write_all(dot.as_bytes());
            }
            count += 1;
            rest = &tail[end + 2..];
        }
    }
}

fn print_timing(id: &str) {
    let reports = runner::take_timing_reports();
    if reports.is_empty() {
        return;
    }
    eprintln!("[{id}: {} scheduler batch(es)]", reports.len());
    for (k, rep) in reports.iter().enumerate() {
        eprintln!("  batch {k}: {}", rep.render());
    }
}

fn run_one(id: &str, timing: bool) -> bool {
    let started = Instant::now();
    match run_experiment(id) {
        Some(body) => {
            println!("==================== {id} ====================");
            println!("{body}");
            if timing {
                print_timing(id);
            }
            println!(
                "[{id} completed in {:.1}s]\n",
                started.elapsed().as_secs_f64()
            );
            save(id, &body);
            true
        }
        None => {
            eprintln!("unknown experiment: {id}");
            false
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut timing = false;
    // Flags may appear in any order before the experiment id. `-j N` sets
    // the worker count for this process (same knob as LONGLOOK_JOBS).
    loop {
        match args.first().map(String::as_str) {
            Some("-j") => {
                if args.len() < 2 {
                    usage();
                }
                let n: usize = args[1].parse().unwrap_or_else(|_| usage());
                std::env::set_var(Parallelism::JOBS_ENV, n.to_string());
                args.drain(..2);
            }
            Some("--timing") => {
                timing = true;
                runner::set_timing(true);
                args.remove(0);
            }
            _ => break,
        }
    }
    eprintln!(
        "[parallelism: {} worker thread(s); override with -j N or {}=N]",
        Parallelism::auto().jobs(),
        Parallelism::JOBS_ENV,
    );
    match args.first().map(String::as_str) {
        None | Some("list") => usage(),
        // `repro trauma` with no file runs the trauma *experiment* (the
        // generic arm below); with a file it replays a shrunk repro.
        Some("trauma") if args.len() >= 2 => {
            // Replay a shrunk traumafuzz repro file: exit 0 iff the
            // recorded oracle violation reproduces.
            let path = &args[1];
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            let case = longlook_bench::fuzz::parse_repro(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(2);
            });
            println!(
                "replaying seed {} ({} event(s), canary: {})",
                case.seed,
                case.plan.events.len(),
                case.canary
            );
            let violations = longlook_bench::fuzz::replay(&case);
            if violations.is_empty() {
                println!("no violation: the repro did NOT reproduce");
                std::process::exit(1);
            }
            for v in &violations {
                println!("  {v}");
            }
            println!("violation reproduced ({} oracle hit(s))", violations.len());
        }
        // Analyze a captured structured trace: either a raw JSON-SEQ
        // `.jsonseq` file or a traumafuzz repro JSON carrying one in its
        // "trace" field. Renders the timeline, the per-state dwell table,
        // and extracted loss episodes with fault-window attribution.
        Some("trace") if args.len() >= 2 => {
            let path = &args[1];
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            let records = match longlook_sim::trace::parse_seq(&text) {
                Ok(r) => r,
                Err(seq_err) => match longlook_bench::fuzz::parse_repro(&text) {
                    Ok(case) => match case.trace.as_deref() {
                        Some(t) => longlook_sim::trace::parse_seq(t).unwrap_or_else(|e| {
                            eprintln!("embedded trace in {path} is malformed: {e}");
                            std::process::exit(2);
                        }),
                        None => {
                            eprintln!("{path} is a repro file without an embedded trace");
                            std::process::exit(2);
                        }
                    },
                    Err(_) => {
                        eprintln!("cannot parse {path} as JSON-SEQ trace: {seq_err}");
                        std::process::exit(2);
                    }
                },
            };
            print!("{}", longlook_core::traceview::render_report(&records));
        }
        Some("all") => {
            let started = Instant::now();
            for (id, _) in list_experiments() {
                run_one(id, timing);
            }
            println!(
                "[all experiments completed in {:.1}s]",
                started.elapsed().as_secs_f64()
            );
        }
        Some(id) => {
            if !run_one(id, timing) {
                usage();
            }
        }
    }
}
