//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro list            # show all experiment ids
//! repro fig6a           # run one experiment, print + save to results/
//! repro all             # run everything
//! ```
//!
//! Set `LONGLOOK_ROUNDS` to lower the per-measurement rounds (default 10)
//! for quicker smoke runs.

use longlook_bench::{list_experiments, run_experiment};
use std::io::Write as _;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: repro <experiment-id>|list|all");
    eprintln!("experiments:");
    for (id, desc) in list_experiments() {
        eprintln!("  {id:<18} {desc}");
    }
    std::process::exit(2);
}

fn save(id: &str, body: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{id}.txt"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(body.as_bytes());
    }
    // Extract DOT blocks into .dot files for Graphviz users.
    if body.contains("digraph") {
        let mut count = 0;
        let mut rest = body;
        while let Some(start) = rest.find("digraph") {
            let tail = &rest[start..];
            let Some(end) = tail.find("\n}") else { break };
            let dot = &tail[..end + 2];
            let path = dir.join(format!("{id}_{count}.dot"));
            if let Ok(mut f) = std::fs::File::create(&path) {
                let _ = f.write_all(dot.as_bytes());
            }
            count += 1;
            rest = &tail[end + 2..];
        }
    }
}

fn run_one(id: &str) -> bool {
    let started = Instant::now();
    match run_experiment(id) {
        Some(body) => {
            println!("==================== {id} ====================");
            println!("{body}");
            println!("[{id} completed in {:.1}s]\n", started.elapsed().as_secs_f64());
            save(id, &body);
            true
        }
        None => {
            eprintln!("unknown experiment: {id}");
            false
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("list") => usage(),
        Some("all") => {
            let started = Instant::now();
            for (id, _) in list_experiments() {
                run_one(id);
            }
            println!(
                "[all experiments completed in {:.1}s]",
                started.elapsed().as_secs_f64()
            );
        }
        Some(id) => {
            if !run_one(id) {
                usage();
            }
        }
    }
}
