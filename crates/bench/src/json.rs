//! Minimal std-only JSON parser, used by `perfbench --check` to validate
//! emitted `BENCH_events.json` files in CI (the crate registry is offline,
//! so serde is unavailable).
//!
//! Supports the full JSON value grammar this workspace emits: objects,
//! arrays, strings (with the standard escapes), finite numbers, booleans,
//! and null. Errors carry a byte offset for debuggability. Not a
//! general-purpose parser: no streaming, no duplicate-key handling beyond
//! last-wins, recursion bounded only by input nesting.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64, which covers the bench schema).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (sorted keys; last duplicate wins).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object keys, if this is an object.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(m) => m.keys().map(String::as_str).collect(),
            _ => Vec::new(),
        }
    }
}

/// Parse error: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: &'static str,
    /// Byte offset of the offending character.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { msg, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &'static str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by this
                            // workspace; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Copy the full UTF-8 sequence starting here.
                    let s = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(s)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or(JsonError {
                msg: "invalid number",
                at: start,
            })
    }
}

/// Escape a string for direct inclusion in emitted JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_document() {
        let doc = r#"{
            "schema": "longlook-bench-events-v1",
            "iters": 5,
            "benchmarks": {
                "sched_bulk_wheel": {"median_mev_s": 12.5, "min_s": 1e-3},
                "flags": [true, false, null]
            }
        }"#;
        let v = parse(doc).expect("parse");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("longlook-bench-events-v1")
        );
        assert_eq!(v.get("iters").and_then(Json::as_f64), Some(5.0));
        let b = v.get("benchmarks").expect("benchmarks");
        assert_eq!(
            b.get("sched_bulk_wheel")
                .and_then(|s| s.get("median_mev_s"))
                .and_then(Json::as_f64),
            Some(12.5)
        );
        assert_eq!(b.keys(), vec!["flags", "sched_bulk_wheel"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1e999").is_err(), "non-finite number rejected");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse(r#""a\n\t\"\\A""#).expect("parse");
        assert_eq!(v.as_str(), Some("a\n\t\"\\A"));
        assert_eq!(escape("a\n\"b\\"), "a\\n\\\"b\\\\");
        let reparsed = parse(&format!("\"{}\"", escape("x\n\"y\\z\t"))).expect("reparse");
        assert_eq!(reparsed.as_str(), Some("x\n\"y\\z\t"));
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("0").unwrap().as_f64(), Some(0.0));
    }
}
