//! `traumafuzz` internals: seed-derived fault plans, invariant oracles,
//! a greedy shrinker, and self-contained JSON repro files.
//!
//! The fuzzer's unit of work is one **seed**: it deterministically derives
//! a [`FaultPlan`] from the seed, runs a paired QUIC/TCP trauma cell under
//! that plan, and checks four oracles against each [`TraumaRecord`]:
//!
//! 1. **termination** — the world must quiesce (stop or go idle), never
//!    run to the deadline;
//! 2. **typed completion** — the load either finishes or surfaces a typed
//!    [`ConnError`](longlook_core::prelude::ConnError) on an endpoint
//!    (the negation is a silent livelock);
//! 3. **conservation** — app bytes delivered in order to the client never
//!    exceed wire bytes the server sent (duplication must not forge data);
//! 4. **cc legality** — the server's congestion-control trace stays inside
//!    the paper's Fig. 3 legal graph;
//!
//! plus a structural fifth: running the same seed twice must produce an
//! identical record (bit-level determinism under trauma).
//!
//! A violating plan is shrunk with a greedy delta-debugging pass — drop
//! events one at a time, then halve durations — re-running the cell after
//! every candidate edit, and the minimal plan is written as a JSON repro
//! file that `repro trauma <file>` (or `traumafuzz --replay`) can replay
//! exactly. Per-mille integer parameters mean the JSON round trip is
//! lossless.

use crate::json::{self, Json};
use longlook_core::prelude::*;
use longlook_core::trauma::server_stats_or_zero;
use longlook_sim::SimRng;
use longlook_transport::{check_trace_legal, cubic_legal_edges};

/// Link rate of every fuzz cell, Mbps (a clean load takes ~8 s, so fault
/// windows starting inside [`FUZZ_START_MS`) ms actually intersect it).
pub const FUZZ_RATE_MBPS: f64 = 2.0;
/// Response body each fuzz cell transfers.
pub const FUZZ_PAGE_BYTES: u64 = 2 * 1024 * 1024;
/// Fault windows start uniformly inside the first this-many milliseconds.
const FUZZ_START_MS: u64 = 8_000;
/// Schema tag of the repro file format.
pub const REPRO_SCHEMA: &str = "longlook-trauma-repro-v1";

/// One oracle violation: which protocol's cell broke which oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Protocol display name (`"QUIC"` / `"TCP"`).
    pub proto: &'static str,
    /// Human-readable oracle verdict, prefixed with the oracle name.
    pub oracle: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.proto, self.oracle)
    }
}

/// A self-contained reproduction case: everything `run_plan` needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproCase {
    /// Base seed of the scenario (drives RTT jitter and link RNG).
    pub seed: u64,
    /// Whether the canary bug (muted QUIC watchdog) was armed.
    pub canary: bool,
    /// The (possibly shrunk) fault schedule.
    pub plan: FaultPlan,
    /// Structured event trace of the shrunk case's QUIC cell (JSON-SEQ,
    /// `longlook_sim::trace` encoding), captured by [`capture_trace`] so
    /// the repro file explains itself: the analyzer (`repro trace`) can
    /// name the fault window and the state the connection stalled in
    /// without re-running anything.
    pub trace: Option<String>,
}

/// Derive the fault plan for a seed: 1–3 events with kind, direction,
/// window, and magnitudes all drawn from a [`SimRng`] keyed on the seed
/// alone. Pure: the same seed always yields the same plan.
pub fn plan_from_seed(seed: u64) -> FaultPlan {
    let mut rng = SimRng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x7EA0);
    let n = 1 + rng.uniform_u64(0, 2);
    let mut plan = FaultPlan::new();
    for _ in 0..n {
        plan = plan.with_event(random_event(&mut rng));
    }
    plan
}

fn random_event(rng: &mut SimRng) -> FaultEvent {
    let at = Time::ZERO + Dur::from_millis(rng.uniform_u64(0, FUZZ_START_MS - 1));
    let dir = match rng.uniform_u64(0, 2) {
        0 => FaultDir::Up,
        1 => FaultDir::Down,
        _ => FaultDir::Both,
    };
    fn short(rng: &mut SimRng) -> Dur {
        Dur::from_millis(rng.uniform_u64(200, 8_000))
    }
    let (kind, dur) = match rng.uniform_u64(0, 8) {
        0 => {
            // One blackout in four outlasts the 60 s idle watchdog, so any
            // few-dozen-seed sweep exercises the typed-error give-up path
            // (and, with the canary armed, trips the silent-livelock
            // oracle).
            let dur = if rng.chance(0.25) {
                Dur::from_secs(rng.uniform_u64(65, 90))
            } else {
                short(rng)
            };
            (FaultKind::Blackout, dur)
        }
        1 => (
            FaultKind::Flap {
                period: Dur::from_millis(rng.uniform_u64(100, 1_000)),
                down_pm: rng.uniform_u64(100, 700) as u32,
            },
            short(rng),
        ),
        2 => (
            FaultKind::BandwidthCliff {
                factor_pm: rng.uniform_u64(50, 800) as u32,
            },
            short(rng),
        ),
        3 => (
            FaultKind::BandwidthRamp {
                floor_pm: rng.uniform_u64(50, 800) as u32,
            },
            short(rng),
        ),
        4 => (
            FaultKind::BurstLoss(GeParams {
                p_enter_pm: rng.uniform_u64(20, 200) as u32,
                p_exit_pm: rng.uniform_u64(100, 500) as u32,
                loss_good_pm: rng.uniform_u64(0, 20) as u32,
                loss_bad_pm: rng.uniform_u64(300, 900) as u32,
            }),
            short(rng),
        ),
        5 => (
            FaultKind::Duplicate {
                prob_pm: rng.uniform_u64(50, 400) as u32,
            },
            short(rng),
        ),
        6 => (
            FaultKind::Corrupt {
                prob_pm: rng.uniform_u64(20, 250) as u32,
            },
            short(rng),
        ),
        7 => (
            FaultKind::PeerStall {
                side: if rng.chance(0.5) {
                    PeerSide::Client
                } else {
                    PeerSide::Server
                },
            },
            // Stalls stay well under the idle timeout: the oracle for
            // them is recovery, not give-up.
            Dur::from_millis(rng.uniform_u64(200, 4_000)),
        ),
        _ => (
            FaultKind::BufferShrink {
                factor_pm: rng.uniform_u64(100, 600) as u32,
            },
            short(rng),
        ),
    };
    FaultEvent { at, dur, dir, kind }
}

/// The fixed fuzz scenario with a given plan composed on.
pub fn fuzz_scenario(seed: u64, plan: FaultPlan) -> Scenario {
    Scenario::new(
        NetProfile::baseline(FUZZ_RATE_MBPS).with_fault(plan),
        PageSpec::single(FUZZ_PAGE_BYTES),
    )
    .with_rounds(1)
    .with_seed(seed)
}

/// The paired protocol configs a fuzz seed runs. With `canary` the QUIC
/// watchdog still gives up but swallows its error — the seeded bug the
/// silent-livelock oracle exists to catch.
pub fn fuzz_protos(canary: bool) -> Vec<ProtoConfig> {
    let quic = QuicConfig {
        canary_mute_watchdog: canary,
        ..QuicConfig::default()
    };
    vec![
        ProtoConfig::Quic(quic),
        ProtoConfig::Tcp(TcpConfig::default()),
    ]
}

/// The four per-record oracles. Returns every violated oracle's verdict.
pub fn check_oracles(rec: &TraumaRecord) -> Vec<String> {
    let mut v = Vec::new();
    if rec.outcome == RunOutcome::DeadlineReached {
        v.push("termination: world ran to the deadline instead of quiescing".to_string());
    }
    if !rec.accounted_for() {
        v.push(
            "typed-completion: load neither finished nor surfaced a typed error \
             (silent livelock)"
                .to_string(),
        );
    }
    let sent = server_stats_or_zero(rec).bytes_sent;
    if rec.app_bytes > sent {
        v.push(format!(
            "conservation: client delivered {} app bytes but the server sent only \
             {} wire bytes",
            rec.app_bytes, sent
        ));
    }
    if let Some(trace) = rec.record.server_trace.as_ref() {
        if let Err(msg) = check_trace_legal(&trace.labels(), &cubic_legal_edges(), "Init") {
            v.push(format!("cc-legal: {msg}"));
        }
    }
    v
}

/// Run one plan through both protocols, twice each (the second run is the
/// determinism oracle), and collect every violation.
pub fn run_plan(seed: u64, plan: &FaultPlan, canary: bool) -> Vec<Violation> {
    let sc = fuzz_scenario(seed, plan.clone());
    let mut out = Vec::new();
    for proto in fuzz_protos(canary) {
        let first = run_trauma_cell(&proto, &sc, 0);
        for oracle in check_oracles(&first) {
            out.push(Violation {
                proto: proto.name(),
                oracle,
            });
        }
        let again = run_trauma_cell(&proto, &sc, 0);
        if first != again {
            out.push(Violation {
                proto: proto.name(),
                oracle: "determinism: same seed produced a different record on replay".to_string(),
            });
        }
    }
    out
}

/// Fuzz one seed: derive its plan and run the oracles.
pub fn fuzz_seed(seed: u64, canary: bool) -> (FaultPlan, Vec<Violation>) {
    let plan = plan_from_seed(seed);
    let violations = run_plan(seed, &plan, canary);
    (plan, violations)
}

/// Shrink a violating plan: greedily drop events while the violation
/// persists, then halve each surviving event's duration as far as the
/// violation allows. Every candidate edit re-runs the full cell, so the
/// result is guaranteed to still violate.
pub fn shrink(seed: u64, plan: &FaultPlan, canary: bool) -> FaultPlan {
    let fails = |p: &FaultPlan| !run_plan(seed, p, canary).is_empty();
    let mut cur = plan.clone();
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < cur.events.len() {
            let mut cand = cur.clone();
            cand.events.remove(i);
            if fails(&cand) {
                cur = cand;
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }
    for i in 0..cur.events.len() {
        while cur.events[i].dur > Dur::from_millis(100) {
            let mut cand = cur.clone();
            cand.events[i].dur = Dur::from_nanos(cand.events[i].dur.as_nanos() / 2);
            if fails(&cand) {
                cur = cand;
            } else {
                break;
            }
        }
    }
    cur
}

/// Replay a repro case; non-empty means the violation reproduced.
pub fn replay(case: &ReproCase) -> Vec<Violation> {
    run_plan(case.seed, &case.plan, case.canary)
}

/// Capture the structured event trace of a case's QUIC cell (the
/// protocol under scrutiny) with the fault window edges merged in,
/// JSON-SEQ encoded for embedding in the repro file.
pub fn capture_trace(case: &ReproCase) -> String {
    let sc = fuzz_scenario(case.seed, case.plan.clone());
    let proto = fuzz_protos(case.canary).remove(0);
    let (_, records) = longlook_core::trauma::run_trauma_cell_traced(&proto, &sc, 0);
    longlook_sim::trace::encode_seq(&records)
}

fn render_event(e: &FaultEvent) -> String {
    let dir = match e.dir {
        FaultDir::Up => "up",
        FaultDir::Down => "down",
        FaultDir::Both => "both",
    };
    let kind = match e.kind {
        FaultKind::Blackout => "\"kind\": \"blackout\"".to_string(),
        FaultKind::Flap { period, down_pm } => format!(
            "\"kind\": \"flap\", \"period_ns\": {}, \"down_pm\": {down_pm}",
            period.as_nanos()
        ),
        FaultKind::BandwidthCliff { factor_pm } => {
            format!("\"kind\": \"bw_cliff\", \"factor_pm\": {factor_pm}")
        }
        FaultKind::BandwidthRamp { floor_pm } => {
            format!("\"kind\": \"bw_ramp\", \"floor_pm\": {floor_pm}")
        }
        FaultKind::BurstLoss(p) => format!(
            "\"kind\": \"burst_loss\", \"p_enter_pm\": {}, \"p_exit_pm\": {}, \
             \"loss_good_pm\": {}, \"loss_bad_pm\": {}",
            p.p_enter_pm, p.p_exit_pm, p.loss_good_pm, p.loss_bad_pm
        ),
        FaultKind::Duplicate { prob_pm } => {
            format!("\"kind\": \"duplicate\", \"prob_pm\": {prob_pm}")
        }
        FaultKind::Corrupt { prob_pm } => {
            format!("\"kind\": \"corrupt\", \"prob_pm\": {prob_pm}")
        }
        FaultKind::PeerStall { side } => format!(
            "\"kind\": \"stall\", \"side\": \"{}\"",
            match side {
                PeerSide::Client => "client",
                PeerSide::Server => "server",
            }
        ),
        FaultKind::BufferShrink { factor_pm } => {
            format!("\"kind\": \"buffer_shrink\", \"factor_pm\": {factor_pm}")
        }
    };
    format!(
        "{{\"at_ns\": {}, \"dur_ns\": {}, \"dir\": \"{dir}\", {kind}}}",
        e.at.as_nanos(),
        e.dur.as_nanos()
    )
}

/// Serialize a repro case as a standalone JSON document.
pub fn render_repro(case: &ReproCase) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{REPRO_SCHEMA}\",\n"));
    out.push_str(&format!("  \"seed\": {},\n", case.seed));
    out.push_str(&format!("  \"canary\": {},\n", case.canary));
    out.push_str("  \"events\": [\n");
    let last = case.plan.events.len().saturating_sub(1);
    for (i, e) in case.plan.events.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        out.push_str(&format!("    {}{comma}\n", render_event(e)));
    }
    match &case.trace {
        Some(t) => {
            out.push_str("  ],\n");
            out.push_str(&format!("  \"trace\": \"{}\"\n", json::escape(t)));
        }
        None => out.push_str("  ]\n"),
    }
    out.push_str("}\n");
    out
}

fn num_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn num_u32(obj: &Json, key: &str) -> Result<u32, String> {
    num_u64(obj, key).map(|v| v as u32)
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn parse_event(obj: &Json) -> Result<FaultEvent, String> {
    let dir = match str_field(obj, "dir")? {
        "up" => FaultDir::Up,
        "down" => FaultDir::Down,
        "both" => FaultDir::Both,
        other => return Err(format!("unknown dir '{other}'")),
    };
    let kind = match str_field(obj, "kind")? {
        "blackout" => FaultKind::Blackout,
        "flap" => FaultKind::Flap {
            period: Dur::from_nanos(num_u64(obj, "period_ns")?),
            down_pm: num_u32(obj, "down_pm")?,
        },
        "bw_cliff" => FaultKind::BandwidthCliff {
            factor_pm: num_u32(obj, "factor_pm")?,
        },
        "bw_ramp" => FaultKind::BandwidthRamp {
            floor_pm: num_u32(obj, "floor_pm")?,
        },
        "burst_loss" => FaultKind::BurstLoss(GeParams {
            p_enter_pm: num_u32(obj, "p_enter_pm")?,
            p_exit_pm: num_u32(obj, "p_exit_pm")?,
            loss_good_pm: num_u32(obj, "loss_good_pm")?,
            loss_bad_pm: num_u32(obj, "loss_bad_pm")?,
        }),
        "duplicate" => FaultKind::Duplicate {
            prob_pm: num_u32(obj, "prob_pm")?,
        },
        "corrupt" => FaultKind::Corrupt {
            prob_pm: num_u32(obj, "prob_pm")?,
        },
        "stall" => FaultKind::PeerStall {
            side: match str_field(obj, "side")? {
                "client" => PeerSide::Client,
                "server" => PeerSide::Server,
                other => return Err(format!("unknown stall side '{other}'")),
            },
        },
        "buffer_shrink" => FaultKind::BufferShrink {
            factor_pm: num_u32(obj, "factor_pm")?,
        },
        other => return Err(format!("unknown fault kind '{other}'")),
    };
    Ok(FaultEvent {
        at: Time::from_nanos(num_u64(obj, "at_ns")?),
        dur: Dur::from_nanos(num_u64(obj, "dur_ns")?),
        dir,
        kind,
    })
}

/// Parse a repro file produced by [`render_repro`].
pub fn parse_repro(text: &str) -> Result<ReproCase, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let schema = str_field(&doc, "schema")?;
    if schema != REPRO_SCHEMA {
        return Err(format!("unsupported schema '{schema}'"));
    }
    let seed = num_u64(&doc, "seed")?;
    let canary = match doc.get("canary") {
        Some(Json::Bool(b)) => *b,
        _ => return Err("missing boolean field 'canary'".to_string()),
    };
    let events = match doc.get("events") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(parse_event)
            .collect::<Result<Vec<FaultEvent>, String>>()?,
        _ => return Err("missing array field 'events'".to_string()),
    };
    let trace = match doc.get("trace") {
        None => None,
        Some(j) => Some(
            j.as_str()
                .ok_or_else(|| "field 'trace' must be a string".to_string())?
                .to_string(),
        ),
    };
    Ok(ReproCase {
        seed,
        canary,
        plan: FaultPlan { events },
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_the_seed() {
        for seed in 0..64 {
            let a = plan_from_seed(seed);
            let b = plan_from_seed(seed);
            assert_eq!(a, b);
            assert!(!a.is_empty());
            assert!(a.events.len() <= 3);
        }
    }

    #[test]
    fn repro_files_round_trip_losslessly() {
        for seed in 0..64 {
            let case = ReproCase {
                seed,
                canary: seed % 2 == 0,
                plan: plan_from_seed(seed),
                // Exercise both spellings: absent, and present with the
                // separator/newline characters JSON-SEQ actually uses.
                trace: (seed % 3 == 0)
                    .then(|| "\u{1e}{\"t\":0,\"k\":\"tx\",\"pn\":1,\"sz\":2,\"el\":1}\n".into()),
            };
            let parsed = parse_repro(&render_repro(&case)).expect("parse");
            assert_eq!(parsed, case, "seed {seed}");
        }
    }

    #[test]
    fn parse_rejects_malformed_repros() {
        assert!(parse_repro("{}").is_err());
        assert!(parse_repro("{\"schema\": \"other\", \"seed\": 1}").is_err());
        let bad_kind = r#"{"schema": "longlook-trauma-repro-v1", "seed": 1,
            "canary": false,
            "events": [{"at_ns": 0, "dur_ns": 1, "dir": "both", "kind": "melt"}]}"#;
        assert!(parse_repro(bad_kind).is_err());
    }

    #[test]
    fn benign_plan_passes_all_oracles() {
        let plan = FaultPlan::new().with_event(FaultEvent {
            at: Time::ZERO + Dur::from_millis(500),
            dur: Dur::from_millis(800),
            dir: FaultDir::Both,
            kind: FaultKind::BandwidthCliff { factor_pm: 400 },
        });
        assert_eq!(run_plan(11, &plan, false), Vec::new());
    }

    #[test]
    fn canary_is_caught_shrunk_and_replayable() {
        // The seeded bug: a muted QUIC watchdog turns a >idle-timeout
        // blackout into a silent livelock. Pad the plan with two benign
        // events so the shrinker has something to discard.
        let blackout = FaultEvent {
            at: Time::ZERO + Dur::from_secs(1),
            dur: Dur::from_secs(70),
            dir: FaultDir::Both,
            kind: FaultKind::Blackout,
        };
        let plan = FaultPlan::new()
            .with_event(FaultEvent {
                at: Time::ZERO,
                dur: Dur::from_millis(400),
                dir: FaultDir::Up,
                kind: FaultKind::Duplicate { prob_pm: 100 },
            })
            .with_event(blackout)
            .with_event(FaultEvent {
                at: Time::ZERO + Dur::from_millis(200),
                dur: Dur::from_millis(300),
                dir: FaultDir::Down,
                kind: FaultKind::BandwidthCliff { factor_pm: 500 },
            });
        let seed = 7;
        let violations = run_plan(seed, &plan, true);
        assert!(
            violations
                .iter()
                .any(|v| v.proto == "QUIC" && v.oracle.starts_with("typed-completion")),
            "canary must trip the silent-livelock oracle: {violations:?}"
        );
        // Without the canary the same plan surfaces a typed error instead.
        assert_eq!(run_plan(seed, &plan, false), Vec::new());

        let small = shrink(seed, &plan, true);
        assert!(
            small.events.len() <= 3,
            "shrink must not grow the plan: {small:?}"
        );
        assert_eq!(
            small.events.len(),
            1,
            "only the blackout sustains the violation: {small:?}"
        );
        assert!(matches!(small.events[0].kind, FaultKind::Blackout));

        let mut case = ReproCase {
            seed,
            canary: true,
            plan: small,
            trace: None,
        };
        case.trace = Some(capture_trace(&case));
        let reparsed = parse_repro(&render_repro(&case)).expect("round trip");
        assert_eq!(reparsed, case, "trace must survive the JSON round trip");
        let replayed = replay(&reparsed);
        assert!(
            !replayed.is_empty(),
            "shrunk repro must reproduce the violation"
        );

        // The attached trace must explain the failure on its own: the
        // loss-episode extraction locates the injected blackout window,
        // and the dwell table names the state the connection stalled in.
        let records = longlook_sim::trace::parse_seq(reparsed.trace.as_deref().unwrap())
            .expect("embedded trace parses");
        let windows = longlook_core::traceview::fault_windows(&records);
        assert!(
            windows.iter().any(|w| w.label == "blackout/both"),
            "trace must carry the blackout window edges: {windows:?}"
        );
        let episodes = longlook_core::traceview::loss_episodes(&records);
        assert!(
            episodes
                .iter()
                .any(|ep| ep.fault.as_deref() == Some("blackout/both")),
            "a loss episode must be attributed to the blackout: {episodes:?}"
        );
        let dwell = longlook_core::traceview::dwell_table(&records);
        let (stalled, _, share) = dwell
            .iter()
            .max_by(|a, b| a.2.total_cmp(&b.2))
            .cloned()
            .expect("dwell table non-empty");
        assert_eq!(
            stalled, "RetransmissionTimeout",
            "the dominant dwell must name the stalled state: {dwell:?}"
        );
        assert!(share > 0.5, "the stall dominates the trace: {dwell:?}");
    }
}
