//! Criterion microbenches: the hot paths of the testbed.
//!
//! These measure the simulator substrate itself (wire codecs, link model,
//! congestion-control stepping, ack bookkeeping, state-machine inference,
//! and a full end-to-end page load), so regressions in experiment runtime
//! are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use longlook_core::prelude::*;
use longlook_quic::{Frame, QuicPacket};
use longlook_sim::link::{LinkConfig, LinkDir, Verdict};
use longlook_sim::{RateSchedule, SimRng};
use longlook_statemachine::{infer, Trace};
use longlook_transport::cubic::{Cubic, CubicConfig};
use longlook_transport::CongestionControl;
use longlook_transport::RttEstimator;

fn bench_wire(c: &mut Criterion) {
    let pkt = QuicPacket {
        conn_id: 42,
        pn: 123_456,
        frames: vec![
            Frame::Ack {
                largest: 123_455,
                ack_delay_us: 900,
                blocks: vec![(123_000, 123_455), (120_000, 122_000)],
            },
            Frame::Stream {
                id: 5,
                offset: 1 << 20,
                len: 1300,
                fin: false,
            },
        ],
    };
    c.bench_function("quic_packet_encode", |b| {
        b.iter(|| black_box(pkt.encode()))
    });
    let bytes = pkt.encode();
    c.bench_function("quic_packet_decode", |b| {
        b.iter(|| black_box(QuicPacket::decode(bytes.clone()).expect("valid")))
    });
}

fn bench_link(c: &mut Criterion) {
    c.bench_function("link_transit_shaped", |b| {
        let cfg = LinkConfig::shaped(
            RateSchedule::fixed_mbps(100.0),
            Dur::from_millis(18),
            Dur::from_millis(36),
        )
        .with_loss(0.01);
        let mut link = LinkDir::new(cfg, SimRng::new(7));
        let mut t = Time::ZERO;
        b.iter(|| {
            t += Dur::from_micros(100);
            matches!(black_box(link.transit(t, 1400)), Verdict::DeliverAt(_))
        })
    });
}

fn bench_cubic(c: &mut Criterion) {
    c.bench_function("cubic_on_ack", |b| {
        let mut cubic = Cubic::new(CubicConfig::quic34(1350), Time::ZERO);
        let mut rtt = RttEstimator::new(Dur::from_millis(36));
        rtt.on_sample(Dur::from_millis(36), Dur::ZERO);
        let mut now = Time::ZERO;
        b.iter(|| {
            now += Dur::from_micros(500);
            cubic.on_ack(now, now - Dur::from_millis(36), 1350, &rtt, 100_000, false);
            black_box(cubic.cwnd())
        })
    });
}

fn bench_inference(c: &mut Criterion) {
    let labels = ["Init", "SlowStart", "CongestionAvoidance", "Recovery"];
    let traces: Vec<Trace> = (0..20)
        .map(|k| {
            let visits: Vec<(Time, String)> = (0..50)
                .map(|i| {
                    (
                        Time::ZERO + Dur::from_millis(i * 10),
                        labels[(i as usize + k) % labels.len()].to_string(),
                    )
                })
                .collect();
            Trace::new(visits, Time::ZERO + Dur::from_millis(500))
        })
        .collect();
    c.bench_function("statemachine_infer_20x50", |b| {
        b.iter(|| black_box(infer(&traces)))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("quic_100kb_page_load", |b| {
        let sc = Scenario::new(NetProfile::baseline(10.0), PageSpec::single(100 * 1024))
            .with_rounds(1);
        b.iter(|| {
            black_box(run_page_load(
                &ProtoConfig::Quic(QuicConfig::default()),
                &sc,
                0,
            ))
        })
    });
    group.bench_function("tcp_100kb_page_load", |b| {
        let sc = Scenario::new(NetProfile::baseline(10.0), PageSpec::single(100 * 1024))
            .with_rounds(1);
        b.iter(|| {
            black_box(run_page_load(
                &ProtoConfig::Tcp(TcpConfig::default()),
                &sc,
                0,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_wire,
    bench_link,
    bench_cubic,
    bench_inference,
    bench_end_to_end
);
criterion_main!(benches);
