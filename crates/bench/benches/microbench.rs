//! Microbenches: the hot paths of the testbed.
//!
//! These measure the simulator substrate itself (wire codecs, link model,
//! congestion-control stepping, state-machine inference, and a full
//! end-to-end page load), so regressions in experiment runtime are
//! visible. Timing uses a self-contained std harness (the crate registry
//! is offline, so criterion is unavailable): each benchmark is warmed up,
//! then run for a fixed iteration budget, reporting mean ns/iter.

use std::hint::black_box;
use std::time::Instant;

use longlook_core::prelude::*;
use longlook_quic::{Frame, QuicPacket};
use longlook_sim::link::{LinkConfig, LinkDir, Verdict};
use longlook_sim::{RateSchedule, SimRng};
use longlook_statemachine::{infer, Trace};
use longlook_transport::cubic::{Cubic, CubicConfig};
use longlook_transport::CongestionControl;
use longlook_transport::RttEstimator;

/// Run `f` for `iters` iterations after `warmup` iterations, print mean
/// ns/iter.
fn bench(name: &str, warmup: u64, iters: u64, mut f: impl FnMut()) {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<32} {per_iter:>12.1} ns/iter   ({iters} iters)");
}

fn bench_wire() {
    let pkt = QuicPacket {
        conn_id: 42,
        pn: 123_456,
        frames: vec![
            Frame::Ack {
                largest: 123_455,
                ack_delay_us: 900,
                blocks: vec![(123_000, 123_455), (120_000, 122_000)],
            },
            Frame::Stream {
                id: 5,
                offset: 1 << 20,
                len: 1300,
                fin: false,
            },
        ],
    };
    bench("quic_packet_encode", 1_000, 100_000, || {
        black_box(pkt.encode());
    });
    let bytes = pkt.encode();
    bench("quic_packet_decode", 1_000, 100_000, || {
        black_box(QuicPacket::decode(bytes.clone()).expect("valid"));
    });
}

fn bench_link() {
    let cfg = LinkConfig::shaped(
        RateSchedule::fixed_mbps(100.0),
        Dur::from_millis(18),
        Dur::from_millis(36),
    )
    .with_loss(0.01);
    let mut link = LinkDir::new(cfg, SimRng::new(7));
    let mut t = Time::ZERO;
    bench("link_transit_shaped", 1_000, 1_000_000, || {
        t += Dur::from_micros(100);
        black_box(matches!(link.transit(t, 1400), Verdict::DeliverAt(_)));
    });
}

fn bench_cubic() {
    let mut cubic = Cubic::new(CubicConfig::quic34(1350), Time::ZERO);
    let mut rtt = RttEstimator::new(Dur::from_millis(36));
    rtt.on_sample(Dur::from_millis(36), Dur::ZERO);
    let mut now = Time::ZERO;
    bench("cubic_on_ack", 1_000, 1_000_000, || {
        now += Dur::from_micros(500);
        cubic.on_ack(now, now - Dur::from_millis(36), 1350, &rtt, 100_000, false);
        black_box(cubic.cwnd());
    });
}

fn bench_inference() {
    let labels = ["Init", "SlowStart", "CongestionAvoidance", "Recovery"];
    let traces: Vec<Trace> = (0..20)
        .map(|k| {
            let visits: Vec<(Time, String)> = (0..50)
                .map(|i| {
                    (
                        Time::ZERO + Dur::from_millis(i * 10),
                        labels[(i as usize + k) % labels.len()].to_string(),
                    )
                })
                .collect();
            Trace::new(visits, Time::ZERO + Dur::from_millis(500))
        })
        .collect();
    bench("statemachine_infer_20x50", 5, 200, || {
        black_box(infer(&traces));
    });
}

fn bench_end_to_end() {
    let sc = Scenario::new(NetProfile::baseline(10.0), PageSpec::single(100 * 1024)).with_rounds(1);
    bench("quic_100kb_page_load", 2, 10, || {
        black_box(run_page_load(
            &ProtoConfig::Quic(QuicConfig::default()),
            &sc,
            0,
        ));
    });
    bench("tcp_100kb_page_load", 2, 10, || {
        black_box(run_page_load(
            &ProtoConfig::Tcp(TcpConfig::default()),
            &sc,
            0,
        ));
    });
}

fn main() {
    println!("longlook microbench (std harness; mean over fixed iteration budget)");
    bench_wire();
    bench_link();
    bench_cubic();
    bench_inference();
    bench_end_to_end();
}
