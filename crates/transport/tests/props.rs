//! Property-based tests for congestion control and RTT estimation
//! invariants.

use longlook_sim::time::{Dur, Time};
use longlook_transport::cc::CongestionControl;
use longlook_transport::cubic::{Cubic, CubicConfig};
use longlook_transport::prr::Prr;
use longlook_transport::rtt::RttEstimator;
use proptest::prelude::*;

fn t(ms: u64) -> Time {
    Time::ZERO + Dur::from_millis(ms)
}

proptest! {
    /// The congestion window stays within [2 MSS, MACW] no matter what
    /// sequence of acks, losses, and RTOs the controller sees.
    #[test]
    fn cubic_cwnd_always_bounded(
        events in proptest::collection::vec(0u8..4, 1..300),
        macw in 10u64..500,
    ) {
        let mss = 1350u64;
        let mut cfg = CubicConfig::quic34(mss);
        cfg.max_cwnd_packets = Some(macw);
        let mut cubic = Cubic::new(cfg, t(0));
        let mut rtt = RttEstimator::new(Dur::from_millis(36));
        rtt.on_sample(Dur::from_millis(36), Dur::ZERO);
        let mut now_ms = 1u64;
        for e in events {
            now_ms += 7;
            match e {
                0 | 1 => cubic.on_ack(
                    t(now_ms),
                    t(now_ms.saturating_sub(36)),
                    mss,
                    &rtt,
                    cubic.cwnd() / 2,
                    false,
                ),
                2 => cubic.on_congestion_event(
                    t(now_ms),
                    t(now_ms.saturating_sub(10)),
                    mss,
                    cubic.cwnd(),
                ),
                _ => cubic.on_rto(t(now_ms)),
            }
            prop_assert!(cubic.cwnd() >= 2 * mss, "cwnd below floor");
            prop_assert!(cubic.cwnd() <= macw * mss, "cwnd above MACW");
        }
    }

    /// A congestion event never increases the window.
    #[test]
    fn loss_never_grows_window(grow_acks in 1u64..200) {
        let mss = 1350u64;
        let mut cfg = CubicConfig::quic34(mss);
        cfg.hystart = false;
        let mut cubic = Cubic::new(cfg, t(0));
        let mut rtt = RttEstimator::new(Dur::from_millis(36));
        rtt.on_sample(Dur::from_millis(36), Dur::ZERO);
        for k in 0..grow_acks {
            cubic.on_ack(t(10 + k), t(k), mss, &rtt, cubic.cwnd(), false);
        }
        let before = cubic.cwnd();
        cubic.on_congestion_event(t(1000), t(999), mss, before);
        prop_assert!(cubic.cwnd() <= before);
    }

    /// RTT estimator: srtt always lies within the observed sample range,
    /// and the RTO never drops below its floor.
    #[test]
    fn rtt_srtt_within_range(samples in proptest::collection::vec(1u64..2_000, 1..100)) {
        let mut est = RttEstimator::new(Dur::from_millis(100));
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for &ms in &samples {
            est.on_sample(Dur::from_millis(ms), Dur::ZERO);
            lo = lo.min(ms);
            hi = hi.max(ms);
        }
        let srtt = est.srtt().as_millis_f64();
        // First sample seeds srtt, so range bounds include the initial 100ms
        // only if it was never updated — here we always update.
        prop_assert!(srtt >= lo as f64 - 1e-6, "srtt {srtt} below min {lo}");
        prop_assert!(srtt <= hi as f64 + 1e-6, "srtt {srtt} above max {hi}");
        prop_assert!(est.rto() >= Dur::from_millis(200));
        prop_assert!(est.min_rtt() == Dur::from_millis(lo));
    }

    /// PRR never allows the pipe to grow past ssthresh while it is the
    /// binding constraint (SSRB mode).
    #[test]
    fn prr_bounds_pipe_in_ssrb(
        deliveries in proptest::collection::vec(1u64..4, 1..60),
    ) {
        let mss = 1000u64;
        let mut prr = Prr::default();
        let ssthresh = 10 * mss;
        let mut in_flight = 20 * mss;
        prr.enter(in_flight, ssthresh);
        for &d in &deliveries {
            let delivered = d * mss;
            prr.on_ack(delivered);
            in_flight = in_flight.saturating_sub(delivered);
            while prr.can_send(in_flight, mss) {
                prr.on_sent(mss);
                in_flight += mss;
                // The pipe must never exceed its value at entry; once at or
                // below ssthresh it must not cross back above it.
                prop_assert!(in_flight <= 20 * mss + mss);
                if in_flight <= ssthresh {
                    prop_assert!(in_flight <= ssthresh + mss);
                }
            }
        }
    }

    /// The estimator's ack-delay adjustment never produces a sample below
    /// the tracked minimum.
    #[test]
    fn ack_delay_never_undercuts_min(
        pairs in proptest::collection::vec((10u64..500, 0u64..200), 1..50),
    ) {
        let mut est = RttEstimator::new(Dur::from_millis(100));
        for &(raw, delay) in &pairs {
            est.on_sample(Dur::from_millis(raw), Dur::from_millis(delay));
            prop_assert!(est.latest() >= est.min_rtt());
        }
    }
}
