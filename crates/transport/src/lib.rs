//! Shared transport abstractions for the `longlook` testbed.
//!
//! This crate defines what the QUIC and TCP protocol models have in
//! common, so that their *differences* — ack ambiguity, loss detection,
//! handshake latency, head-of-line blocking — live in the protocol crates
//! and everything else is held equal (the paper's "fair comparison"
//! requirement):
//!
//! * [`conn`] — the sans-IO [`Connection`] trait all applications use;
//! * [`rtt`] — RFC 6298 estimation with QUIC's ack-delay correction;
//! * [`cc`] / [`cubic`] / [`bbr`] — the congestion-control interface and
//!   the two controllers the paper studies;
//! * [`hystart`] / [`prr`] / [`pacing`] — Hybrid Slow Start, proportional
//!   rate reduction, and packet pacing;
//! * [`ccstate`] — Table 3's state vocabulary and the transition tracker
//!   whose traces feed state-machine inference.

pub mod bbr;
pub mod cc;
pub mod ccstate;
pub mod conn;
pub mod cubic;
pub mod hystart;
pub mod pacing;
pub mod prr;
pub mod rtt;

pub use bbr::Bbr;
pub use cc::{CcPhase, CongestionControl};
pub use ccstate::{
    bbr_legal_edges, check_trace_legal, cubic_legal_edges, BbrState, CcState, StateTrace,
    StateTracker, Transition,
};
pub use conn::{
    AppEvent, ConnError, ConnStats, Connection, StreamId, Transmit, TCP_OVERHEAD, UDP_OVERHEAD,
};
pub use cubic::{Cubic, CubicConfig};
pub use hystart::HyStart;
pub use pacing::Pacer;
pub use prr::Prr;
pub use rtt::RttEstimator;
