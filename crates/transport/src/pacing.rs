//! Packet pacing: spacing transmissions to avoid bursty losses.
//!
//! The paper lists pacing among QUIC's congestion-control enhancements
//! ("QUIC includes packet pacing to space packet transmissions in a way
//! that reduces bursty packet losses"). The pacer is a token bucket whose
//! fill rate tracks the congestion controller's pacing rate; a small burst
//! allowance keeps short flows from being delayed at startup.

use longlook_sim::time::{transmission_delay, Time};

/// Token-bucket pacer.
#[derive(Debug, Clone)]
pub struct Pacer {
    /// Burst allowance in bytes.
    burst: f64,
    tokens: f64,
    last_refill: Time,
    enabled: bool,
}

impl Pacer {
    /// A pacer allowing an initial burst of `burst_bytes`.
    pub fn new(burst_bytes: u64) -> Self {
        Pacer {
            burst: burst_bytes as f64,
            tokens: burst_bytes as f64,
            last_refill: Time::ZERO,
            enabled: true,
        }
    }

    /// A disabled pacer (the TCP model: Linux in 2016 did not pace
    /// without `fq`).
    pub fn disabled() -> Self {
        Pacer {
            burst: 0.0,
            tokens: 0.0,
            last_refill: Time::ZERO,
            enabled: false,
        }
    }

    /// Whether pacing is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn refill(&mut self, now: Time, rate_bps: f64) {
        let elapsed = now.saturating_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * rate_bps / 8.0).min(self.burst);
        self.last_refill = now;
    }

    /// When may a packet of `bytes` go out? Returns `now` if immediately.
    pub fn earliest_send(&mut self, now: Time, bytes: u64, rate_bps: f64) -> Time {
        if !self.enabled {
            return now;
        }
        self.refill(now, rate_bps);
        if self.tokens >= bytes as f64 {
            now
        } else {
            let deficit = bytes as f64 - self.tokens;
            now + transmission_delay(deficit.ceil() as u64, rate_bps.max(1.0))
        }
    }

    /// Account a transmission of `bytes` at `now`.
    pub fn on_sent(&mut self, now: Time, bytes: u64, rate_bps: f64) {
        if !self.enabled {
            return;
        }
        self.refill(now, rate_bps);
        // Tokens may go negative: the debt delays the next packet.
        self.tokens -= bytes as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longlook_sim::time::Dur;

    const RATE: f64 = 8e6; // 1 MB/s: 1000 bytes per ms

    fn t(us: u64) -> Time {
        Time::ZERO + Dur::from_micros(us)
    }

    #[test]
    fn disabled_pacer_never_delays() {
        let mut p = Pacer::disabled();
        for i in 0..10 {
            assert_eq!(p.earliest_send(t(i), 100_000, RATE), t(i));
            p.on_sent(t(i), 100_000, RATE);
        }
    }

    #[test]
    fn burst_then_paced() {
        let mut p = Pacer::new(2000);
        // First two 1000-byte packets ride the burst.
        assert_eq!(p.earliest_send(t(0), 1000, RATE), t(0));
        p.on_sent(t(0), 1000, RATE);
        assert_eq!(p.earliest_send(t(0), 1000, RATE), t(0));
        p.on_sent(t(0), 1000, RATE);
        // Third must wait one serialization time (1ms at 1MB/s).
        let ready = p.earliest_send(t(0), 1000, RATE);
        assert_eq!(ready, t(1000));
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut p = Pacer::new(1000);
        p.on_sent(t(0), 1000, RATE);
        assert!(p.earliest_send(t(0), 1000, RATE) > t(0));
        // After 1ms, one packet's worth refilled.
        assert_eq!(p.earliest_send(t(1000), 1000, RATE), t(1000));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut p = Pacer::new(1500);
        // Long idle: tokens cap at burst, allowing one packet + partial.
        assert_eq!(p.earliest_send(t(10_000_000), 1000, RATE), t(10_000_000));
        p.on_sent(t(10_000_000), 1000, RATE);
        p.on_sent(t(10_000_000), 1000, RATE);
        // Now in debt by 500: next packet waits 0.5ms then serialization.
        let ready = p.earliest_send(t(10_000_000), 1000, RATE);
        assert_eq!(ready, t(10_001_500));
    }

    #[test]
    fn higher_rate_means_less_delay() {
        let mut slow = Pacer::new(0);
        let mut fast = Pacer::new(0);
        let d_slow = slow.earliest_send(t(0), 1000, RATE) - t(0);
        let d_fast = fast.earliest_send(t(0), 1000, 10.0 * RATE) - t(0);
        assert!(d_fast < d_slow);
    }
}
