//! The sans-IO connection abstraction shared by the QUIC and TCP models.
//!
//! A [`Connection`] is a pure state machine: the host agent feeds it
//! datagrams and wakeups and drains transmissions — the smoltcp idiom. The
//! application layers (`longlook-http`, `longlook-video`, the proxies)
//! program against this trait only, so every workload runs unchanged over
//! either protocol.

use crate::ccstate::StateTrace;
use longlook_sim::packet::Payload;
use longlook_sim::time::Time;

/// Ethernet + IP + UDP framing overhead charged per QUIC datagram.
pub const UDP_OVERHEAD: u32 = 42;
/// Ethernet + IP + TCP framing overhead charged per segment (no options).
pub const TCP_OVERHEAD: u32 = 54;

/// Stream identifier. Stream 0 is reserved by both protocol models for
/// handshake/control; applications get ids from
/// [`Connection::open_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u64);

/// Events surfaced to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppEvent {
    /// The connection is established; streams may be opened.
    HandshakeDone,
    /// The peer opened a stream.
    StreamOpened(StreamId),
    /// In-order bytes became readable on a stream (synthetic count).
    StreamData {
        /// Which stream.
        id: StreamId,
        /// How many new in-order bytes.
        bytes: u64,
    },
    /// A stream finished: all data up to FIN delivered.
    StreamFin(StreamId),
}

/// A datagram/segment ready for the wire.
#[derive(Debug, Clone)]
pub struct Transmit {
    /// Protocol control information: a typed packet on the structured
    /// fast path, encoded bytes under `LONGLOOK_WIRE=encoded`.
    pub payload: Payload,
    /// Total on-the-wire size including framing overhead and synthetic
    /// payload bytes.
    pub wire_size: u32,
}

/// Counters every connection maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Packets/segments sent (all kinds).
    pub packets_sent: u64,
    /// Packets/segments received.
    pub packets_received: u64,
    /// Wire bytes sent.
    pub bytes_sent: u64,
    /// Wire bytes received.
    pub bytes_received: u64,
    /// Application payload bytes delivered in order to the peer
    /// (sender-side view: acked payload bytes).
    pub bytes_acked: u64,
    /// Data retransmissions.
    pub retransmissions: u64,
    /// Retransmissions later proven unnecessary (the original arrived).
    pub spurious_retransmissions: u64,
    /// Losses declared by fast-retransmit style detection.
    pub losses_detected: u64,
    /// Retransmission timeouts fired.
    pub rto_count: u64,
    /// Tail loss probes fired.
    pub tlp_count: u64,
    /// Pure ack packets sent.
    pub acks_sent: u64,
    /// Largest congestion window observed (bytes).
    pub max_cwnd: u64,
}

/// Terminal connection errors surfaced by the watchdog machinery. A
/// connection that hits one of these transitions to quiescence and
/// reports the error through [`Connection::error`]; the fault-injection
/// oracles treat "incomplete with no error" as a livelock violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnError {
    /// The handshake did not complete within the configured deadline
    /// (e.g. a blackout swallowed the first flight past all retries).
    HandshakeTimeout,
    /// An established connection made no forward progress for the
    /// configured idle window while work was still outstanding.
    IdleTimeout,
}

impl ConnError {
    /// Stable label for repro files and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ConnError::HandshakeTimeout => "HandshakeTimeout",
            ConnError::IdleTimeout => "IdleTimeout",
        }
    }
}

/// A transport connection as seen by the host agent and application.
pub trait Connection {
    /// Ingest one datagram/segment from the wire.
    fn on_datagram(&mut self, payload: Payload, now: Time);

    /// Produce the next datagram/segment to put on the wire, if any is
    /// ready (congestion window, pacing and flow control permitting).
    fn poll_transmit(&mut self, now: Time) -> Option<Transmit>;

    /// Earliest instant at which a timer (RTO, TLP, pacing release, delayed
    /// ack) needs service.
    fn next_wakeup(&self) -> Option<Time>;

    /// Service timers at `now`.
    fn on_wakeup(&mut self, now: Time);

    /// Open a new application stream; `None` if the concurrent-stream
    /// limit is reached (QUIC's MSPC) or the connection is not ready.
    fn open_stream(&mut self, now: Time) -> Option<StreamId>;

    /// Queue `bytes` of application data (synthetic) on a stream,
    /// optionally finishing it.
    fn stream_send(&mut self, now: Time, id: StreamId, bytes: u64, fin: bool);

    /// Drain the next application event.
    fn poll_event(&mut self) -> Option<AppEvent>;

    /// Whether the handshake has completed.
    fn is_established(&self) -> bool;

    /// Whether the connection has nothing left to send or retransmit.
    fn is_quiescent(&self) -> bool;

    /// Counters.
    fn stats(&self) -> ConnStats;

    /// Congestion window over time, `(t, cwnd_bytes)` per change.
    fn cwnd_timeline(&self) -> &[(Time, u64)];

    /// Finalize and return the congestion-control state trace.
    fn state_trace(&self, now: Time) -> StateTrace;

    /// Current smoothed RTT estimate (for reporting).
    fn srtt(&self) -> longlook_sim::time::Dur;

    /// Terminal error, if the connection gave up (watchdog timeouts).
    /// Default `None` keeps existing implementations and test doubles
    /// compiling unchanged.
    fn error(&self) -> Option<ConnError> {
        None
    }

    /// Structured trace records emitted so far (`LONGLOOK_TRACE`). Empty
    /// when tracing is off; the default keeps test doubles compiling
    /// unchanged, like [`Connection::error`].
    fn trace_records(&self) -> &[longlook_sim::trace::TraceRecord] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_realistic() {
        // UDP framing is 14 (eth) + 20 (ip) + 8 (udp).
        assert_eq!(UDP_OVERHEAD, 42);
        // TCP framing is 14 + 20 + 20.
        assert_eq!(TCP_OVERHEAD, 54);
    }

    #[test]
    fn stream_ids_order() {
        assert!(StreamId(3) < StreamId(5));
    }

    #[test]
    fn app_event_equality() {
        assert_eq!(
            AppEvent::StreamData {
                id: StreamId(1),
                bytes: 10
            },
            AppEvent::StreamData {
                id: StreamId(1),
                bytes: 10
            }
        );
        assert_ne!(AppEvent::HandshakeDone, AppEvent::StreamFin(StreamId(1)));
    }
}
