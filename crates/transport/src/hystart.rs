//! Hybrid Slow Start (Ha & Rhee), as implemented in gQUIC.
//!
//! HyStart exits slow start *before* the first loss when the minimum RTT
//! observed in the current round rises measurably above the previous
//! round's minimum — a sign the bottleneck queue is filling. The paper's
//! root-cause analysis (Sec 5.2) found this is exactly why QUIC performs
//! poorly with large numbers of small objects: multiplexing many streams
//! at once bursts the queue, inflates the round-min RTT, and triggers an
//! early exit that leaves the window far below the BDP.

use longlook_sim::time::{Dur, Time};

/// Minimum RTT samples per round before an exit decision may be made
/// (gQUIC's `kHybridStartMinSamples`).
const MIN_SAMPLES: u32 = 8;
/// Exit threshold divisor: the round minimum must exceed the previous
/// round's by `min_rtt / 8`, clamped to the window below (gQUIC's
/// `kHybridStartDelayFactorExp` and clamp constants).
const DELAY_MIN_THRESHOLD: Dur = Dur::from_millis(4);
const DELAY_MAX_THRESHOLD: Dur = Dur::from_millis(16);

/// Delay-increase HyStart detector.
#[derive(Debug, Clone)]
pub struct HyStart {
    /// Wall-clock marker: the current round ends when data sent at or
    /// after this instant is acked.
    round_marker: Time,
    /// Min RTT among the first [`MIN_SAMPLES`] samples of this round.
    round_min: Dur,
    samples_this_round: u32,
    /// Previous round's minimum.
    last_round_min: Option<Dur>,
    /// Latched exit decision.
    exit_signalled: bool,
}

impl HyStart {
    /// Start detection at connection establishment.
    pub fn new(now: Time) -> Self {
        HyStart {
            round_marker: now,
            round_min: Dur::MAX,
            samples_this_round: 0,
            last_round_min: None,
            exit_signalled: false,
        }
    }

    /// Feed an ack; returns `true` when slow start should end now.
    ///
    /// `newest_acked_sent_at` is the send time of the newest packet this
    /// ack covers; `latest_rtt` is the corresponding sample.
    pub fn on_ack(&mut self, now: Time, newest_acked_sent_at: Time, latest_rtt: Dur) -> bool {
        if self.exit_signalled {
            return true;
        }
        if self.samples_this_round < MIN_SAMPLES {
            self.samples_this_round += 1;
            if latest_rtt < self.round_min {
                self.round_min = latest_rtt;
            }
        }
        // Round boundary: data sent within this round has been acked.
        if newest_acked_sent_at >= self.round_marker {
            if self.samples_this_round >= MIN_SAMPLES {
                if let Some(prev) = self.last_round_min {
                    let eta = Dur::from_nanos(prev.as_nanos() / 8)
                        .max(DELAY_MIN_THRESHOLD)
                        .min(DELAY_MAX_THRESHOLD);
                    if self.round_min >= prev + eta {
                        self.exit_signalled = true;
                        return true;
                    }
                }
                self.last_round_min = Some(self.round_min);
            }
            self.round_marker = now;
            self.round_min = Dur::MAX;
            self.samples_this_round = 0;
        }
        false
    }

    /// Whether an exit has been signalled.
    pub fn exited(&self) -> bool {
        self.exit_signalled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }
    fn ms(v: u64) -> Dur {
        Dur::from_millis(v)
    }

    /// Drive a full round of `n` mid-round samples with the given RTT,
    /// then a round-boundary ack. Rounds are spaced 100ms apart starting
    /// at t = 1s so that "sent before the current round marker" is
    /// unambiguous: mid-round acks cover data sent 50ms before the base,
    /// the boundary ack covers data sent after it.
    fn drive_round(h: &mut HyStart, round: u64, rtt_ms: u64, n: u32) -> bool {
        let base = 1000 + round * 100;
        let mut exited = false;
        for i in 0..n {
            let now = t(base + i as u64);
            let sent = t(base - 50);
            exited |= h.on_ack(now, sent, ms(rtt_ms));
        }
        exited |= h.on_ack(t(base + 90), t(base + 90), ms(rtt_ms));
        exited
    }

    #[test]
    fn stable_rtt_never_exits() {
        let mut h = HyStart::new(t(0));
        for round in 0..20u64 {
            assert!(!drive_round(&mut h, round, 36, 9));
        }
        assert!(!h.exited());
    }

    #[test]
    fn rtt_jump_triggers_exit() {
        let mut h = HyStart::new(t(0));
        assert!(!drive_round(&mut h, 0, 36, 9));
        assert!(!drive_round(&mut h, 1, 36, 9));
        // Jump well beyond 36/8 = 4.5ms threshold.
        assert!(drive_round(&mut h, 2, 60, 9));
        assert!(h.exited());
    }

    #[test]
    fn small_increase_below_eta_is_tolerated() {
        let mut h = HyStart::new(t(0));
        assert!(!drive_round(&mut h, 0, 36, 9));
        // +3ms < eta (4.5ms): no exit.
        assert!(!drive_round(&mut h, 1, 39, 9));
    }

    #[test]
    fn needs_enough_samples() {
        let mut h = HyStart::new(t(0));
        // Rounds of 3 samples each never accumulate MIN_SAMPLES, so even a
        // big jump cannot trigger.
        assert!(!drive_round(&mut h, 0, 36, 3));
        assert!(!drive_round(&mut h, 1, 200, 3));
        assert!(!h.exited());
    }

    #[test]
    fn eta_clamps_for_tiny_rtt() {
        // prev min 8ms -> raw eta 1ms, clamped to 4ms. An increase of 3ms
        // must not exit; 5ms must.
        let mut h = HyStart::new(t(0));
        assert!(!drive_round(&mut h, 0, 8, 9));
        assert!(!drive_round(&mut h, 1, 11, 9));
        let mut h2 = HyStart::new(t(0));
        assert!(!drive_round(&mut h2, 0, 8, 9));
        assert!(drive_round(&mut h2, 1, 13, 9));
    }

    #[test]
    fn exit_latches() {
        let mut h = HyStart::new(t(0));
        drive_round(&mut h, 0, 36, 9);
        drive_round(&mut h, 1, 36, 9);
        assert!(drive_round(&mut h, 2, 80, 9));
        // Later calm rounds don't un-exit.
        assert!(h.on_ack(t(9000), t(9000), ms(36)));
    }
}
