//! Congestion-control states (paper Table 3) and the transition tracker
//! that produces the execution traces the paper's state-machine inference
//! consumes.
//!
//! The paper instrumented gQUIC with 23 lines of logging across 5 files to
//! capture state transitions; here the instrumentation is a first-class
//! citizen: every connection owns a [`StateTracker`] and the resulting
//! [`StateTrace`] feeds `longlook-statemachine` directly.

use longlook_sim::time::{Dur, Time};
use std::collections::{BTreeSet, HashMap};

/// QUIC congestion-control states, exactly Table 3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcState {
    /// Initial connection establishment.
    Init,
    /// Slow start phase.
    SlowStart,
    /// Normal congestion avoidance.
    CongestionAvoidance,
    /// Maximum allowed window size reached (QUIC's MACW clamp).
    CaMaxed,
    /// Current congestion window is not being utilized, hence the window
    /// will not be increased.
    ApplicationLimited,
    /// Loss detected due to timeout for ACK.
    RetransmissionTimeout,
    /// Proportional-rate-reduction fast recovery.
    Recovery,
    /// Recovering tail losses.
    TailLossProbe,
}

impl CcState {
    /// Stable label used in traces and inferred diagrams (matches Fig 3a).
    pub fn label(&self) -> &'static str {
        match self {
            CcState::Init => "Init",
            CcState::SlowStart => "SlowStart",
            CcState::CongestionAvoidance => "CongestionAvoidance",
            CcState::CaMaxed => "CongestionAvoidanceMaxed",
            CcState::ApplicationLimited => "ApplicationLimited",
            CcState::RetransmissionTimeout => "RetransmissionTimeout",
            CcState::Recovery => "Recovery",
            CcState::TailLossProbe => "TailLossProbe",
        }
    }

    /// All states, for table rendering.
    pub fn all() -> [CcState; 8] {
        [
            CcState::Init,
            CcState::SlowStart,
            CcState::CongestionAvoidance,
            CcState::CaMaxed,
            CcState::ApplicationLimited,
            CcState::RetransmissionTimeout,
            CcState::Recovery,
            CcState::TailLossProbe,
        ]
    }

    /// Paper Table 3 description.
    pub fn description(&self) -> &'static str {
        match self {
            CcState::Init => "Initial connection establishment",
            CcState::SlowStart => "Slow start phase",
            CcState::CongestionAvoidance => "Normal congestion avoidance",
            CcState::CaMaxed => "Max allowed win. size is reached",
            CcState::ApplicationLimited => {
                "Current cong. win. is not being utilized, hence window will not be increased"
            }
            CcState::RetransmissionTimeout => "Loss detected due to timeout for ACK",
            CcState::Recovery => "Proportional rate reduction fast recovery",
            CcState::TailLossProbe => "Recover tail losses",
        }
    }
}

/// BBR states (paper Fig 3b, for the experimental BBR implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BbrState {
    /// Exponential bandwidth probing at startup.
    Startup,
    /// Draining the queue built during startup.
    Drain,
    /// Steady-state bandwidth probing (gain cycling).
    ProbeBw,
    /// Periodic minimum-RTT probing with a tiny window.
    ProbeRtt,
}

impl BbrState {
    /// Stable label for traces.
    pub fn label(&self) -> &'static str {
        match self {
            BbrState::Startup => "Startup",
            BbrState::Drain => "Drain",
            BbrState::ProbeBw => "ProbeBW",
            BbrState::ProbeRtt => "ProbeRTT",
        }
    }
}

/// One observed transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State left.
    pub from: &'static str,
    /// State entered.
    pub to: &'static str,
    /// When.
    pub at: Time,
}

/// A completed state trace: the ordered transition log plus time spent in
/// each state. This is the artifact the Synoptic-style inference ingests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateTrace {
    /// Ordered `(time, state)` visit log, starting with the initial state.
    pub visits: Vec<(Time, &'static str)>,
    /// Total time spent per state label.
    pub time_in: HashMap<&'static str, Dur>,
    /// Total observation span.
    pub span: Dur,
}

impl StateTrace {
    /// Fraction of observed time in `label`, in `[0, 1]`.
    pub fn fraction_in(&self, label: &str) -> f64 {
        if self.span == Dur::ZERO {
            return 0.0;
        }
        self.time_in
            .get(label)
            .map_or(0.0, |d| d.as_secs_f64() / self.span.as_secs_f64())
    }

    /// Just the state-label sequence (for inference).
    pub fn labels(&self) -> Vec<&'static str> {
        self.visits.iter().map(|&(_, s)| s).collect()
    }
}

/// Cubic's legal transition graph (paper Fig 3a / Table 3): `Init` is
/// entered exactly once at handshake and never again; loss states are
/// reachable from every established state; `CongestionAvoidanceMaxed` is
/// an excursion from/into congestion avoidance. Anything not listed —
/// above all `* -> Init` — is a forbidden transition.
pub fn cubic_legal_edges() -> BTreeSet<(&'static str, &'static str)> {
    const SS: &str = "SlowStart";
    const CA: &str = "CongestionAvoidance";
    const CAM: &str = "CongestionAvoidanceMaxed";
    const AL: &str = "ApplicationLimited";
    const REC: &str = "Recovery";
    const RTO: &str = "RetransmissionTimeout";
    const TLP: &str = "TailLossProbe";
    let mut edges = BTreeSet::new();
    edges.insert(("Init", SS));
    // Established states interleave freely (the tracker samples the
    // connection's flags each tick), except no state ever returns to Init
    // and loss states only appear with loss evidence (checked separately).
    for from in [SS, CA, CAM, AL, REC, RTO, TLP] {
        for to in [SS, CA, CAM, AL, REC, RTO, TLP] {
            if from != to {
                edges.insert((from, to));
            }
        }
    }
    // Slow start is only re-entered after an RTO or when the app went
    // idle long enough to reset the window — never straight from CA.
    edges.remove(&(CA, SS));
    edges.remove(&(CAM, SS));
    edges
}

/// BBR's legal graph is tiny and exact (paper Fig 3b):
/// `Startup -> Drain -> ProbeBW <-> ProbeRTT`, nothing else — in
/// particular Startup is never re-entered and Drain is only reached from
/// Startup.
pub fn bbr_legal_edges() -> BTreeSet<(&'static str, &'static str)> {
    [
        ("Startup", "Drain"),
        ("Drain", "ProbeBW"),
        ("ProbeBW", "ProbeRTT"),
        ("ProbeRTT", "ProbeBW"),
    ]
    .into_iter()
    .collect()
}

/// Check one visit sequence against a legal graph: the trace must be
/// non-empty, start in `initial`, never re-enter `initial`, and every
/// state change must be an edge of `legal`. Returns a human-readable
/// description of the first violation, if any — shared by the invariant
/// test suite and the fault-injection fuzzer's CC oracle.
pub fn check_trace_legal(
    labels: &[&'static str],
    legal: &BTreeSet<(&'static str, &'static str)>,
    initial: &str,
) -> Result<(), String> {
    if labels.is_empty() {
        return Err("empty trace".to_string());
    }
    if labels[0] != initial {
        return Err(format!(
            "trace starts in {} instead of {initial}",
            labels[0]
        ));
    }
    for pair in labels.windows(2) {
        let (from, to) = (pair[0], pair[1]);
        if from == to {
            continue; // re-logged same state: not a transition
        }
        if !legal.contains(&(from, to)) {
            return Err(format!(
                "illegal transition {from} -> {to} (not an edge of the \
                 paper's Fig 3 graph)"
            ));
        }
    }
    if labels
        .windows(2)
        .any(|pair| pair[0] != initial && pair[1] == initial)
    {
        return Err(format!("re-entered initial state {initial}"));
    }
    Ok(())
}

/// Live tracker a connection drives as its state evolves.
#[derive(Debug, Clone)]
pub struct StateTracker {
    current: &'static str,
    entered_at: Time,
    started_at: Time,
    visits: Vec<(Time, &'static str)>,
    time_in: HashMap<&'static str, Dur>,
}

impl StateTracker {
    /// Start tracking in `initial` at time `now`.
    pub fn new(now: Time, initial: &'static str) -> Self {
        StateTracker {
            current: initial,
            entered_at: now,
            started_at: now,
            visits: vec![(now, initial)],
            time_in: HashMap::new(),
        }
    }

    /// The current state label.
    pub fn current(&self) -> &'static str {
        self.current
    }

    /// Record a (possibly unchanged) state observation; transitions are
    /// logged only when the state actually changes.
    pub fn set(&mut self, now: Time, state: &'static str) {
        if state == self.current {
            return;
        }
        let dwell = now.saturating_since(self.entered_at);
        *self.time_in.entry(self.current).or_insert(Dur::ZERO) += dwell;
        self.current = state;
        self.entered_at = now;
        self.visits.push((now, state));
    }

    /// Number of transitions so far (visits minus the initial state).
    pub fn transition_count(&self) -> usize {
        self.visits.len().saturating_sub(1)
    }

    /// Finalize at `now`, producing the trace.
    pub fn finish(&self, now: Time) -> StateTrace {
        let mut time_in = self.time_in.clone();
        *time_in.entry(self.current).or_insert(Dur::ZERO) += now.saturating_since(self.entered_at);
        StateTrace {
            visits: self.visits.clone(),
            time_in,
            span: now.saturating_since(self.started_at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CcState::CaMaxed.label(), "CongestionAvoidanceMaxed");
        assert_eq!(CcState::all().len(), 8);
        for s in CcState::all() {
            assert!(!s.description().is_empty());
        }
    }

    #[test]
    fn tracker_ignores_no_op_sets() {
        let mut tr = StateTracker::new(t(0), CcState::Init.label());
        tr.set(t(1), CcState::Init.label());
        tr.set(t(2), CcState::Init.label());
        assert_eq!(tr.transition_count(), 0);
    }

    #[test]
    fn tracker_records_transitions_and_dwell() {
        let mut tr = StateTracker::new(t(0), "Init");
        tr.set(t(10), "SlowStart");
        tr.set(t(40), "CongestionAvoidance");
        tr.set(t(100), "Recovery");
        let trace = tr.finish(t(130));
        assert_eq!(
            trace.labels(),
            vec!["Init", "SlowStart", "CongestionAvoidance", "Recovery"]
        );
        assert_eq!(trace.time_in["Init"], Dur::from_millis(10));
        assert_eq!(trace.time_in["SlowStart"], Dur::from_millis(30));
        assert_eq!(trace.time_in["CongestionAvoidance"], Dur::from_millis(60));
        assert_eq!(trace.time_in["Recovery"], Dur::from_millis(30));
        assert_eq!(trace.span, Dur::from_millis(130));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut tr = StateTracker::new(t(0), "A");
        tr.set(t(25), "B");
        tr.set(t(75), "A");
        let trace = tr.finish(t(100));
        let total = trace.fraction_in("A") + trace.fraction_in("B");
        assert!((total - 1.0).abs() < 1e-9);
        assert!((trace.fraction_in("A") - 0.5).abs() < 1e-9);
    }

    #[test]
    fn revisits_accumulate() {
        let mut tr = StateTracker::new(t(0), "A");
        tr.set(t(10), "B");
        tr.set(t(20), "A");
        tr.set(t(50), "B");
        let trace = tr.finish(t(60));
        assert_eq!(trace.time_in["A"], Dur::from_millis(40));
        assert_eq!(trace.time_in["B"], Dur::from_millis(20));
        assert_eq!(trace.labels(), vec!["A", "B", "A", "B"]);
    }

    #[test]
    fn empty_trace_fraction_is_zero() {
        let tr = StateTracker::new(t(0), "A");
        let trace = tr.finish(t(0));
        assert_eq!(trace.fraction_in("A"), 0.0);
    }

    #[test]
    fn bbr_labels() {
        assert_eq!(BbrState::ProbeBw.label(), "ProbeBW");
        assert_eq!(BbrState::ProbeRtt.label(), "ProbeRTT");
    }

    #[test]
    fn legal_graph_accepts_canonical_traces() {
        let cubic = cubic_legal_edges();
        check_trace_legal(
            &["Init", "SlowStart", "CongestionAvoidance", "Recovery"],
            &cubic,
            "Init",
        )
        .expect("canonical cubic trace must be legal");
        let bbr = bbr_legal_edges();
        check_trace_legal(
            &["Startup", "Drain", "ProbeBW", "ProbeRTT", "ProbeBW"],
            &bbr,
            "Startup",
        )
        .expect("canonical bbr trace must be legal");
    }

    #[test]
    fn legal_graph_rejects_violations() {
        let cubic = cubic_legal_edges();
        // Re-entering Init is forbidden.
        let err = check_trace_legal(&["Init", "SlowStart", "Init"], &cubic, "Init")
            .expect_err("Init re-entry must be illegal");
        assert!(err.contains("Init"), "unexpected message: {err}");
        // CA -> SlowStart is explicitly removed from the graph.
        let err = check_trace_legal(
            &["Init", "SlowStart", "CongestionAvoidance", "SlowStart"],
            &cubic,
            "Init",
        )
        .expect_err("CA -> SlowStart must be illegal");
        assert!(err.contains("illegal transition"), "{err}");
        // Wrong initial state and empty traces are violations too.
        assert!(check_trace_legal(&["SlowStart"], &cubic, "Init").is_err());
        assert!(check_trace_legal(&[], &cubic, "Init").is_err());
        // BBR never re-enters Startup.
        let bbr = bbr_legal_edges();
        assert!(check_trace_legal(&["Startup", "Drain", "Startup"], &bbr, "Startup").is_err());
    }

    #[test]
    fn self_loops_are_not_transitions() {
        let bbr = bbr_legal_edges();
        check_trace_legal(
            &["Startup", "Startup", "Drain", "Drain", "ProbeBW"],
            &bbr,
            "Startup",
        )
        .expect("re-logged states must not count as transitions");
    }
}
