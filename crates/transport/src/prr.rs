//! Proportional Rate Reduction (RFC 6937), the fast-recovery sending gate
//! both gQUIC and Linux TCP used at the time of the paper.
//!
//! PRR paces transmissions during recovery so the window converges to
//! ssthresh smoothly instead of halting (rate-halving) or bursting: the
//! amount sent is kept proportional to the amount newly delivered.

/// PRR state for one recovery epoch.
#[derive(Debug, Clone, Default)]
pub struct Prr {
    /// Bytes delivered (acked) since recovery began.
    prr_delivered: u64,
    /// Bytes transmitted since recovery began.
    prr_out: u64,
    /// Pipe size when recovery began (RecoverFS).
    recover_fs: u64,
    /// Target window (ssthresh) for this epoch.
    ssthresh: u64,
    active: bool,
}

impl Prr {
    /// Begin a recovery epoch.
    pub fn enter(&mut self, in_flight: u64, ssthresh: u64) {
        self.prr_delivered = 0;
        self.prr_out = 0;
        self.recover_fs = in_flight.max(1);
        self.ssthresh = ssthresh;
        self.active = true;
    }

    /// End the epoch (recovery point acked).
    pub fn exit(&mut self) {
        self.active = false;
    }

    /// Whether an epoch is active.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Newly delivered bytes during recovery.
    pub fn on_ack(&mut self, delivered: u64) {
        if self.active {
            self.prr_delivered += delivered;
        }
    }

    /// Bytes sent during recovery.
    pub fn on_sent(&mut self, bytes: u64) {
        if self.active {
            self.prr_out += bytes;
        }
    }

    /// Send budget available right now given `in_flight` (the pipe).
    ///
    /// RFC 6937: while the pipe is larger than ssthresh, send
    /// proportionally (`prr_delivered * ssthresh / RecoverFS - prr_out`);
    /// once the pipe falls to/below ssthresh, use the slow-start reduction
    /// bound (`max(prr_delivered - prr_out, mss)`) to avoid stalling, but
    /// never grow the pipe beyond ssthresh.
    pub fn send_budget(&self, in_flight: u64, mss: u64) -> u64 {
        if !self.active {
            return u64::MAX;
        }
        if in_flight > self.ssthresh {
            // Proportional part; ceil the division.
            let allowed = (self.prr_delivered * self.ssthresh).div_ceil(self.recover_fs);
            allowed.saturating_sub(self.prr_out)
        } else {
            // Slow-start reduction bound: catch up to deliveries, at least
            // one segment, but do not exceed ssthresh in flight.
            let ssrb = self.prr_delivered.saturating_sub(self.prr_out).max(mss);
            ssrb.min(self.ssthresh.saturating_sub(in_flight))
        }
    }

    /// Convenience: can one `mss`-sized packet go out now?
    pub fn can_send(&self, in_flight: u64, mss: u64) -> bool {
        self.send_budget(in_flight, mss) >= mss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1000;

    #[test]
    fn inactive_is_unlimited() {
        let p = Prr::default();
        assert_eq!(p.send_budget(50_000, MSS), u64::MAX);
        assert!(p.can_send(1 << 40, MSS));
    }

    #[test]
    fn no_sending_before_deliveries() {
        let mut p = Prr::default();
        p.enter(20 * MSS, 10 * MSS);
        // Nothing delivered yet: proportional budget is zero.
        assert_eq!(p.send_budget(20 * MSS, MSS), 0);
        assert!(!p.can_send(20 * MSS, MSS));
    }

    #[test]
    fn proportional_sending_tracks_deliveries() {
        let mut p = Prr::default();
        p.enter(20 * MSS, 10 * MSS); // halve the window
        p.on_ack(2 * MSS);
        // 2 delivered * 10/20 = 1 MSS allowed.
        assert_eq!(p.send_budget(19 * MSS, MSS), MSS);
        p.on_sent(MSS);
        assert_eq!(p.send_budget(18 * MSS, MSS), 0);
        p.on_ack(2 * MSS);
        assert!(p.can_send(17 * MSS, MSS));
    }

    #[test]
    fn total_sent_converges_to_half_of_delivered() {
        let mut p = Prr::default();
        p.enter(40 * MSS, 20 * MSS);
        let mut in_flight = 40 * MSS;
        let mut sent_total = 0u64;
        // Deliver the whole original pipe one MSS at a time.
        for _ in 0..40 {
            p.on_ack(MSS);
            in_flight -= MSS;
            while p.can_send(in_flight, MSS) && in_flight < 40 * MSS {
                p.on_sent(MSS);
                in_flight += MSS;
                sent_total += MSS;
            }
        }
        // PRR should have sent roughly ssthresh worth (half the pipe).
        assert!(
            (18 * MSS..=22 * MSS).contains(&sent_total),
            "sent = {} MSS",
            sent_total / MSS
        );
    }

    #[test]
    fn slow_start_reduction_bound_prevents_stall() {
        let mut p = Prr::default();
        p.enter(20 * MSS, 10 * MSS);
        // Heavy loss: pipe collapses below ssthresh with little delivered.
        p.on_ack(MSS);
        let budget = p.send_budget(2 * MSS, MSS);
        // SSRB guarantees at least one MSS.
        assert!(budget >= MSS, "budget = {budget}");
        // But never grows the pipe beyond ssthresh.
        assert!(budget <= 8 * MSS);
    }

    #[test]
    fn pipe_capped_at_ssthresh_in_ssrb_mode() {
        let mut p = Prr::default();
        p.enter(20 * MSS, 10 * MSS);
        p.on_ack(15 * MSS);
        // in_flight already at ssthresh: nothing more allowed.
        assert_eq!(p.send_budget(10 * MSS, MSS), 0);
    }

    #[test]
    fn exit_restores_unlimited() {
        let mut p = Prr::default();
        p.enter(20 * MSS, 10 * MSS);
        p.exit();
        assert!(!p.active());
        assert_eq!(p.send_budget(0, MSS), u64::MAX);
    }
}
