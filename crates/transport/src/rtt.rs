//! RTT estimation (RFC 6298 smoothing) with QUIC's ack-delay correction.
//!
//! A core claim of the paper (Sec 2.1) is that "QUIC's ACK implementation
//! eliminates ACK ambiguity ... \[and\] provides more precise timing
//! information that improves bandwidth and RTT estimates". Two mechanisms
//! produce that here:
//!
//! * QUIC acks carry the receiver's *ack delay*, which the estimator
//!   subtracts to isolate propagation from receiver scheduling;
//! * QUIC packet numbers are never reused, so every ack yields a valid
//!   sample — whereas the TCP model obeys Karn's algorithm and discards
//!   samples for retransmitted sequences (see `longlook-tcp`).

use longlook_sim::time::{Dur, Time};

/// Smoothed RTT state for one connection.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<Dur>,
    rttvar: Dur,
    min_rtt: Dur,
    latest: Dur,
    /// Samples accepted so far.
    samples: u64,
    /// Lower clamp for the RTO.
    min_rto: Dur,
    /// Upper clamp for the RTO.
    max_rto: Dur,
    /// Default RTT assumed before the first sample.
    initial_rtt: Dur,
}

impl RttEstimator {
    /// Create an estimator. `initial_rtt` seeds timers before any sample.
    pub fn new(initial_rtt: Dur) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: Dur::ZERO,
            min_rtt: Dur::MAX,
            latest: initial_rtt,
            samples: 0,
            min_rto: Dur::from_millis(200),
            max_rto: Dur::from_secs(60),
            initial_rtt,
        }
    }

    /// Feed a sample. `ack_delay` is the peer-reported delay between
    /// receiving the packet and sending the ack (zero for TCP); it is
    /// subtracted unless that would push the sample below the observed
    /// minimum (QUIC's rule, which guards against lying peers).
    pub fn on_sample(&mut self, measured: Dur, ack_delay: Dur) {
        if measured < self.min_rtt {
            self.min_rtt = measured;
        }
        let adjusted = if measured.saturating_sub(ack_delay) >= self.min_rtt {
            measured.saturating_sub(ack_delay)
        } else {
            measured
        };
        self.latest = adjusted;
        self.samples += 1;
        match self.srtt {
            None => {
                self.srtt = Some(adjusted);
                self.rttvar = Dur::from_nanos(adjusted.as_nanos() / 2);
            }
            Some(srtt) => {
                // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - sample|.
                let err = if srtt > adjusted {
                    srtt - adjusted
                } else {
                    adjusted - srtt
                };
                self.rttvar = Dur::from_nanos((3 * self.rttvar.as_nanos() + err.as_nanos()) / 4);
                // srtt = 7/8 srtt + 1/8 sample.
                self.srtt = Some(Dur::from_nanos(
                    (7 * srtt.as_nanos() + adjusted.as_nanos()) / 8,
                ));
            }
        }
    }

    /// Smoothed RTT (the initial assumption before any sample).
    pub fn srtt(&self) -> Dur {
        self.srtt.unwrap_or(self.initial_rtt)
    }

    /// Latest accepted sample.
    pub fn latest(&self) -> Dur {
        self.latest
    }

    /// Minimum RTT observed (the initial assumption before any sample).
    pub fn min_rtt(&self) -> Dur {
        if self.min_rtt == Dur::MAX {
            self.initial_rtt
        } else {
            self.min_rtt
        }
    }

    /// RTT variation estimate.
    pub fn rttvar(&self) -> Dur {
        self.rttvar
    }

    /// Number of accepted samples.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// Retransmission timeout: `srtt + max(4*rttvar, 1ms)`, clamped.
    pub fn rto(&self) -> Dur {
        let var_term = (self.rttvar * 4).max(Dur::from_millis(1));
        (self.srtt() + var_term).max(self.min_rto).min(self.max_rto)
    }

    /// Tail-loss-probe delay: `max(2*srtt, 10ms)` (simplified from the TLP
    /// draft the paper cites).
    pub fn tlp_timeout(&self) -> Dur {
        (self.srtt() * 2).max(Dur::from_millis(10))
    }

    /// Deadline helper: the instant `timeout` from `now`.
    pub fn deadline(&self, now: Time, timeout: Dur) -> Time {
        now + timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Dur {
        Dur::from_millis(v)
    }

    #[test]
    fn first_sample_initializes() {
        let mut r = RttEstimator::new(ms(100));
        assert_eq!(r.srtt(), ms(100));
        r.on_sample(ms(40), Dur::ZERO);
        assert_eq!(r.srtt(), ms(40));
        assert_eq!(r.min_rtt(), ms(40));
        assert_eq!(r.rttvar(), ms(20));
    }

    #[test]
    fn smoothing_converges() {
        let mut r = RttEstimator::new(ms(100));
        for _ in 0..100 {
            r.on_sample(ms(36), Dur::ZERO);
        }
        let srtt = r.srtt().as_millis_f64();
        assert!((srtt - 36.0).abs() < 0.5, "srtt = {srtt}");
        assert!(r.rttvar() < ms(1));
    }

    #[test]
    fn ack_delay_is_subtracted() {
        let mut r = RttEstimator::new(ms(100));
        r.on_sample(ms(50), Dur::ZERO); // min = 50
        r.on_sample(ms(80), ms(25)); // adjusted to 55
        assert_eq!(r.latest(), ms(55));
    }

    #[test]
    fn ack_delay_not_applied_below_min() {
        let mut r = RttEstimator::new(ms(100));
        r.on_sample(ms(50), Dur::ZERO);
        // Subtracting 30 would give 40 < min 50: use raw sample.
        r.on_sample(ms(70), ms(30));
        assert_eq!(r.latest(), ms(70));
    }

    #[test]
    fn rto_floors_and_tracks_variance() {
        let mut r = RttEstimator::new(ms(100));
        for _ in 0..50 {
            r.on_sample(ms(36), Dur::ZERO);
        }
        // Stable RTT: RTO floors at min_rto (200ms) since srtt+4var is small.
        assert_eq!(r.rto(), ms(200));
        // Inject variance: RTO rises above the floor.
        for i in 0..20u64 {
            r.on_sample(ms(36 + (i % 2) * 150), Dur::ZERO);
        }
        assert!(r.rto() > ms(200));
    }

    #[test]
    fn tlp_timeout_scales_with_srtt() {
        let mut r = RttEstimator::new(ms(100));
        r.on_sample(ms(40), Dur::ZERO);
        assert_eq!(r.tlp_timeout(), ms(80));
        let mut fast = RttEstimator::new(ms(100));
        fast.on_sample(ms(2), Dur::ZERO);
        assert_eq!(fast.tlp_timeout(), ms(10), "floor applies");
    }

    #[test]
    fn min_rtt_tracks_smallest() {
        let mut r = RttEstimator::new(ms(100));
        r.on_sample(ms(50), Dur::ZERO);
        r.on_sample(ms(30), Dur::ZERO);
        r.on_sample(ms(90), Dur::ZERO);
        assert_eq!(r.min_rtt(), ms(30));
    }
}
