//! Cubic congestion control, ported from gQUIC's `TcpCubicSenderBytes` /
//! `CubicBytes` with the features the paper studies:
//!
//! * **N-connection emulation** — gQUIC sets Cubic's β and the
//!   Reno-friendly α so one QUIC connection behaves like `N` TCP
//!   connections (`N = 2` in QUIC 34, `N = 1` in QUIC 37). The paper's
//!   fairness experiments (Sec 5.1) show this — together with QUIC's
//!   per-ack window updates — lets QUIC take ~2x its fair share.
//! * **Maximum allowed congestion window (MACW)** — the clamp whose value
//!   (107 → 430 → 2000 packets) drives the calibration story (Sec 4.1,
//!   Fig 15). The clamp surfaces as the `CongestionAvoidanceMaxed` state.
//! * **Hybrid Slow Start** — early exit on delay increase (Sec 5.2).
//! * **PRR fast recovery** — proportional rate reduction (Table 3).
//! * **the Chromium-52 ssthresh bug** — optionally start with a small
//!   fixed ssthresh instead of deriving it from the receiver window,
//!   reproducing the miscalibrated public build of Fig 2.

use crate::cc::{CcPhase, CongestionControl};
use crate::ccstate::CcState;
use crate::hystart::HyStart;
use crate::prr::Prr;
use crate::rtt::RttEstimator;
use longlook_sim::time::{Dur, Time};

/// Cubic's C constant (window growth scale, packets/sec^3).
const CUBIC_C: f64 = 0.4;
/// Default single-connection β.
const DEFAULT_BETA: f64 = 0.7;
/// Minimum congestion window after loss/RTO, in packets.
const MIN_CWND_PACKETS: u64 = 2;

/// Cubic configuration.
#[derive(Debug, Clone)]
pub struct CubicConfig {
    /// Sender maximum segment size in bytes.
    pub mss: u64,
    /// Initial congestion window in packets (gQUIC default 32, Linux 10).
    pub initial_cwnd_packets: u64,
    /// Maximum allowed congestion window in packets (QUIC's MACW);
    /// `None` = unclamped (the TCP model).
    pub max_cwnd_packets: Option<u64>,
    /// Number of emulated connections `N`.
    pub num_connections: u32,
    /// Enable Hybrid Slow Start.
    pub hystart: bool,
    /// Enable PRR recovery pacing.
    pub prr: bool,
    /// Fast convergence on repeated losses.
    pub fast_convergence: bool,
    /// Initial ssthresh in packets; `None` = unlimited. `Some(small)`
    /// reproduces the Chromium 52 bug where the slow-start threshold was
    /// never raised to the receiver-advertised buffer.
    pub initial_ssthresh_packets: Option<u64>,
}

impl CubicConfig {
    /// gQUIC defaults for QUIC 34 as calibrated by the paper
    /// (MACW = 430, N = 2).
    pub fn quic34(mss: u64) -> Self {
        CubicConfig {
            mss,
            initial_cwnd_packets: 32,
            max_cwnd_packets: Some(430),
            num_connections: 2,
            hystart: true,
            prr: true,
            fast_convergence: true,
            initial_ssthresh_packets: None,
        }
    }

    /// Linux TCP Cubic defaults (initial window 10, no MACW clamp).
    pub fn linux_tcp(mss: u64) -> Self {
        CubicConfig {
            mss,
            initial_cwnd_packets: 10,
            max_cwnd_packets: None,
            num_connections: 1,
            hystart: false,
            prr: true,
            fast_convergence: true,
            initial_ssthresh_packets: None,
        }
    }

    /// β after N-connection scaling: `(N - 1 + 0.7) / N`.
    pub fn beta(&self) -> f64 {
        let n = self.num_connections.max(1) as f64;
        (n - 1.0 + DEFAULT_BETA) / n
    }

    /// Reno-friendly α after N-connection scaling:
    /// `3 N^2 (1 - β) / (1 + β)`.
    pub fn alpha(&self) -> f64 {
        let n = self.num_connections.max(1) as f64;
        let beta = self.beta();
        3.0 * n * n * (1.0 - beta) / (1.0 + beta)
    }
}

/// Cubic congestion controller.
#[derive(Debug)]
pub struct Cubic {
    cfg: CubicConfig,
    cwnd: u64,
    ssthresh: u64,
    /// Epoch start of the current cubic growth curve; `None` until the
    /// first CA ack after a loss event (lazy init, as in gQUIC).
    epoch_start: Option<Time>,
    /// Window at the last reduction, in packets (W_max).
    w_max_packets: f64,
    /// Time offset of the cubic origin, seconds.
    k: f64,
    /// Window where the current cubic curve originated.
    origin_cwnd: u64,
    /// Reno-friendly companion estimate.
    est_tcp_cwnd: f64,
    /// Recovery epoch: losses of packets sent before this are ignored.
    recovery_start: Option<Time>,
    /// Whether we are between a congestion event and its recovery point.
    in_recovery_now: bool,
    prr: Prr,
    hystart: Option<HyStart>,
    app_limited_latch: bool,
}

impl Cubic {
    /// Create a controller; `now` anchors HyStart's first round.
    pub fn new(cfg: CubicConfig, now: Time) -> Self {
        let cwnd = cfg.initial_cwnd_packets * cfg.mss;
        let ssthresh = cfg
            .initial_ssthresh_packets
            .map(|p| p * cfg.mss)
            .unwrap_or(u64::MAX);
        let hystart = if cfg.hystart {
            Some(HyStart::new(now))
        } else {
            None
        };
        Cubic {
            cfg,
            cwnd,
            ssthresh,
            epoch_start: None,
            w_max_packets: 0.0,
            k: 0.0,
            origin_cwnd: 0,
            est_tcp_cwnd: 0.0,
            recovery_start: None,
            in_recovery_now: false,
            prr: Prr::default(),
            hystart,
            app_limited_latch: false,
        }
    }

    fn max_cwnd_bytes(&self) -> u64 {
        self.cfg
            .max_cwnd_packets
            .map(|p| p * self.cfg.mss)
            .unwrap_or(u64::MAX)
    }

    fn min_cwnd_bytes(&self) -> u64 {
        MIN_CWND_PACKETS * self.cfg.mss
    }

    fn clamp_cwnd(&mut self) {
        self.cwnd = self
            .cwnd
            .clamp(self.min_cwnd_bytes(), self.max_cwnd_bytes());
    }

    /// Cubic window as a function of elapsed time since the epoch.
    fn cubic_window(&self, elapsed: Dur) -> u64 {
        let t = elapsed.as_secs_f64();
        let delta_packets = CUBIC_C * (t - self.k).powi(3);
        let target_packets = self.w_max_packets + delta_packets;
        let origin_packets = self.origin_cwnd as f64 / self.cfg.mss as f64;
        // The curve passes through origin_cwnd at t = 0 by construction
        // (w_max*(plateau)); guard against numeric dips below the floor.
        let floor = origin_packets.min(MIN_CWND_PACKETS as f64);
        (target_packets.max(floor) * self.cfg.mss as f64) as u64
    }

    /// Begin a new cubic epoch from the current window.
    fn reset_epoch(&mut self, now: Time) {
        self.epoch_start = Some(now);
        self.origin_cwnd = self.cwnd;
        let cwnd_packets = self.cwnd as f64 / self.cfg.mss as f64;
        if self.w_max_packets <= cwnd_packets {
            // We are past the old maximum: restart the curve here.
            self.k = 0.0;
            self.w_max_packets = cwnd_packets;
        } else {
            self.k = ((self.w_max_packets - cwnd_packets) / CUBIC_C).cbrt();
        }
        self.est_tcp_cwnd = self.cwnd as f64;
    }
}

impl CongestionControl for Cubic {
    fn on_packet_sent(&mut self, _now: Time, bytes: u64, _in_flight_after: u64) {
        self.prr.on_sent(bytes);
    }

    fn on_ack(
        &mut self,
        now: Time,
        newest_acked_sent_at: Time,
        acked_bytes: u64,
        rtt: &RttEstimator,
        in_flight: u64,
        app_limited: bool,
    ) {
        self.prr.on_ack(acked_bytes);
        self.app_limited_latch = app_limited;

        // Recovery ends when data sent after the recovery start is acked.
        if self.in_recovery_now {
            if let Some(start) = self.recovery_start {
                if newest_acked_sent_at > start {
                    self.in_recovery_now = false;
                    self.prr.exit();
                }
            }
        }
        if self.in_recovery_now {
            return; // No window growth during recovery.
        }

        // Application-limited: do not grow the window (gQUIC behavior).
        if app_limited && in_flight < self.cwnd {
            return;
        }

        if self.cwnd < self.ssthresh {
            // Slow start: byte-counting exponential growth.
            self.cwnd += acked_bytes.min(self.cfg.mss);
            self.clamp_cwnd();
            if let Some(h) = self.hystart.as_mut() {
                if h.on_ack(now, newest_acked_sent_at, rtt.latest()) {
                    self.ssthresh = self.cwnd;
                }
            }
            if self.cwnd < self.ssthresh {
                return;
            }
            // Fall through into CA on exact boundary.
        }

        // Congestion avoidance: cubic + Reno-friendly region.
        if self.epoch_start.is_none() {
            self.reset_epoch(now);
        }
        let epoch = self.epoch_start.expect("epoch initialized above");
        // gQUIC adds min_rtt so the target reflects window at arrival of
        // the next ack.
        let elapsed = now.saturating_since(epoch) + rtt.min_rtt();
        let cubic_target = self.cubic_window(elapsed);
        self.est_tcp_cwnd += self.cfg.alpha() * acked_bytes as f64 / self.est_tcp_cwnd.max(1.0)
            * self.cfg.mss as f64;
        let target = cubic_target.max(self.est_tcp_cwnd as u64);
        // Never grow more than half the acked bytes per ack (gQUIC caps
        // growth rate to stay within 2x per RTT even in CA).
        let max_step = acked_bytes.max(1);
        self.cwnd = target.min(self.cwnd + max_step);
        self.clamp_cwnd();
    }

    fn on_congestion_event(
        &mut self,
        now: Time,
        lost_sent_at: Time,
        _lost_bytes: u64,
        in_flight: u64,
    ) {
        if self.in_recovery(lost_sent_at) {
            return; // Already reacted this epoch.
        }
        let cwnd_packets = self.cwnd as f64 / self.cfg.mss as f64;
        if self.cfg.fast_convergence && cwnd_packets < self.w_max_packets {
            self.w_max_packets = cwnd_packets * (1.0 + self.cfg.beta()) / 2.0;
        } else {
            self.w_max_packets = cwnd_packets;
        }
        self.cwnd = (self.cwnd as f64 * self.cfg.beta()) as u64;
        self.clamp_cwnd();
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
        self.recovery_start = Some(now);
        self.in_recovery_now = true;
        if self.cfg.prr {
            self.prr.enter(in_flight, self.ssthresh);
        }
    }

    fn on_rto(&mut self, now: Time) {
        let cwnd_packets = self.cwnd as f64 / self.cfg.mss as f64;
        self.w_max_packets = cwnd_packets;
        self.ssthresh = ((self.cwnd as f64 * self.cfg.beta()) as u64).max(self.min_cwnd_bytes());
        self.cwnd = self.min_cwnd_bytes();
        self.epoch_start = None;
        self.recovery_start = Some(now);
        self.in_recovery_now = false;
        self.prr.exit();
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn can_send(&self, in_flight: u64, bytes: u64) -> bool {
        if self.in_recovery_now && self.cfg.prr {
            return self.prr.can_send(in_flight, self.cfg.mss);
        }
        in_flight + bytes <= self.cwnd
    }

    fn in_recovery(&self, sent_at: Time) -> bool {
        match self.recovery_start {
            Some(start) => sent_at <= start,
            None => false,
        }
    }

    fn phase(&self, _now: Time) -> CcPhase {
        if self.in_recovery_now {
            CcPhase::Recovery
        } else if self.cwnd >= self.max_cwnd_bytes() {
            // The MACW clamp dominates: the window cannot grow regardless
            // of the slow-start threshold.
            CcPhase::CaMaxed
        } else if self.cwnd < self.ssthresh {
            CcPhase::SlowStart
        } else {
            CcPhase::CongestionAvoidance
        }
    }

    fn pacing_rate_bps(&self, rtt: &RttEstimator) -> f64 {
        let bw = self.cwnd as f64 * 8.0 / rtt.srtt().as_secs_f64().max(1e-6);
        if self.cwnd < self.ssthresh {
            2.0 * bw
        } else {
            1.25 * bw
        }
    }

    fn state_label(&self, now: Time) -> &'static str {
        match self.phase(now) {
            CcPhase::SlowStart => CcState::SlowStart.label(),
            CcPhase::CongestionAvoidance => CcState::CongestionAvoidance.label(),
            CcPhase::CaMaxed => CcState::CaMaxed.label(),
            CcPhase::Recovery => CcState::Recovery.label(),
        }
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1350;

    fn rtt36() -> RttEstimator {
        let mut r = RttEstimator::new(Dur::from_millis(36));
        r.on_sample(Dur::from_millis(36), Dur::ZERO);
        r
    }

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn n_connection_scaling() {
        let one = CubicConfig {
            num_connections: 1,
            ..CubicConfig::quic34(MSS)
        };
        let two = CubicConfig::quic34(MSS);
        assert!((one.beta() - 0.7).abs() < 1e-12);
        assert!((two.beta() - 0.85).abs() < 1e-12);
        // alpha(1) = 3*0.3/1.7 = 0.529..., alpha(2) = 12*0.15/1.85 = 0.973...
        assert!((one.alpha() - 0.5294).abs() < 1e-3);
        assert!((two.alpha() - 0.9730).abs() < 1e-3);
        assert!(two.alpha() > one.alpha(), "N=2 grows faster in CA");
    }

    #[test]
    fn initial_window() {
        let c = Cubic::new(CubicConfig::quic34(MSS), t(0));
        assert_eq!(c.cwnd(), 32 * MSS);
        let l = Cubic::new(CubicConfig::linux_tcp(MSS), t(0));
        assert_eq!(l.cwnd(), 10 * MSS);
    }

    #[test]
    fn slow_start_doubles_per_round() {
        let mut cfg = CubicConfig::quic34(MSS);
        cfg.hystart = false;
        let mut c = Cubic::new(cfg, t(0));
        let rtt = rtt36();
        let start = c.cwnd();
        // Ack one full window worth of data.
        let mut acked = 0;
        while acked < start {
            c.on_ack(t(36), t(0), MSS, &rtt, start - acked, false);
            acked += MSS;
        }
        assert_eq!(c.cwnd(), 2 * start);
    }

    #[test]
    fn macw_clamps_growth_and_reports_maxed() {
        let mut cfg = CubicConfig::quic34(MSS);
        cfg.hystart = false;
        cfg.max_cwnd_packets = Some(40);
        let mut c = Cubic::new(cfg, t(0));
        let rtt = rtt36();
        for i in 0..100 {
            c.on_ack(t(36 + i), t(0), MSS, &rtt, c.cwnd(), false);
        }
        assert_eq!(c.cwnd(), 40 * MSS);
        assert_eq!(c.phase(t(200)), CcPhase::CaMaxed);
        assert_eq!(c.state_label(t(200)), "CongestionAvoidanceMaxed");
    }

    #[test]
    fn loss_multiplies_window_by_beta() {
        let mut cfg = CubicConfig::quic34(MSS);
        cfg.hystart = false;
        cfg.prr = false;
        let mut c = Cubic::new(cfg, t(0));
        let before = c.cwnd();
        c.on_congestion_event(t(100), t(90), MSS, before);
        let expect = (before as f64 * 0.85) as u64;
        assert_eq!(c.cwnd(), expect);
        assert_eq!(c.phase(t(100)), CcPhase::Recovery);
    }

    #[test]
    fn losses_within_one_epoch_reduce_once() {
        let mut c = Cubic::new(CubicConfig::quic34(MSS), t(0));
        let before = c.cwnd();
        c.on_congestion_event(t(100), t(90), MSS, before);
        let after_first = c.cwnd();
        // Second loss for a packet sent before the recovery started.
        c.on_congestion_event(t(101), t(95), MSS, after_first);
        assert_eq!(c.cwnd(), after_first, "no double reduction");
        // A loss for data sent after recovery began does reduce again.
        c.on_congestion_event(t(200), t(150), MSS, after_first);
        assert!(c.cwnd() < after_first);
    }

    #[test]
    fn recovery_exits_when_new_data_acked() {
        let mut c = Cubic::new(CubicConfig::quic34(MSS), t(0));
        let rtt = rtt36();
        c.on_congestion_event(t(100), t(90), MSS, c.cwnd());
        assert_eq!(c.phase(t(100)), CcPhase::Recovery);
        // Ack data sent during recovery.
        c.on_ack(t(150), t(120), MSS, &rtt, c.cwnd() / 2, false);
        assert_ne!(c.phase(t(150)), CcPhase::Recovery);
    }

    #[test]
    fn cubic_growth_resumes_toward_wmax() {
        let mut cfg = CubicConfig::quic34(MSS);
        cfg.hystart = false;
        cfg.prr = false;
        cfg.max_cwnd_packets = None;
        let mut c = Cubic::new(cfg, t(0));
        let rtt = rtt36();
        // Grow to 100 packets, then lose.
        for i in 0..80 {
            c.on_ack(t(36 + i), t(i), MSS, &rtt, c.cwnd(), false);
        }
        let peak = c.cwnd();
        c.on_congestion_event(t(200), t(199), MSS, peak);
        let reduced = c.cwnd();
        assert!(reduced < peak);
        // Exit recovery, then grow for several seconds of acks.
        let mut now_ms = 300;
        for _ in 0..2000 {
            c.on_ack(t(now_ms), t(now_ms - 10), MSS, &rtt, c.cwnd(), false);
            now_ms += 9;
        }
        assert!(
            c.cwnd() > peak,
            "cubic should re-reach and exceed W_max: {} vs {}",
            c.cwnd(),
            peak
        );
    }

    #[test]
    fn rto_collapses_window() {
        let mut c = Cubic::new(CubicConfig::quic34(MSS), t(0));
        let before = c.cwnd();
        c.on_rto(t(500));
        assert_eq!(c.cwnd(), 2 * MSS);
        assert!(c.ssthresh() < before);
        assert!(c.ssthresh() >= 2 * MSS);
    }

    #[test]
    fn buggy_ssthresh_exits_slow_start_early() {
        // The Chromium 52 bug: ssthresh fixed low. Growth stops doubling
        // at 38 packets instead of rising to the BDP.
        let mut cfg = CubicConfig::quic34(MSS);
        cfg.hystart = false;
        cfg.initial_ssthresh_packets = Some(38);
        let mut c = Cubic::new(cfg, t(0));
        let rtt = rtt36();
        for i in 0..40 {
            c.on_ack(t(36 + i), t(0), MSS, &rtt, c.cwnd(), false);
        }
        // Already in CA even though we've acked only ~40 packets.
        assert_eq!(c.phase(t(100)), CcPhase::CongestionAvoidance);
        assert!(c.cwnd() < 50 * MSS);
    }

    #[test]
    fn app_limited_acks_do_not_grow_window() {
        let mut cfg = CubicConfig::quic34(MSS);
        cfg.hystart = false;
        let mut c = Cubic::new(cfg, t(0));
        let rtt = rtt36();
        let before = c.cwnd();
        for i in 0..50 {
            c.on_ack(t(36 + i), t(0), MSS, &rtt, MSS, true);
        }
        assert_eq!(c.cwnd(), before);
    }

    #[test]
    fn prr_gates_sending_in_recovery() {
        let mut c = Cubic::new(CubicConfig::quic34(MSS), t(0));
        let in_flight = c.cwnd();
        c.on_congestion_event(t(100), t(90), MSS, in_flight);
        // Immediately after entering recovery nothing was delivered, so
        // PRR blocks even though in_flight < cwnd might hold.
        assert!(!c.can_send(in_flight - MSS, MSS));
        let rtt = rtt36();
        // Deliver a few packets: budget opens.
        c.on_ack(t(110), t(95), 4 * MSS, &rtt, in_flight - 4 * MSS, false);
        // (ack of pre-recovery data keeps us in recovery)
        assert!(c.can_send(in_flight - 4 * MSS, MSS));
    }

    #[test]
    fn can_send_respects_cwnd() {
        let c = Cubic::new(CubicConfig::quic34(MSS), t(0));
        assert!(c.can_send(0, MSS));
        assert!(c.can_send(31 * MSS, MSS));
        assert!(!c.can_send(32 * MSS, MSS));
    }

    #[test]
    fn pacing_rate_reflects_phase() {
        let mut cfg = CubicConfig::quic34(MSS);
        cfg.hystart = false;
        let mut c = Cubic::new(cfg, t(0));
        let rtt = rtt36();
        let ss_rate = c.pacing_rate_bps(&rtt);
        // Force into CA.
        c.on_congestion_event(t(10), t(5), MSS, c.cwnd());
        c.on_ack(t(50), t(20), MSS, &rtt, c.cwnd(), false);
        let ca_rate = c.pacing_rate_bps(&rtt);
        let bw = c.cwnd() as f64 * 8.0 / 0.036;
        assert!((ca_rate / bw - 1.25).abs() < 0.01);
        assert!(ss_rate > ca_rate);
    }
}
