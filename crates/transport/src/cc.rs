//! The congestion-control interface shared by Cubic and BBR.
//!
//! All quantities are in bytes; time comes from the simulation clock. The
//! trait is deliberately close to gQUIC's `SendAlgorithmInterface` so the
//! QUIC and TCP connection models drive it identically and differences
//! between the protocols come from *their* machinery (ack ambiguity, loss
//! detection, delayed acks), not from divergent CC plumbing.

use crate::rtt::RttEstimator;
use longlook_sim::time::Time;

/// Coarse phase used for state-trace labelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcPhase {
    /// Exponential growth below ssthresh.
    SlowStart,
    /// Cubic/Reno window growth.
    CongestionAvoidance,
    /// Clamped at the maximum allowed congestion window (QUIC's MACW).
    CaMaxed,
    /// Fast recovery (PRR) in progress.
    Recovery,
}

/// A pluggable congestion controller.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// A packet carrying `bytes` left the sender; `in_flight_after`
    /// includes it.
    fn on_packet_sent(&mut self, now: Time, bytes: u64, in_flight_after: u64);

    /// Newly acked bytes. `newest_acked_sent_at` is the send time of the
    /// most recent packet covered by this ack (round/recovery epoch
    /// bookkeeping); `app_limited` reports whether the sender was unable
    /// to fill the window when the acked data was sent.
    fn on_ack(
        &mut self,
        now: Time,
        newest_acked_sent_at: Time,
        acked_bytes: u64,
        rtt: &RttEstimator,
        in_flight: u64,
        app_limited: bool,
    );

    /// A loss was detected for a packet sent at `lost_sent_at`. The
    /// controller decides whether this starts a new recovery epoch.
    fn on_congestion_event(
        &mut self,
        now: Time,
        lost_sent_at: Time,
        lost_bytes: u64,
        in_flight: u64,
    );

    /// The retransmission timer fired.
    fn on_rto(&mut self, now: Time);

    /// Current congestion window in bytes.
    fn cwnd(&self) -> u64;

    /// Current slow-start threshold in bytes (`u64::MAX` when unset).
    fn ssthresh(&self) -> u64;

    /// Whether a packet of `bytes` may be sent with `in_flight` bytes
    /// outstanding (congestion window plus any recovery rate gate).
    fn can_send(&self, in_flight: u64, bytes: u64) -> bool;

    /// Whether the given send time falls inside the current recovery
    /// epoch (losses there don't trigger another reduction).
    fn in_recovery(&self, sent_at: Time) -> bool;

    /// Current phase for state labelling.
    fn phase(&self, now: Time) -> CcPhase;

    /// Pacing rate in bits/sec (callers may ignore if pacing disabled).
    fn pacing_rate_bps(&self, rtt: &RttEstimator) -> f64;

    /// Human-readable label of the current state for trace logging. For
    /// Cubic this maps phases onto the paper's Table 3 labels; BBR reports
    /// its own four states (Fig 3b).
    fn state_label(&self, now: Time) -> &'static str;

    /// Whether the connection should overlay its own states (Init,
    /// ApplicationLimited, RTO, TailLossProbe) on top of the controller's
    /// labels. True for Cubic (Fig 3a), false for BBR (Fig 3b).
    fn overlay_connection_states(&self) -> bool {
        true
    }

    /// Controller name for reports.
    fn name(&self) -> &'static str;
}
