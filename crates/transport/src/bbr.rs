//! A simplified BBR congestion controller.
//!
//! The paper instrumented gQUIC's *experimental* BBR to show the inference
//! approach generalizes beyond Cubic (Fig 3b): Startup → Drain → ProbeBW
//! with periodic ProbeRTT excursions. This implementation follows the
//! published BBR v1 sketch — windowed-max bandwidth filter, windowed-min
//! RTT filter, pacing-gain cycling — at the fidelity needed for state
//! machine extraction and the CC ablation benches, not as a tuned
//! production controller (Google told the authors BBR was "not yet
//! performing as well as Cubic" at the time).

use crate::cc::{CcPhase, CongestionControl};
use crate::ccstate::BbrState;
use crate::rtt::RttEstimator;
use longlook_sim::time::{Dur, Time};

/// Startup/Drain pacing gain: 2/ln(2).
const STARTUP_GAIN: f64 = 2.885;
/// ProbeBW gain cycle.
const CYCLE_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// How long a bandwidth sample stays in the max filter.
const BW_WINDOW: Dur = Dur::from_secs(2);
/// Re-probe min RTT at least this often.
const MIN_RTT_WINDOW: Dur = Dur::from_secs(10);
/// Duration of a ProbeRTT excursion.
const PROBE_RTT_DURATION: Dur = Dur::from_millis(200);

/// Simplified BBR.
#[derive(Debug)]
pub struct Bbr {
    mss: u64,
    state: BbrState,
    cwnd: u64,
    /// `(sample_time, bits_per_sec)` bandwidth samples.
    bw_samples: Vec<(Time, f64)>,
    min_rtt: Dur,
    min_rtt_at: Time,
    /// Bandwidth plateau detection in Startup.
    full_bw: f64,
    full_bw_rounds: u32,
    /// ProbeBW cycle position.
    cycle_index: usize,
    cycle_start: Time,
    probe_rtt_done_at: Option<Time>,
    /// Last ack time, for delivery-rate estimation.
    last_ack_at: Option<Time>,
    recovery_start: Option<Time>,
}

impl Bbr {
    /// Create a BBR controller.
    pub fn new(mss: u64, _now: Time) -> Self {
        Bbr {
            mss,
            state: BbrState::Startup,
            cwnd: 32 * mss,
            bw_samples: Vec::new(),
            min_rtt: Dur::MAX,
            min_rtt_at: Time::ZERO,
            full_bw: 0.0,
            full_bw_rounds: 0,
            cycle_index: 0,
            cycle_start: Time::ZERO,
            probe_rtt_done_at: None,
            last_ack_at: None,
            recovery_start: None,
        }
    }

    /// Current BBR state (for Fig 3b traces).
    pub fn bbr_state(&self) -> BbrState {
        self.state
    }

    fn max_bw(&self) -> f64 {
        self.bw_samples
            .iter()
            .map(|&(_, bw)| bw)
            .fold(0.0, f64::max)
    }

    fn bdp_bytes(&self) -> u64 {
        if self.min_rtt == Dur::MAX {
            return 64 * self.mss;
        }
        ((self.max_bw() / 8.0) * self.min_rtt.as_secs_f64()).max(4.0 * self.mss as f64) as u64
    }

    fn pacing_gain(&self) -> f64 {
        match self.state {
            BbrState::Startup => STARTUP_GAIN,
            BbrState::Drain => 1.0 / STARTUP_GAIN,
            BbrState::ProbeBw => CYCLE_GAINS[self.cycle_index],
            BbrState::ProbeRtt => 1.0,
        }
    }

    fn update_cwnd(&mut self) {
        self.cwnd = match self.state {
            BbrState::ProbeRtt => 4 * self.mss,
            BbrState::Startup => (2.0 * self.bdp_bytes() as f64) as u64,
            _ => (2.0 * self.bdp_bytes() as f64) as u64,
        }
        .max(4 * self.mss);
    }
}

impl CongestionControl for Bbr {
    fn on_packet_sent(&mut self, _now: Time, _bytes: u64, _in_flight_after: u64) {}

    fn on_ack(
        &mut self,
        now: Time,
        _newest_acked_sent_at: Time,
        acked_bytes: u64,
        rtt: &RttEstimator,
        in_flight: u64,
        app_limited: bool,
    ) {
        // Delivery-rate sample from inter-ack spacing.
        if let Some(prev) = self.last_ack_at {
            let gap = now.saturating_since(prev);
            if gap > Dur::ZERO && !app_limited {
                let bw = acked_bytes as f64 * 8.0 / gap.as_secs_f64();
                self.bw_samples.push((now, bw));
            }
        }
        self.last_ack_at = Some(now);
        self.bw_samples
            .retain(|&(t, _)| now.saturating_since(t) <= BW_WINDOW);

        // Min RTT filter: only ever tightens here. A stale window is not
        // refreshed in place — staleness of `min_rtt_at` is what drives
        // the ProbeBW -> ProbeRTT transition below, and ProbeRTT takes a
        // fresh sample on exit.
        let sample = rtt.latest();
        if sample < self.min_rtt {
            self.min_rtt = sample;
            self.min_rtt_at = now;
        }

        match self.state {
            BbrState::Startup => {
                let bw = self.max_bw();
                if bw > self.full_bw * 1.25 {
                    self.full_bw = bw;
                    self.full_bw_rounds = 0;
                } else if bw > 0.0 {
                    self.full_bw_rounds += 1;
                    if self.full_bw_rounds >= 3 {
                        self.state = BbrState::Drain;
                    }
                }
            }
            BbrState::Drain => {
                if in_flight <= self.bdp_bytes() {
                    self.state = BbrState::ProbeBw;
                    self.cycle_start = now;
                    self.cycle_index = 0;
                }
            }
            BbrState::ProbeBw => {
                let phase_len = self.min_rtt.min(Dur::from_millis(200));
                if now.saturating_since(self.cycle_start) >= phase_len {
                    self.cycle_index = (self.cycle_index + 1) % CYCLE_GAINS.len();
                    self.cycle_start = now;
                }
                if now.saturating_since(self.min_rtt_at) > MIN_RTT_WINDOW {
                    self.state = BbrState::ProbeRtt;
                    self.probe_rtt_done_at = Some(now + PROBE_RTT_DURATION);
                }
            }
            BbrState::ProbeRtt => {
                if let Some(done) = self.probe_rtt_done_at {
                    if now >= done {
                        self.min_rtt = sample;
                        self.min_rtt_at = now;
                        self.state = BbrState::ProbeBw;
                        self.cycle_start = now;
                    }
                }
            }
        }
        self.update_cwnd();
    }

    fn on_congestion_event(
        &mut self,
        now: Time,
        lost_sent_at: Time,
        _lost_bytes: u64,
        _in_flight: u64,
    ) {
        // BBR v1 largely ignores individual losses; just note the epoch.
        if !self.in_recovery(lost_sent_at) {
            self.recovery_start = Some(now);
        }
    }

    fn on_rto(&mut self, _now: Time) {
        self.cwnd = 4 * self.mss;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        u64::MAX
    }

    fn can_send(&self, in_flight: u64, bytes: u64) -> bool {
        in_flight + bytes <= self.cwnd
    }

    fn in_recovery(&self, sent_at: Time) -> bool {
        matches!(self.recovery_start, Some(start) if sent_at <= start)
    }

    fn phase(&self, _now: Time) -> CcPhase {
        match self.state {
            BbrState::Startup => CcPhase::SlowStart,
            _ => CcPhase::CongestionAvoidance,
        }
    }

    fn pacing_rate_bps(&self, rtt: &RttEstimator) -> f64 {
        let bw = self.max_bw();
        let base = if bw > 0.0 {
            bw
        } else {
            self.cwnd as f64 * 8.0 / rtt.srtt().as_secs_f64().max(1e-6)
        };
        base * self.pacing_gain()
    }

    fn state_label(&self, _now: Time) -> &'static str {
        self.state.label()
    }

    fn overlay_connection_states(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "bbr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1350;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    fn rtt(ms_val: u64) -> RttEstimator {
        let mut r = RttEstimator::new(Dur::from_millis(100));
        r.on_sample(Dur::from_millis(ms_val), Dur::ZERO);
        r
    }

    /// Feed a steady ack clock: `acks` acks, 10ms apart, `bytes` each.
    fn steady_acks(b: &mut Bbr, start_ms: u64, acks: u64, bytes: u64, in_flight: u64) {
        let r = rtt(36);
        for i in 0..acks {
            b.on_ack(
                t(start_ms + 10 * i),
                t(start_ms),
                bytes,
                &r,
                in_flight,
                false,
            );
        }
    }

    #[test]
    fn starts_in_startup() {
        let b = Bbr::new(MSS, t(0));
        assert_eq!(b.bbr_state(), BbrState::Startup);
        assert_eq!(b.state_label(t(0)), "Startup");
        assert!(!b.overlay_connection_states());
    }

    #[test]
    fn plateau_moves_to_drain_then_probebw() {
        let mut b = Bbr::new(MSS, t(0));
        // Constant delivery rate: bandwidth stops growing -> Drain.
        steady_acks(&mut b, 0, 30, 10 * MSS, 100 * MSS);
        assert_ne!(b.bbr_state(), BbrState::Startup, "should leave startup");
        // Small in_flight drains the queue -> ProbeBW.
        let r = rtt(36);
        b.on_ack(t(1000), t(990), MSS, &r, MSS, false);
        assert_eq!(b.bbr_state(), BbrState::ProbeBw);
    }

    #[test]
    fn probe_rtt_entered_when_min_rtt_stale() {
        let mut b = Bbr::new(MSS, t(0));
        steady_acks(&mut b, 0, 30, 10 * MSS, 100 * MSS);
        let r = rtt(36);
        b.on_ack(t(1000), t(990), MSS, &r, MSS, false);
        assert_eq!(b.bbr_state(), BbrState::ProbeBw);
        // 11 seconds later the min-RTT sample is stale.
        b.on_ack(t(12_000), t(11_990), MSS, &r, 10 * MSS, false);
        assert_eq!(b.bbr_state(), BbrState::ProbeRtt);
        assert_eq!(b.cwnd(), 4 * MSS, "ProbeRTT shrinks the window");
        // After the excursion it returns to ProbeBW.
        b.on_ack(t(12_300), t(12_290), MSS, &r, 2 * MSS, false);
        assert_eq!(b.bbr_state(), BbrState::ProbeBw);
    }

    #[test]
    fn cwnd_tracks_bdp() {
        let mut b = Bbr::new(MSS, t(0));
        steady_acks(&mut b, 0, 20, 10 * MSS, 100 * MSS);
        // Delivery rate = 10 MSS per 10ms = 1000 pkts/s = 10.8 Mbps;
        // min_rtt = 36ms -> BDP = 48.6KB; cwnd ~ 2 BDP.
        let bdp = (10.0 * MSS as f64 / 0.010) * 0.036;
        let expect = 2.0 * bdp;
        let got = b.cwnd() as f64;
        assert!(
            (got / expect - 1.0).abs() < 0.3,
            "cwnd {} vs 2*BDP {}",
            got,
            expect
        );
    }

    #[test]
    fn app_limited_samples_excluded() {
        let mut b = Bbr::new(MSS, t(0));
        let r = rtt(36);
        b.on_ack(t(0), t(0), 100 * MSS, &r, MSS, true);
        b.on_ack(t(10), t(0), 100 * MSS, &r, MSS, true);
        assert_eq!(b.max_bw(), 0.0, "app-limited acks produce no bw samples");
    }

    #[test]
    fn loss_does_not_collapse_window() {
        let mut b = Bbr::new(MSS, t(0));
        steady_acks(&mut b, 0, 20, 10 * MSS, 100 * MSS);
        let before = b.cwnd();
        b.on_congestion_event(t(300), t(290), MSS, 50 * MSS);
        assert_eq!(b.cwnd(), before, "BBR v1 ignores isolated losses");
    }
}
