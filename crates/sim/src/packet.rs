//! Packets and addressing.

use bytes::Bytes;

/// Identifies a node (host, router, proxy) in the simulated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Demultiplexing key: identifies a transport connection end-to-end.
/// The 4-tuple of a real network collapses to a single u64 here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// How the receiving host processes this packet — the kernel/userspace
/// distinction at the heart of the paper's mobile findings (Sec 5.2,
/// Fig 13): QUIC packets are decrypted and processed in an application
/// process, TCP segments in the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PktClass {
    /// Processed in userspace (QUIC over UDP).
    Userspace,
    /// Processed in the kernel (TCP).
    Kernel,
}

/// A simulated packet.
///
/// Payload bytes carry the *encoded protocol control information* (headers
/// and frames); bulk object data is synthetic, accounted only by
/// `wire_size`, which is the full on-the-wire size the link models charge
/// for. This keeps a 210 MB download from allocating 210 MB.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Sending node.
    pub src: NodeId,
    /// Destination node (must be adjacent via a link).
    pub dst: NodeId,
    /// Connection demux key.
    pub flow: FlowId,
    /// Receive-side processing class.
    pub class: PktClass,
    /// Total bytes on the wire (headers + control + synthetic payload).
    pub wire_size: u32,
    /// Encoded control bytes (protocol headers and frames).
    pub payload: Bytes,
}

impl Packet {
    /// Convenience constructor.
    pub fn new(
        src: NodeId,
        dst: NodeId,
        flow: FlowId,
        class: PktClass,
        wire_size: u32,
        payload: Bytes,
    ) -> Self {
        Packet {
            src,
            dst,
            flow,
            class,
            wire_size,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_fields() {
        let p = Packet::new(
            NodeId(1),
            NodeId(2),
            FlowId(7),
            PktClass::Userspace,
            1350,
            Bytes::from_static(b"hdr"),
        );
        assert_eq!(p.src, NodeId(1));
        assert_eq!(p.dst, NodeId(2));
        assert_eq!(p.flow, FlowId(7));
        assert_eq!(p.wire_size, 1350);
        assert_eq!(&p.payload[..], b"hdr");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(NodeId(1));
        s.insert(NodeId(1));
        assert_eq!(s.len(), 1);
        assert!(FlowId(1) < FlowId(2));
    }
}
