//! Packets and addressing.

use bytes::Bytes;
use longlook_wire::quic::QuicPacket;
use longlook_wire::tcp::TcpSegment;

/// Identifies a node (host, router, proxy) in the simulated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Demultiplexing key: identifies a transport connection end-to-end.
/// The 4-tuple of a real network collapses to a single u64 here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// How the receiving host processes this packet — the kernel/userspace
/// distinction at the heart of the paper's mobile findings (Sec 5.2,
/// Fig 13): QUIC packets are decrypted and processed in an application
/// process, TCP segments in the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PktClass {
    /// Processed in userspace (QUIC over UDP).
    Userspace,
    /// Processed in the kernel (TCP).
    Kernel,
}

/// What a packet carries between endpoints.
///
/// The structured variants hand the typed protocol structure to the peer
/// by value — no serialization, no reparse — while the link layers charge
/// the same analytic wire sizes either way. `Wire` is the reference
/// encoded path (`LONGLOOK_WIRE=encoded`), kept for differential testing.
/// Links never look inside: loss and corruption drop whole packets, they
/// never forge bytes.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Encoded protocol control bytes (headers and frames).
    Wire(Bytes),
    /// A typed QUIC packet carried in memory.
    Quic(QuicPacket),
    /// A typed TCP segment carried in memory.
    Tcp(TcpSegment),
}

impl Payload {
    /// An empty encoded payload (control packets in simulator-level tests).
    pub fn empty() -> Payload {
        Payload::Wire(Bytes::new())
    }

    /// The encoded bytes, if this is a `Wire` payload.
    pub fn as_wire(&self) -> Option<&Bytes> {
        match self {
            Payload::Wire(b) => Some(b),
            _ => None,
        }
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Payload {
        Payload::Wire(b)
    }
}

impl From<QuicPacket> for Payload {
    fn from(p: QuicPacket) -> Payload {
        Payload::Quic(p)
    }
}

impl From<TcpSegment> for Payload {
    fn from(s: TcpSegment) -> Payload {
        Payload::Tcp(s)
    }
}

/// A simulated packet.
///
/// The payload carries the *protocol control information* (typed on the
/// structured fast path, encoded on the reference path); bulk object data
/// is synthetic, accounted only by `wire_size`, which is the full
/// on-the-wire size the link models charge for. This keeps a 210 MB
/// download from allocating 210 MB.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Sending node.
    pub src: NodeId,
    /// Destination node (must be adjacent via a link).
    pub dst: NodeId,
    /// Connection demux key.
    pub flow: FlowId,
    /// Receive-side processing class.
    pub class: PktClass,
    /// Total bytes on the wire (headers + control + synthetic payload).
    pub wire_size: u32,
    /// Protocol control information (typed or encoded).
    pub payload: Payload,
}

impl Packet {
    /// Convenience constructor.
    pub fn new(
        src: NodeId,
        dst: NodeId,
        flow: FlowId,
        class: PktClass,
        wire_size: u32,
        payload: impl Into<Payload>,
    ) -> Self {
        Packet {
            src,
            dst,
            flow,
            class,
            wire_size,
            payload: payload.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_fields() {
        let p = Packet::new(
            NodeId(1),
            NodeId(2),
            FlowId(7),
            PktClass::Userspace,
            1350,
            Bytes::from_static(b"hdr"),
        );
        assert_eq!(p.src, NodeId(1));
        assert_eq!(p.dst, NodeId(2));
        assert_eq!(p.flow, FlowId(7));
        assert_eq!(p.wire_size, 1350);
        assert_eq!(&p.payload.as_wire().expect("wire payload")[..], b"hdr");
    }

    #[test]
    fn payload_conversions() {
        let q = QuicPacket {
            conn_id: 1,
            pn: 2,
            frames: Vec::new(),
        };
        assert!(matches!(Payload::from(q), Payload::Quic(_)));
        let t = TcpSegment::control(0, 0, 0, 100);
        let p: Payload = t.into();
        assert!(matches!(p, Payload::Tcp(_)));
        assert!(p.as_wire().is_none());
        assert_eq!(&Payload::empty().as_wire().expect("wire")[..], b"");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(NodeId(1));
        s.insert(NodeId(1));
        assert_eq!(s.len(), 1);
        assert!(FlowId(1) < FlowId(2));
    }
}
