//! The discrete-event world: nodes, links, and the event loop.
//!
//! Agents (hosts, proxies) are event-driven state machines in the smoltcp
//! tradition: the world delivers packets and wakeups, agents respond by
//! emitting packets and requesting future wakeups through [`Ctx`]. No
//! threads, no wall clock — a seeded world replays identically.

use crate::device::{DeviceCpu, DeviceProfile};
use crate::link::{LinkConfig, LinkDir, LinkStats, Verdict};
use crate::packet::{NodeId, Packet};
use crate::rng::{IsolationTag, SimRng};
use crate::sched::{EventQueue, SchedKind};
use crate::time::Time;
use longlook_wire::BatchMode;
use std::any::Any;

/// Interface the world hands an agent during a callback.
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: Time,
    node: NodeId,
    out: &'a mut Vec<Packet>,
    wakes: &'a mut Vec<Time>,
    stop: &'a mut bool,
}

impl Ctx<'_> {
    /// The agent's own node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Emit a packet. `pkt.src` must be this node and `pkt.dst` must be an
    /// adjacent node; violations panic when the outbox is drained.
    pub fn send(&mut self, pkt: Packet) {
        self.out.push(pkt);
    }

    /// Request a wakeup at (or after) `t`. Multiple requests are fine;
    /// stale wakeups are harmless no-ops for a well-written agent.
    pub fn wake_at(&mut self, t: Time) {
        self.wakes.push(t);
    }

    /// Ask the world to stop after this callback returns. Used by
    /// experiment drivers when the measured workload completes.
    pub fn request_stop(&mut self) {
        *self.stop = true;
    }
}

/// An event-driven node.
pub trait Agent: Any {
    /// A packet addressed to this node has been fully processed by the
    /// device CPU and is ready for the protocol.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>);

    /// A previously requested wakeup (or the bootstrap kick) fired.
    fn on_wakeup(&mut self, ctx: &mut Ctx<'_>);

    /// Downcast support so experiment drivers can read results back out.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[derive(Debug)]
enum Ev {
    /// Packet finished traversing the link; next it pays CPU processing.
    LinkOut(Packet),
    /// Packet processed; deliver to the agent.
    Deliver(Packet),
    /// Agent wakeup.
    Wake(NodeId),
}

struct NodeSlot {
    agent: Option<Box<dyn Agent>>,
    cpu: DeviceCpu,
    /// Earliest pending Wake event for this node (dedup: scheduling a
    /// wake at or after this instant is a no-op).
    pending_wake: Option<Time>,
}

/// The simulated world.
pub struct World {
    now: Time,
    queue: EventQueue<Ev>,
    nodes: Vec<NodeSlot>,
    /// Directed links, keyed by `(src, dst)`. A flat vector: topologies
    /// are a handful of links, so the per-packet lookup in `route` is a
    /// short linear scan instead of a tuple hash.
    links: Vec<((NodeId, NodeId), LinkDir)>,
    rng: SimRng,
    stop: bool,
    events_processed: u64,
    /// Scratch outbox reused across agent callbacks (drained after each
    /// dispatch; retains capacity instead of reallocating per event).
    scratch_out: Vec<Packet>,
    /// Scratch wake-request buffer, reused like `scratch_out`.
    scratch_wakes: Vec<Time>,
    /// Fault-injected peer-stall windows: events addressed to `node`
    /// during `[from, until)` are deferred to `until`. Empty in every
    /// unfaulted run, so the per-event check is a length test.
    stalls: Vec<(NodeId, Time, Time)>,
    /// Batched hot path (`LONGLOOK_BATCH`, resolved at construction):
    /// consecutive same-instant packet deliveries to one node run in a
    /// single dispatch. Bursts drain each packet's wakes/outbox before
    /// consuming the next event, so every queue push lands with the same
    /// `(time, seq)` key as the per-event path — bit-identical replay.
    batch: bool,
    /// Debug-build cell-ownership tag (see [`crate::rng::IsolationTag`]):
    /// a `World` shared across experiment cells is caught even before any
    /// of its RNG streams draw.
    tag: IsolationTag,
}

impl World {
    /// Create a world with the given experiment seed. The scheduler backend
    /// comes from `LONGLOOK_SCHED` (timing wheel unless set to `heap`).
    pub fn new(seed: u64) -> Self {
        World::new_with_sched(seed, SchedKind::from_env())
    }

    /// Create a world with an explicit scheduler backend (used by the
    /// heap/wheel differential tests and benches; behavior is identical).
    pub fn new_with_sched(seed: u64, sched: SchedKind) -> Self {
        World {
            now: Time::ZERO,
            queue: EventQueue::new(sched),
            nodes: Vec::new(),
            links: Vec::new(),
            rng: SimRng::new(seed),
            stop: false,
            events_processed: 0,
            scratch_out: Vec::new(),
            scratch_wakes: Vec::new(),
            stalls: Vec::new(),
            batch: BatchMode::from_env().is_on(),
            tag: IsolationTag::default(),
        }
    }

    /// Which hot-path mode this world was constructed with.
    pub fn batch_mode(&self) -> BatchMode {
        if self.batch {
            BatchMode::On
        } else {
            BatchMode::Off
        }
    }

    /// Add a node running `agent` on hardware `profile`.
    pub fn add_node(&mut self, agent: Box<dyn Agent>, profile: DeviceProfile) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot {
            agent: Some(agent),
            cpu: DeviceCpu::new(profile),
            pending_wake: None,
        });
        // Each node contributes at least a wake plus a handful of packets
        // in a typical callback; keep the scratch buffers ahead of that.
        self.scratch_out.reserve(16);
        self.scratch_wakes.reserve(4);
        id
    }

    /// Connect `a -> b` with `cfg_ab` and `b -> a` with `cfg_ba`.
    /// Each direction gets an independent RNG stream.
    pub fn connect(&mut self, a: NodeId, b: NodeId, cfg_ab: LinkConfig, cfg_ba: LinkConfig) {
        self.queue
            .reserve_hint(cfg_ab.inflight_hint() + cfg_ba.inflight_hint());
        let rng_ab = self.rng.fork((a.0 as u64) << 32 | b.0 as u64);
        let rng_ba = self.rng.fork((b.0 as u64) << 32 | a.0 as u64);
        for (key, label) in [((a, b), "a->b"), ((b, a), "b->a")] {
            assert!(
                !self.links.iter().any(|(k, _)| *k == key),
                "link {label} {key:?} already exists"
            );
        }
        self.links.push(((a, b), LinkDir::new(cfg_ab, rng_ab)));
        self.links.push(((b, a), LinkDir::new(cfg_ba, rng_ba)));
    }

    /// Schedule a bootstrap wakeup so the node can start transmitting.
    pub fn kick(&mut self, node: NodeId) {
        self.schedule_wake(node, self.now);
    }

    /// Freeze `node` over `[from, until)`: every event addressed to it in
    /// that window (packets and wakeups alike) is deferred to `until`.
    /// Models a fault-injected peer stall — a suspended VM, a GC'd or
    /// swapped-out process — without touching agent code.
    pub fn stall_node(&mut self, node: NodeId, from: Time, until: Time) {
        if until > from {
            self.stalls.push((node, from, until));
        }
    }

    /// The deferral target if `node` is stalled at `t`: the latest `until`
    /// among windows covering `t` (windows may overlap).
    fn stall_until(&self, node: NodeId, t: Time) -> Option<Time> {
        self.stalls
            .iter()
            .filter(|&&(n, from, until)| n == node && from <= t && t < until)
            .map(|&(_, _, until)| until)
            .max()
    }

    /// Schedule a Wake for `node` at `at`, deduplicating against any
    /// earlier pending wake (agents re-request their next timer on every
    /// dispatch; without dedup the heap fills with stale duplicates).
    fn schedule_wake(&mut self, node: NodeId, at: Time) {
        let slot = &mut self.nodes[node.0 as usize];
        if slot.pending_wake.is_some_and(|p| p <= at) {
            return;
        }
        slot.pending_wake = Some(at);
        self.push(at, Ev::Wake(node));
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// High-water mark of simultaneously outstanding scheduled events.
    /// Correlates throughput with queue depth in bench output.
    pub fn scheduled_peak(&self) -> u64 {
        self.queue.scheduled_peak() as u64
    }

    /// Which scheduler backend this world runs on.
    pub fn sched_kind(&self) -> SchedKind {
        self.queue.kind()
    }

    /// Whether an agent requested a stop.
    pub fn stop_requested(&self) -> bool {
        self.stop
    }

    /// Clear a previous stop request (to continue a multi-phase run).
    pub fn clear_stop(&mut self) {
        self.stop = false;
    }

    /// Statistics for the `a -> b` link direction.
    pub fn link_stats(&self, a: NodeId, b: NodeId) -> Option<&LinkStats> {
        self.links
            .iter()
            .find(|(k, _)| *k == (a, b))
            .map(|(_, l)| l.stats())
    }

    /// Immutable access to an agent, downcast to its concrete type.
    pub fn agent<T: 'static>(&self, id: NodeId) -> &T {
        self.nodes[id.0 as usize]
            .agent
            .as_ref()
            .expect("agent is being dispatched")
            .as_any()
            .downcast_ref::<T>()
            .expect("agent type mismatch")
    }

    /// Mutable access to an agent, downcast to its concrete type.
    pub fn agent_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.0 as usize]
            .agent
            .as_mut()
            .expect("agent is being dispatched")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("agent type mismatch")
    }

    fn push(&mut self, at: Time, ev: Ev) {
        self.queue.push(at, ev);
    }

    /// Process one event. Returns `false` when the queue is exhausted.
    pub fn step(&mut self) -> bool {
        self.tag.check("World");
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        self.step_ev(at, ev);
        true
    }

    /// Dispatch one already-popped event (shared by `step` and the fused
    /// `run_until` loop; both check the isolation tag *before* popping so
    /// a misused World is caught even with an empty queue).
    fn step_ev(&mut self, at: Time, ev: Ev) {
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.events_processed += 1;
        if !self.stalls.is_empty() {
            let target = match &ev {
                Ev::LinkOut(pkt) | Ev::Deliver(pkt) => pkt.dst,
                Ev::Wake(node) => *node,
            };
            if let Some(until) = self.stall_until(target, at) {
                // Defer to the window end (half-open, so the re-queued
                // event at `until` is not re-stalled by the same window).
                // A deferred Wake must clear the dedup marker and re-arm
                // through schedule_wake, or later wakes would be lost.
                match ev {
                    Ev::Wake(node) => {
                        if self.nodes[node.0 as usize].pending_wake == Some(at) {
                            self.nodes[node.0 as usize].pending_wake = None;
                        }
                        self.schedule_wake(node, until);
                    }
                    deferred => self.push(until, deferred),
                }
                return;
            }
        }
        match ev {
            Ev::LinkOut(pkt) => {
                // Charge the destination's CPU, then deliver.
                let done = self.nodes[pkt.dst.0 as usize]
                    .cpu
                    .process(self.now, pkt.class);
                if done > self.now {
                    self.push(done, Ev::Deliver(pkt));
                } else if self.batch && self.stalls.is_empty() {
                    self.dispatch_burst(pkt);
                } else {
                    self.dispatch_packet(pkt);
                }
            }
            Ev::Deliver(pkt) => {
                if self.batch && self.stalls.is_empty() {
                    self.dispatch_burst(pkt);
                } else {
                    self.dispatch_packet(pkt);
                }
            }
            Ev::Wake(node) => {
                // Stale duplicates (superseded by an earlier wake) fire as
                // harmless no-ops; clear the dedup marker when the
                // earliest pending wake fires.
                if self.nodes[node.0 as usize].pending_wake == Some(self.now) {
                    self.nodes[node.0 as usize].pending_wake = None;
                }
                self.dispatch_wake(node);
            }
        }
    }

    /// Run until an agent requests a stop, the queue empties, or `deadline`
    /// passes. Returns the stop reason.
    pub fn run_until(&mut self, deadline: Time) -> RunOutcome {
        loop {
            self.tag.check("World");
            if self.stop {
                return RunOutcome::Stopped;
            }
            // Fused front check: pops only an event at or before the
            // deadline, so a beyond-deadline event stays queued exactly as
            // the peek-then-step loop left it.
            match self.queue.pop_at_most(deadline) {
                Some((at, ev)) => self.step_ev(at, ev),
                None => {
                    return if self.queue.is_empty() {
                        RunOutcome::Idle
                    } else {
                        RunOutcome::DeadlineReached
                    };
                }
            }
        }
    }

    fn dispatch_packet(&mut self, pkt: Packet) {
        let node = pkt.dst;
        self.dispatch(node, Some(pkt));
    }

    /// Batched packet delivery: after dispatching `first`, keep consuming
    /// queue-front events that are (a) at the same instant, (b) packets
    /// (never wakes), and (c) addressed to the same node — all inside one
    /// agent checkout and one scratch-buffer loan.
    ///
    /// Equivalence with the per-event path is by construction, not by
    /// approximation:
    ///
    /// * Each packet's wake requests and outbox are drained *before* the
    ///   next event is consumed, so every derived push gets the same
    ///   `(time, seq)` key as under per-event stepping. (Consumed burst
    ///   events were queued before anything this burst pushes, so popping
    ///   them early never reorders equal-time events.)
    /// * A `LinkOut` whose CPU charge lands in the future pushes its
    ///   `Deliver` exactly where the per-event loop would, then the burst
    ///   keeps scanning — subsequent same-instant arrivals see the same
    ///   busy CPU either way.
    /// * `events_processed` advances once per consumed event, so event
    ///   counts match per-event runs exactly.
    /// * A stop request ends the burst before the next event is consumed,
    ///   mirroring `run_until`'s check between steps; remaining events
    ///   stay queued for a later (or multi-phase) run.
    ///
    /// Bursts only form when no stall windows exist (checked by `step`);
    /// faulted cells take the per-event path, which applies deferrals
    /// event by event.
    fn dispatch_burst(&mut self, first: Packet) {
        let node = first.dst;
        let mut agent = self.nodes[node.0 as usize]
            .agent
            .take()
            .expect("reentrant dispatch");
        let mut out = std::mem::take(&mut self.scratch_out);
        let mut wakes = std::mem::take(&mut self.scratch_wakes);
        debug_assert!(out.is_empty() && wakes.is_empty());
        let mut pkt = first;
        'burst: loop {
            let mut stop = false;
            {
                let mut ctx = Ctx {
                    now: self.now,
                    node,
                    out: &mut out,
                    wakes: &mut wakes,
                    stop: &mut stop,
                };
                agent.on_packet(pkt, &mut ctx);
            }
            if stop {
                self.stop = true;
            }
            // Per-packet drain: wakes then outbox, same order as
            // `dispatch`, so derived events take identical queue keys.
            for t in wakes.drain(..) {
                let at = if t < self.now { self.now } else { t };
                self.schedule_wake(node, at);
            }
            for p in out.drain(..) {
                assert_eq!(p.src, node, "agent spoofed src");
                self.route(p);
            }
            if self.stop {
                break;
            }
            // Consume queue-front events while they are same-instant
            // packets for this node; the first deliverable one continues
            // the burst, anything else ends it for the ordinary loop.
            pkt = loop {
                let now = self.now;
                let popped = self.queue.pop_if(|at, ev| {
                    at == now && matches!(ev, Ev::LinkOut(p) | Ev::Deliver(p) if p.dst == node)
                });
                let Some((_, ev)) = popped else {
                    break 'burst;
                };
                self.events_processed += 1;
                match ev {
                    Ev::LinkOut(p) => {
                        let done = self.nodes[node.0 as usize].cpu.process(self.now, p.class);
                        if done > self.now {
                            // CPU busy past `now`: defer exactly like the
                            // per-event loop (no callback) and keep
                            // scanning — later arrivals see the same busy
                            // CPU and defer in the same order.
                            self.push(done, Ev::Deliver(p));
                        } else {
                            break p;
                        }
                    }
                    Ev::Deliver(p) => break p,
                    Ev::Wake(_) => unreachable!("burst never consumes wakes"),
                }
            };
        }
        self.nodes[node.0 as usize].agent = Some(agent);
        self.scratch_out = out;
        self.scratch_wakes = wakes;
    }

    fn dispatch_wake(&mut self, node: NodeId) {
        self.dispatch(node, None);
    }

    fn dispatch(&mut self, node: NodeId, pkt: Option<Packet>) {
        let mut agent = self.nodes[node.0 as usize]
            .agent
            .take()
            .expect("reentrant dispatch");
        // Reuse the world-owned scratch buffers across callbacks instead of
        // allocating fresh vectors per event. Dispatch never reenters (the
        // agent slot is taken), so `mem::take` hands out exclusive use.
        let mut out = std::mem::take(&mut self.scratch_out);
        let mut wakes = std::mem::take(&mut self.scratch_wakes);
        debug_assert!(out.is_empty() && wakes.is_empty());
        let mut stop = false;
        {
            let mut ctx = Ctx {
                now: self.now,
                node,
                out: &mut out,
                wakes: &mut wakes,
                stop: &mut stop,
            };
            match pkt {
                Some(p) => agent.on_packet(p, &mut ctx),
                None => agent.on_wakeup(&mut ctx),
            }
        }
        self.nodes[node.0 as usize].agent = Some(agent);
        if stop {
            self.stop = true;
        }
        for t in wakes.drain(..) {
            let at = if t < self.now { self.now } else { t };
            self.schedule_wake(node, at);
        }
        for pkt in out.drain(..) {
            assert_eq!(pkt.src, node, "agent spoofed src");
            self.route(pkt);
        }
        self.scratch_out = out;
        self.scratch_wakes = wakes;
    }

    fn route(&mut self, pkt: Packet) {
        let key = (pkt.src, pkt.dst);
        let link = self
            .links
            .iter_mut()
            .find(|(k, _)| *k == key)
            .map(|(_, l)| l)
            .unwrap_or_else(|| panic!("no link {:?} -> {:?}", pkt.src, pkt.dst));
        let verdict = link.transit(self.now, pkt.wire_size);
        let dup_at = link.take_dup_arrival();
        match verdict {
            Verdict::DeliverAt(at) => {
                if let Some(dup_at) = dup_at {
                    // Fault-injected duplicate: a cloned packet arriving
                    // right behind the original (FIFO at equal times).
                    let copy = pkt.clone();
                    self.push(at, Ev::LinkOut(pkt));
                    self.push(dup_at, Ev::LinkOut(copy));
                } else {
                    self.push(at, Ev::LinkOut(pkt));
                }
            }
            Verdict::Dropped(_) => {} // the network eats it; transports recover
        }
    }
}

/// Why [`World::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// An agent called [`Ctx::request_stop`].
    Stopped,
    /// No more events.
    Idle,
    /// The next event lies beyond the deadline.
    DeadlineReached,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PktClass};
    use crate::time::Dur;
    use bytes::Bytes;

    /// Replies to every packet; counts what it sees.
    struct Echo {
        peer: Option<NodeId>,
        received: Vec<(Time, u32)>,
        wakes: u32,
    }

    impl Echo {
        fn new(peer: Option<NodeId>) -> Self {
            Echo {
                peer,
                received: Vec::new(),
                wakes: 0,
            }
        }
    }

    impl Agent for Echo {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            self.received.push((ctx.now, pkt.wire_size));
            if let Some(peer) = self.peer {
                ctx.send(Packet::new(
                    ctx.node(),
                    peer,
                    pkt.flow,
                    pkt.class,
                    100,
                    Bytes::new(),
                ));
            }
        }
        fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
            self.wakes += 1;
            if self.wakes == 1 {
                if let Some(peer) = self.peer {
                    ctx.send(Packet::new(
                        ctx.node(),
                        peer,
                        FlowId(1),
                        PktClass::Kernel,
                        1000,
                        Bytes::new(),
                    ));
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_world(delay: Dur) -> (World, NodeId, NodeId) {
        let mut w = World::new(7);
        let b = NodeId(1);
        let a = w.add_node(Box::new(Echo::new(Some(b))), DeviceProfile::SERVER);
        let b2 = w.add_node(Box::new(Echo::new(Some(a))), DeviceProfile::SERVER);
        assert_eq!(b, b2);
        w.connect(a, b, LinkConfig::ideal(delay), LinkConfig::ideal(delay));
        (w, a, b)
    }

    #[test]
    fn ping_pong_rtt() {
        let (mut w, a, b) = two_node_world(Dur::from_millis(6));
        w.kick(a);
        // Run a few exchanges then stop by deadline.
        w.run_until(Time::ZERO + Dur::from_millis(100));
        let echo_b = w.agent::<Echo>(b);
        assert!(!echo_b.received.is_empty());
        // First arrival at b is one-way delay (+ negligible CPU).
        let (t, size) = echo_b.received[0];
        assert_eq!(size, 1000);
        assert!(
            t >= Time::ZERO + Dur::from_millis(6) && t < Time::ZERO + Dur::from_millis(7),
            "t = {t}"
        );
        // a receives replies 2 one-way delays after sending.
        let echo_a = w.agent::<Echo>(a);
        assert!(!echo_a.received.is_empty());
        assert!(echo_a.received[0].0 >= Time::ZERO + Dur::from_millis(12));
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut w, a, b) = two_node_world(Dur::from_millis(3));
            w.kick(a);
            w.run_until(Time::ZERO + Dur::from_millis(50));
            (
                w.agent::<Echo>(a).received.clone(),
                w.agent::<Echo>(b).received.clone(),
                w.events_processed(),
            )
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1.0, r2.0);
        assert_eq!(r1.1, r2.1);
        assert_eq!(r1.2, r2.2);
    }

    #[test]
    fn deadline_stops_run() {
        let (mut w, a, _) = two_node_world(Dur::from_millis(10));
        w.kick(a);
        let outcome = w.run_until(Time::ZERO + Dur::from_millis(15));
        assert_eq!(outcome, RunOutcome::DeadlineReached);
        assert!(w.now() <= Time::ZERO + Dur::from_millis(15));
    }

    #[test]
    fn idle_when_no_events() {
        let mut w = World::new(1);
        assert_eq!(w.run_until(Time::MAX), RunOutcome::Idle);
        assert!(!w.step());
    }

    #[test]
    fn cpu_cost_delays_delivery() {
        struct Sink {
            got_at: Option<Time>,
        }
        impl Agent for Sink {
            fn on_packet(&mut self, _p: Packet, ctx: &mut Ctx<'_>) {
                self.got_at = Some(ctx.now);
            }
            fn on_wakeup(&mut self, _ctx: &mut Ctx<'_>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct Src {
            dst: NodeId,
        }
        impl Agent for Src {
            fn on_packet(&mut self, _p: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(Packet::new(
                    ctx.node(),
                    self.dst,
                    FlowId(0),
                    PktClass::Userspace,
                    1200,
                    Bytes::new(),
                ));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(3);
        let sink_id = NodeId(0);
        let sink = w.add_node(Box::new(Sink { got_at: None }), DeviceProfile::MOTOG);
        assert_eq!(sink, sink_id);
        let src = w.add_node(Box::new(Src { dst: sink }), DeviceProfile::SERVER);
        w.connect(
            src,
            sink,
            LinkConfig::ideal(Dur::ZERO),
            LinkConfig::ideal(Dur::ZERO),
        );
        w.kick(src);
        w.run_until(Time::MAX);
        let got = w.agent::<Sink>(sink).got_at.expect("delivered");
        // MotoG userspace cost is 400us.
        assert_eq!(got, Time::ZERO + Dur::from_micros(400));
    }

    #[test]
    fn stop_request_halts_world() {
        struct Stopper;
        impl Agent for Stopper {
            fn on_packet(&mut self, _p: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
                ctx.request_stop();
                ctx.wake_at(ctx.now + Dur::from_secs(1)); // should never fire
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(1);
        let n = w.add_node(Box::new(Stopper), DeviceProfile::SERVER);
        w.kick(n);
        assert_eq!(w.run_until(Time::MAX), RunOutcome::Stopped);
        assert_eq!(w.now(), Time::ZERO);
    }

    #[test]
    fn stalled_node_defers_packets_and_wakes() {
        let (mut w, a, b) = two_node_world(Dur::from_millis(1));
        w.stall_node(b, Time::ZERO, Time::ZERO + Dur::from_millis(50));
        w.kick(a);
        w.kick(b);
        w.run_until(Time::ZERO + Dur::from_millis(200));
        let echo_b = w.agent::<Echo>(b);
        assert!(
            echo_b.wakes >= 1,
            "deferred wake must still fire (no livelock)"
        );
        assert!(!echo_b.received.is_empty());
        // a's first packet would arrive at ~1ms; the stall pushes it to 50ms.
        assert!(
            echo_b.received[0].0 >= Time::ZERO + Dur::from_millis(50),
            "delivery not deferred: {:?}",
            echo_b.received[0].0
        );
        // After the window everything flows: a got echoes back.
        assert!(!w.agent::<Echo>(a).received.is_empty());
    }

    #[test]
    fn stall_of_one_node_leaves_peer_running() {
        let (mut w, a, b) = two_node_world(Dur::from_millis(1));
        w.stall_node(b, Time::ZERO, Time::ZERO + Dur::from_millis(30));
        w.kick(a);
        w.run_until(Time::ZERO + Dur::from_millis(10));
        // a woke and sent normally; b has processed nothing yet.
        assert_eq!(w.agent::<Echo>(a).wakes, 1);
        assert!(w.agent::<Echo>(b).received.is_empty());
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn routing_to_unconnected_node_panics() {
        struct Bad;
        impl Agent for Bad {
            fn on_packet(&mut self, _p: Packet, _ctx: &mut Ctx<'_>) {}
            fn on_wakeup(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(Packet::new(
                    ctx.node(),
                    NodeId(99),
                    FlowId(0),
                    PktClass::Kernel,
                    100,
                    Bytes::new(),
                ));
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(1);
        let n = w.add_node(Box::new(Bad), DeviceProfile::SERVER);
        w.kick(n);
        w.run_until(Time::MAX);
    }
}
