//! Event-queue schedulers for the discrete-event world.
//!
//! Two interchangeable implementations sit behind [`EventQueue`]:
//!
//! * [`HeapSched`] — the original `BinaryHeap<(Time, seq)>`, kept as the
//!   reference implementation and as an A/B fallback (`LONGLOOK_SCHED=heap`).
//! * [`TimingWheel`] — a hierarchical timing wheel: near-future events land
//!   in fixed-width ring slots, far-future events wait in an overflow heap
//!   that refills the wheel as the cursor advances.
//!
//! Both produce the **exact same pop order**: ascending `(Time, seq)` where
//! `seq` is the queue-assigned push sequence number. That total order is
//! what makes simulation replay bit-identical, so the wheel never
//! approximates it — see the invariant notes on [`TimingWheel`].
//!
//! # Wheel layout
//!
//! The timeline is quantized into ticks of `2^SLOT_SHIFT` ns (128 µs) and
//! the wheel covers a ring of [`SLOTS`] consecutive ticks (~67 ms). With the
//! baseline 36 ms RTT of the testbed's cellular profiles, almost every
//! retransmission timer, pacing wake, and link-transit completion lands
//! inside the ring; only idle timeouts and `Time::MAX`-style "never" wakes
//! overflow.
//!
//! * Events whose tick equals the cursor's current tick live in `active`,
//!   a vector sorted **descending** by `(at, seq)` so the next event pops
//!   from the end in O(1).
//! * Events in `(cursor, cursor + SLOTS)` ticks live in their slot's FIFO
//!   vector; a 512-bit occupancy bitmap finds the next non-empty slot with
//!   a handful of `trailing_zeros` scans.
//! * Events at `>= cursor + SLOTS` ticks go to the overflow heap.
//!
//! Advancing the cursor jumps straight to `min(next occupied slot tick,
//! overflow peek tick)`, drains newly-in-horizon overflow entries into
//! their slots, moves the target slot into `active`, and sorts it (exact:
//! `(at, seq)` keys are unique). Emptied slot vectors are recycled through
//! a free list, so steady-state scheduling performs no allocation.
//!
//! # Why the order is exact
//!
//! 1. Every live event's tick is `>= cursor` (pushes are never in the past
//!    relative to the popped front, and the cursor only advances to the
//!    minimum live tick).
//! 2. Every slot-resident tick is `< cursor + SLOTS`, so a ring index holds
//!    events of exactly one tick — ring distance from the cursor orders
//!    slots by tick.
//! 3. Overflow entries always have ticks `>= cursor + SLOTS` (they are
//!    drained into the ring whenever the horizon moves past them), so
//!    nothing in overflow can precede anything in the ring; the `min` in
//!    the advance target is defensive.
//! 4. Within a tick, `sort_unstable` over unique `(at, seq)` keys yields
//!    the same order the heap would.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::mem;
use std::sync::Once;

/// log2 of the wheel slot width in nanoseconds (2^17 ns = 131.072 µs).
const SLOT_SHIFT: u32 = 17;
/// Number of ring slots; the wheel horizon is `SLOTS << SLOT_SHIFT` ns
/// (~67 ms).
const SLOTS: usize = 512;
/// Occupancy bitmap words (64 slots per word).
const WORDS: usize = SLOTS / 64;

#[inline]
fn tick_of(at: Time) -> u64 {
    at.tick(SLOT_SHIFT)
}

/// Which scheduler implementation backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// Hierarchical timing wheel (default).
    Wheel,
    /// Reference binary heap (`LONGLOOK_SCHED=heap`).
    Heap,
}

impl SchedKind {
    /// Resolve from the `LONGLOOK_SCHED` environment variable.
    ///
    /// Read on every call (not cached) so differential tests and benches
    /// can flip the variable between `World` constructions in one process.
    pub fn from_env() -> SchedKind {
        static WARN: Once = Once::new();
        longlook_wire::env_knob(
            "LONGLOOK_SCHED",
            "\"wheel\" or \"heap\"",
            "wheel",
            &WARN,
            |v| {
                if v.eq_ignore_ascii_case("heap") {
                    Some(SchedKind::Heap)
                } else if v.eq_ignore_ascii_case("wheel") || v.is_empty() {
                    Some(SchedKind::Wheel)
                } else {
                    None
                }
            },
        )
        .unwrap_or(SchedKind::Wheel)
    }
}

/// A scheduled event: payload plus its total-order key.
struct Entry<T> {
    at: Time,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

/// Heap adapter giving `Entry<T>` the `(at, seq)` order without requiring
/// `T: Ord`.
struct HeapEntry<T>(Entry<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key().cmp(&other.0.key())
    }
}

/// The original binary-heap scheduler, generic over the event payload.
pub struct HeapSched<T> {
    heap: BinaryHeap<Reverse<HeapEntry<T>>>,
    seq: u64,
    len: usize,
    peak: usize,
}

impl<T> HeapSched<T> {
    /// An empty heap scheduler.
    pub fn new() -> Self {
        HeapSched {
            heap: BinaryHeap::new(),
            seq: 0,
            len: 0,
            peak: 0,
        }
    }

    /// Schedule `item` at `at`, after everything already scheduled there.
    pub fn push(&mut self, at: Time, item: T) {
        self.seq += 1;
        self.len += 1;
        self.peak = self.peak.max(self.len);
        self.heap.push(Reverse(HeapEntry(Entry {
            at,
            seq: self.seq,
            item,
        })));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        let Reverse(HeapEntry(e)) = self.heap.pop()?;
        self.len -= 1;
        Some((e.at, e.item))
    }

    /// Timestamp of the earliest event.
    pub fn next_at(&mut self) -> Option<Time> {
        self.heap.peek().map(|Reverse(HeapEntry(e))| e.at)
    }

    /// Borrow the earliest event without removing it.
    pub fn peek(&mut self) -> Option<(Time, &T)> {
        self.heap
            .peek()
            .map(|Reverse(HeapEntry(e))| (e.at, &e.item))
    }

    /// Pop the earliest event iff it is at or before `deadline`
    /// (peek + pop fused into one front check).
    pub fn pop_at_most(&mut self, deadline: Time) -> Option<(Time, T)> {
        match self.heap.peek() {
            Some(Reverse(HeapEntry(e))) if e.at <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Pop the earliest event iff `pred` approves it (peek + pop fused).
    pub fn pop_if(&mut self, pred: impl FnOnce(Time, &T) -> bool) -> Option<(Time, T)> {
        match self.heap.peek() {
            Some(Reverse(HeapEntry(e))) if pred(e.at, &e.item) => self.pop(),
            _ => None,
        }
    }

    /// Return to the just-constructed state — empty, sequence counter and
    /// peak rewound — keeping the heap's allocation for reuse.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.len = 0;
        self.peak = 0;
    }
}

impl<T> Default for HeapSched<T> {
    fn default() -> Self {
        HeapSched::new()
    }
}

/// Hierarchical timing-wheel scheduler. See the module docs for layout and
/// the exact-order argument.
pub struct TimingWheel<T> {
    /// Tick currently being drained; lower bound on every live tick.
    cursor: u64,
    /// Events of the cursor tick (plus defensively any pushed-in-the-past
    /// event), sorted descending by `(at, seq)` — next event at the end.
    active: Vec<Entry<T>>,
    /// Ring of per-tick FIFO vectors for ticks in `(cursor, cursor+SLOTS)`.
    slots: Vec<Vec<Entry<T>>>,
    /// One bit per slot: set iff the slot vector is non-empty.
    occ: [u64; WORDS],
    /// Events at ticks `>= cursor + SLOTS`.
    overflow: BinaryHeap<Reverse<HeapEntry<T>>>,
    /// Recycled slot vectors (drained slots park their allocation here).
    free: Vec<Vec<Entry<T>>>,
    seq: u64,
    len: usize,
    peak: usize,
}

impl<T> TimingWheel<T> {
    /// An empty wheel with the cursor at the origin.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(SLOTS);
        slots.resize_with(SLOTS, Vec::new);
        TimingWheel {
            cursor: 0,
            active: Vec::new(),
            slots,
            occ: [0; WORDS],
            overflow: BinaryHeap::new(),
            free: Vec::new(),
            seq: 0,
            len: 0,
            peak: 0,
        }
    }

    /// Schedule `item` at `at`, after everything already scheduled there.
    pub fn push(&mut self, at: Time, item: T) {
        self.seq += 1;
        self.len += 1;
        self.peak = self.peak.max(self.len);
        let e = Entry {
            at,
            seq: self.seq,
            item,
        };
        let t = tick_of(at);
        if t <= self.cursor {
            // Cursor tick (or a defensive past push): keep `active` sorted
            // by inserting at the descending-order position. Same-key
            // events can't exist (seq is unique), so the position is exact.
            let pos = self.active.partition_point(|x| x.key() > e.key());
            self.active.insert(pos, e);
        } else if t < self.cursor + SLOTS as u64 {
            self.slot_insert(t, e);
        } else {
            self.overflow.push(Reverse(HeapEntry(e)));
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        if self.active.is_empty() && !self.advance() {
            return None;
        }
        let e = self.active.pop().expect("advance loaded events");
        self.len -= 1;
        Some((e.at, e.item))
    }

    /// Timestamp of the earliest event. Takes `&mut self` because locating
    /// it may advance the cursor and load a slot (pop order is unaffected).
    pub fn next_at(&mut self) -> Option<Time> {
        if self.active.is_empty() && !self.advance() {
            return None;
        }
        self.active.last().map(|e| e.at)
    }

    /// Borrow the earliest event without removing it. `&mut self` for the
    /// same cursor-advance reason as [`TimingWheel::next_at`].
    pub fn peek(&mut self) -> Option<(Time, &T)> {
        if self.active.is_empty() && !self.advance() {
            return None;
        }
        self.active.last().map(|e| (e.at, &e.item))
    }

    /// Pop the earliest event iff it is at or before `deadline`. One
    /// front check instead of a `next_at` + `pop` pair — the event loop's
    /// per-event peek was a measurable share of its runtime.
    pub fn pop_at_most(&mut self, deadline: Time) -> Option<(Time, T)> {
        if self.active.is_empty() && !self.advance() {
            return None;
        }
        if self.active.last().expect("advance loaded events").at > deadline {
            return None;
        }
        let e = self.active.pop().expect("checked above");
        self.len -= 1;
        Some((e.at, e.item))
    }

    /// Pop the earliest event iff `pred` approves it (peek + pop fused,
    /// used by burst dispatch to continue a same-instant run).
    pub fn pop_if(&mut self, pred: impl FnOnce(Time, &T) -> bool) -> Option<(Time, T)> {
        if self.active.is_empty() && !self.advance() {
            return None;
        }
        let front = self.active.last().expect("advance loaded events");
        if !pred(front.at, &front.item) {
            return None;
        }
        let e = self.active.pop().expect("checked above");
        self.len -= 1;
        Some((e.at, e.item))
    }

    /// Return to the just-constructed state — cursor at the origin,
    /// sequence counter and peak rewound, every event discarded — while
    /// keeping all allocations (slot ring capacities, free list, overflow
    /// heap). A reset wheel is observationally identical to a fresh one:
    /// same pop order, same tie-breaks (seq restarts at 0), same peak
    /// accounting.
    pub fn reset(&mut self) {
        self.active.clear();
        for v in &mut self.slots {
            v.clear();
        }
        self.occ = [0; WORDS];
        self.overflow.clear();
        self.cursor = 0;
        self.seq = 0;
        self.len = 0;
        self.peak = 0;
    }

    fn slot_insert(&mut self, t: u64, e: Entry<T>) {
        debug_assert!(t > self.cursor && t < self.cursor + SLOTS as u64);
        let idx = (t % SLOTS as u64) as usize;
        let v = &mut self.slots[idx];
        debug_assert!(
            v.first().is_none_or(|f| tick_of(f.at) == t),
            "slot holds two rotations"
        );
        if v.is_empty() {
            if v.capacity() == 0 {
                if let Some(recycled) = self.free.pop() {
                    *v = recycled;
                }
            }
            self.occ[idx / 64] |= 1 << (idx % 64);
        }
        v.push(e);
    }

    /// Move the cursor to the next live tick and load its events into
    /// `active`. Returns false when the queue is empty.
    fn advance(&mut self) -> bool {
        debug_assert!(self.active.is_empty());
        let wheel_next = self.next_occupied_tick();
        let over_next = self
            .overflow
            .peek()
            .map(|Reverse(HeapEntry(e))| tick_of(e.at));
        // Overflow ticks are always >= cursor + SLOTS (see module docs), so
        // when the ring is non-empty the ring wins; the `min` is defensive.
        let target = match (wheel_next, over_next) {
            (None, None) => return false,
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (Some(w), Some(o)) => w.min(o),
        };
        self.cursor = target;
        if wheel_next == Some(target) {
            let idx = (target % SLOTS as u64) as usize;
            self.occ[idx / 64] &= !(1 << (idx % 64));
            // `active` is empty here, so the slot vector becomes the new
            // `active` wholesale — no entry copies — and the old `active`
            // allocation parks in the free list.
            let old = mem::replace(&mut self.active, mem::take(&mut self.slots[idx]));
            if self.free.len() < SLOTS && old.capacity() > 0 {
                self.free.push(old);
            }
        }
        // The horizon moved: drain newly coverable overflow entries. Ticks
        // equal to the new cursor go straight to `active`.
        while let Some(Reverse(HeapEntry(e))) = self.overflow.peek() {
            let t = tick_of(e.at);
            if t >= target + SLOTS as u64 {
                break;
            }
            let Some(Reverse(HeapEntry(e))) = self.overflow.pop() else {
                unreachable!()
            };
            if t == target {
                self.active.push(e);
            } else {
                self.slot_insert(t, e);
            }
        }
        // Exact total order: keys are unique, so unstable sort is fine.
        self.active
            .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
        debug_assert!(!self.active.is_empty(), "advance picked an empty tick");
        true
    }

    /// Tick of the nearest occupied ring slot after the cursor, scanning
    /// the occupancy bitmap in ring order.
    fn next_occupied_tick(&self) -> Option<u64> {
        let cursor_idx = (self.cursor % SLOTS as u64) as usize;
        let start = (cursor_idx + 1) % SLOTS;
        let (w0, b0) = (start / 64, start % 64);
        let first = self.occ[w0] >> b0;
        let found = if first != 0 {
            Some(start + first.trailing_zeros() as usize)
        } else {
            (1..=WORDS).find_map(|k| {
                let w = (w0 + k) % WORDS;
                let word = if w == w0 {
                    // Wrapped all the way around: only bits before `start`.
                    self.occ[w0] & ((1u64 << b0) - 1)
                } else {
                    self.occ[w]
                };
                (word != 0).then(|| w * 64 + word.trailing_zeros() as usize)
            })
        }?;
        debug_assert_ne!(found, cursor_idx, "cursor slot must drain to active");
        let dist = (found + SLOTS - cursor_idx) % SLOTS;
        Some(self.cursor + dist as u64)
    }
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

/// A scheduler of either kind behind one interface; the simulation world
/// holds this and stays agnostic.
pub enum EventQueue<T> {
    /// Timing-wheel backed.
    Wheel(TimingWheel<T>),
    /// Binary-heap backed.
    Heap(HeapSched<T>),
}

impl<T> EventQueue<T> {
    /// An empty queue of the given kind.
    pub fn new(kind: SchedKind) -> Self {
        match kind {
            SchedKind::Wheel => EventQueue::Wheel(TimingWheel::new()),
            SchedKind::Heap => EventQueue::Heap(HeapSched::new()),
        }
    }

    /// Which implementation backs this queue.
    pub fn kind(&self) -> SchedKind {
        match self {
            EventQueue::Wheel(_) => SchedKind::Wheel,
            EventQueue::Heap(_) => SchedKind::Heap,
        }
    }

    /// Schedule `item` at `at`, after everything already scheduled there.
    pub fn push(&mut self, at: Time, item: T) {
        match self {
            EventQueue::Wheel(w) => w.push(at, item),
            EventQueue::Heap(h) => h.push(at, item),
        }
    }

    /// Remove and return the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(Time, T)> {
        match self {
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Heap(h) => h.pop(),
        }
    }

    /// Timestamp of the earliest event without removing it. `&mut self`
    /// because the wheel may need to advance its cursor to find it.
    pub fn next_at(&mut self) -> Option<Time> {
        match self {
            EventQueue::Wheel(w) => w.next_at(),
            EventQueue::Heap(h) => h.next_at(),
        }
    }

    /// Borrow the earliest event (time and payload) without removing it.
    /// The borrowed payload is exactly what the next `pop` would return —
    /// burst dispatch uses this to decide whether to keep consuming.
    pub fn peek(&mut self) -> Option<(Time, &T)> {
        match self {
            EventQueue::Wheel(w) => w.peek(),
            EventQueue::Heap(h) => h.peek(),
        }
    }

    /// Pop the earliest event iff it is at or before `deadline`. Same
    /// observable behavior as `next_at` followed by `pop`, in one call.
    pub fn pop_at_most(&mut self, deadline: Time) -> Option<(Time, T)> {
        match self {
            EventQueue::Wheel(w) => w.pop_at_most(deadline),
            EventQueue::Heap(h) => h.pop_at_most(deadline),
        }
    }

    /// Pop the earliest event iff `pred` approves it. Same observable
    /// behavior as `peek` followed by `pop`, in one call.
    pub fn pop_if(&mut self, pred: impl FnOnce(Time, &T) -> bool) -> Option<(Time, T)> {
        match self {
            EventQueue::Wheel(w) => w.pop_if(pred),
            EventQueue::Heap(h) => h.pop_if(pred),
        }
    }

    /// Outstanding event count.
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.len,
            EventQueue::Heap(h) => h.len,
        }
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of outstanding events over the queue's lifetime.
    pub fn scheduled_peak(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.peak,
            EventQueue::Heap(h) => h.peak,
        }
    }

    /// Return the queue to its just-constructed state — empty, cursor at
    /// the origin, sequence counter and peak rewound — while keeping every
    /// allocation. Sharded fleet loops run shards back to back through one
    /// queue serially; because the sequence counter restarts, a reset
    /// queue breaks same-time ties exactly like the fresh queue a threaded
    /// shard gets, which is what keeps serial and threaded shard runs
    /// bit-identical.
    pub fn reset(&mut self) {
        match self {
            EventQueue::Wheel(w) => w.reset(),
            EventQueue::Heap(h) => h.reset(),
        }
    }

    /// Pre-size internal storage for roughly `n` concurrently outstanding
    /// events (a hint; queues grow on demand regardless).
    pub fn reserve_hint(&mut self, n: usize) {
        match self {
            EventQueue::Wheel(w) => {
                w.active.reserve(n.min(64));
                // Park pre-sized vectors in the free list so the first
                // bursts of slot traffic don't allocate.
                let want = (n / 4).clamp(1, 32);
                while w.free.len() < want {
                    w.free.push(Vec::with_capacity(8));
                }
            }
            EventQueue::Heap(h) => h.heap.reserve(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn drain<T>(q: &mut EventQueue<T>) -> Vec<(Time, T)> {
        let mut out = Vec::new();
        while let Some(ev) = q.pop() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn fifo_within_equal_time() {
        for kind in [SchedKind::Wheel, SchedKind::Heap] {
            let mut q = EventQueue::new(kind);
            let t = Time::from_nanos(5_000_000);
            for i in 0..10u32 {
                q.push(t, i);
            }
            let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, i)| i).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn equal_time_fifo_survives_slot_boundary_and_overflow_refill() {
        // Same-instant events pushed before and after intervening pops that
        // advance the cursor across slot boundaries and drain overflow.
        let mut q = EventQueue::new(SchedKind::Wheel);
        let far = Time::from_nanos((1000u64) << SLOT_SHIFT); // overflow tick
        q.push(far, 0u32);
        q.push(far, 1);
        q.push(Time::from_nanos(100), 2); // near event forces an early advance
        assert_eq!(q.pop().map(|(_, i)| i), Some(2));
        q.push(far, 3); // same instant, pushed after a cursor advance
        let rest: Vec<u32> = drain(&mut q).into_iter().map(|(_, i)| i).collect();
        assert_eq!(rest, vec![0, 1, 3]);
    }

    #[test]
    fn time_max_adjacent_events_order_correctly() {
        for kind in [SchedKind::Wheel, SchedKind::Heap] {
            let mut q = EventQueue::new(kind);
            q.push(Time::MAX, 'z');
            q.push(Time::from_nanos(u64::MAX - 1), 'y');
            q.push(Time::ZERO, 'a');
            q.push(Time::MAX, 'w'); // FIFO after the first MAX event
            let order: Vec<char> = drain(&mut q).into_iter().map(|(_, c)| c).collect();
            assert_eq!(order, vec!['a', 'y', 'z', 'w'], "{kind:?}");
        }
    }

    #[test]
    fn push_at_cursor_tick_while_draining() {
        // An agent scheduling a wake at `now` must run after events already
        // queued for `now` but before later times — even mid-drain.
        let mut q = EventQueue::new(SchedKind::Wheel);
        let t = Time::from_nanos(50);
        q.push(t, 0u32);
        q.push(t, 1);
        assert_eq!(q.pop().map(|(_, i)| i), Some(0));
        q.push(t, 2); // same time, mid-drain
        q.push(Time::from_nanos(51), 3);
        let rest: Vec<u32> = drain(&mut q).into_iter().map(|(_, i)| i).collect();
        assert_eq!(rest, vec![1, 2, 3]);
    }

    #[test]
    fn next_at_matches_pop_and_is_stable() {
        let mut q = EventQueue::new(SchedKind::Wheel);
        q.push(Time::from_nanos(7 << SLOT_SHIFT), 'b');
        q.push(Time::from_nanos(3), 'a');
        assert_eq!(q.next_at(), Some(Time::from_nanos(3)));
        assert_eq!(q.next_at(), Some(Time::from_nanos(3)));
        assert_eq!(q.pop(), Some((Time::from_nanos(3), 'a')));
        assert_eq!(q.next_at(), Some(Time::from_nanos(7 << SLOT_SHIFT)));
        assert_eq!(q.pop(), Some((Time::from_nanos(7 << SLOT_SHIFT), 'b')));
        assert_eq!(q.next_at(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_refills_wheel_in_order() {
        let mut q = EventQueue::new(SchedKind::Wheel);
        // Spread events far past the initial horizon; every refill must
        // preserve global order.
        let times: Vec<u64> = (0..40)
            .map(|i| (i * 97) << (SLOT_SHIFT - 1)) // straddles slot widths
            .collect();
        // Push in reverse so push order disagrees with time order.
        for (i, &ns) in times.iter().enumerate().rev() {
            q.push(Time::from_nanos(ns), i);
        }
        let popped: Vec<u64> = drain(&mut q)
            .into_iter()
            .map(|(t, _)| t.as_nanos())
            .collect();
        let mut want = times.clone();
        want.sort_unstable();
        assert_eq!(popped, want);
    }

    #[test]
    fn randomized_wheel_matches_heap() {
        let mut rng = SimRng::new(0xC0FFEE);
        for round in 0..20u64 {
            let mut wheel = EventQueue::new(SchedKind::Wheel);
            let mut heap = EventQueue::new(SchedKind::Heap);
            let mut now = 0u64;
            let mut id = 0u64;
            // Interleave pushes and pops with a monotone "now" like the
            // world's event loop does.
            for _ in 0..500 {
                if rng.chance(0.6) {
                    let delta = if rng.chance(0.05) {
                        rng.uniform_u64(0, 500_000_000) // far future
                    } else {
                        rng.uniform_u64(0, 2_000_000) // near future
                    };
                    let at = Time::from_nanos(now + delta);
                    wheel.push(at, id);
                    heap.push(at, id);
                    id += 1;
                } else {
                    let a = wheel.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "round {round}");
                    if let Some((t, _)) = a {
                        now = t.as_nanos();
                    }
                }
            }
            loop {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "round {round} drain");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn peek_matches_next_pop_exactly() {
        for kind in [SchedKind::Wheel, SchedKind::Heap] {
            let mut q = EventQueue::new(kind);
            q.push(Time::from_nanos(7 << SLOT_SHIFT), 'b'); // different slot
            q.push(Time::from_nanos(3), 'a');
            q.push(Time::from_nanos(3), 'c'); // FIFO behind 'a'
            while let Some((t, &item)) = q.peek() {
                // Peek must not disturb order, and must borrow the exact
                // payload the following pop returns.
                assert_eq!(q.peek().map(|(pt, &pi)| (pt, pi)), Some((t, item)));
                assert_eq!(q.pop(), Some((t, item)), "{kind:?}");
            }
            assert!(q.is_empty(), "{kind:?}");
        }
    }

    #[test]
    fn len_and_peak_track_outstanding_events() {
        for kind in [SchedKind::Wheel, SchedKind::Heap] {
            let mut q = EventQueue::new(kind);
            assert_eq!(q.scheduled_peak(), 0);
            for i in 0..5u64 {
                q.push(Time::from_nanos(i * 1_000_000), i);
            }
            assert_eq!(q.len(), 5);
            q.pop();
            q.pop();
            assert_eq!(q.len(), 3);
            q.push(Time::from_nanos(9_000_000), 9);
            assert_eq!(q.scheduled_peak(), 5, "{kind:?}");
        }
    }

    #[test]
    fn reserve_hint_is_harmless() {
        for kind in [SchedKind::Wheel, SchedKind::Heap] {
            let mut q = EventQueue::new(kind);
            q.reserve_hint(256);
            q.push(Time::ZERO, 1u8);
            assert_eq!(q.pop(), Some((Time::ZERO, 1)));
        }
    }

    #[test]
    fn reset_queue_is_observationally_fresh() {
        // Run a workload, reset, run it again: pop order (including
        // same-time tie-breaks, which depend on the rewound seq counter),
        // len, and scheduled_peak must all match a brand-new queue's.
        for kind in [SchedKind::Wheel, SchedKind::Heap] {
            let mut reused = EventQueue::new(kind);
            let workload = |q: &mut EventQueue<u32>| {
                q.push(Time::from_nanos(40 << SLOT_SHIFT), 0); // far slot
                q.push(Time::from_nanos(5), 1);
                q.push(Time::from_nanos(5), 2); // FIFO tie with 1
                q.push(Time::from_nanos((1000u64) << SLOT_SHIFT), 3); // overflow
                let order: Vec<(Time, u32)> = drain(q);
                (order, q.scheduled_peak())
            };
            let first = workload(&mut reused);
            reused.reset();
            assert!(reused.is_empty(), "{kind:?}: reset left events behind");
            assert_eq!(reused.scheduled_peak(), 0, "{kind:?}: peak survived");
            let again = workload(&mut reused);
            let fresh = workload(&mut EventQueue::new(kind));
            assert_eq!(again, fresh, "{kind:?}: reset queue diverged");
            assert_eq!(first, fresh, "{kind:?}: workload not repeatable");
        }
    }

    #[test]
    fn reset_mid_drain_discards_pending_events() {
        // Reset with events still queued (active, slots, and overflow all
        // populated): everything must vanish and the queue behave fresh.
        let mut q = EventQueue::new(SchedKind::Wheel);
        q.push(Time::from_nanos(3), 'a');
        q.push(Time::from_nanos(3), 'b');
        q.push(Time::from_nanos(9 << SLOT_SHIFT), 'c');
        q.push(Time::from_nanos((2000u64) << SLOT_SHIFT), 'd');
        assert_eq!(q.pop(), Some((Time::from_nanos(3), 'a'))); // loads active
        q.reset();
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
        q.push(Time::from_nanos(1), 'z');
        assert_eq!(q.pop(), Some((Time::from_nanos(1), 'z')));
    }

    #[test]
    fn sched_kind_from_env_is_read_per_call() {
        // Not testing the env var itself here (process-global, racy across
        // test threads) — just the default.
        assert_eq!(SchedKind::from_env(), SchedKind::Wheel);
    }
}
