//! Deterministic fault injection: typed trauma events on a schedule.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s — link blackouts and
//! flaps, bandwidth cliffs and ramps, Gilbert–Elliott burst loss, packet
//! duplication and corruption, peer stalls, and buffer shrinks — each
//! applied over a half-open window `[at, at + dur)` of simulated time to
//! one link direction (or both) of a testbed cell.
//!
//! Two design rules keep trauma runs bit-identical across serial and
//! threaded runners and both wire modes:
//!
//! * **Window evaluation is a pure function of time.** Like
//!   [`crate::schedule::RateSchedule`], a fault's activity at instant `t`
//!   depends only on the plan, never on query order or extra events, so
//!   replays and re-runs agree exactly.
//! * **Randomness rides the existing per-direction link RNG**, and draws
//!   happen *only inside an active window*. A plan that is absent — or
//!   present but inactive at `t` — consumes no draws, so the RNG stream
//!   (and therefore every downstream result) is byte-identical to an
//!   unfaulted run outside trauma windows. `golden_seed` holds this
//!   zero-cost-when-off property as a named regression.
//!
//! Probabilities and factors are stored in exact **per-mille** integers so
//! a plan survives a JSON round trip (the `traumafuzz` repro files)
//! without floating-point drift.

use crate::rng::SimRng;
use crate::time::{Dur, Time};
use longlook_wire::trace::{TraceEvent, TraceRecord};

/// Which link direction a fault applies to. `Up` is the first direction
/// passed to `World::connect` — client→server in testbed terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDir {
    /// Client→server only.
    Up,
    /// Server→client only.
    Down,
    /// Both directions.
    Both,
}

impl FaultDir {
    /// Whether a fault with this selector applies to the given direction.
    pub fn applies(self, up: bool) -> bool {
        match self {
            FaultDir::Up => up,
            FaultDir::Down => !up,
            FaultDir::Both => true,
        }
    }

    /// Stable label, matching the `traumafuzz` repro spelling.
    pub fn label(self) -> &'static str {
        match self {
            FaultDir::Up => "up",
            FaultDir::Down => "down",
            FaultDir::Both => "both",
        }
    }
}

/// Which endpoint a [`FaultKind::PeerStall`] freezes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerSide {
    /// The client host.
    Client,
    /// The server host.
    Server,
}

/// Gilbert–Elliott burst-loss parameters (all per-mille). The chain moves
/// good→bad with probability `p_enter` per packet and bad→good with
/// `p_exit`; each packet is then lost with the current state's loss
/// probability. Stationary bad-state occupancy is
/// `p_enter / (p_enter + p_exit)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeParams {
    /// Good→bad transition probability, per-mille.
    pub p_enter_pm: u32,
    /// Bad→good transition probability, per-mille.
    pub p_exit_pm: u32,
    /// Loss probability in the good state, per-mille.
    pub loss_good_pm: u32,
    /// Loss probability in the bad state, per-mille.
    pub loss_bad_pm: u32,
}

fn pm(v: u32) -> f64 {
    f64::from(v.min(1000)) / 1000.0
}

impl GeParams {
    /// Stationary probability of the bad state.
    pub fn stationary_bad(&self) -> f64 {
        let (e, x) = (pm(self.p_enter_pm), pm(self.p_exit_pm));
        if e + x == 0.0 {
            0.0
        } else {
            e / (e + x)
        }
    }

    /// Stationary per-packet loss probability.
    pub fn stationary_loss(&self) -> f64 {
        let b = self.stationary_bad();
        (1.0 - b) * pm(self.loss_good_pm) + b * pm(self.loss_bad_pm)
    }
}

/// The Gilbert–Elliott chain state, stepped once per packet while a
/// burst-loss window is active. Lives in `LinkDir` so the chain survives
/// across packets but never draws outside a window.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeChain {
    /// Whether the chain is currently in the bad (bursty) state.
    pub bad: bool,
}

impl GeChain {
    /// Advance the chain one packet and decide whether that packet is
    /// lost. Exactly two `chance` calls' worth of draws per packet (each
    /// of which draws nothing when its probability is zero).
    pub fn step(&mut self, rng: &mut SimRng, p: &GeParams) -> bool {
        if self.bad {
            if rng.chance(pm(p.p_exit_pm)) {
                self.bad = false;
            }
        } else if rng.chance(pm(p.p_enter_pm)) {
            self.bad = true;
        }
        let loss = if self.bad {
            pm(p.loss_bad_pm)
        } else {
            pm(p.loss_good_pm)
        };
        rng.chance(loss)
    }
}

/// What a fault does during its window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Total outage: every packet offered to the link is dropped.
    Blackout,
    /// Periodic outage: within the window the link repeats a cycle of
    /// `period`, down for the first `down_pm`‰ of each cycle.
    Flap {
        /// Cycle length.
        period: Dur,
        /// Fraction of each cycle spent down, per-mille.
        down_pm: u32,
    },
    /// Rate multiplied by `factor_pm`‰ for the whole window.
    BandwidthCliff {
        /// Rate multiplier, per-mille (e.g. 100 = 10% of nominal).
        factor_pm: u32,
    },
    /// Rate ramps linearly from 100% at window start down to `floor_pm`‰
    /// at window end.
    BandwidthRamp {
        /// Rate multiplier reached at the end of the window, per-mille.
        floor_pm: u32,
    },
    /// Gilbert–Elliott bursty loss.
    BurstLoss(GeParams),
    /// Each delivered packet is additionally duplicated with this
    /// probability (the copy arrives at the same instant, after the
    /// original).
    Duplicate {
        /// Duplication probability, per-mille.
        prob_pm: u32,
    },
    /// Each packet is corrupted with this probability. A corrupted packet
    /// is dropped whole (checksum failure); links never forge bytes, so
    /// the structured and encoded wire paths stay identical.
    Corrupt {
        /// Corruption probability, per-mille.
        prob_pm: u32,
    },
    /// One endpoint freezes: every event addressed to it during the
    /// window is deferred to the window end.
    PeerStall {
        /// Which endpoint stalls.
        side: PeerSide,
    },
    /// Drop-tail queue limit multiplied by `factor_pm`‰ for the window.
    BufferShrink {
        /// Buffer multiplier, per-mille.
        factor_pm: u32,
    },
}

impl FaultKind {
    /// Stable kind label, matching the `traumafuzz` repro spelling.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Blackout => "blackout",
            FaultKind::Flap { .. } => "flap",
            FaultKind::BandwidthCliff { .. } => "bw_cliff",
            FaultKind::BandwidthRamp { .. } => "bw_ramp",
            FaultKind::BurstLoss(_) => "burst_loss",
            FaultKind::Duplicate { .. } => "duplicate",
            FaultKind::Corrupt { .. } => "corrupt",
            FaultKind::PeerStall { .. } => "stall",
            FaultKind::BufferShrink { .. } => "buffer_shrink",
        }
    }
}

/// One scheduled fault: `kind` applied to `dir` over `[at, at + dur)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Window start (simulated time).
    pub at: Time,
    /// Window length.
    pub dur: Dur,
    /// Direction selector.
    pub dir: FaultDir,
    /// What happens during the window.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Window end (exclusive).
    pub fn end(&self) -> Time {
        self.at + self.dur
    }

    /// Whether the window covers `t` (half-open: `at <= t < at + dur`).
    pub fn active(&self, t: Time) -> bool {
        self.at <= t && t < self.end()
    }
}

/// A schedule of fault events composable onto any scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled events, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder-style: append an event.
    pub fn with_event(mut self, ev: FaultEvent) -> Self {
        self.events.push(ev);
        self
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Latest window end across all events (`Time::ZERO` when empty).
    pub fn horizon(&self) -> Time {
        self.events
            .iter()
            .map(FaultEvent::end)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// The link-applicable events for one direction, or `None` when no
    /// event touches that direction (so the link carries no fault state at
    /// all and its hot path stays on the unfaulted branch).
    pub fn link_view(&self, up: bool) -> Option<LinkFault> {
        let events: Vec<FaultEvent> = self
            .events
            .iter()
            .filter(|e| e.dir.applies(up) && !matches!(e.kind, FaultKind::PeerStall { .. }))
            .copied()
            .collect();
        if events.is_empty() {
            None
        } else {
            Some(LinkFault { events })
        }
    }

    /// Stall windows `(from, until)` for one endpoint.
    pub fn stall_windows(&self, side: PeerSide) -> Vec<(Time, Time)> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::PeerStall { side: s } if s == side))
            .map(|e| (e.at, e.end()))
            .collect()
    }

    /// Window-edge trace records for the plan: a `FaultOn` at each
    /// event's start and a `FaultOff` at its end, sorted by time. A pure
    /// function of the plan — nothing here observes the run — so merging
    /// these into a connection trace can never perturb it.
    pub fn trace_window_edges(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(2 * self.events.len());
        for e in &self.events {
            out.push(TraceRecord {
                t: e.at.as_nanos(),
                ev: TraceEvent::FaultOn {
                    kind: e.kind.label().to_string(),
                    dir: e.dir.label().to_string(),
                },
            });
            out.push(TraceRecord {
                t: e.end().as_nanos(),
                ev: TraceEvent::FaultOff {
                    kind: e.kind.label().to_string(),
                    dir: e.dir.label().to_string(),
                },
            });
        }
        out.sort_by_key(|r| r.t);
        out
    }
}

/// The per-direction slice of a [`FaultPlan`] a `LinkDir` evaluates.
/// Every method is a pure function of `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFault {
    events: Vec<FaultEvent>,
}

impl LinkFault {
    /// A view straight from events (test/bench convenience).
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        LinkFault { events }
    }

    /// Whether the link is down at `t` (blackout, or the down phase of a
    /// flap cycle).
    pub fn down(&self, t: Time) -> bool {
        self.events.iter().any(|e| {
            if !e.active(t) {
                return false;
            }
            match e.kind {
                FaultKind::Blackout => true,
                FaultKind::Flap { period, down_pm } => {
                    let p = period.as_nanos().max(1);
                    let phase = (t.as_nanos() - e.at.as_nanos()) % p;
                    // Integer per-mille comparison: exact, no float cut.
                    (phase as u128) * 1000 < (p as u128) * u128::from(down_pm.min(1000))
                }
                _ => false,
            }
        })
    }

    /// Rate multiplier at `t` (product of active cliffs and ramps,
    /// clamped to stay positive so shaped links never divide by zero).
    pub fn rate_factor(&self, t: Time) -> f64 {
        let mut f = 1.0;
        for e in &self.events {
            if !e.active(t) {
                continue;
            }
            match e.kind {
                FaultKind::BandwidthCliff { factor_pm } => f *= pm(factor_pm),
                FaultKind::BandwidthRamp { floor_pm } => {
                    let span = e.dur.as_nanos().max(1) as f64;
                    let progress = (t.as_nanos() - e.at.as_nanos()) as f64 / span;
                    f *= 1.0 - (1.0 - pm(floor_pm)) * progress;
                }
                _ => {}
            }
        }
        f.max(1e-3)
    }

    /// Buffer multiplier at `t` (product of active shrinks).
    pub fn buffer_factor(&self, t: Time) -> f64 {
        let mut f = 1.0;
        for e in &self.events {
            if let FaultKind::BufferShrink { factor_pm } = e.kind {
                if e.active(t) {
                    f *= pm(factor_pm);
                }
            }
        }
        f
    }

    /// Duplication probability at `t` (max of active windows; 0 when
    /// none, in which case the caller must not draw).
    pub fn dup_prob(&self, t: Time) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Duplicate { prob_pm } if e.active(t) => Some(pm(prob_pm)),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Corruption probability at `t` (max of active windows).
    pub fn corrupt_prob(&self, t: Time) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Corrupt { prob_pm } if e.active(t) => Some(pm(prob_pm)),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// The burst-loss parameters active at `t`, if any (first match wins;
    /// overlapping burst windows share the one chain anyway).
    pub fn ge(&self, t: Time) -> Option<GeParams> {
        self.events.iter().find_map(|e| match e.kind {
            FaultKind::BurstLoss(p) if e.active(t) => Some(p),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ms: u64, dur_ms: u64, dir: FaultDir, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            at: Time::ZERO + Dur::from_millis(at_ms),
            dur: Dur::from_millis(dur_ms),
            dir,
            kind,
        }
    }

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn windows_are_half_open() {
        let e = ev(100, 50, FaultDir::Both, FaultKind::Blackout);
        assert!(!e.active(t(99)));
        assert!(e.active(t(100)));
        assert!(e.active(t(149)));
        assert!(!e.active(t(150)), "window end is exclusive");
    }

    #[test]
    fn link_view_filters_direction_and_stalls() {
        let plan = FaultPlan::new()
            .with_event(ev(0, 10, FaultDir::Up, FaultKind::Blackout))
            .with_event(ev(
                0,
                10,
                FaultDir::Down,
                FaultKind::Duplicate { prob_pm: 100 },
            ))
            .with_event(ev(
                0,
                10,
                FaultDir::Both,
                FaultKind::PeerStall {
                    side: PeerSide::Client,
                },
            ));
        let up = plan.link_view(true).expect("up view");
        assert!(up.down(t(5)));
        assert_eq!(up.dup_prob(t(5)), 0.0);
        let down = plan.link_view(false).expect("down view");
        assert!(!down.down(t(5)));
        assert_eq!(down.dup_prob(t(5)), 0.1);
        assert_eq!(plan.stall_windows(PeerSide::Client), vec![(t(0), t(10))]);
        assert!(plan.stall_windows(PeerSide::Server).is_empty());
    }

    #[test]
    fn stall_only_plan_has_no_link_view() {
        let plan = FaultPlan::new().with_event(ev(
            0,
            10,
            FaultDir::Both,
            FaultKind::PeerStall {
                side: PeerSide::Server,
            },
        ));
        assert!(plan.link_view(true).is_none());
        assert!(plan.link_view(false).is_none());
    }

    #[test]
    fn flap_duty_cycle() {
        let f = LinkFault::from_events(vec![ev(
            0,
            1000,
            FaultDir::Both,
            FaultKind::Flap {
                period: Dur::from_millis(100),
                down_pm: 300,
            },
        )]);
        // Down for the first 30ms of every 100ms cycle.
        assert!(f.down(t(0)));
        assert!(f.down(t(29)));
        assert!(!f.down(t(30)));
        assert!(!f.down(t(99)));
        assert!(f.down(t(100)));
        assert!(f.down(t(529)));
        assert!(!f.down(t(530)));
        // Outside the window the flap is gone entirely.
        assert!(!f.down(t(1000)));
    }

    #[test]
    fn cliff_and_ramp_compose() {
        let f = LinkFault::from_events(vec![
            ev(
                0,
                1000,
                FaultDir::Both,
                FaultKind::BandwidthCliff { factor_pm: 500 },
            ),
            ev(
                0,
                1000,
                FaultDir::Both,
                FaultKind::BandwidthRamp { floor_pm: 200 },
            ),
        ]);
        assert!(
            (f.rate_factor(t(0)) - 0.5).abs() < 1e-9,
            "ramp starts at 1.0"
        );
        // Halfway: ramp at 0.6, cliff 0.5 -> 0.3.
        assert!((f.rate_factor(t(500)) - 0.3).abs() < 1e-9);
        assert_eq!(f.rate_factor(t(1000)), 1.0, "window over");
    }

    #[test]
    fn rate_factor_never_hits_zero() {
        let f = LinkFault::from_events(vec![ev(
            0,
            100,
            FaultDir::Both,
            FaultKind::BandwidthCliff { factor_pm: 0 },
        )]);
        assert!(f.rate_factor(t(50)) > 0.0);
    }

    #[test]
    fn buffer_factor_windows() {
        let f = LinkFault::from_events(vec![ev(
            10,
            10,
            FaultDir::Both,
            FaultKind::BufferShrink { factor_pm: 250 },
        )]);
        assert_eq!(f.buffer_factor(t(0)), 1.0);
        assert_eq!(f.buffer_factor(t(15)), 0.25);
        assert_eq!(f.buffer_factor(t(20)), 1.0);
    }

    #[test]
    fn ge_stationary_math() {
        let p = GeParams {
            p_enter_pm: 100,
            p_exit_pm: 300,
            loss_good_pm: 0,
            loss_bad_pm: 500,
        };
        assert!((p.stationary_bad() - 0.25).abs() < 1e-12);
        assert!((p.stationary_loss() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn ge_chain_is_deterministic_per_seed() {
        let p = GeParams {
            p_enter_pm: 200,
            p_exit_pm: 400,
            loss_good_pm: 10,
            loss_bad_pm: 700,
        };
        let run = || {
            let mut rng = SimRng::new(77);
            let mut chain = GeChain::default();
            (0..1000)
                .map(|_| chain.step(&mut rng, &p))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn window_edges_are_sorted_on_off_pairs() {
        let plan = FaultPlan::new()
            .with_event(ev(200, 100, FaultDir::Up, FaultKind::Blackout))
            .with_event(ev(
                0,
                50,
                FaultDir::Both,
                FaultKind::Duplicate { prob_pm: 100 },
            ));
        let edges = plan.trace_window_edges();
        assert_eq!(edges.len(), 4);
        assert!(edges.windows(2).all(|w| w[0].t <= w[1].t), "sorted");
        assert_eq!(
            edges[0].ev,
            TraceEvent::FaultOn {
                kind: "duplicate".into(),
                dir: "both".into()
            }
        );
        assert_eq!(
            edges[3].ev,
            TraceEvent::FaultOff {
                kind: "blackout".into(),
                dir: "up".into()
            }
        );
        assert!(FaultPlan::new().trace_window_edges().is_empty());
    }

    #[test]
    fn horizon_is_latest_end() {
        let plan = FaultPlan::new()
            .with_event(ev(0, 50, FaultDir::Both, FaultKind::Blackout))
            .with_event(ev(200, 100, FaultDir::Up, FaultKind::Blackout));
        assert_eq!(plan.horizon(), t(300));
        assert_eq!(FaultPlan::new().horizon(), Time::ZERO);
    }

    mod ge_proptests {
        use super::*;
        use proptest::prelude::*;

        fn empirical_loss(p: GeParams, seed: u64, n: usize) -> f64 {
            let mut rng = SimRng::new(seed);
            let mut chain = GeChain::default();
            let losses = (0..n).filter(|_| chain.step(&mut rng, &p)).count();
            losses as f64 / n as f64
        }

        proptest! {
            /// Over a long run the empirical loss rate converges to the
            /// stationary loss probability (chain mixes fast for the
            /// drawn transition probabilities).
            #[test]
            fn ge_converges_to_stationary(
                p_enter_pm in 50u32..500,
                p_exit_pm in 50u32..500,
                loss_good_pm in 0u32..200,
                loss_bad_pm in 300u32..1000,
                seed in 0u64..1000,
            ) {
                let p = GeParams { p_enter_pm, p_exit_pm, loss_good_pm, loss_bad_pm };
                let emp = empirical_loss(p, seed, 30_000);
                let stat = p.stationary_loss();
                prop_assert!(
                    (emp - stat).abs() < 0.05,
                    "empirical {} vs stationary {}", emp, stat
                );
            }

            /// When good and bad states share the same loss probability
            /// the chain state is irrelevant: the model degenerates to
            /// the existing Bernoulli uniform-loss path.
            #[test]
            fn ge_degenerates_to_bernoulli(
                loss_pm in 10u32..600,
                p_enter_pm in 0u32..1000,
                p_exit_pm in 0u32..1000,
                seed in 0u64..1000,
            ) {
                let p = GeParams {
                    p_enter_pm,
                    p_exit_pm,
                    loss_good_pm: loss_pm,
                    loss_bad_pm: loss_pm,
                };
                prop_assert!((p.stationary_loss() - pm(loss_pm)).abs() < 1e-12);
                let emp = empirical_loss(p, seed, 30_000);
                // Match a plain Bernoulli stream of the same probability
                // within the same statistical tolerance.
                let mut rng = SimRng::new(seed ^ 0xB357);
                let bern = (0..30_000).filter(|_| rng.chance(pm(loss_pm))).count() as f64
                    / 30_000.0;
                prop_assert!((emp - pm(loss_pm)).abs() < 0.02, "emp {}", emp);
                prop_assert!((emp - bern).abs() < 0.03, "emp {} vs bern {}", emp, bern);
            }
        }
    }
}
