//! Deterministic discrete-event network testbed.
//!
//! This crate is the substrate the whole `longlook` evaluation framework
//! stands on: a seeded, single-threaded, discrete-event simulation of hosts
//! connected by emulated links with `tc tbf` / `netem` semantics (rate
//! limiting with a token bucket and drop-tail queue, base delay, jitter
//! that reorders, random loss, explicit hold-back reordering, time-varying
//! bandwidth), plus client device models that charge per-packet
//! kernel/userspace processing costs.
//!
//! Everything is deterministic given an experiment seed, which is what
//! makes the paper's methodology — back-to-back comparisons, at least 10
//! rounds, statistical significance gates — exactly repeatable here.

pub mod arena;
pub mod device;
pub mod fault;
pub mod link;
pub mod packet;
pub mod rng;
pub mod sched;
pub mod schedule;
pub mod time;
pub mod world;

pub use arena::{SlotHandle, SlotPool};
pub use device::{DeviceCpu, DeviceProfile};
pub use fault::{
    FaultDir, FaultEvent, FaultKind, FaultPlan, GeChain, GeParams, LinkFault, PeerSide,
};
pub use link::{DropKind, Jitter, LinkConfig, LinkDir, LinkStats, ReorderSpec, Verdict};
// The payload pool moved down into `longlook-wire` (the wire formats need
// it); re-exported here so `longlook_sim::pool::PayloadPool` keeps working.
pub use longlook_wire::pool;
// The structured trace layer lives in `longlook-wire` (the bottom crate,
// so transports and the fault layer can both emit); re-exported here as
// `longlook_sim::trace` for everything above the simulator.
pub use longlook_wire::trace;
pub use longlook_wire::{BatchMode, PayloadPool, TraceMode, TraceRecord, Tracer, WireMode};
pub use packet::{FlowId, NodeId, Packet, Payload, PktClass};
pub use rng::{current_cell, CellGuard, CellId, IsolationTag, SimRng};
pub use sched::{EventQueue, SchedKind};
pub use schedule::RateSchedule;
pub use time::{transmission_delay, Dur, Time};
pub use world::{Agent, Ctx, RunOutcome, World};
