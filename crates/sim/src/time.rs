//! Simulated time: nanosecond-resolution instants and durations.
//!
//! The testbed is a deterministic discrete-event simulation, so wall-clock
//! types are deliberately avoided: [`Time`] is a virtual instant measured
//! from the start of an experiment, and [`Dur`] a span between instants.
//! `u64` nanoseconds cover ~584 years of simulated time, far beyond any
//! experiment here.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A virtual instant (nanoseconds since experiment start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of virtual time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The experiment origin.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as "never").
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Raw nanoseconds since origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since origin as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since origin as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference.
    pub fn checked_since(self, earlier: Time) -> Option<Dur> {
        self.0.checked_sub(earlier.0).map(Dur)
    }

    /// Bucket index when quantizing the timeline into `1 << shift` ns
    /// wide slots (used by the timing-wheel scheduler).
    pub(crate) const fn tick(self, shift: u32) -> u64 {
        self.0 >> shift
    }
}

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);
    /// Largest representable span.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Dur(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }

    /// Construct from fractional seconds; panics on negative or
    /// non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        Dur((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor.
    pub const fn saturating_mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (rounds to nearest nanosecond).
    pub fn mul_f64(self, k: f64) -> Dur {
        assert!(k.is_finite() && k >= 0.0, "invalid scale: {k}");
        Dur((self.0 as f64 * k).round() as u64)
    }

    /// Larger of two spans.
    pub fn max(self, other: Dur) -> Dur {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Smaller of two spans.
    pub fn min(self, other: Dur) -> Dur {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, d: Dur) {
        *self = *self + d;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    /// Panics if `rhs` is later than `self`; use
    /// [`Time::saturating_since`] when order is uncertain.
    fn sub(self, rhs: Time) -> Dur {
        Dur(self
            .0
            .checked_sub(rhs.0)
            .expect("time subtraction underflow"))
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, d: Dur) -> Time {
        Time(self.0.saturating_sub(d.0))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self
            .0
            .checked_sub(rhs.0)
            .expect("duration subtraction underflow"))
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, k: u64) -> Dur {
        self.saturating_mul(k)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

impl Div for Dur {
    type Output = f64;
    fn div(self, rhs: Dur) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0 / 1000)
        }
    }
}

/// Transmission (serialization) delay of `bytes` at `bits_per_sec`.
pub fn transmission_delay(bytes: u64, bits_per_sec: f64) -> Dur {
    assert!(bits_per_sec > 0.0, "rate must be positive");
    Dur::from_secs_f64(bytes as f64 * 8.0 / bits_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Dur::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Dur::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Dur::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(Dur::from_secs_f64(0.5).as_millis_f64(), 500.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::ZERO + Dur::from_millis(10);
        assert_eq!(t.as_nanos(), 10_000_000);
        assert_eq!(t - Time::ZERO, Dur::from_millis(10));
        assert_eq!((t - Dur::from_millis(3)).as_nanos(), 7_000_000);
        assert_eq!(Time::ZERO.saturating_since(t), Dur::ZERO);
        assert_eq!(t.checked_since(Time::ZERO), Some(Dur::from_millis(10)));
        assert_eq!(Time::ZERO.checked_since(t), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_underflow_panics() {
        let _ = Time::ZERO - (Time::ZERO + Dur::from_nanos(1));
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(Dur::from_millis(10) * 3, Dur::from_millis(30));
        assert_eq!(Dur::from_millis(10) / 2, Dur::from_millis(5));
        assert_eq!(Dur::from_millis(10).mul_f64(1.5), Dur::from_millis(15));
        assert_eq!(Dur::from_millis(10) / Dur::from_millis(4), 2.5);
    }

    #[test]
    fn min_max() {
        let a = Dur::from_millis(1);
        let b = Dur::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn transmission_delay_math() {
        // 1500 bytes at 12 Mbps = 1 ms.
        assert_eq!(transmission_delay(1500, 12e6), Dur::from_millis(1));
        // 1 byte at 8 bps = 1 s.
        assert_eq!(transmission_delay(1, 8.0), Dur::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dur::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", Dur::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", Dur::from_micros(9)), "9us");
    }

    #[test]
    fn saturating_behavior() {
        assert_eq!(Time::MAX + Dur::from_secs(1), Time::MAX);
        assert_eq!(
            Dur::from_millis(1).saturating_sub(Dur::from_millis(2)),
            Dur::ZERO
        );
    }
}
