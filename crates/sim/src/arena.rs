//! Generational slot allocation for struct-of-arrays connection arenas.
//!
//! Fleet-scale worlds hold 10^5–10^6 concurrent connections; per-cell
//! `Box`/`HashMap` ownership (one allocation per connection, pointer
//! chasing per event) is exactly the layout the batched hot path removed
//! from the 1-vs-1 cells, so the fleet substrate never introduces it.
//! Instead, per-connection state lives in parallel columns (`Vec<T>` per
//! field) indexed by a *slot*, and [`SlotPool`] is the allocator that
//! hands slots out, recycles them LIFO when connections finish, and
//! brands every handle with a *generation* so a handle that outlives its
//! connection can never silently read the stranger that reused the slot.
//!
//! The pool itself costs 4 bytes per slot (the generation word) plus the
//! recycled-slot free list; columns are owned by the caller (e.g.
//! `longlook_core::fleet::ConnArena`) and sized via [`SlotPool::slots`].
//! Everything is deterministic: allocation order is a pure function of
//! the alloc/free call sequence, which the fleet world drives from its
//! seeded event loop.

/// A generational handle to one slot: the slot index plus the generation
/// the slot had when this handle was issued. Stale handles (the slot was
/// freed, and possibly reallocated, since) are detected by
/// [`SlotPool::resolve`] returning `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotHandle {
    index: u32,
    generation: u32,
}

impl SlotHandle {
    /// The raw slot index. Only meaningful while the handle is live;
    /// resolve through the pool before trusting it.
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The generation this handle was issued under.
    #[inline]
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// Generational slot allocator backing struct-of-arrays storage.
///
/// Generations use the low bit as the liveness flag: a slot's generation
/// is odd while allocated and even while free, so a handle is live iff
/// its recorded generation equals the slot's current (odd) generation.
/// Freeing bumps the generation, invalidating every outstanding handle
/// to that slot in O(1) without any per-handle bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct SlotPool {
    /// Per-slot generation; odd = allocated, even = free.
    generations: Vec<u32>,
    /// Recycled slot indices, LIFO (keeps the hot end of the columns in
    /// cache and makes allocation order deterministic).
    free: Vec<u32>,
    live: usize,
    live_peak: usize,
}

impl SlotPool {
    /// An empty pool.
    pub fn new() -> Self {
        SlotPool::default()
    }

    /// An empty pool with room for `n` slots before the generation column
    /// reallocates.
    pub fn with_capacity(n: usize) -> Self {
        SlotPool {
            generations: Vec::with_capacity(n),
            free: Vec::new(),
            live: 0,
            live_peak: 0,
        }
    }

    /// Allocate a slot: recycle the most recently freed one, or grow the
    /// slot space by one. The caller must keep its columns at least
    /// [`Self::slots`] long.
    pub fn alloc(&mut self) -> SlotHandle {
        let index = match self.free.pop() {
            Some(i) => {
                // Even (free) → odd (allocated).
                self.generations[i as usize] += 1;
                i
            }
            None => {
                let i = self.generations.len() as u32;
                assert!(i < u32::MAX, "slot space exhausted");
                self.generations.push(1);
                i
            }
        };
        self.live += 1;
        self.live_peak = self.live_peak.max(self.live);
        SlotHandle {
            index,
            generation: self.generations[index as usize],
        }
    }

    /// Free the slot behind `h`. Returns `false` (and does nothing) if
    /// the handle is stale — already freed, or freed and reallocated.
    pub fn free(&mut self, h: SlotHandle) -> bool {
        if self.resolve(h).is_none() {
            return false;
        }
        // Odd (allocated) → even (free); every outstanding handle to this
        // slot is now stale.
        self.generations[h.index as usize] = self.generations[h.index as usize].wrapping_add(1);
        self.free.push(h.index);
        self.live -= 1;
        true
    }

    /// The slot index behind `h`, or `None` if the handle is stale.
    #[inline]
    pub fn resolve(&self, h: SlotHandle) -> Option<usize> {
        let g = *self.generations.get(h.index as usize)?;
        (g == h.generation && g & 1 == 1).then_some(h.index as usize)
    }

    /// Whether `h` is still live.
    #[inline]
    pub fn contains(&self, h: SlotHandle) -> bool {
        self.resolve(h).is_some()
    }

    /// Total slots ever allocated (live + recycled); the minimum length
    /// the caller's columns must have.
    #[inline]
    pub fn slots(&self) -> usize {
        self.generations.len()
    }

    /// Currently live slots.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of live slots.
    #[inline]
    pub fn live_peak(&self) -> usize {
        self.live_peak
    }

    /// Heap bytes the pool itself holds (generation column + free list
    /// capacities) — the allocator's share of a per-connection budget.
    pub fn bytes(&self) -> usize {
        self.generations.capacity() * std::mem::size_of::<u32>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_resolve_free_roundtrip() {
        let mut p = SlotPool::new();
        let a = p.alloc();
        let b = p.alloc();
        assert_eq!(p.live(), 2);
        assert_eq!(p.slots(), 2);
        assert_eq!(p.resolve(a), Some(0));
        assert_eq!(p.resolve(b), Some(1));
        assert!(p.free(a));
        assert_eq!(p.live(), 1);
        assert_eq!(p.resolve(a), None, "freed handle is stale");
    }

    #[test]
    fn stale_handle_rejected_after_reuse() {
        let mut p = SlotPool::new();
        let a = p.alloc();
        assert!(p.free(a));
        let b = p.alloc();
        // LIFO recycling reuses slot 0 under a new generation.
        assert_eq!(b.index(), a.index());
        assert_ne!(b.generation(), a.generation());
        assert_eq!(p.resolve(a), None, "old handle must not alias the reuser");
        assert_eq!(p.resolve(b), Some(0));
        assert!(!p.free(a), "stale free is a no-op");
        assert!(p.contains(b), "stale free must not kill the live conn");
        assert_eq!(p.live(), 1);
    }

    #[test]
    fn double_free_rejected() {
        let mut p = SlotPool::new();
        let a = p.alloc();
        assert!(p.free(a));
        assert!(!p.free(a));
        assert_eq!(p.live(), 0);
    }

    #[test]
    fn out_of_range_handle_is_stale() {
        let p = SlotPool::new();
        let bogus = SlotHandle {
            index: 7,
            generation: 1,
        };
        assert_eq!(p.resolve(bogus), None);
    }

    #[test]
    fn live_peak_tracks_high_water() {
        let mut p = SlotPool::new();
        let hs: Vec<_> = (0..5).map(|_| p.alloc()).collect();
        for h in &hs[..3] {
            assert!(p.free(*h));
        }
        let _ = p.alloc();
        assert_eq!(p.live(), 3);
        assert_eq!(p.live_peak(), 5);
        assert_eq!(p.slots(), 5, "recycling does not grow the slot space");
    }

    #[test]
    fn pool_bytes_scale_with_slots_not_churn() {
        let mut p = SlotPool::with_capacity(64);
        let hs: Vec<_> = (0..64).map(|_| p.alloc()).collect();
        let sized = p.bytes();
        for h in hs {
            assert!(p.free(h));
        }
        for _ in 0..64 {
            let _ = p.alloc();
        }
        assert_eq!(p.slots(), 64);
        assert_eq!(p.bytes(), sized.max(p.bytes()).min(sized * 2));
    }
}
