//! Bandwidth schedules: fixed, piecewise, and randomly fluctuating rates.
//!
//! The paper's variable-bandwidth experiments (Fig 11) "randomly pick a
//! rate in [50, 150] Mbps every one second". [`RateSchedule::RandomHold`]
//! reproduces this as a *pure function* of (seed, period index), so the
//! rate at any instant is well-defined independent of query order.

use crate::rng::hash_unit;
use crate::time::{Dur, Time};

/// A time-varying link rate in bits per second.
#[derive(Debug, Clone)]
pub enum RateSchedule {
    /// Constant rate.
    Fixed(f64),
    /// Step function: `(start_time, rate)` pairs, sorted ascending by time.
    /// The first entry should start at `Time::ZERO`.
    Piecewise(Vec<(Time, f64)>),
    /// A fresh uniform draw from `[min_bps, max_bps]` held for each
    /// `period`; the draw is `hash(seed, period_index)`.
    RandomHold {
        /// Lower rate bound (bits/sec).
        min_bps: f64,
        /// Upper rate bound (bits/sec).
        max_bps: f64,
        /// How long each draw is held.
        period: Dur,
        /// Schedule seed.
        seed: u64,
    },
}

impl RateSchedule {
    /// Fixed schedule from megabits per second.
    pub fn fixed_mbps(mbps: f64) -> Self {
        RateSchedule::Fixed(mbps * 1e6)
    }

    /// Fluctuating schedule from a Mbps range, redrawn each `period`.
    pub fn random_hold_mbps(min_mbps: f64, max_mbps: f64, period: Dur, seed: u64) -> Self {
        RateSchedule::RandomHold {
            min_bps: min_mbps * 1e6,
            max_bps: max_mbps * 1e6,
            period,
            seed,
        }
    }

    /// The rate in bits/sec at instant `t`. Always positive.
    pub fn rate_at(&self, t: Time) -> f64 {
        match self {
            RateSchedule::Fixed(r) => {
                debug_assert!(*r > 0.0);
                *r
            }
            RateSchedule::Piecewise(steps) => {
                assert!(!steps.is_empty(), "empty piecewise schedule");
                let mut rate = steps[0].1;
                for &(start, r) in steps {
                    if start <= t {
                        rate = r;
                    } else {
                        break;
                    }
                }
                rate
            }
            RateSchedule::RandomHold {
                min_bps,
                max_bps,
                period,
                seed,
            } => {
                let idx = t.as_nanos() / period.as_nanos().max(1);
                min_bps + (max_bps - min_bps) * hash_unit(*seed, idx)
            }
        }
    }

    /// Upper bound of the schedule (used for buffer sizing heuristics).
    pub fn max_rate(&self) -> f64 {
        match self {
            RateSchedule::Fixed(r) => *r,
            RateSchedule::Piecewise(steps) => steps.iter().map(|&(_, r)| r).fold(0.0, f64::max),
            RateSchedule::RandomHold { max_bps, .. } => *max_bps,
        }
    }

    /// Mean rate of the schedule (exact for fixed, midpoint for random).
    pub fn nominal_rate(&self) -> f64 {
        match self {
            RateSchedule::Fixed(r) => *r,
            RateSchedule::Piecewise(steps) => {
                steps.iter().map(|&(_, r)| r).sum::<f64>() / steps.len() as f64
            }
            RateSchedule::RandomHold {
                min_bps, max_bps, ..
            } => (min_bps + max_bps) / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate() {
        let s = RateSchedule::fixed_mbps(5.0);
        assert_eq!(s.rate_at(Time::ZERO), 5e6);
        assert_eq!(s.rate_at(Time::from_nanos(u64::MAX / 2)), 5e6);
        assert_eq!(s.max_rate(), 5e6);
    }

    #[test]
    fn piecewise_steps() {
        let s = RateSchedule::Piecewise(vec![
            (Time::ZERO, 1e6),
            (Time::ZERO + Dur::from_secs(1), 2e6),
            (Time::ZERO + Dur::from_secs(2), 3e6),
        ]);
        assert_eq!(s.rate_at(Time::ZERO), 1e6);
        assert_eq!(s.rate_at(Time::ZERO + Dur::from_millis(999)), 1e6);
        assert_eq!(s.rate_at(Time::ZERO + Dur::from_secs(1)), 2e6);
        assert_eq!(s.rate_at(Time::ZERO + Dur::from_millis(2500)), 3e6);
        assert_eq!(s.max_rate(), 3e6);
    }

    #[test]
    fn random_hold_is_pure_and_bounded() {
        let s = RateSchedule::random_hold_mbps(50.0, 150.0, Dur::from_secs(1), 77);
        for k in 0..100u64 {
            let t = Time::ZERO + Dur::from_millis(k * 137);
            let r = s.rate_at(t);
            assert!((50e6..=150e6).contains(&r), "r = {r}");
            assert_eq!(r, s.rate_at(t), "pure function");
        }
    }

    #[test]
    fn random_hold_changes_across_periods() {
        let s = RateSchedule::random_hold_mbps(50.0, 150.0, Dur::from_secs(1), 77);
        let r0 = s.rate_at(Time::ZERO);
        let r1 = s.rate_at(Time::ZERO + Dur::from_secs(1));
        let r2 = s.rate_at(Time::ZERO + Dur::from_secs(2));
        assert!(r0 != r1 || r1 != r2, "draws should vary");
        // Within one period the rate holds.
        assert_eq!(
            s.rate_at(Time::ZERO + Dur::from_millis(100)),
            s.rate_at(Time::ZERO + Dur::from_millis(900))
        );
    }

    #[test]
    fn nominal_rates() {
        assert_eq!(RateSchedule::fixed_mbps(10.0).nominal_rate(), 10e6);
        let s = RateSchedule::random_hold_mbps(50.0, 150.0, Dur::from_secs(1), 1);
        assert_eq!(s.nominal_rate(), 100e6);
    }
}
