//! One-directional link emulation with `tc tbf` + `netem` semantics.
//!
//! The paper's testbed shapes traffic on an OpenWRT router with Linux
//! Traffic Control: token-bucket filters for rate limits and netem for
//! delay, jitter, loss and reordering. This module reproduces those
//! behaviors analytically:
//!
//! * **tbf**: a token bucket (burst allowance) feeding a fluid drop-tail
//!   queue served at the (possibly time-varying) link rate;
//! * **netem delay/jitter**: each packet is assigned
//!   `base_delay + jitter_draw` *when it leaves the queue* and is delivered
//!   at that adjusted time — exactly netem's mechanism, which (as the paper
//!   observes in Sec 5.2) makes jitter cause packet reordering because
//!   packets are "queued based on the adjusted send time, not the packet
//!   arrival time";
//! * **netem loss**: i.i.d. Bernoulli drops;
//! * **netem reorder**: an explicit hold-back model (probability +
//!   extra delay) used for the cellular profiles of Table 5.

use crate::fault::{GeChain, LinkFault};
use crate::rng::SimRng;
use crate::schedule::RateSchedule;
use crate::time::{transmission_delay, Dur, Time};

/// Jitter model applied to each packet's one-way delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Jitter {
    /// No jitter.
    None,
    /// netem-style uniform jitter: delay drawn from `base ± j`.
    Uniform(Dur),
    /// Gaussian jitter with the given standard deviation (clamped so the
    /// total delay never goes negative).
    Normal(Dur),
}

/// Explicit reordering: with probability `prob` a packet is held back by
/// `hold` beyond its normal delivery time (models cellular RLC
/// retransmission holds, which work at any link speed — a netem-style
/// "send early" model cannot reorder once the inter-packet spacing
/// exceeds the one-way delay). Held packets are counted as reordered
/// directly and excluded from the inversion counter so each reordering
/// event is counted exactly once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderSpec {
    /// Probability a packet is held back.
    pub prob: f64,
    /// Extra delay applied to a held packet.
    pub hold: Dur,
}

/// Configuration of one link direction.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Rate limit; `None` means an unshaped (infinite-rate) link.
    pub rate: Option<RateSchedule>,
    /// Base one-way propagation delay.
    pub delay: Dur,
    /// Per-packet delay jitter.
    pub jitter: Jitter,
    /// Random loss probability per packet.
    pub loss: f64,
    /// Explicit reordering model.
    pub reorder: Option<ReorderSpec>,
    /// Drop-tail queue limit in bytes (only meaningful when shaped).
    pub buffer_bytes: u64,
    /// Token-bucket burst allowance in bytes.
    pub burst_bytes: u64,
    /// Scheduled fault injection for this direction (see [`crate::fault`]).
    /// `None` — the default everywhere — keeps the transit path and its
    /// RNG stream byte-identical to a build without the fault layer.
    pub fault: Option<LinkFault>,
}

impl LinkConfig {
    /// An ideal link: no shaping, a fixed delay, no impairment.
    pub fn ideal(delay: Dur) -> Self {
        LinkConfig {
            rate: None,
            delay,
            jitter: Jitter::None,
            loss: 0.0,
            reorder: None,
            buffer_bytes: u64::MAX,
            burst_bytes: 0,
            fault: None,
        }
    }

    /// A shaped link with a sensible default buffer: one bandwidth-delay
    /// product at the given RTT (min 64 KB), mirroring the paper's tbf
    /// tuning that "allow\[s\] the flows to achieve transfer rates that are
    /// close to the bandwidth caps".
    pub fn shaped(rate: RateSchedule, one_way_delay: Dur, assumed_rtt: Dur) -> Self {
        let bdp = (rate.max_rate() / 8.0 * assumed_rtt.as_secs_f64()) as u64;
        LinkConfig {
            rate: Some(rate),
            delay: one_way_delay,
            jitter: Jitter::None,
            loss: 0.0,
            reorder: None,
            buffer_bytes: bdp.max(64 * 1024),
            burst_bytes: 16 * 1024,
            fault: None,
        }
    }

    /// Builder-style: set random loss.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Builder-style: set jitter.
    pub fn with_jitter(mut self, jitter: Jitter) -> Self {
        self.jitter = jitter;
        self
    }

    /// Builder-style: set explicit reordering.
    pub fn with_reorder(mut self, spec: ReorderSpec) -> Self {
        self.reorder = Some(spec);
        self
    }

    /// Builder-style: set the queue limit.
    pub fn with_buffer(mut self, bytes: u64) -> Self {
        self.buffer_bytes = bytes;
        self
    }

    /// Builder-style: attach a fault-injection view for this direction.
    pub fn with_fault(mut self, fault: Option<LinkFault>) -> Self {
        self.fault = fault;
        self
    }

    /// Rough upper bound on packets simultaneously in flight through this
    /// direction (drop-tail queue plus propagation), used by
    /// [`crate::World`] to pre-size its event queue. A hint only — it
    /// never affects link behavior.
    pub fn inflight_hint(&self) -> usize {
        // Queue occupancy is bounded by buffer_bytes; assume ~1200-byte
        // packets (the workspace's typical full datagram). Ideal links
        // report an unbounded buffer, so clamp to something modest.
        let queued = (self.buffer_bytes / 1200).min(256) as usize;
        queued + 16
    }
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropKind {
    /// Random (netem) loss.
    Random,
    /// Drop-tail queue overflow (congestion loss).
    Overflow,
    /// Link outage (fault-injected blackout or flap down-phase).
    Blackout,
    /// Gilbert–Elliott burst loss (fault-injected).
    Burst,
    /// Corruption (fault-injected): the packet is dropped whole, as a
    /// checksum failure would — links never forge bytes.
    Corrupt,
}

/// Outcome of offering a packet to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Packet will arrive at the far end at this instant.
    DeliverAt(Time),
    /// Packet was dropped.
    Dropped(DropKind),
}

/// Counters exposed for Table 5-style link characterization.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Packets offered to the link.
    pub offered: u64,
    /// Packets scheduled for delivery.
    pub delivered: u64,
    /// Random losses.
    pub random_drops: u64,
    /// Queue-overflow losses.
    pub overflow_drops: u64,
    /// Fault-injected outage drops (blackouts and flap down-phases).
    pub blackout_drops: u64,
    /// Fault-injected Gilbert–Elliott burst losses.
    pub burst_drops: u64,
    /// Fault-injected corruption drops.
    pub corrupt_drops: u64,
    /// Fault-injected duplicate deliveries scheduled.
    pub dup_copies: u64,
    /// Packets whose scheduled arrival precedes that of an earlier packet
    /// (i.e. delivered out of order).
    pub reordered: u64,
    /// Bytes scheduled for delivery.
    pub bytes_delivered: u64,
    /// Sum of per-packet one-way latency in nanoseconds (queue + delay).
    pub total_latency_ns: u128,
}

impl LinkStats {
    /// Observed loss rate (all causes).
    pub fn loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            let drops = self.random_drops
                + self.overflow_drops
                + self.blackout_drops
                + self.burst_drops
                + self.corrupt_drops;
            drops as f64 / self.offered as f64
        }
    }

    /// Observed reordering rate among delivered packets.
    pub fn reorder_rate(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.reordered as f64 / self.delivered as f64
        }
    }

    /// Mean one-way latency.
    pub fn mean_latency(&self) -> Dur {
        if self.delivered == 0 {
            Dur::ZERO
        } else {
            Dur::from_nanos((self.total_latency_ns / self.delivered as u128) as u64)
        }
    }
}

/// One direction of an emulated link.
#[derive(Debug, Clone)]
pub struct LinkDir {
    cfg: LinkConfig,
    rng: SimRng,
    /// Instant the fluid queue drains to empty.
    backlog_end: Time,
    /// Token bucket fill (bytes) and its last-refill instant.
    tokens: f64,
    token_time: Time,
    /// Latest scheduled arrival so far (reorder detection).
    max_sched_arrival: Time,
    /// Gilbert–Elliott chain state (stepped only inside an active
    /// burst-loss fault window).
    ge: GeChain,
    /// Arrival time of a fault-injected duplicate of the packet just
    /// delivered; the world drains this right after `transit`.
    pending_dup: Option<Time>,
    stats: LinkStats,
}

impl LinkDir {
    /// Create a link direction with its own RNG stream.
    pub fn new(cfg: LinkConfig, rng: SimRng) -> Self {
        let tokens = cfg.burst_bytes as f64;
        LinkDir {
            cfg,
            rng,
            backlog_end: Time::ZERO,
            tokens,
            token_time: Time::ZERO,
            max_sched_arrival: Time::ZERO,
            ge: GeChain::default(),
            pending_dup: None,
            stats: LinkStats::default(),
        }
    }

    /// Offer a packet of `wire_size` bytes to the link at `now`; returns
    /// the delivery verdict. Must be called with non-decreasing `now`.
    pub fn transit(&mut self, now: Time, wire_size: u32) -> Verdict {
        self.stats.offered += 1;

        // Fault checks precede every RNG draw so that outside an active
        // window (or with no fault attached) the draw sequence is
        // byte-identical to an unfaulted link. Check order is part of the
        // determinism contract: outage (no draw), base loss draw, burst
        // draw, corruption draw, then the normal shaping/jitter path.
        if let Some(f) = &self.cfg.fault {
            if f.down(now) {
                self.stats.blackout_drops += 1;
                return Verdict::Dropped(DropKind::Blackout);
            }
        }

        if self.rng.chance(self.cfg.loss) {
            self.stats.random_drops += 1;
            return Verdict::Dropped(DropKind::Random);
        }

        if let Some(ge_params) = self.cfg.fault.as_ref().and_then(|f| f.ge(now)) {
            if self.ge.step(&mut self.rng, &ge_params) {
                self.stats.burst_drops += 1;
                return Verdict::Dropped(DropKind::Burst);
            }
        }

        let corrupt_p = self.cfg.fault.as_ref().map_or(0.0, |f| f.corrupt_prob(now));
        if corrupt_p > 0.0 && self.rng.chance(corrupt_p) {
            self.stats.corrupt_drops += 1;
            return Verdict::Dropped(DropKind::Corrupt);
        }

        let (rate_factor, buffer_factor) = match &self.cfg.fault {
            Some(f) => (f.rate_factor(now), f.buffer_factor(now)),
            None => (1.0, 1.0),
        };

        let depart = match &self.cfg.rate {
            None => now,
            Some(schedule) => {
                let rate = schedule.rate_at(now) * rate_factor;
                // Refill the token bucket.
                let elapsed = now.saturating_since(self.token_time).as_secs_f64();
                self.tokens = (self.tokens + elapsed * rate / 8.0).min(self.cfg.burst_bytes as f64);
                self.token_time = now;

                let queue_empty = self.backlog_end <= now;
                if queue_empty && self.tokens >= wire_size as f64 {
                    // Burst through the bucket without serialization wait.
                    self.tokens -= wire_size as f64;
                    self.backlog_end = now;
                    now
                } else {
                    // Fluid queue: estimate the backlog and drop-tail it.
                    let backlog_bytes =
                        self.backlog_end.saturating_since(now).as_secs_f64() * rate / 8.0;
                    let limit = self.cfg.buffer_bytes as f64 * buffer_factor;
                    if backlog_bytes + wire_size as f64 > limit {
                        self.stats.overflow_drops += 1;
                        return Verdict::Dropped(DropKind::Overflow);
                    }
                    let start = if queue_empty { now } else { self.backlog_end };
                    let depart = start + transmission_delay(wire_size as u64, rate);
                    self.backlog_end = depart;
                    depart
                }
            }
        };

        // netem delay + jitter, assigned at dequeue time.
        let base = self.cfg.delay.as_secs_f64();
        let jittered = match self.cfg.jitter {
            Jitter::None => base,
            Jitter::Uniform(j) => {
                let j = j.as_secs_f64();
                base + self.rng.uniform(-j, j)
            }
            Jitter::Normal(sigma) => self.rng.normal(base, sigma.as_secs_f64()),
        };
        let mut delay = Dur::from_secs_f64(jittered.max(0.0));

        // Explicit hold-back reordering.
        let mut held = false;
        if let Some(spec) = self.cfg.reorder {
            if self.rng.chance(spec.prob) {
                delay += spec.hold;
                held = true;
                self.stats.reordered += 1;
            }
        }

        let arrival = depart + delay;
        if held {
            // Counted above; a held packet's late arrival must not raise
            // the inversion watermark (its passers are not "reordered").
        } else if arrival < self.max_sched_arrival {
            self.stats.reordered += 1;
        } else {
            self.max_sched_arrival = arrival;
        }
        self.stats.delivered += 1;
        self.stats.bytes_delivered += wire_size as u64;
        self.stats.total_latency_ns += (arrival - now).as_nanos() as u128;

        // Fault-injected duplication: schedule a copy at the same arrival
        // instant (delivered after the original — queue order is FIFO at
        // equal times). The draw happens only inside an active window.
        let dup_p = self.cfg.fault.as_ref().map_or(0.0, |f| f.dup_prob(now));
        if dup_p > 0.0 && self.rng.chance(dup_p) {
            self.pending_dup = Some(arrival);
            self.stats.dup_copies += 1;
        }

        Verdict::DeliverAt(arrival)
    }

    /// Arrival time for a fault-injected duplicate of the packet whose
    /// `transit` verdict was just returned, if one was drawn. The caller
    /// must drain this after every delivering `transit` call.
    pub fn take_dup_arrival(&mut self) -> Option<Time> {
        self.pending_dup.take()
    }

    /// Estimated queue occupancy in bytes at `now`.
    pub fn queue_bytes(&self, now: Time) -> u64 {
        match &self.cfg.rate {
            None => 0,
            Some(schedule) => {
                let rate = schedule.rate_at(now);
                (self.backlog_end.saturating_since(now).as_secs_f64() * rate / 8.0) as u64
            }
        }
    }

    /// Link statistics so far.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// The configuration this direction was built with.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(cfg: LinkConfig) -> LinkDir {
        LinkDir::new(cfg, SimRng::new(1))
    }

    #[test]
    fn ideal_link_is_pure_delay() {
        let mut l = mk(LinkConfig::ideal(Dur::from_millis(6)));
        let t0 = Time::ZERO + Dur::from_secs(1);
        match l.transit(t0, 1500) {
            Verdict::DeliverAt(t) => assert_eq!(t, t0 + Dur::from_millis(6)),
            v => panic!("unexpected {v:?}"),
        }
        assert_eq!(l.stats().delivered, 1);
        assert_eq!(l.stats().loss_rate(), 0.0);
    }

    #[test]
    fn shaping_serializes_back_to_back_packets() {
        // 12 Mbps -> 1500 B takes exactly 1 ms; zero burst so every packet
        // pays serialization.
        let mut cfg = LinkConfig::shaped(
            RateSchedule::Fixed(12e6),
            Dur::from_millis(5),
            Dur::from_millis(36),
        );
        cfg.burst_bytes = 0;
        let mut l = mk(cfg);
        let t0 = Time::ZERO;
        let a1 = match l.transit(t0, 1500) {
            Verdict::DeliverAt(t) => t,
            v => panic!("{v:?}"),
        };
        let a2 = match l.transit(t0, 1500) {
            Verdict::DeliverAt(t) => t,
            v => panic!("{v:?}"),
        };
        assert_eq!(a1, t0 + Dur::from_millis(1) + Dur::from_millis(5));
        assert_eq!(a2, a1 + Dur::from_millis(1), "second packet queues");
    }

    #[test]
    fn burst_tokens_let_idle_link_skip_serialization() {
        let cfg = LinkConfig {
            rate: Some(RateSchedule::Fixed(12e6)),
            delay: Dur::ZERO,
            jitter: Jitter::None,
            loss: 0.0,
            reorder: None,
            buffer_bytes: 1 << 20,
            burst_bytes: 3000,
            fault: None,
        };
        let mut l = mk(cfg);
        // Two packets fit in the bucket: both depart immediately.
        assert_eq!(l.transit(Time::ZERO, 1500), Verdict::DeliverAt(Time::ZERO));
        assert_eq!(l.transit(Time::ZERO, 1500), Verdict::DeliverAt(Time::ZERO));
        // Third must serialize.
        match l.transit(Time::ZERO, 1500) {
            Verdict::DeliverAt(t) => assert_eq!(t, Time::ZERO + Dur::from_millis(1)),
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn droptail_overflow() {
        let cfg = LinkConfig {
            rate: Some(RateSchedule::Fixed(8e6)), // 1 MB/s
            delay: Dur::ZERO,
            jitter: Jitter::None,
            loss: 0.0,
            reorder: None,
            buffer_bytes: 3000,
            burst_bytes: 0,
            fault: None,
        };
        let mut l = mk(cfg);
        let mut drops = 0;
        for _ in 0..10 {
            if let Verdict::Dropped(DropKind::Overflow) = l.transit(Time::ZERO, 1500) {
                drops += 1;
            }
        }
        assert!(
            drops >= 7,
            "queue of 3000 B holds ~2 packets, drops = {drops}"
        );
        assert_eq!(l.stats().overflow_drops, drops);
    }

    #[test]
    fn queue_drains_over_time() {
        let cfg = LinkConfig {
            rate: Some(RateSchedule::Fixed(12e6)),
            delay: Dur::ZERO,
            jitter: Jitter::None,
            loss: 0.0,
            reorder: None,
            buffer_bytes: 1 << 20,
            burst_bytes: 0,
            fault: None,
        };
        let mut l = mk(cfg);
        for _ in 0..8 {
            l.transit(Time::ZERO, 1500);
        }
        let q0 = l.queue_bytes(Time::ZERO);
        assert!(q0 >= 1500 * 6, "q0 = {q0}");
        let q_later = l.queue_bytes(Time::ZERO + Dur::from_millis(4));
        assert!(q_later < q0);
        assert_eq!(l.queue_bytes(Time::ZERO + Dur::from_secs(1)), 0);
    }

    #[test]
    fn random_loss_rate_matches_config() {
        let cfg = LinkConfig::ideal(Dur::from_millis(1)).with_loss(0.1);
        let mut l = mk(cfg);
        for i in 0..20_000u64 {
            l.transit(Time::ZERO + Dur::from_micros(i), 1000);
        }
        let rate = l.stats().loss_rate();
        assert!((0.08..0.12).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn uniform_jitter_causes_reordering() {
        let cfg = LinkConfig::ideal(Dur::from_millis(50))
            .with_jitter(Jitter::Uniform(Dur::from_millis(10)));
        let mut l = mk(cfg);
        // Back-to-back packets 100us apart: jitter range ±10ms swamps the
        // spacing, so many arrivals invert.
        for i in 0..2000u64 {
            l.transit(Time::ZERO + Dur::from_micros(100 * i), 1200);
        }
        let r = l.stats().reorder_rate();
        assert!(r > 0.2, "expected heavy reordering, got {r}");
    }

    #[test]
    fn no_jitter_no_reordering() {
        let mut cfg = LinkConfig::shaped(
            RateSchedule::Fixed(10e6),
            Dur::from_millis(10),
            Dur::from_millis(36),
        );
        cfg.burst_bytes = 0;
        let mut l = mk(cfg);
        for i in 0..1000u64 {
            l.transit(Time::ZERO + Dur::from_micros(100 * i), 1200);
        }
        assert_eq!(l.stats().reordered, 0);
    }

    #[test]
    fn explicit_reorder_rate_tracks_probability() {
        let cfg = LinkConfig::ideal(Dur::from_millis(20)).with_reorder(ReorderSpec {
            prob: 0.05,
            hold: Dur::from_millis(10),
        });
        let mut l = mk(cfg);
        for i in 0..10_000u64 {
            l.transit(Time::ZERO + Dur::from_micros(500 * i), 1200);
        }
        let r = l.stats().reorder_rate();
        assert!((0.03..0.08).contains(&r), "reorder rate = {r}");
    }

    #[test]
    fn variable_rate_changes_serialization() {
        let cfg = LinkConfig {
            rate: Some(RateSchedule::Piecewise(vec![
                (Time::ZERO, 8e6),
                (Time::ZERO + Dur::from_secs(1), 80e6),
            ])),
            delay: Dur::ZERO,
            jitter: Jitter::None,
            loss: 0.0,
            reorder: None,
            buffer_bytes: 1 << 20,
            burst_bytes: 0,
            fault: None,
        };
        let mut l = mk(cfg);
        let a_slow = match l.transit(Time::ZERO, 1000) {
            Verdict::DeliverAt(t) => t - Time::ZERO,
            v => panic!("{v:?}"),
        };
        let t1 = Time::ZERO + Dur::from_secs(2);
        let a_fast = match l.transit(t1, 1000) {
            Verdict::DeliverAt(t) => t - t1,
            v => panic!("{v:?}"),
        };
        assert_eq!(a_slow, Dur::from_millis(1));
        assert_eq!(a_fast, Dur::from_micros(100));
    }

    #[test]
    fn mean_latency_accounting() {
        let mut l = mk(LinkConfig::ideal(Dur::from_millis(7)));
        for i in 0..10u64 {
            l.transit(Time::ZERO + Dur::from_millis(i), 100);
        }
        assert_eq!(l.stats().mean_latency(), Dur::from_millis(7));
    }

    mod fault_hooks {
        use super::*;
        use crate::fault::{FaultDir, FaultEvent, FaultKind, GeParams, LinkFault};

        fn window(at_ms: u64, dur_ms: u64, kind: FaultKind) -> LinkFault {
            LinkFault::from_events(vec![FaultEvent {
                at: Time::ZERO + Dur::from_millis(at_ms),
                dur: Dur::from_millis(dur_ms),
                dir: FaultDir::Both,
                kind,
            }])
        }

        fn t(ms: u64) -> Time {
            Time::ZERO + Dur::from_millis(ms)
        }

        #[test]
        fn blackout_drops_everything_in_window() {
            let cfg = LinkConfig::ideal(Dur::from_millis(5)).with_fault(Some(window(
                10,
                20,
                FaultKind::Blackout,
            )));
            let mut l = mk(cfg);
            assert!(matches!(l.transit(t(5), 100), Verdict::DeliverAt(_)));
            assert_eq!(l.transit(t(10), 100), Verdict::Dropped(DropKind::Blackout));
            assert_eq!(l.transit(t(29), 100), Verdict::Dropped(DropKind::Blackout));
            assert!(matches!(l.transit(t(30), 100), Verdict::DeliverAt(_)));
            assert_eq!(l.stats().blackout_drops, 2);
            assert!(l.stats().loss_rate() > 0.0);
        }

        #[test]
        fn burst_loss_tracks_stationary_rate() {
            let p = GeParams {
                p_enter_pm: 100,
                p_exit_pm: 200,
                loss_good_pm: 0,
                loss_bad_pm: 800,
            };
            let cfg = LinkConfig::ideal(Dur::from_millis(1)).with_fault(Some(window(
                0,
                1_000_000,
                FaultKind::BurstLoss(p),
            )));
            let mut l = mk(cfg);
            for i in 0..30_000u64 {
                l.transit(Time::ZERO + Dur::from_micros(i * 20), 500);
            }
            let rate = l.stats().loss_rate();
            let stat = p.stationary_loss();
            assert!(
                (rate - stat).abs() < 0.03,
                "burst loss {rate} vs stationary {stat}"
            );
            assert_eq!(l.stats().random_drops, 0);
        }

        #[test]
        fn corruption_is_a_typed_whole_packet_drop() {
            let cfg = LinkConfig::ideal(Dur::from_millis(1)).with_fault(Some(window(
                0,
                10_000,
                FaultKind::Corrupt { prob_pm: 1000 },
            )));
            let mut l = mk(cfg);
            assert_eq!(l.transit(t(1), 900), Verdict::Dropped(DropKind::Corrupt));
            assert_eq!(l.stats().corrupt_drops, 1);
        }

        #[test]
        fn duplication_side_channel() {
            let cfg = LinkConfig::ideal(Dur::from_millis(4)).with_fault(Some(window(
                0,
                10_000,
                FaultKind::Duplicate { prob_pm: 1000 },
            )));
            let mut l = mk(cfg);
            let arrival = match l.transit(t(0), 700) {
                Verdict::DeliverAt(a) => a,
                v => panic!("{v:?}"),
            };
            assert_eq!(l.take_dup_arrival(), Some(arrival));
            assert_eq!(l.take_dup_arrival(), None, "drained");
            assert_eq!(l.stats().dup_copies, 1);
        }

        #[test]
        fn bandwidth_cliff_slows_serialization() {
            // 12 Mbps halved -> 1500 B takes 2 ms instead of 1.
            let mut cfg =
                LinkConfig::shaped(RateSchedule::Fixed(12e6), Dur::ZERO, Dur::from_millis(36));
            cfg.burst_bytes = 0;
            cfg.fault = Some(window(
                0,
                10_000,
                FaultKind::BandwidthCliff { factor_pm: 500 },
            ));
            let mut l = mk(cfg);
            match l.transit(t(0), 1500) {
                Verdict::DeliverAt(a) => assert_eq!(a, t(2)),
                v => panic!("{v:?}"),
            }
        }

        #[test]
        fn buffer_shrink_forces_overflow() {
            let cfg = LinkConfig {
                rate: Some(RateSchedule::Fixed(8e6)),
                delay: Dur::ZERO,
                jitter: Jitter::None,
                loss: 0.0,
                reorder: None,
                buffer_bytes: 64 * 1024,
                burst_bytes: 0,
                fault: Some(window(0, 10_000, FaultKind::BufferShrink { factor_pm: 20 })),
            };
            let mut l = mk(cfg);
            let mut overflows = 0;
            for _ in 0..10 {
                if let Verdict::Dropped(DropKind::Overflow) = l.transit(t(0), 1500) {
                    overflows += 1;
                }
            }
            assert!(overflows > 0, "shrunk buffer (~1.3KB) must drop-tail");
        }

        /// The zero-cost-when-off contract at the link level: a fault view
        /// whose windows lie entirely in the future leaves the verdict
        /// sequence — including every RNG draw — byte-identical to a link
        /// with no fault attached.
        #[test]
        fn inactive_fault_is_rng_invisible() {
            let base = LinkConfig::shaped(
                RateSchedule::Fixed(10e6),
                Dur::from_millis(5),
                Dur::from_millis(36),
            )
            .with_loss(0.05)
            .with_jitter(Jitter::Uniform(Dur::from_millis(2)));
            let far = window(
                1_000_000,
                1_000,
                FaultKind::BurstLoss(GeParams {
                    p_enter_pm: 500,
                    p_exit_pm: 500,
                    loss_good_pm: 100,
                    loss_bad_pm: 900,
                }),
            );
            let mut plain = LinkDir::new(base.clone(), SimRng::new(42));
            let mut faulted = LinkDir::new(base.with_fault(Some(far)), SimRng::new(42));
            for i in 0..5000u64 {
                let now = Time::ZERO + Dur::from_micros(i * 120);
                assert_eq!(
                    plain.transit(now, 1200),
                    faulted.transit(now, 1200),
                    "verdict diverged at packet {i}"
                );
                assert_eq!(faulted.take_dup_arrival(), None);
            }
            assert_eq!(plain.stats().random_drops, faulted.stats().random_drops);
        }
    }
}
