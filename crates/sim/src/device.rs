//! Client device models: the kernel/userspace packet-processing asymmetry.
//!
//! The paper (Sec 5.2, Figs 12-13) finds that QUIC's gains "diminish or
//! disappear entirely" on phones because QUIC runs in a userspace process
//! that cannot consume packets as fast as the kernel consumes TCP segments,
//! pushing the sender into the Application-Limited state 58% of the time on
//! a MotoG. We model this as a per-packet processing cost charged by the
//! receiving host's single-threaded "CPU", serialized across arrivals:
//! userspace ([`crate::packet::PktClass::Userspace`]) packets pay the
//! device's userspace cost, kernel packets the (much smaller) kernel cost.

use crate::packet::PktClass;
use crate::time::{Dur, Time};

/// Per-device packet-processing costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// CPU time to process one userspace (QUIC/UDP) packet: demux, decrypt,
    /// reassemble, deliver — all in the application process.
    pub userspace_per_packet: Dur,
    /// CPU time to process one kernel (TCP) packet.
    pub kernel_per_packet: Dur,
    /// Cap on the QUIC receive windows this device advertises, bytes
    /// (mobile Chrome scales flow-control windows down on low-memory
    /// devices). `None` = use the protocol defaults.
    pub quic_recv_window_cap: Option<u64>,
}

impl DeviceProfile {
    /// Desktop client of the paper: Ubuntu 14.04, Core i5 3.3 GHz.
    /// Userspace processing is measurable but nowhere near a bottleneck.
    pub const DESKTOP: DeviceProfile = DeviceProfile {
        name: "Desktop",
        userspace_per_packet: Dur::from_micros(4),
        kernel_per_packet: Dur::from_micros(1),
        quic_recv_window_cap: None,
    };

    /// Nexus 6 (late 2014, 2.7 GHz quad): userspace cost high enough to
    /// shave QUIC's edge at 50 Mbps without fully erasing it.
    pub const NEXUS6: DeviceProfile = DeviceProfile {
        name: "Nexus6",
        userspace_per_packet: Dur::from_micros(250),
        kernel_per_packet: Dur::from_micros(15),
        quic_recv_window_cap: Some(1024 * 1024),
    };

    /// MotoG (2013, 1.2 GHz quad): userspace processing caps QUIC below
    /// ~40 Mbps of goodput, the paper's Application-Limited pathology.
    pub const MOTOG: DeviceProfile = DeviceProfile {
        name: "MotoG",
        userspace_per_packet: Dur::from_micros(400),
        kernel_per_packet: Dur::from_micros(25),
        quic_recv_window_cap: Some(384 * 1024),
    };

    /// A server/router: effectively free packet processing.
    pub const SERVER: DeviceProfile = DeviceProfile {
        name: "Server",
        userspace_per_packet: Dur::from_nanos(500),
        kernel_per_packet: Dur::from_nanos(500),
        quic_recv_window_cap: None,
    };

    /// Cost of one packet of the given class on this device.
    pub fn cost(&self, class: PktClass) -> Dur {
        match class {
            PktClass::Userspace => self.userspace_per_packet,
            PktClass::Kernel => self.kernel_per_packet,
        }
    }

    /// Max sustainable packet consumption rate in packets/sec for a class.
    pub fn max_pps(&self, class: PktClass) -> f64 {
        1e9 / self.cost(class).as_nanos().max(1) as f64
    }
}

/// Serialized packet-processing pipeline of one host.
#[derive(Debug, Clone)]
pub struct DeviceCpu {
    profile: DeviceProfile,
    free_at: Time,
    /// Total busy time, for utilization reporting.
    busy: Dur,
}

impl DeviceCpu {
    /// New idle CPU with the given profile.
    pub fn new(profile: DeviceProfile) -> Self {
        DeviceCpu {
            profile,
            free_at: Time::ZERO,
            busy: Dur::ZERO,
        }
    }

    /// Account for a packet arriving at `arrival`; returns the instant
    /// processing completes (when the protocol actually sees the packet).
    pub fn process(&mut self, arrival: Time, class: PktClass) -> Time {
        let start = if self.free_at > arrival {
            self.free_at
        } else {
            arrival
        };
        let done = start + self.profile.cost(class);
        self.free_at = done;
        self.busy += self.profile.cost(class);
        done
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Accumulated busy time.
    pub fn busy_time(&self) -> Dur {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_cpu_processes_at_arrival_plus_cost() {
        let mut cpu = DeviceCpu::new(DeviceProfile::MOTOG);
        let t = Time::ZERO + Dur::from_secs(1);
        let done = cpu.process(t, PktClass::Userspace);
        assert_eq!(done, t + Dur::from_micros(400));
    }

    #[test]
    fn busy_cpu_serializes() {
        let mut cpu = DeviceCpu::new(DeviceProfile::MOTOG);
        let t = Time::ZERO;
        let d1 = cpu.process(t, PktClass::Userspace);
        let d2 = cpu.process(t, PktClass::Userspace); // same arrival: queues
        assert_eq!(d2, d1 + Dur::from_micros(400));
    }

    #[test]
    fn kernel_packets_are_cheaper() {
        let p = DeviceProfile::MOTOG;
        assert!(p.cost(PktClass::Kernel) < p.cost(PktClass::Userspace));
        assert!(p.max_pps(PktClass::Kernel) > p.max_pps(PktClass::Userspace));
    }

    #[test]
    fn motog_userspace_caps_below_50mbps() {
        // 50 Mbps of 1452-byte packets is ~4300 pps; the MotoG userspace
        // path must not sustain that (this is the Fig 13 mechanism).
        let pps_needed = 50e6 / (1452.0 * 8.0);
        let p = DeviceProfile::MOTOG;
        assert!(p.max_pps(PktClass::Userspace) < pps_needed);
        // ...but its kernel path must.
        assert!(p.max_pps(PktClass::Kernel) > pps_needed);
    }

    #[test]
    fn desktop_userspace_easily_sustains_100mbps() {
        let pps_needed = 100e6 / (1452.0 * 8.0);
        assert!(DeviceProfile::DESKTOP.max_pps(PktClass::Userspace) > 10.0 * pps_needed);
    }

    #[test]
    fn idle_gap_resets_pipeline() {
        let mut cpu = DeviceCpu::new(DeviceProfile::NEXUS6);
        cpu.process(Time::ZERO, PktClass::Userspace);
        let late = Time::ZERO + Dur::from_secs(1);
        let done = cpu.process(late, PktClass::Userspace);
        assert_eq!(done, late + Dur::from_micros(250));
        assert_eq!(cpu.busy_time(), Dur::from_micros(500));
    }
}
