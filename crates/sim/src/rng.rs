//! Deterministic randomness for repeatable experiments.
//!
//! Every stochastic element of the testbed (random loss, jitter draws,
//! variable-bandwidth schedules, GAE-style server wait times) pulls from a
//! [`SimRng`] seeded from the experiment seed, so a given seed reproduces an
//! experiment byte-for-byte — the repeatability the paper's methodology
//! demands.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna) with
//! SplitMix64 seed expansion — no external crates, so the byte stream for a
//! given seed is fixed by this file alone and can never drift underneath us
//! via a dependency upgrade. That stability is what the determinism-
//! equivalence suite in `longlook-integration` regression-tests.

/// SplitMix64 step; used for seed expansion and [`hash_unit`].
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded simulation RNG with the distribution helpers the link models
/// need.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed a new generator (SplitMix64-expanded, per the xoshiro authors'
    /// recommendation, so that low-entropy seeds still give full states).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derive an independent child generator; mixing in a label keeps
    /// per-component streams decoupled (changing how one component draws
    /// does not perturb another).
    pub fn fork(&mut self, label: u64) -> SimRng {
        let s = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(s)
    }

    /// Raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        if lo == hi {
            lo
        } else {
            let x = lo + self.unit() * (hi - lo);
            // Floating rounding can land exactly on `hi`; keep the
            // documented half-open contract.
            if x < hi {
                x
            } else {
                lo
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (Lemire's multiply-shift; the bias is
    /// below 2^-64 per draw, irrelevant for link emulation).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi.wrapping_sub(lo);
        if span == u64::MAX {
            return self.next_u64();
        }
        let range = span + 1;
        let hi64 = ((self.next_u64() as u128 * range as u128) >> 64) as u64;
        lo + hi64
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.unit().max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }
}

/// Stateless deterministic hash of `(seed, index)` to a uniform float in
/// `[0, 1)`. Used by time-varying rate schedules so that the rate at time
/// `t` is a *pure function* — replays and out-of-order queries agree.
pub fn hash_unit(seed: u64, index: u64) -> f64 {
    // SplitMix64 finalizer.
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_frequency_roughly_matches() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let x = r.uniform(5.0, 6.0);
            assert!((5.0..6.0).contains(&x));
        }
        assert_eq!(r.uniform(2.0, 2.0), 2.0);
    }

    #[test]
    fn uniform_u64_bounds_and_degenerate_range() {
        let mut r = SimRng::new(13);
        for _ in 0..1000 {
            let x = r.uniform_u64(10, 20);
            assert!((10..=20).contains(&x));
        }
        assert_eq!(r.uniform_u64(7, 7), 7);
        // Full-range draw must not overflow.
        let _ = r.uniform_u64(0, u64::MAX);
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(9);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn hash_unit_is_pure_and_in_range() {
        for i in 0..1000u64 {
            let x = hash_unit(99, i);
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x, hash_unit(99, i));
        }
        // Roughly uniform mean.
        let mean: f64 = (0..10_000).map(|i| hash_unit(42, i)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
