//! Deterministic randomness for repeatable experiments.
//!
//! Every stochastic element of the testbed (random loss, jitter draws,
//! variable-bandwidth schedules, GAE-style server wait times) pulls from a
//! [`SimRng`] seeded from the experiment seed, so a given seed reproduces an
//! experiment byte-for-byte — the repeatability the paper's methodology
//! demands.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna) with
//! SplitMix64 seed expansion — no external crates, so the byte stream for a
//! given seed is fixed by this file alone and can never drift underneath us
//! via a dependency upgrade. That stability is what the determinism-
//! equivalence suite in `longlook-integration` regression-tests.

/// Identity of one experiment cell for the debug-build isolation guard:
/// the `index`-th cell of the `batch`-th `run_ordered` invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellId {
    /// Which runner batch the cell belongs to (monotonic per process).
    pub batch: u64,
    /// Cell index within the batch.
    pub index: u64,
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} of batch {}", self.index, self.batch)
    }
}

#[cfg(debug_assertions)]
mod guard_state {
    use super::CellId;
    use std::cell::Cell;

    thread_local! {
        /// The cell currently executing on this thread, if any.
        pub static CURRENT: Cell<Option<CellId>> = const { Cell::new(None) };
    }
}

/// RAII token marking "this thread is now executing experiment cell X".
///
/// The parallel runner installs one around every cell closure. While a
/// guard is active, every [`SimRng`] draw (and every `World` step) on this
/// thread registers the cell as the owner of that object on first use; a
/// later use from a *different* cell panics in debug builds, naming both
/// cells. This turns the methodology requirement of Sec 3.3 — every
/// `(scenario, protocol, round)` cell derives its own seed and shares no
/// RNG state — into a permanent mechanical check instead of a code-review
/// item. Release builds compile the whole mechanism away.
#[derive(Debug)]
pub struct CellGuard {
    #[cfg(debug_assertions)]
    prev: Option<CellId>,
}

impl CellGuard {
    /// Enter a cell scope; the previous scope (if any) is restored on drop.
    #[allow(unused_variables)]
    pub fn enter(cell: CellId) -> CellGuard {
        #[cfg(debug_assertions)]
        {
            let prev = guard_state::CURRENT.with(|c| c.replace(Some(cell)));
            CellGuard { prev }
        }
        #[cfg(not(debug_assertions))]
        CellGuard {}
    }
}

impl Drop for CellGuard {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        guard_state::CURRENT.with(|c| c.set(self.prev));
    }
}

/// The cell currently executing on this thread (`None` outside any cell,
/// and always `None` in release builds).
pub fn current_cell() -> Option<CellId> {
    #[cfg(debug_assertions)]
    {
        guard_state::CURRENT.with(std::cell::Cell::get)
    }
    #[cfg(not(debug_assertions))]
    None
}

/// Debug-build ownership tag embedded in [`SimRng`] and `World`.
///
/// First use inside a [`CellGuard`] scope claims the object for that cell;
/// any later use from a different cell is a determinism bug (shared
/// stochastic state makes cells statistically dependent and makes results
/// depend on execution order) and panics. Uses outside any cell scope are
/// unchecked, so ordinary unit tests and ad-hoc tooling are unaffected.
/// In release builds this is a zero-sized no-op.
#[derive(Debug, Clone, Default)]
pub struct IsolationTag {
    #[cfg(debug_assertions)]
    owner: std::cell::Cell<Option<CellId>>,
}

impl IsolationTag {
    /// Register/verify ownership; `what` names the guarded object in the
    /// panic message.
    #[inline]
    #[allow(unused_variables)]
    pub fn check(&self, what: &str) {
        #[cfg(debug_assertions)]
        {
            let Some(cur) = current_cell() else { return };
            match self.owner.get() {
                None => self.owner.set(Some(cur)),
                Some(prev) if prev != cur => panic!(
                    "RNG isolation violation: {what} first used in {prev} was reused in {cur}; \
                     every (scenario, protocol, round) cell must build its own World/SimRng \
                     from its derived seed"
                ),
                _ => {}
            }
        }
    }
}

/// SplitMix64 step; used for seed expansion and [`hash_unit`].
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded simulation RNG with the distribution helpers the link models
/// need.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Debug-build cell-ownership tag; cloning carries the owner with it
    /// (a cloned stream shared across cells duplicates draws, which is
    /// just as order-dependent as sharing the original).
    tag: IsolationTag,
}

impl SimRng {
    /// Seed a new generator (SplitMix64-expanded, per the xoshiro authors'
    /// recommendation, so that low-entropy seeds still give full states).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng {
            s,
            tag: IsolationTag::default(),
        }
    }

    /// Derive an independent child generator; mixing in a label keeps
    /// per-component streams decoupled (changing how one component draws
    /// does not perturb another).
    pub fn fork(&mut self, label: u64) -> SimRng {
        let s = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(s)
    }

    /// Raw 64-bit draw (xoshiro256++). Every distribution helper funnels
    /// through here, so this is the single isolation-guard chokepoint.
    pub fn next_u64(&mut self) -> u64 {
        self.tag.check("SimRng");
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        if lo == hi {
            lo
        } else {
            let x = lo + self.unit() * (hi - lo);
            // Floating rounding can land exactly on `hi`; keep the
            // documented half-open contract.
            if x < hi {
                x
            } else {
                lo
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (Lemire's multiply-shift; the bias is
    /// below 2^-64 per draw, irrelevant for link emulation).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi.wrapping_sub(lo);
        if span == u64::MAX {
            return self.next_u64();
        }
        let range = span + 1;
        let hi64 = ((self.next_u64() as u128 * range as u128) >> 64) as u64;
        lo + hi64
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.unit().max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }
}

/// Stateless deterministic hash of `(seed, index)` to a uniform float in
/// `[0, 1)`. Used by time-varying rate schedules so that the rate at time
/// `t` is a *pure function* — replays and out-of-order queries agree.
pub fn hash_unit(seed: u64, index: u64) -> f64 {
    // SplitMix64 finalizer.
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_frequency_roughly_matches() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let x = r.uniform(5.0, 6.0);
            assert!((5.0..6.0).contains(&x));
        }
        assert_eq!(r.uniform(2.0, 2.0), 2.0);
    }

    #[test]
    fn uniform_u64_bounds_and_degenerate_range() {
        let mut r = SimRng::new(13);
        for _ in 0..1000 {
            let x = r.uniform_u64(10, 20);
            assert!((10..=20).contains(&x));
        }
        assert_eq!(r.uniform_u64(7, 7), 7);
        // Full-range draw must not overflow.
        let _ = r.uniform_u64(0, u64::MAX);
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(9);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn guard_allows_per_cell_rngs_and_untagged_use() {
        // Outside any cell scope: unchecked.
        let mut free = SimRng::new(1);
        let _ = free.next_u64();
        // One rng per cell: fine, including reuse of the same rng within
        // its own cell and across nested draws.
        for i in 0..4 {
            let _g = CellGuard::enter(CellId { batch: 1, index: i });
            assert_eq!(current_cell(), Some(CellId { batch: 1, index: i }));
            let mut rng = SimRng::new(i);
            let _ = rng.next_u64();
            let _ = rng.chance(0.5);
            let mut child = rng.fork(7);
            let _ = child.next_u64();
        }
        assert_eq!(current_cell(), None, "guard restored on drop");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "RNG isolation violation")]
    fn guard_panics_on_cross_cell_sharing() {
        let mut shared = SimRng::new(42);
        {
            let _g = CellGuard::enter(CellId { batch: 9, index: 0 });
            let _ = shared.next_u64();
        }
        let _g = CellGuard::enter(CellId { batch: 9, index: 1 });
        let _ = shared.next_u64();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "RNG isolation violation")]
    fn guard_panics_on_cross_cell_clone() {
        let cloned = {
            let _g = CellGuard::enter(CellId {
                batch: 10,
                index: 0,
            });
            let mut rng = SimRng::new(5);
            let _ = rng.next_u64();
            rng.clone()
        };
        let _g = CellGuard::enter(CellId {
            batch: 10,
            index: 1,
        });
        let mut cloned = cloned;
        let _ = cloned.next_u64();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn guard_nesting_restores_outer_cell() {
        let outer = CellId {
            batch: 11,
            index: 3,
        };
        let inner = CellId {
            batch: 12,
            index: 0,
        };
        let _g = CellGuard::enter(outer);
        {
            let _h = CellGuard::enter(inner);
            assert_eq!(current_cell(), Some(inner));
        }
        assert_eq!(current_cell(), Some(outer));
    }

    #[test]
    fn hash_unit_is_pure_and_in_range() {
        for i in 0..1000u64 {
            let x = hash_unit(99, i);
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x, hash_unit(99, i));
        }
        // Roughly uniform mean.
        let mean: f64 = (0..10_000).map(|i| hash_unit(42, i)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
