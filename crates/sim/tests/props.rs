//! Property-based tests for the link emulation and time arithmetic.

use longlook_sim::link::{Jitter, LinkConfig, LinkDir, Verdict};
use longlook_sim::schedule::RateSchedule;
use longlook_sim::time::{transmission_delay, Dur, Time};
use longlook_sim::SimRng;
use proptest::prelude::*;

proptest! {
    /// Without jitter/reordering, deliveries never invert: arrival times
    /// are non-decreasing in send order.
    #[test]
    fn shaped_link_preserves_order(
        rate_mbps in 1.0f64..200.0,
        delay_ms in 0u64..200,
        sizes in proptest::collection::vec(40u32..1500, 1..200),
        gap_us in 1u64..2000,
    ) {
        let cfg = LinkConfig::shaped(
            RateSchedule::fixed_mbps(rate_mbps),
            Dur::from_millis(delay_ms),
            Dur::from_millis(36),
        );
        let mut link = LinkDir::new(cfg, SimRng::new(1));
        let mut last = Time::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            let t = Time::ZERO + Dur::from_micros(i as u64 * gap_us);
            if let Verdict::DeliverAt(at) = link.transit(t, size) {
                prop_assert!(at >= last, "ordering violated");
                prop_assert!(at >= t + Dur::from_millis(delay_ms), "faster than light");
                last = at;
            }
        }
        prop_assert_eq!(link.stats().reordered, 0);
    }

    /// Arrival is never earlier than departure + serialization at the
    /// configured rate.
    #[test]
    fn serialization_lower_bound(
        rate_mbps in 1.0f64..100.0,
        size in 100u32..1500,
    ) {
        let mut cfg = LinkConfig::shaped(
            RateSchedule::fixed_mbps(rate_mbps),
            Dur::ZERO,
            Dur::from_millis(36),
        );
        cfg.burst_bytes = 0;
        let mut link = LinkDir::new(cfg, SimRng::new(2));
        match link.transit(Time::ZERO, size) {
            Verdict::DeliverAt(at) => {
                let min = transmission_delay(size as u64, rate_mbps * 1e6);
                prop_assert!(at >= Time::ZERO + min);
            }
            v => prop_assert!(false, "unexpected {v:?}"),
        }
    }

    /// Loss rate converges to the configured probability.
    #[test]
    fn loss_rate_converges(p in 0.0f64..0.3) {
        let cfg = LinkConfig::ideal(Dur::from_millis(5)).with_loss(p);
        let mut link = LinkDir::new(cfg, SimRng::new(3));
        let n = 8000u64;
        for i in 0..n {
            link.transit(Time::ZERO + Dur::from_micros(i * 50), 1000);
        }
        let measured = link.stats().loss_rate();
        prop_assert!((measured - p).abs() < 0.03, "{measured} vs {p}");
    }

    /// Queue occupancy is bounded by the configured buffer.
    #[test]
    fn queue_never_exceeds_buffer(
        buffer_kb in 8u64..256,
        offered in proptest::collection::vec(100u32..1500, 1..300),
    ) {
        let cfg = LinkConfig {
            rate: Some(RateSchedule::fixed_mbps(5.0)),
            delay: Dur::ZERO,
            jitter: Jitter::None,
            loss: 0.0,
            reorder: None,
            buffer_bytes: buffer_kb * 1024,
            burst_bytes: 0,
        };
        let mut link = LinkDir::new(cfg, SimRng::new(4));
        for &size in &offered {
            link.transit(Time::ZERO, size);
            prop_assert!(
                link.queue_bytes(Time::ZERO) <= buffer_kb * 1024 + 1500,
                "queue exceeded buffer"
            );
        }
    }

    /// Time arithmetic: (t + d) - t == d and saturating subtraction never
    /// panics.
    #[test]
    fn time_roundtrip(base_ns in 0u64..u64::MAX / 4, d_ns in 0u64..u64::MAX / 4) {
        let t = Time::from_nanos(base_ns);
        let d = Dur::from_nanos(d_ns);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(t.saturating_since(t + d), Dur::ZERO);
        prop_assert_eq!((t + d).saturating_since(t), d);
    }

    /// RandomHold schedules are pure and respect bounds.
    #[test]
    fn random_hold_bounds(seed in any::<u64>(), queries in proptest::collection::vec(0u64..120_000, 1..64)) {
        let s = RateSchedule::random_hold_mbps(50.0, 150.0, Dur::from_secs(1), seed);
        for &ms in &queries {
            let t = Time::ZERO + Dur::from_millis(ms);
            let r = s.rate_at(t);
            prop_assert!((50e6..=150e6).contains(&r));
            prop_assert_eq!(r, s.rate_at(t));
        }
    }
}
