//! Property-based tests for the link emulation and time arithmetic.

use longlook_sim::link::{Jitter, LinkConfig, LinkDir, Verdict};
use longlook_sim::schedule::RateSchedule;
use longlook_sim::time::{transmission_delay, Dur, Time};
use longlook_sim::SimRng;
use longlook_sim::{EventQueue, SchedKind};
use proptest::prelude::*;

proptest! {
    /// Without jitter/reordering, deliveries never invert: arrival times
    /// are non-decreasing in send order.
    #[test]
    fn shaped_link_preserves_order(
        rate_mbps in 1.0f64..200.0,
        delay_ms in 0u64..200,
        sizes in proptest::collection::vec(40u32..1500, 1..200),
        gap_us in 1u64..2000,
    ) {
        let cfg = LinkConfig::shaped(
            RateSchedule::fixed_mbps(rate_mbps),
            Dur::from_millis(delay_ms),
            Dur::from_millis(36),
        );
        let mut link = LinkDir::new(cfg, SimRng::new(1));
        let mut last = Time::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            let t = Time::ZERO + Dur::from_micros(i as u64 * gap_us);
            if let Verdict::DeliverAt(at) = link.transit(t, size) {
                prop_assert!(at >= last, "ordering violated");
                prop_assert!(at >= t + Dur::from_millis(delay_ms), "faster than light");
                last = at;
            }
        }
        prop_assert_eq!(link.stats().reordered, 0);
    }

    /// Arrival is never earlier than departure + serialization at the
    /// configured rate.
    #[test]
    fn serialization_lower_bound(
        rate_mbps in 1.0f64..100.0,
        size in 100u32..1500,
    ) {
        let mut cfg = LinkConfig::shaped(
            RateSchedule::fixed_mbps(rate_mbps),
            Dur::ZERO,
            Dur::from_millis(36),
        );
        cfg.burst_bytes = 0;
        let mut link = LinkDir::new(cfg, SimRng::new(2));
        match link.transit(Time::ZERO, size) {
            Verdict::DeliverAt(at) => {
                let min = transmission_delay(size as u64, rate_mbps * 1e6);
                prop_assert!(at >= Time::ZERO + min);
            }
            v => prop_assert!(false, "unexpected {v:?}"),
        }
    }

    /// Loss rate converges to the configured probability.
    #[test]
    fn loss_rate_converges(p in 0.0f64..0.3) {
        let cfg = LinkConfig::ideal(Dur::from_millis(5)).with_loss(p);
        let mut link = LinkDir::new(cfg, SimRng::new(3));
        let n = 8000u64;
        for i in 0..n {
            link.transit(Time::ZERO + Dur::from_micros(i * 50), 1000);
        }
        let measured = link.stats().loss_rate();
        prop_assert!((measured - p).abs() < 0.03, "{measured} vs {p}");
    }

    /// Queue occupancy is bounded by the configured buffer.
    #[test]
    fn queue_never_exceeds_buffer(
        buffer_kb in 8u64..256,
        offered in proptest::collection::vec(100u32..1500, 1..300),
    ) {
        let cfg = LinkConfig {
            rate: Some(RateSchedule::fixed_mbps(5.0)),
            delay: Dur::ZERO,
            jitter: Jitter::None,
            loss: 0.0,
            reorder: None,
            buffer_bytes: buffer_kb * 1024,
            burst_bytes: 0,
            fault: None,
        };
        let mut link = LinkDir::new(cfg, SimRng::new(4));
        for &size in &offered {
            link.transit(Time::ZERO, size);
            prop_assert!(
                link.queue_bytes(Time::ZERO) <= buffer_kb * 1024 + 1500,
                "queue exceeded buffer"
            );
        }
    }

    /// Time arithmetic: (t + d) - t == d and saturating subtraction never
    /// panics.
    #[test]
    fn time_roundtrip(base_ns in 0u64..u64::MAX / 4, d_ns in 0u64..u64::MAX / 4) {
        let t = Time::from_nanos(base_ns);
        let d = Dur::from_nanos(d_ns);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(t.saturating_since(t + d), Dur::ZERO);
        prop_assert_eq!((t + d).saturating_since(t), d);
    }

    /// RandomHold schedules are pure and respect bounds.
    #[test]
    fn random_hold_bounds(seed in any::<u64>(), queries in proptest::collection::vec(0u64..120_000, 1..64)) {
        let s = RateSchedule::random_hold_mbps(50.0, 150.0, Dur::from_secs(1), seed);
        for &ms in &queries {
            let t = Time::ZERO + Dur::from_millis(ms);
            let r = s.rate_at(t);
            prop_assert!((50e6..=150e6).contains(&r));
            prop_assert_eq!(r, s.rate_at(t));
        }
    }
}

proptest! {
    /// Token-bucket conformance: cumulative bytes delivered by any arrival
    /// instant never exceed the configured rate times elapsed time plus
    /// the burst allowance (one MTU of slop for the packet completing at
    /// that instant; twice the burst because the bucket may refill while
    /// the fluid queue is draining).
    #[test]
    fn token_bucket_throughput_never_exceeds_rate(
        rate_mbps in 1.0f64..100.0,
        burst_kb in 0u64..64,
        sizes in proptest::collection::vec(40u32..1500, 1..300),
        gap_us in 0u64..500,
    ) {
        let cfg = LinkConfig {
            rate: Some(RateSchedule::fixed_mbps(rate_mbps)),
            delay: Dur::ZERO,
            jitter: Jitter::None,
            loss: 0.0,
            reorder: None,
            buffer_bytes: u64::MAX,
            burst_bytes: burst_kb * 1024,
            fault: None,
        };
        let mut link = LinkDir::new(cfg, SimRng::new(5));
        let mut cum_bytes = 0u64;
        for (i, &size) in sizes.iter().enumerate() {
            let t = Time::ZERO + Dur::from_micros(i as u64 * gap_us);
            if let Verdict::DeliverAt(at) = link.transit(t, size) {
                cum_bytes += size as u64;
                let elapsed = at.saturating_since(Time::ZERO).as_secs_f64();
                let budget = rate_mbps * 1e6 / 8.0 * elapsed
                    + 2.0 * (burst_kb * 1024) as f64
                    + 1500.0;
                prop_assert!(
                    cum_bytes as f64 <= budget,
                    "delivered {cum_bytes} B by {elapsed}s exceeds budget {budget}"
                );
            }
        }
    }

    /// The drop-tail queue never exceeds its configured capacity at any
    /// probe instant, for any rate and arrival pattern (generalizes
    /// `queue_never_exceeds_buffer` beyond same-instant arrivals).
    #[test]
    fn droptail_occupancy_bounded_under_random_arrivals(
        rate_mbps in 1.0f64..50.0,
        buffer_kb in 4u64..128,
        arrivals in proptest::collection::vec((0u64..400, 100u32..1500), 1..300),
    ) {
        let cfg = LinkConfig {
            rate: Some(RateSchedule::fixed_mbps(rate_mbps)),
            delay: Dur::ZERO,
            jitter: Jitter::None,
            loss: 0.0,
            reorder: None,
            buffer_bytes: buffer_kb * 1024,
            burst_bytes: 0,
            fault: None,
        };
        let mut link = LinkDir::new(cfg, SimRng::new(6));
        let mut now = Time::ZERO;
        for &(gap_us, size) in &arrivals {
            now += Dur::from_micros(gap_us);
            link.transit(now, size);
            prop_assert!(
                link.queue_bytes(now) <= buffer_kb * 1024 + 1500,
                "occupancy exceeded the drop-tail capacity"
            );
        }
    }

    /// Reordering requires a cause: with no jitter and no explicit
    /// reorder spec the link never inverts deliveries, even with random
    /// loss and arbitrary arrival spacing.
    #[test]
    fn no_reordering_without_jitter_or_reorder_spec(
        rate_mbps in 1.0f64..100.0,
        delay_ms in 0u64..100,
        loss in 0.0f64..0.2,
        arrivals in proptest::collection::vec((0u64..1000, 40u32..1500), 1..300),
    ) {
        let cfg = LinkConfig::shaped(
            RateSchedule::fixed_mbps(rate_mbps),
            Dur::from_millis(delay_ms),
            Dur::from_millis(36),
        )
        .with_loss(loss);
        let mut link = LinkDir::new(cfg, SimRng::new(7));
        let mut now = Time::ZERO;
        let mut last = Time::ZERO;
        for &(gap_us, size) in &arrivals {
            now += Dur::from_micros(gap_us);
            if let Verdict::DeliverAt(at) = link.transit(now, size) {
                prop_assert!(at >= last, "delivery inverted without jitter");
                last = at;
            }
        }
        prop_assert_eq!(link.stats().reordered, 0);
    }
}

proptest! {
    /// The timing wheel is a priority queue: popping everything yields
    /// exactly the (at, seq)-sorted order, i.e. time-sorted with FIFO
    /// tie-breaking on equal times — including deltas that span slot
    /// boundaries, full wheel rotations, and the overflow heap.
    #[test]
    fn wheel_pop_order_is_sorted_by_time_then_arrival(
        ats in proptest::collection::vec(0u64..3_000_000_000, 1..300),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new(SchedKind::Wheel);
        for (i, &at) in ats.iter().enumerate() {
            q.push(Time::from_nanos(at), i as u64);
        }
        let mut expect: Vec<(Time, u64)> = ats
            .iter()
            .enumerate()
            .map(|(i, &at)| (Time::from_nanos(at), i as u64))
            .collect();
        expect.sort();
        let mut got = Vec::with_capacity(expect.len());
        while let Some(x) = q.pop() {
            got.push(x);
        }
        prop_assert_eq!(got, expect);
    }

    /// Under arbitrary interleavings of pushes (with a monotone "now",
    /// as the world's event loop guarantees) and pops, the wheel and the
    /// heap produce identical pop sequences.
    #[test]
    fn wheel_matches_heap_under_interleaved_ops(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..500_000_000),
            1..400,
        ),
    ) {
        let mut wheel: EventQueue<u64> = EventQueue::new(SchedKind::Wheel);
        let mut heap: EventQueue<u64> = EventQueue::new(SchedKind::Heap);
        let mut now = 0u64;
        let mut id = 0u64;
        for &(push, delta) in &ops {
            if push {
                let at = Time::from_nanos(now.saturating_add(delta));
                wheel.push(at, id);
                heap.push(at, id);
                id += 1;
            } else {
                let a = wheel.pop();
                prop_assert_eq!(a, heap.pop());
                prop_assert_eq!(wheel.next_at(), heap.next_at());
                if let Some((t, _)) = a {
                    now = t.as_nanos();
                }
            }
        }
        loop {
            let a = wheel.pop();
            prop_assert_eq!(a, heap.pop());
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.scheduled_peak(), heap.scheduled_peak());
    }
}

proptest! {
    /// The generational slot pool is a faithful allocator under arbitrary
    /// alloc/free interleavings: live handles always resolve, freed
    /// handles never do (even after their slot is recycled), double
    /// frees are rejected, and the live count matches a reference model.
    #[test]
    fn slot_pool_model_check(ops in proptest::collection::vec(any::<u32>(), 1..400)) {
        use longlook_sim::{SlotHandle, SlotPool};
        let mut pool = SlotPool::new();
        let mut live: Vec<SlotHandle> = Vec::new();
        let mut dead: Vec<SlotHandle> = Vec::new();
        let mut peak = 0usize;
        for op in ops {
            // Low bit chooses alloc vs free; high bits pick the victim.
            let is_alloc = op & 1 == 0;
            if is_alloc || live.is_empty() {
                live.push(pool.alloc());
                peak = peak.max(live.len());
            } else {
                let h = live.swap_remove((op >> 1) as usize % live.len());
                prop_assert!(pool.free(h), "live handle must free");
                dead.push(h);
            }
            prop_assert_eq!(pool.live(), live.len());
            for h in &live {
                prop_assert_eq!(pool.resolve(*h), Some(h.index()));
            }
            for h in &dead {
                prop_assert_eq!(pool.resolve(*h), None, "stale handle resolved");
            }
        }
        prop_assert_eq!(pool.live_peak(), peak);
        // Slot space never exceeds the high-water mark of live conns.
        prop_assert!(pool.slots() <= peak);
        for h in dead {
            prop_assert!(!pool.free(h), "double free must be rejected");
        }
    }
}
