//! Vendored, std-only property-testing shim.
//!
//! The build environment has no reachable crate registry, so this crate
//! re-implements the subset of the `proptest` API the workspace's test
//! suites use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! [`any`], range and tuple strategies, [`Just`], [`prop_oneof!`],
//! `collection::{vec, btree_set}`, `sample::Index`, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports the case number; re-running
//!   is fully deterministic (the per-case RNG is seeded from the test name
//!   and case index), so failures always reproduce exactly.
//! * **Fixed case count** — `ProptestConfig::with_cases(n)` and the
//!   `PROPTEST_CASES` environment variable are honored; the default is 64.

use std::marker::PhantomData;

pub mod test_runner {
    //! Deterministic per-test randomness.

    /// SplitMix64 step (seed expansion).
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// xoshiro256++ generator seeded from (test name, case index): the
    /// same test always replays the same cases, run-to-run and
    /// machine-to-machine.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// RNG for one generated case of one named test.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut sm = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            TestRng { s }
        }

        /// Raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// Runner configuration (case count only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Final case count: `PROPTEST_CASES` env override, else the config value.
pub fn resolve_cases(configured: u32) -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured as u64)
        .max(1)
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase, for heterogeneous unions ([`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe mirror of [`Strategy`] used behind the boxing.
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build from the alternatives; must be non-empty.
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alts.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union(alts)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Values with a canonical "any value of the type" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical whole-type strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

macro_rules! range_strategy_int {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + rng.below(span + 1) as $ty
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit() * (self.end - self.start);
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A `Vec` of `elem` values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of `elem` values with size drawn from `size` (the
    /// element space must be large enough to reach the minimum size).
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { elem, size }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target.max(self.size.start) && attempts < 10_000 {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod sample {
    //! Index sampling (`any::<prop::sample::Index>()`).

    use super::{Arbitrary, TestRng};

    /// A deferred index: drawn once, resolved against any collection
    /// length via [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` items; `len` must be
        /// non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// `prop::` paths as the real prelude exposes them.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! Everything a property test file needs.

    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Run each property with generated inputs. Matches the real macro's
/// surface for `fn name(arg in strategy, ...) { body }` items plus an
/// optional leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = $crate::resolve_cases(__cfg.cases);
            for __case in 0..__cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                let ($($arg,)+) =
                    ( $($crate::Strategy::generate(&{ $strat }, &mut __rng),)+ );
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $($crate::Strategy::boxed($s)),+ ])
    };
}

/// Assert within a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality within a property (no shrinking: plain assert_eq).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in 5u64..6, z in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert_eq!(y, 5);
            prop_assert!((-1.0..1.0).contains(&z));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u8..255, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn btree_set_min_size(s in prop::collection::btree_set(0u64..1000, 2..10)) {
            prop_assert!(s.len() >= 2 && s.len() < 10);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u32..10).prop_map(|x| x * 2),
                Just(1u32),
            ],
        ) {
            prop_assert!(v == 1 || (v % 2 == 0 && v < 20));
        }

        #[test]
        fn index_resolves(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_per_case() {
        use crate::test_runner::TestRng;
        let a: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("t", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("t", c).next_u64())
            .collect();
        assert_eq!(a, b);
    }
}
