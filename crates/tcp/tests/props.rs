//! Property-based tests for the TCP wire format, receive reassembly, and
//! the h2 record layer.

use bytes::Bytes;
use longlook_sim::time::{Dur, Time};
use longlook_tcp::h2::{H2Demux, H2Event, H2Mux};
use longlook_tcp::recv::TcpReceiver;
use longlook_tcp::wire::{flags, RecordDesc, TcpSegment};
use proptest::prelude::*;

proptest! {
    /// Segment encode/decode is the identity.
    #[test]
    fn segment_roundtrip(
        seq in any::<u64>(),
        ack in any::<u64>(),
        fl in 0u8..8,
        window in any::<u64>(),
        payload_len in any::<u32>(),
        raw_sacks in proptest::collection::vec((any::<u32>(), 1u32..1000), 0..5),
        dsack in any::<bool>(),
        records in proptest::collection::vec(
            (any::<u64>(), any::<u32>(), any::<u32>(), any::<bool>()),
            0..6
        ),
    ) {
        let seg = TcpSegment {
            seq,
            ack,
            flags: fl,
            window,
            payload_len,
            sacks: raw_sacks
                .into_iter()
                .map(|(s, l)| (s as u64, s as u64 + l as u64))
                .collect(),
            dsack,
            records: records
                .into_iter()
                .map(|(offset, stream, len, fin)| RecordDesc {
                    offset,
                    stream,
                    len,
                    fin,
                })
                .collect(),
        };
        let dec = TcpSegment::decode(seg.encode()).expect("roundtrip");
        prop_assert_eq!(dec, seg);
    }

    /// Decoding garbage never panics.
    #[test]
    fn decode_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = TcpSegment::decode(Bytes::from(data));
    }

    /// rcv_nxt always equals the longest contiguous prefix received.
    #[test]
    fn receiver_tracks_contiguous_prefix(
        mut segs in proptest::collection::vec((0u64..20, 1u64..6), 1..30),
        shuffle in any::<u64>(),
    ) {
        // Segments on a 1000-byte grid so they don't split.
        let mut s = shuffle;
        for i in (1..segs.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            segs.swap(i, j);
        }
        let mut r = TcpReceiver::new(1 << 24);
        for (i, &(slot, len)) in segs.iter().enumerate() {
            r.on_segment(
                slot * 1000,
                (len * 1000).min(6000) as u32,
                Time::ZERO + Dur::from_millis(i as u64),
                Dur::from_millis(40),
            );
        }
        // Expected prefix from the union of intervals.
        let mut intervals: Vec<(u64, u64)> = segs
            .iter()
            .map(|&(slot, len)| (slot * 1000, slot * 1000 + (len * 1000).min(6000)))
            .collect();
        intervals.sort_unstable();
        let mut reach = 0u64;
        for (a, b) in intervals {
            if a <= reach {
                reach = reach.max(b);
            } else {
                break;
            }
        }
        prop_assert_eq!(r.rcv_nxt(), reach);
    }

    /// Ack fields are internally consistent: sack blocks are valid ranges
    /// above rcv_nxt (DSACK blocks may be below).
    #[test]
    fn ack_fields_wellformed(
        segs in proptest::collection::vec((0u64..30, 1u64..4), 1..25),
    ) {
        let mut r = TcpReceiver::new(1 << 24);
        for (i, &(slot, len)) in segs.iter().enumerate() {
            r.on_segment(
                slot * 1000,
                (len * 1000) as u32,
                Time::ZERO + Dur::from_millis(i as u64),
                Dur::from_millis(40),
            );
        }
        let (ack, window, sacks, dsack) = r.build_ack();
        prop_assert!(window <= 1 << 24);
        let plain = if dsack { &sacks[1.min(sacks.len())..] } else { &sacks[..] };
        for &(s, e) in plain {
            prop_assert!(s < e);
            prop_assert!(e > ack, "plain SACK block below the cumulative ack");
        }
    }

    /// h2 mux/demux: random record sets reconstruct exactly, regardless of
    /// how the descriptor announcements are batched.
    #[test]
    fn h2_records_reconstruct(
        recs in proptest::collection::vec((1u32..50, 0u32..5000, any::<bool>()), 1..20),
    ) {
        let mut mux = H2Mux::new(0);
        for &(stream, len, fin) in &recs {
            mux.push_record(stream * 2 + 1, len, fin);
        }
        let total = mux.stream_len();
        let mut demux = H2Demux::new(0);
        demux.on_descs(&mux.descs_in(0, total));
        let events = demux.advance(total);
        // Total payload delivered matches; every fin surfaced.
        let delivered: u64 = events
            .iter()
            .map(|e| match e {
                H2Event::StreamData { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum();
        let expected: u64 = recs.iter().map(|&(_, len, _)| len as u64).sum();
        prop_assert_eq!(delivered, expected);
        let fins = events
            .iter()
            .filter(|e| matches!(e, H2Event::StreamFin(_)))
            .count();
        // Multiple fins on the same stream id are possible when the same
        // stream id repeats with fin; count record-level fins that end a
        // not-yet-finished stream is complex — just check at least one fin
        // per distinct finishing stream.
        let distinct_fin_streams: std::collections::BTreeSet<u32> = recs
            .iter()
            .filter(|&&(_, _, fin)| fin)
            .map(|&(s, _, _)| s * 2 + 1)
            .collect();
        prop_assert!(fins >= distinct_fin_streams.len());
    }

    /// Demux delivers the same totals no matter where the byte stream is
    /// split (head-of-line consistency).
    #[test]
    fn h2_partial_advance_is_lossless(
        recs in proptest::collection::vec((1u32..20, 1u32..2000), 1..10),
        cut in any::<u64>(),
    ) {
        let mut mux = H2Mux::new(0);
        for &(stream, len) in &recs {
            mux.push_record(stream * 2 + 1, len, false);
        }
        let total = mux.stream_len();
        let cut = cut % total.max(1);

        let mut one = H2Demux::new(0);
        one.on_descs(&mux.descs_in(0, total));
        let all_at_once: u64 = one
            .advance(total)
            .iter()
            .map(|e| match e {
                H2Event::StreamData { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum();

        let mut two = H2Demux::new(0);
        two.on_descs(&mux.descs_in(0, total));
        let mut split_total = 0u64;
        for stage in [cut, total] {
            split_total += two
                .advance(stage)
                .iter()
                .map(|e| match e {
                    H2Event::StreamData { bytes, .. } => *bytes,
                    _ => 0,
                })
                .sum::<u64>();
        }
        prop_assert_eq!(all_at_once, split_total);
    }

    /// Control segments always roundtrip (SYN, ACK, FIN combos).
    #[test]
    fn control_segments_roundtrip(fl in 0u8..8, window in any::<u64>()) {
        let seg = TcpSegment::control(0, 0, fl, window);
        prop_assert_eq!(TcpSegment::decode(seg.encode()).expect("ok"), seg.clone());
        let expect_bare = seg.payload_len == 0 && fl & (flags::SYN | flags::FIN) == 0;
        prop_assert_eq!(seg.is_bare_ack(), expect_bare);
    }
}

/// An arbitrary well-formed segment (sack blocks normalized to start < end).
fn arb_segment() -> impl Strategy<Value = TcpSegment> {
    (
        (any::<u64>(), any::<u64>(), 0u8..8, any::<u64>()),
        (
            any::<u32>(),
            proptest::collection::vec((any::<u32>(), 1u32..1000), 0..5),
            any::<bool>(),
            proptest::collection::vec(
                (any::<u64>(), any::<u32>(), any::<u32>(), any::<bool>()),
                0..6,
            ),
        ),
    )
        .prop_map(
            |((seq, ack, flags, window), (payload_len, raw_sacks, dsack, records))| TcpSegment {
                seq,
                ack,
                flags,
                window,
                payload_len,
                sacks: raw_sacks
                    .into_iter()
                    .map(|(s, l)| (s as u64, s as u64 + l as u64))
                    .collect(),
                dsack,
                records: records
                    .into_iter()
                    .map(|(offset, stream, len, fin)| RecordDesc {
                        offset,
                        stream,
                        len,
                        fin,
                    })
                    .collect(),
            },
        )
}

proptest! {
    /// Encoding is canonical: re-encoding a decoded segment reproduces the
    /// exact byte sequence.
    #[test]
    fn encoding_is_canonical(seg in arb_segment()) {
        let bytes = seg.encode();
        let reencoded = TcpSegment::decode(bytes.clone()).expect("valid").encode();
        prop_assert_eq!(reencoded.as_slice(), bytes.as_slice());
    }

    /// The encoded length follows the wire layout exactly:
    /// 31-byte fixed header + 16 bytes per SACK block + 2-byte record
    /// count + 17 bytes per record descriptor.
    #[test]
    fn encoded_length_matches_layout(seg in arb_segment()) {
        let expect = 31 + 16 * seg.sacks.len() + 2 + 17 * seg.records.len();
        prop_assert_eq!(seg.encode().len(), expect);
    }

    /// Every strict prefix of a valid encoding is rejected (the
    /// length-prefixed lists make truncation always detectable), and
    /// rejection never panics.
    #[test]
    fn strict_prefixes_never_decode(
        seg in arb_segment(),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = seg.encode();
        let cut = cut.index(bytes.len());
        prop_assert!(TcpSegment::decode(bytes.slice(0..cut)).is_err());
    }
}

proptest! {
    /// Analytic sizing invariant: `encoded_len()` equals `encode().len()`
    /// exactly for every segment shape. The structured wire path charges
    /// links using `encoded_len`, so any drift here would silently skew
    /// byte accounting versus the encoded path.
    #[test]
    fn encoded_len_matches_encode(seg in arb_segment()) {
        prop_assert_eq!(seg.encoded_len() as usize, seg.encode().len());
    }

    /// Option-truncation edge: past the 255-SACK cap, `encode` and
    /// `encoded_len` truncate identically, including at max-valued fields.
    #[test]
    fn encoded_len_tracks_sack_cap(
        seq in prop_oneof![Just(u64::MAX), any::<u64>()],
        window in prop_oneof![Just(u64::MAX), any::<u64>()],
        nsacks in 0usize..300,
        nrecs in 0usize..40,
    ) {
        let seg = TcpSegment {
            seq,
            ack: u64::MAX,
            flags: flags::ACK,
            window,
            payload_len: u32::MAX,
            sacks: (0..nsacks as u64).map(|i| (2 * i, 2 * i + 1)).collect(),
            dsack: true,
            records: (0..nrecs)
                .map(|i| RecordDesc {
                    offset: u64::MAX - i as u64,
                    stream: u32::MAX,
                    len: u32::MAX,
                    fin: true,
                })
                .collect(),
        };
        prop_assert_eq!(seg.encoded_len() as usize, seg.encode().len());
    }
}
