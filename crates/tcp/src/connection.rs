//! The TCP(+TLS+HTTP/2) connection state machine — the paper's baseline.
//!
//! Implements [`longlook_transport::Connection`] so workloads run
//! unchanged over either protocol. Where QUIC saves round trips and
//! sidesteps ambiguity, this model faithfully pays the costs:
//!
//! * 1 RTT of TCP handshake plus 1 RTT of TLS (False Start) before the
//!   first request byte can leave;
//! * Karn's algorithm: no RTT samples from retransmitted sequences;
//! * delayed acks (every 2nd segment / 40 ms);
//! * no tail loss probe — tail drops wait for the RTO;
//! * a single ordered byte stream: HTTP/2 head-of-line blocking;
//! * DSACK-adaptive dupthresh: TCP *tolerates* reordering QUIC cannot.

use crate::h2::{H2Demux, H2Event, H2Mux};
use crate::recv::TcpReceiver;
use crate::scoreboard::Scoreboard;
use crate::wire::{flags, TcpSegment};
use longlook_sim::packet::Payload;
use longlook_sim::time::{Dur, Time};
use longlook_sim::trace::RecoveryKind;
use longlook_sim::{BatchMode, PayloadPool, Tracer, WireMode};
use longlook_transport::cc::CongestionControl;
use longlook_transport::ccstate::{CcState, StateTrace, StateTracker};
use longlook_transport::conn::{
    AppEvent, ConnError, ConnStats, Connection, StreamId, Transmit, TCP_OVERHEAD,
};
use longlook_transport::cubic::{Cubic, CubicConfig};
use longlook_transport::rtt::RttEstimator;
use std::collections::VecDeque;

/// TLS 1.2 handshake message sizes in stream bytes.
mod tls {
    /// ClientHello.
    pub const CLIENT_HELLO: u64 = 350;
    /// Client Finished (+ ChangeCipherSpec).
    pub const CLIENT_FINISHED: u64 = 128;
    /// Client handshake prefix.
    pub const CLIENT_PREFIX: u64 = CLIENT_HELLO + CLIENT_FINISHED;
    /// ServerHello + Certificate chain + ServerHelloDone.
    pub const SERVER_HELLO: u64 = 3200;
    /// Server Finished.
    pub const SERVER_FINISHED: u64 = 64;
    /// Server handshake prefix.
    pub const SERVER_PREFIX: u64 = SERVER_HELLO + SERVER_FINISHED;
}

/// TCP configuration.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment payload size.
    pub mss: u64,
    /// Cubic parameters (Linux defaults).
    pub cubic: CubicConfig,
    /// Receive buffer / advertised window.
    pub recv_buffer: u64,
    /// Delayed-ack timeout (Linux delack min).
    pub delayed_ack: Dur,
    /// RTT assumed before the first sample.
    pub initial_rtt: Dur,
    /// Initial SYN retransmission timeout.
    pub syn_rto: Dur,
    /// Model TLS on top (HTTPS); disable for a raw-TCP proxy leg.
    pub tls: bool,
    /// Arm the connection watchdog: give up with a typed
    /// [`longlook_transport::ConnError`] when the handshake (SYN + TLS)
    /// exceeds `handshake_timeout`, the SYN retry budget is exhausted, or
    /// an established connection sits idle with outstanding work past
    /// `idle_timeout`. Off by default so unfaulted runs behave exactly as
    /// before; the testbed arms it whenever a fault plan is attached.
    pub watchdog: bool,
    /// Handshake deadline when the watchdog is armed.
    pub handshake_timeout: Dur,
    /// Idle deadline when the watchdog is armed.
    pub idle_timeout: Dur,
    /// SYN retransmission budget before the armed watchdog declares
    /// `HandshakeTimeout` (Linux `tcp_syn_retries` default). Ignored when
    /// the watchdog is off — the historical model retried forever.
    pub max_syn_retries: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        let mss = 1400;
        TcpConfig {
            mss,
            cubic: CubicConfig::linux_tcp(mss),
            recv_buffer: 6 * 1024 * 1024,
            delayed_ack: Dur::from_millis(40),
            initial_rtt: Dur::from_millis(100),
            syn_rto: Dur::from_secs(1),
            tls: true,
            watchdog: false,
            handshake_timeout: Dur::from_secs(30),
            idle_timeout: Dur::from_secs(60),
            max_syn_retries: 6,
        }
    }
}

impl TcpConfig {
    /// Round trips spent on connection establishment before request data
    /// can flow: 1 for the SYN exchange, plus 2 for the TLS 1.2 handshake
    /// when `tls` is set — the 3-RTT total the paper contrasts with
    /// QUIC's 0/1-RTT setup.
    ///
    /// Used by the fleet world's flight-granular model, where handshakes
    /// are charged as whole RTTs rather than simulated packet by packet.
    pub fn handshake_rtts(&self) -> u32 {
        if self.tls {
            3
        } else {
            1
        }
    }
}

/// TCP-level connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TcpState {
    /// Client sent SYN.
    SynSent,
    /// Server awaiting SYN.
    Listen,
    /// Three-way handshake complete.
    Open,
}

/// Which end we are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpRole {
    /// Initiates the handshake.
    Client,
    /// Accepts it.
    Server,
}

/// A TCP+TLS+HTTP/2 connection.
pub struct TcpConnection {
    cfg: TcpConfig,
    role: TcpRole,
    state: TcpState,
    /// SYN needs (re)sending.
    syn_pending: bool,
    /// SYN-ACK needs sending (server).
    synack_pending: bool,
    syn_deadline: Option<Time>,
    syn_retries: u32,

    scoreboard: Scoreboard,
    receiver: TcpReceiver,
    rtt: RttEstimator,
    cc: Box<dyn CongestionControl>,

    mux: H2Mux,
    demux: H2Demux,
    /// Next fresh stream byte to transmit.
    snd_nxt: u64,
    /// Peer's advertised receive window.
    peer_window: u64,
    /// Next client-initiated h2 stream id.
    next_stream_id: u32,

    rto_deadline: Option<Time>,
    /// Pending lazy RTO re-arm: the `now` of the newest `rearm_rto`
    /// request this dispatch. Re-arming is a pure function of scoreboard /
    /// rtt / backoff state, and the deadline is only observable at
    /// `next_wakeup` / `on_wakeup`, so resolving just the last request is
    /// exact (see the QUIC twin's loss-timer treatment).
    rto_rearm_at: Option<Time>,
    rto_backoff: u32,
    in_rto_state: bool,
    /// `LONGLOOK_BATCH` resolved at construction: defer RTO re-arms.
    batch: bool,

    tls_established: bool,
    handshake_done_emitted: bool,
    app_limited: bool,

    /// Construction instant: base for the handshake watchdog deadline.
    started_at: Time,
    /// Last inbound segment: base for the idle watchdog deadline.
    last_progress: Time,
    /// Watchdog tripped: the connection stopped trying.
    gave_up: bool,
    error: Option<ConnError>,

    events: VecDeque<AppEvent>,
    stats: ConnStats,
    cwnd_log: Vec<(Time, u64)>,
    tracker: StateTracker,
    /// Structured event trace (`LONGLOOK_TRACE`); records nothing when
    /// tracing is off.
    tracer: Tracer,
    /// Recycled payload buffers (encoded path only): encoders take from
    /// here, spent received payloads are reclaimed in `on_datagram`.
    pool: PayloadPool,
    /// Structured (typed segments in memory) vs encoded (serialize +
    /// reparse) wire path; resolved from `LONGLOOK_WIRE` at construction.
    wire_mode: WireMode,
}

impl TcpConnection {
    /// Client endpoint; the SYN goes out on the first `poll_transmit`.
    pub fn client(cfg: TcpConfig, now: Time) -> Self {
        let mut c = Self::new_common(cfg, TcpRole::Client, now);
        c.state = TcpState::SynSent;
        c.syn_pending = true;
        c
    }

    /// Server endpoint.
    pub fn server(cfg: TcpConfig, now: Time) -> Self {
        let mut c = Self::new_common(cfg, TcpRole::Server, now);
        c.state = TcpState::Listen;
        c
    }

    fn new_common(cfg: TcpConfig, role: TcpRole, now: Time) -> Self {
        let (our_prefix, peer_prefix) = if cfg.tls {
            match role {
                TcpRole::Client => (tls::CLIENT_PREFIX, tls::SERVER_PREFIX),
                TcpRole::Server => (tls::SERVER_PREFIX, tls::CLIENT_PREFIX),
            }
        } else {
            (0, 0)
        };
        let cc: Box<dyn CongestionControl> = Box::new(Cubic::new(cfg.cubic.clone(), now));
        let mut tracer = Tracer::from_env();
        tracer.cc_state(now.as_nanos(), CcState::Init.label());
        TcpConnection {
            rtt: RttEstimator::new(cfg.initial_rtt),
            receiver: TcpReceiver::new(cfg.recv_buffer),
            mux: H2Mux::new(our_prefix),
            demux: H2Demux::new(peer_prefix),
            peer_window: cfg.recv_buffer,
            cfg,
            role,
            state: TcpState::Listen,
            syn_pending: false,
            synack_pending: false,
            syn_deadline: None,
            syn_retries: 0,
            scoreboard: Scoreboard::new(),
            cc,
            snd_nxt: 0,
            next_stream_id: 1,
            rto_deadline: None,
            rto_rearm_at: None,
            rto_backoff: 0,
            in_rto_state: false,
            batch: BatchMode::from_env().is_on(),
            tls_established: false,
            handshake_done_emitted: false,
            app_limited: false,
            started_at: now,
            last_progress: now,
            gave_up: false,
            error: None,
            events: VecDeque::new(),
            stats: ConnStats::default(),
            cwnd_log: vec![(now, 0)],
            tracker: StateTracker::new(now, CcState::Init.label()),
            tracer,
            pool: PayloadPool::new(),
            wire_mode: WireMode::from_env(),
        }
    }

    /// Highest stream byte we are allowed to transmit right now, given the
    /// TCP and TLS handshake state.
    fn sendable_limit(&self) -> u64 {
        if self.state != TcpState::Open {
            return 0;
        }
        if !self.cfg.tls {
            return u64::MAX;
        }
        let peer_bytes = self.receiver.rcv_nxt();
        match self.role {
            TcpRole::Client => {
                if peer_bytes >= tls::SERVER_HELLO {
                    // Got the ServerHello flight: finish + data (False Start).
                    u64::MAX
                } else {
                    tls::CLIENT_HELLO
                }
            }
            TcpRole::Server => {
                if peer_bytes >= tls::CLIENT_PREFIX {
                    u64::MAX
                } else if peer_bytes >= tls::CLIENT_HELLO {
                    tls::SERVER_HELLO
                } else {
                    0
                }
            }
        }
    }

    fn maybe_tls_established(&mut self, _now: Time) {
        if self.tls_established {
            return;
        }
        let done = if !self.cfg.tls {
            self.state == TcpState::Open
        } else {
            let peer_bytes = self.receiver.rcv_nxt();
            match self.role {
                TcpRole::Client => peer_bytes >= tls::SERVER_HELLO,
                TcpRole::Server => peer_bytes >= tls::CLIENT_PREFIX,
            }
        };
        if done {
            self.tls_established = true;
            if !self.handshake_done_emitted {
                self.handshake_done_emitted = true;
                self.events.push_back(AppEvent::HandshakeDone);
            }
        }
    }

    fn log_cwnd(&mut self, now: Time) {
        let cwnd = self.cc.cwnd();
        self.stats.max_cwnd = self.stats.max_cwnd.max(cwnd);
        if self.cwnd_log.last().map(|&(_, c)| c) != Some(cwnd) {
            self.cwnd_log.push((now, cwnd));
            self.tracer.cwnd(now.as_nanos(), cwnd);
        }
    }

    fn update_state(&mut self, now: Time) {
        let label = if !self.tls_established {
            CcState::Init.label()
        } else if self.in_rto_state {
            CcState::RetransmissionTimeout.label()
        } else {
            let cc_label = self.cc.state_label(now);
            if cc_label == CcState::Recovery.label() {
                cc_label
            } else if self.app_limited {
                CcState::ApplicationLimited.label()
            } else {
                cc_label
            }
        };
        self.tracker.set(now, label);
        self.tracer.cc_state(now.as_nanos(), label);
    }

    /// Pure RTO deadline computation for a re-arm requested at `now`.
    fn compute_rto(&self, now: Time) -> Option<Time> {
        if self.scoreboard.has_outstanding() {
            let rto = self.rtt.rto().saturating_mul(1 << self.rto_backoff.min(6));
            Some(now + rto)
        } else {
            None
        }
    }

    fn rearm_rto(&mut self, now: Time) {
        // Trace the arm at the request point: the deadline is a pure
        // function of state that cannot change before a deferred re-arm
        // resolves, so this is identical under both `LONGLOOK_BATCH`
        // modes (costs a computation only when tracing is on).
        if self.tracer.enabled() {
            if let Some(at) = self.compute_rto(now) {
                self.tracer.timer_arm(now.as_nanos(), at.as_nanos());
            }
        }
        if self.batch {
            // Batched hot path: every segment sent in a dispatch requests
            // a re-arm with the same `now`; defer and resolve once.
            self.rto_rearm_at = Some(now);
        } else {
            self.rto_deadline = self.compute_rto(now);
        }
    }

    /// Apply a deferred re-arm before the deadline is acted on.
    fn resolve_rto(&mut self) {
        if let Some(at) = self.rto_rearm_at.take() {
            self.rto_deadline = self.compute_rto(at);
        }
    }

    /// Emit one data segment covering `[seq, seq+len)`.
    fn make_data_segment(&mut self, seq: u64, len: u32, now: Time) -> Transmit {
        let (ack, window, sacks, dsack) = self.receiver.build_ack();
        let records = self.mux.descs_in(seq, seq + len as u64);
        let seg = TcpSegment {
            seq,
            ack,
            flags: flags::ACK,
            window,
            payload_len: len,
            sacks,
            dsack,
            records,
        };
        self.scoreboard.on_sent(seq, len, now);
        self.cc
            .on_packet_sent(now, len as u64, self.scoreboard.pipe());
        self.rearm_rto(now);
        let wire_size = seg.wire_size_payload() + TCP_OVERHEAD + 17 * seg.records.len() as u32;
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += wire_size as u64;
        self.tracer
            .pkt_tx(now.as_nanos(), seq, wire_size as u64, true);
        let payload = match self.wire_mode {
            WireMode::Structured => Payload::Tcp(seg),
            WireMode::Encoded => Payload::Wire(seg.encode_with(&mut self.pool)),
        };
        Transmit { payload, wire_size }
    }

    fn make_control(&mut self, flag_bits: u8, now: Time) -> Transmit {
        let (ack, window, sacks, dsack) = self.receiver.build_ack();
        let seg = TcpSegment {
            seq: 0,
            ack,
            flags: flag_bits,
            window,
            payload_len: 0,
            sacks,
            dsack,
            records: Vec::new(),
        };
        let wire_size = seg.wire_size_payload() + TCP_OVERHEAD;
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += wire_size as u64;
        if seg.is_bare_ack() {
            self.stats.acks_sent += 1;
        }
        self.tracer
            .pkt_tx(now.as_nanos(), 0, wire_size as u64, false);
        let payload = match self.wire_mode {
            WireMode::Structured => Payload::Tcp(seg),
            WireMode::Encoded => Payload::Wire(seg.encode_with(&mut self.pool)),
        };
        Transmit { payload, wire_size }
    }

    fn drain_h2_events(&mut self) {
        let evs = self.demux.advance(self.receiver.rcv_nxt());
        for e in evs {
            match e {
                H2Event::StreamOpened(s) => {
                    self.events
                        .push_back(AppEvent::StreamOpened(StreamId(s as u64)));
                }
                H2Event::StreamData { stream, bytes } => {
                    self.events.push_back(AppEvent::StreamData {
                        id: StreamId(stream as u64),
                        bytes,
                    });
                }
                H2Event::StreamFin(s) => {
                    self.events
                        .push_back(AppEvent::StreamFin(StreamId(s as u64)));
                }
            }
        }
    }

    /// Current dupthresh (diagnostics; grows via DSACK).
    pub fn dupthresh(&self) -> u32 {
        self.scoreboard.dupthresh()
    }

    /// Watchdog trip: stop trying, clear every pending timer and control
    /// flag so the connection reads as quiescent, and surface the error.
    fn give_up(&mut self, err: ConnError, now: Time) {
        self.tracer.recovery(now.as_nanos(), RecoveryKind::GiveUp);
        self.gave_up = true;
        self.error = Some(err);
        self.syn_pending = false;
        self.synack_pending = false;
        self.syn_deadline = None;
        self.rto_deadline = None;
        self.rto_rearm_at = None;
    }

    /// Check the armed watchdog at `now` (see the QUIC twin): the
    /// handshake deadline covers SYN + TLS; established connections time
    /// out on inbound silence only while work is outstanding.
    fn check_watchdog(&mut self, now: Time) {
        if !self.cfg.watchdog || self.gave_up {
            return;
        }
        if !self.tls_established {
            if now >= self.started_at + self.cfg.handshake_timeout {
                self.give_up(ConnError::HandshakeTimeout, now);
            }
        } else if !self.is_quiescent() && now >= self.last_progress + self.cfg.idle_timeout {
            self.give_up(ConnError::IdleTimeout, now);
        }
    }
}

impl Connection for TcpConnection {
    fn on_datagram(&mut self, payload: Payload, now: Time) {
        self.stats.packets_received += 1;
        let seg = match payload {
            // Structured fast path: the typed segment arrives by value.
            Payload::Tcp(s) => s,
            Payload::Wire(bytes) => {
                // Decode borrows the payload so the spent buffer can be
                // reclaimed into the pool afterwards (sole-owner fast
                // path — no refcount bump, no clone).
                let decoded = TcpSegment::decode(&bytes[..]);
                self.pool.reclaim(bytes);
                match decoded {
                    Ok(s) => s,
                    Err(_) => return,
                }
            }
            // Flow demux never routes a QUIC packet here; treat one like
            // an undecodable segment.
            Payload::Quic(_) => return,
        };
        if self.gave_up {
            return;
        }
        self.last_progress = now;
        if self.tracer.enabled() {
            // Recompute the analytic wire size so the record is identical
            // under both `LONGLOOK_WIRE` modes (proptest-pinned equal to
            // the encoded length).
            let sz = seg.wire_size_payload() + TCP_OVERHEAD + 17 * seg.records.len() as u32;
            self.tracer.pkt_rx(now.as_nanos(), seg.seq, sz as u64);
        }

        // Handshake control.
        if seg.flags & flags::SYN != 0 {
            match (self.role, self.state) {
                (TcpRole::Server, TcpState::Listen) => {
                    self.state = TcpState::Open;
                    self.synack_pending = true;
                    self.maybe_tls_established(now);
                }
                (TcpRole::Server, TcpState::Open) => {
                    // Duplicate SYN: our SYN-ACK was lost; resend.
                    self.synack_pending = true;
                }
                (TcpRole::Client, TcpState::SynSent) if seg.flags & flags::ACK != 0 => {
                    self.state = TcpState::Open;
                    self.syn_deadline = None;
                    let _ = self.syn_retries;
                    self.maybe_tls_established(now);
                }
                _ => {}
            }
            self.update_state(now);
            return;
        }

        self.peer_window = seg.window;

        // Data path.
        if seg.payload_len > 0 {
            self.demux.on_descs(&seg.records);
            let newly =
                self.receiver
                    .on_segment(seg.seq, seg.payload_len, now, self.cfg.delayed_ack);
            self.stats.bytes_received += seg.payload_len as u64;
            if newly > 0 {
                self.maybe_tls_established(now);
                self.drain_h2_events();
            }
        }

        // Ack path.
        if seg.flags & flags::ACK != 0 && self.state == TcpState::Open {
            let out =
                self.scoreboard
                    .on_ack(now, seg.ack, &seg.sacks, seg.dsack, seg.payload_len > 0);
            if let Some(sample) = out.rtt_sample {
                self.rtt.on_sample(sample, Dur::ZERO);
            }
            if out.spurious {
                self.stats.spurious_retransmissions += 1;
            }
            self.tracer.ack(now.as_nanos(), out.newly_acked);
            if out.newly_acked > 0 {
                self.rto_backoff = 0;
                self.in_rto_state = false;
                self.stats.bytes_acked += out.newly_acked;
                self.mux.prune(self.scoreboard.snd_una());
            }
            let delivered = out.newly_acked + out.newly_sacked;
            if delivered > 0 {
                self.cc.on_ack(
                    now,
                    out.newest_acked_sent_at.unwrap_or(now),
                    delivered,
                    &self.rtt,
                    self.scoreboard.pipe(),
                    self.app_limited,
                );
                self.rearm_rto(now);
            }
            if out.fast_retransmit {
                self.stats.losses_detected += out.lost_ranges.len() as u64;
                self.tracer.recovery(now.as_nanos(), RecoveryKind::FastRetx);
                if self.tracer.enabled() {
                    for &(seq, _) in &out.lost_ranges {
                        self.tracer.loss(now.as_nanos(), seq);
                    }
                }
                self.cc.on_congestion_event(
                    now,
                    out.lost_sent_at.unwrap_or(now),
                    out.lost_ranges.iter().map(|&(_, l)| l as u64).sum(),
                    self.scoreboard.pipe(),
                );
            }
            self.log_cwnd(now);
        }
        self.update_state(now);
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Transmit> {
        if self.gave_up {
            return None;
        }
        // 1. TCP handshake control segments.
        if self.syn_pending {
            self.syn_pending = false;
            self.syn_deadline = Some(now + self.cfg.syn_rto);
            return Some(self.make_control(flags::SYN, now));
        }
        if self.synack_pending {
            self.synack_pending = false;
            return Some(self.make_control(flags::SYN | flags::ACK, now));
        }
        if self.state != TcpState::Open {
            return None;
        }

        // 2. Retransmissions first (cc-gated via PRR/cwnd).
        if let Some((seq, len)) = self.scoreboard.first_lost() {
            if self.cc.can_send(self.scoreboard.pipe(), len as u64) {
                self.stats.retransmissions += 1;
                return Some(self.make_data_segment(seq, len, now));
            }
        }

        // 3. Fresh data.
        let limit = self.sendable_limit().min(self.mux.stream_len());
        let rwnd_edge = self.scoreboard.snd_una() + self.peer_window;
        if self.snd_nxt < limit && self.snd_nxt < rwnd_edge {
            let len = (limit - self.snd_nxt)
                .min(self.cfg.mss)
                .min(rwnd_edge - self.snd_nxt) as u32;
            if len > 0 && self.cc.can_send(self.scoreboard.pipe(), len as u64) {
                let seq = self.snd_nxt;
                self.snd_nxt += len as u64;
                self.app_limited = false;
                let seg = self.make_data_segment(seq, len, now);
                self.update_state(now);
                return Some(seg);
            }
        }
        // Application-limited bookkeeping: window open but no data.
        let have_data = self.snd_nxt < self.mux.stream_len().min(self.sendable_limit());
        self.app_limited = self.tls_established
            && !have_data
            && self.cc.can_send(self.scoreboard.pipe(), self.cfg.mss)
            && self.scoreboard.pipe() < self.cc.cwnd();

        // 4. Bare ack if one is due.
        if self.receiver.ack_due(now) {
            let t = self.make_control(flags::ACK, now);
            self.update_state(now);
            return Some(t);
        }
        self.update_state(now);
        None
    }

    fn next_wakeup(&self) -> Option<Time> {
        if self.gave_up {
            return None;
        }
        let mut t: Option<Time> = None;
        let mut consider = |cand: Option<Time>| {
            if let Some(c) = cand {
                t = Some(match t {
                    Some(cur) if cur <= c => cur,
                    _ => c,
                });
            }
        };
        // Resolve any deferred re-arm without mutating: a pending request
        // supersedes the stored deadline.
        let rto = match self.rto_rearm_at {
            Some(at) => self.compute_rto(at),
            None => self.rto_deadline,
        };
        consider(rto);
        consider(self.syn_deadline);
        consider(self.receiver.deadline());
        if self.cfg.watchdog {
            // Only schedules a wake while there is work to give up on, so
            // unfaulted runs still end in the Idle outcome.
            if !self.tls_established {
                consider(Some(self.started_at + self.cfg.handshake_timeout));
            } else if !self.is_quiescent() {
                consider(Some(self.last_progress + self.cfg.idle_timeout));
            }
        }
        t
    }

    fn on_wakeup(&mut self, now: Time) {
        self.resolve_rto();
        self.check_watchdog(now);
        if self.gave_up {
            return;
        }
        if let Some(d) = self.syn_deadline {
            if now >= d && self.state == TcpState::SynSent {
                if self.cfg.watchdog && self.syn_retries >= self.cfg.max_syn_retries {
                    // SYN retry budget exhausted: give up rather than
                    // back off forever into a blackout.
                    self.give_up(ConnError::HandshakeTimeout, now);
                    return;
                }
                self.syn_pending = true;
                self.syn_retries += 1;
                self.syn_deadline = Some(now + self.cfg.syn_rto.saturating_mul(2));
            }
        }
        if let Some(d) = self.rto_deadline {
            if now >= d && self.scoreboard.has_outstanding() {
                self.stats.rto_count += 1;
                self.tracer.timer_fire(now.as_nanos(), RecoveryKind::Rto);
                self.tracer.recovery(now.as_nanos(), RecoveryKind::Rto);
                self.in_rto_state = true;
                self.scoreboard.mark_all_lost();
                self.cc.on_rto(now);
                self.rto_backoff += 1;
                self.rearm_rto(now);
                self.log_cwnd(now);
            } else if now >= d {
                self.rto_deadline = None;
            }
        }
        self.update_state(now);
    }

    fn open_stream(&mut self, _now: Time) -> Option<StreamId> {
        // h2 allows effectively unlimited concurrent streams for our
        // workloads (Chrome's default is 100-1000); no MSPC pathology.
        let id = self.next_stream_id;
        self.next_stream_id += 2;
        Some(StreamId(id as u64))
    }

    fn stream_send(&mut self, _now: Time, id: StreamId, bytes: u64, fin: bool) {
        debug_assert!(bytes <= u32::MAX as u64, "single h2 record cap");
        self.mux.push_record(id.0 as u32, bytes as u32, fin);
        self.app_limited = false;
    }

    fn poll_event(&mut self) -> Option<AppEvent> {
        self.events.pop_front()
    }

    fn is_established(&self) -> bool {
        self.tls_established
    }

    fn is_quiescent(&self) -> bool {
        self.gave_up
            || (!self.scoreboard.has_outstanding()
                && self.snd_nxt >= self.mux.stream_len().min(self.sendable_limit())
                && self.scoreboard.lost_count() == 0)
    }

    fn stats(&self) -> ConnStats {
        self.stats
    }

    fn cwnd_timeline(&self) -> &[(Time, u64)] {
        &self.cwnd_log
    }

    fn state_trace(&self, now: Time) -> StateTrace {
        self.tracker.finish(now)
    }

    fn srtt(&self) -> Dur {
        self.rtt.srtt()
    }

    fn trace_records(&self) -> &[longlook_sim::trace::TraceRecord] {
        self.tracer.records()
    }

    fn error(&self) -> Option<ConnError> {
        self.error
    }
}
