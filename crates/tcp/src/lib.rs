//! TCP + TLS + HTTP/2: the baseline stack the paper compares QUIC against.
//!
//! "Throughout this paper we refer to such measurements that include
//! HTTP/2+TLS+TCP as 'TCP'." — Sec 3.1. This crate models that stack as a
//! sans-IO state machine: Linux-style Cubic, SACK/DSACK loss recovery with
//! an adaptive dupthresh, Karn-compliant RTT estimation, delayed acks, a
//! TLS 1.2 (False Start) handshake latency model, and HTTP/2 record
//! multiplexing over the ordered byte stream — head-of-line blocking
//! included.

pub mod connection;
pub mod h2;
pub mod recv;
pub mod scoreboard;
pub mod wire;

pub use connection::{TcpConfig, TcpConnection, TcpRole};
pub use h2::{H2Demux, H2Event, H2Mux, RECORD_HEADER};
pub use scoreboard::{Scoreboard, TcpAckOutcome};
pub use wire::{flags, RecordDesc, TcpSegment, TcpWireError, MAX_RECORDS, MAX_SACKS};

#[cfg(test)]
mod loopback_tests {
    //! Client/server pair over an in-memory delayed pipe (mirrors the
    //! QUIC crate's loopback harness).

    use crate::{TcpConfig, TcpConnection};
    use longlook_sim::packet::Payload;
    use longlook_sim::time::{Dur, Time};
    use longlook_transport::conn::{AppEvent, Connection, StreamId};
    use std::collections::VecDeque;

    const OWD: Dur = Dur::from_millis(18); // 36ms RTT

    struct Pipe {
        a_to_b: VecDeque<(Time, Payload)>,
        b_to_a: VecDeque<(Time, Payload)>,
        drop_a_to_b: Vec<u64>,
        drop_b_to_a: Vec<u64>,
        sent_ab: u64,
        sent_ba: u64,
    }

    impl Pipe {
        fn new() -> Self {
            Pipe {
                a_to_b: VecDeque::new(),
                b_to_a: VecDeque::new(),
                drop_a_to_b: Vec::new(),
                drop_b_to_a: Vec::new(),
                sent_ab: 0,
                sent_ba: 0,
            }
        }
    }

    fn run(
        a: &mut TcpConnection,
        b: &mut TcpConnection,
        pipe: &mut Pipe,
        start: Time,
        deadline: Time,
    ) -> (Vec<AppEvent>, Vec<AppEvent>) {
        let mut now = start;
        let mut ev_a = Vec::new();
        let mut ev_b = Vec::new();
        loop {
            while let Some(tx) = a.poll_transmit(now) {
                let dropped = pipe.drop_a_to_b.contains(&pipe.sent_ab);
                pipe.sent_ab += 1;
                if !dropped {
                    pipe.a_to_b.push_back((now + OWD, tx.payload));
                }
            }
            while let Some(tx) = b.poll_transmit(now) {
                let dropped = pipe.drop_b_to_a.contains(&pipe.sent_ba);
                pipe.sent_ba += 1;
                if !dropped {
                    pipe.b_to_a.push_back((now + OWD, tx.payload));
                }
            }
            while let Some(e) = a.poll_event() {
                ev_a.push(e);
            }
            while let Some(e) = b.poll_event() {
                ev_b.push(e);
            }
            let mut next: Option<Time> = None;
            let mut consider = |t: Option<Time>| {
                if let Some(t) = t {
                    next = Some(next.map_or(t, |n: Time| n.min(t)));
                }
            };
            consider(pipe.a_to_b.front().map(|&(t, _)| t));
            consider(pipe.b_to_a.front().map(|&(t, _)| t));
            consider(a.next_wakeup());
            consider(b.next_wakeup());
            let Some(next) = next else { break };
            if next > deadline {
                break;
            }
            now = now.max(next);
            while pipe.a_to_b.front().is_some_and(|&(t, _)| t <= now) {
                let (_, p) = pipe.a_to_b.pop_front().expect("checked");
                b.on_datagram(p, now);
            }
            while pipe.b_to_a.front().is_some_and(|&(t, _)| t <= now) {
                let (_, p) = pipe.b_to_a.pop_front().expect("checked");
                a.on_datagram(p, now);
            }
            a.on_wakeup(now);
            b.on_wakeup(now);
        }
        (ev_a, ev_b)
    }

    fn pair() -> (TcpConnection, TcpConnection) {
        let cfg = TcpConfig::default();
        (
            TcpConnection::client(cfg.clone(), Time::ZERO),
            TcpConnection::server(cfg, Time::ZERO),
        )
    }

    fn total_bytes(events: &[AppEvent], id: StreamId) -> u64 {
        events
            .iter()
            .map(|e| match e {
                AppEvent::StreamData { id: i, bytes } if *i == id => *bytes,
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn handshake_takes_two_rtts_with_tls() {
        let (mut c, mut s) = pair();
        let mut pipe = Pipe::new();
        let (ev_c, _) = run(
            &mut c,
            &mut s,
            &mut pipe,
            Time::ZERO,
            Time::ZERO + Dur::from_secs(3),
        );
        assert!(c.is_established());
        assert!(s.is_established());
        assert!(ev_c.contains(&AppEvent::HandshakeDone));
        // TCP HS (1 RTT) + CH->SH (1 RTT): client established at ~2 RTT.
        // We can't read the exact instant here, but the trace shows Init
        // until establishment; checked in the http-level tests.
    }

    #[test]
    fn request_response_roundtrip() {
        let (mut c, mut s) = pair();
        let mut pipe = Pipe::new();
        run(
            &mut c,
            &mut s,
            &mut pipe,
            Time::ZERO,
            Time::ZERO + Dur::from_secs(1),
        );
        let now = Time::ZERO + Dur::from_secs(1);
        let id = c.open_stream(now).expect("stream");
        c.stream_send(now, id, 250, true);
        let (_, ev_s) = run(&mut c, &mut s, &mut pipe, now, now + Dur::from_secs(2));
        assert_eq!(total_bytes(&ev_s, id), 250);
        assert!(ev_s.contains(&AppEvent::StreamOpened(id)));
        assert!(ev_s.contains(&AppEvent::StreamFin(id)));
        // Server responds.
        let now2 = now + Dur::from_secs(2);
        s.stream_send(now2, id, 100_000, true);
        let (ev_c, _) = run(&mut c, &mut s, &mut pipe, now2, now2 + Dur::from_secs(10));
        assert_eq!(total_bytes(&ev_c, id), 100_000);
        assert!(ev_c.contains(&AppEvent::StreamFin(id)));
    }

    #[test]
    fn bulk_transfer_completes_without_loss() {
        let (mut c, mut s) = pair();
        let mut pipe = Pipe::new();
        run(
            &mut c,
            &mut s,
            &mut pipe,
            Time::ZERO,
            Time::ZERO + Dur::from_secs(1),
        );
        let now = Time::ZERO + Dur::from_secs(1);
        let id = c.open_stream(now).expect("stream");
        c.stream_send(now, id, 100, true);
        run(&mut c, &mut s, &mut pipe, now, now + Dur::from_secs(1));
        let now2 = now + Dur::from_secs(1);
        s.stream_send(now2, id, 3_000_000, true);
        let (ev_c, _) = run(&mut c, &mut s, &mut pipe, now2, now2 + Dur::from_secs(60));
        assert_eq!(total_bytes(&ev_c, id), 3_000_000);
        let st = s.stats();
        assert_eq!(st.losses_detected, 0);
        assert_eq!(st.rto_count, 0);
        assert!(s.is_quiescent());
    }

    #[test]
    fn fast_retransmit_recovers_mid_stream_loss() {
        let (mut c, mut s) = pair();
        let mut pipe = Pipe::new();
        run(
            &mut c,
            &mut s,
            &mut pipe,
            Time::ZERO,
            Time::ZERO + Dur::from_secs(1),
        );
        let now = Time::ZERO + Dur::from_secs(1);
        let id = c.open_stream(now).expect("stream");
        c.stream_send(now, id, 100, true);
        run(&mut c, &mut s, &mut pipe, now, now + Dur::from_secs(1));
        let now2 = now + Dur::from_secs(1);
        s.stream_send(now2, id, 500_000, true);
        // Drop one server data segment early in the burst.
        pipe.drop_b_to_a = vec![pipe.sent_ba + 4];
        let (ev_c, _) = run(&mut c, &mut s, &mut pipe, now2, now2 + Dur::from_secs(60));
        assert_eq!(total_bytes(&ev_c, id), 500_000, "loss recovered");
        let st = s.stats();
        assert!(st.losses_detected >= 1);
        assert!(st.retransmissions >= 1);
    }

    #[test]
    fn tail_loss_needs_rto_without_tlp() {
        let (mut c, mut s) = pair();
        let mut pipe = Pipe::new();
        run(
            &mut c,
            &mut s,
            &mut pipe,
            Time::ZERO,
            Time::ZERO + Dur::from_secs(1),
        );
        let now = Time::ZERO + Dur::from_secs(1);
        let id = c.open_stream(now).expect("stream");
        c.stream_send(now, id, 100, true);
        run(&mut c, &mut s, &mut pipe, now, now + Dur::from_secs(1));
        let now2 = now + Dur::from_secs(1);
        s.stream_send(now2, id, 3 * 1400, true);
        // Drop the last data segment of the response flight.
        pipe.drop_b_to_a = vec![pipe.sent_ba + 2];
        let (ev_c, _) = run(&mut c, &mut s, &mut pipe, now2, now2 + Dur::from_secs(30));
        assert_eq!(total_bytes(&ev_c, id), 3 * 1400);
        assert!(s.stats().rto_count >= 1, "no TLP: the tail waits for RTO");
    }

    #[test]
    fn syn_loss_is_retried() {
        let (mut c, mut s) = pair();
        let mut pipe = Pipe::new();
        pipe.drop_a_to_b = vec![0]; // drop the first SYN
        run(
            &mut c,
            &mut s,
            &mut pipe,
            Time::ZERO,
            Time::ZERO + Dur::from_secs(5),
        );
        assert!(c.is_established(), "SYN retransmitted after syn_rto");
    }

    #[test]
    fn multiplexed_streams_share_the_connection() {
        let (mut c, mut s) = pair();
        let mut pipe = Pipe::new();
        run(
            &mut c,
            &mut s,
            &mut pipe,
            Time::ZERO,
            Time::ZERO + Dur::from_secs(1),
        );
        let now = Time::ZERO + Dur::from_secs(1);
        let id1 = c.open_stream(now).expect("s1");
        let id2 = c.open_stream(now).expect("s2");
        assert_ne!(id1, id2);
        c.stream_send(now, id1, 100, true);
        c.stream_send(now, id2, 100, true);
        run(&mut c, &mut s, &mut pipe, now, now + Dur::from_secs(1));
        let now2 = now + Dur::from_secs(1);
        s.stream_send(now2, id1, 40_000, true);
        s.stream_send(now2, id2, 40_000, true);
        let (ev_c, _) = run(&mut c, &mut s, &mut pipe, now2, now2 + Dur::from_secs(20));
        assert_eq!(total_bytes(&ev_c, id1), 40_000);
        assert_eq!(total_bytes(&ev_c, id2), 40_000);
        assert!(ev_c.contains(&AppEvent::StreamFin(id1)));
        assert!(ev_c.contains(&AppEvent::StreamFin(id2)));
    }

    #[test]
    fn no_tls_mode_establishes_after_syn() {
        let cfg = TcpConfig {
            tls: false,
            ..TcpConfig::default()
        };
        let mut c = TcpConnection::client(cfg.clone(), Time::ZERO);
        let mut s = TcpConnection::server(cfg, Time::ZERO);
        let mut pipe = Pipe::new();
        run(
            &mut c,
            &mut s,
            &mut pipe,
            Time::ZERO,
            Time::ZERO + Dur::from_millis(200),
        );
        assert!(c.is_established());
        assert!(s.is_established());
    }

    #[test]
    fn srtt_converges() {
        let (mut c, mut s) = pair();
        let mut pipe = Pipe::new();
        run(
            &mut c,
            &mut s,
            &mut pipe,
            Time::ZERO,
            Time::ZERO + Dur::from_secs(1),
        );
        let now = Time::ZERO + Dur::from_secs(1);
        let id = c.open_stream(now).expect("stream");
        c.stream_send(now, id, 100, true);
        run(&mut c, &mut s, &mut pipe, now, now + Dur::from_secs(1));
        s.stream_send(now + Dur::from_secs(1), id, 2_000_000, true);
        run(
            &mut c,
            &mut s,
            &mut pipe,
            now + Dur::from_secs(1),
            now + Dur::from_secs(40),
        );
        let srtt = s.srtt().as_millis_f64();
        assert!((srtt - 36.0).abs() < 10.0, "srtt = {srtt}ms");
    }

    #[test]
    fn state_trace_starts_in_init() {
        let (mut c, mut s) = pair();
        let mut pipe = Pipe::new();
        run(
            &mut c,
            &mut s,
            &mut pipe,
            Time::ZERO,
            Time::ZERO + Dur::from_secs(1),
        );
        let trace = s.state_trace(Time::ZERO + Dur::from_secs(1));
        assert_eq!(trace.labels()[0], "Init");
    }
}
