//! TCP segment wire format — re-exported from `longlook-wire`.
//!
//! The segment/record types moved down into the `longlook-wire` base
//! crate so the simulator's `Payload` enum can carry a typed
//! [`TcpSegment`] by value (the structured fast path). This module keeps
//! the historical `longlook_tcp::wire::*` paths working.

pub use longlook_wire::tcp::{flags, RecordDesc, TcpSegment, TcpWireError, MAX_RECORDS, MAX_SACKS};
