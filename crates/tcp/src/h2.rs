//! HTTP/2-like record multiplexing over the single TCP byte stream.
//!
//! Records are length-delimited frames (9-byte header + payload) laid out
//! back-to-back in stream-byte space. The sender keeps an index of record
//! start offsets so retransmitted segments can re-attach the descriptors of
//! records beginning inside them; the receiver consumes descriptors *only
//! as the in-order byte pointer sweeps past them* — so a single lost
//! segment stalls every stream multiplexed behind it. That is HTTP/2's
//! head-of-line blocking, arising from the layering rather than being
//! bolted on.

use crate::wire::RecordDesc;
use std::collections::BTreeMap;

/// HTTP/2 frame header size in stream bytes.
pub const RECORD_HEADER: u64 = 9;

/// Sender-side record index.
#[derive(Debug)]
pub struct H2Mux {
    records: BTreeMap<u64, RecordDesc>,
    write_ptr: u64,
}

impl H2Mux {
    /// New mux whose first record begins at `base` (stream bytes below the
    /// base belong to the TLS handshake).
    pub fn new(base: u64) -> Self {
        H2Mux {
            records: BTreeMap::new(),
            write_ptr: base,
        }
    }

    /// Append a record; returns the stream-byte range it occupies.
    pub fn push_record(&mut self, stream: u32, len: u32, fin: bool) -> (u64, u64) {
        let offset = self.write_ptr;
        self.records.insert(
            offset,
            RecordDesc {
                offset,
                stream,
                len,
                fin,
            },
        );
        self.write_ptr += RECORD_HEADER + len as u64;
        (offset, self.write_ptr)
    }

    /// Total stream bytes produced so far (TLS prefix + records).
    pub fn stream_len(&self) -> u64 {
        self.write_ptr
    }

    /// Descriptors of records starting inside `[start, end)` — attached to
    /// the segment carrying those bytes (original or retransmission).
    pub fn descs_in(&self, start: u64, end: u64) -> Vec<RecordDesc> {
        self.records.range(start..end).map(|(_, &d)| d).collect()
    }

    /// Drop index entries fully below `below` (cumulatively acked).
    pub fn prune(&mut self, below: u64) {
        // Keep any record whose span may still be retransmitted.
        let keys: Vec<u64> = self
            .records
            .range(..below)
            .filter(|(&off, d)| off + RECORD_HEADER + d.len as u64 <= below)
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            self.records.remove(&k);
        }
    }
}

/// Events the demux produces as the byte stream advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum H2Event {
    /// First record seen on a stream.
    StreamOpened(u32),
    /// Payload bytes became readable on a stream.
    StreamData {
        /// Stream id.
        stream: u32,
        /// Newly readable payload bytes.
        bytes: u64,
    },
    /// END_STREAM record fully delivered.
    StreamFin(u32),
}

/// Receiver-side record parser over the in-order byte stream.
#[derive(Debug)]
pub struct H2Demux {
    descs: BTreeMap<u64, RecordDesc>,
    /// Byte pointer: everything below is fully parsed.
    parse_ptr: u64,
    /// Record currently being consumed and payload bytes already taken.
    current: Option<(RecordDesc, u64)>,
    seen_streams: BTreeMap<u32, ()>,
}

impl H2Demux {
    /// New demux expecting records to start at `base` (the peer's TLS
    /// prefix length).
    pub fn new(base: u64) -> Self {
        H2Demux {
            descs: BTreeMap::new(),
            parse_ptr: base,
            current: None,
            seen_streams: BTreeMap::new(),
        }
    }

    /// Store descriptors from an arriving segment (may be out of order or
    /// duplicates — idempotent).
    pub fn on_descs(&mut self, descs: &[RecordDesc]) {
        for d in descs {
            self.descs.insert(d.offset, *d);
        }
    }

    /// Advance parsing up to the receiver's in-order point `rcv_nxt`;
    /// returns the application events this releases.
    pub fn advance(&mut self, rcv_nxt: u64) -> Vec<H2Event> {
        let mut events = Vec::new();
        loop {
            if self.parse_ptr >= rcv_nxt {
                break;
            }
            if self.current.is_none() {
                // Look up the descriptor for the record at parse_ptr. Its
                // bytes have arrived in order, so the segment carrying the
                // record start arrived, so the descriptor is known.
                let Some(&d) = self.descs.get(&self.parse_ptr) else {
                    break; // TLS prefix or not yet announced: wait
                };
                self.current = Some((d, 0));
            }
            let (d, taken) = self.current.expect("set above");
            let rec_start = d.offset;
            let payload_start = rec_start + RECORD_HEADER;
            let rec_end = payload_start + d.len as u64;
            let readable_to = rcv_nxt.min(rec_end);
            // Consume header first.
            if readable_to <= payload_start {
                if readable_to == rec_end && d.len == 0 {
                    // Zero-length record fully consumed by its header.
                    if self.seen_streams.insert(d.stream, ()).is_none() {
                        events.push(H2Event::StreamOpened(d.stream));
                    }
                    if d.fin {
                        events.push(H2Event::StreamFin(d.stream));
                    }
                    self.parse_ptr = rec_end;
                    self.current = None;
                    continue;
                }
                break; // header partially arrived: wait for more bytes
            }
            // The full record header is readable: the stream is now open.
            if self.seen_streams.insert(d.stream, ()).is_none() {
                events.push(H2Event::StreamOpened(d.stream));
            }
            let new_taken = readable_to - payload_start;
            let delta = new_taken - taken;
            if delta > 0 {
                events.push(H2Event::StreamData {
                    stream: d.stream,
                    bytes: delta,
                });
            }
            if readable_to == rec_end {
                if d.fin {
                    events.push(H2Event::StreamFin(d.stream));
                }
                self.parse_ptr = rec_end;
                self.descs.remove(&rec_start);
                self.current = None;
            } else {
                self.current = Some((d, new_taken));
                break; // consumed all available bytes
            }
        }
        events
    }

    /// The parse pointer (diagnostics).
    pub fn parse_ptr(&self) -> u64 {
        self.parse_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mux_lays_out_records_back_to_back() {
        let mut m = H2Mux::new(100);
        let (s1, e1) = m.push_record(1, 500, false);
        let (s2, e2) = m.push_record(3, 200, true);
        assert_eq!((s1, e1), (100, 609));
        assert_eq!((s2, e2), (609, 818));
        assert_eq!(m.stream_len(), 818);
    }

    #[test]
    fn descs_in_range() {
        let mut m = H2Mux::new(0);
        m.push_record(1, 500, false); // [0, 509)
        m.push_record(3, 200, true); // [509, 718)
        let d = m.descs_in(0, 400);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].stream, 1);
        let d = m.descs_in(400, 600);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].stream, 3);
        assert!(m.descs_in(100, 500).is_empty(), "no record starts here");
    }

    #[test]
    fn prune_keeps_unacked_spans() {
        let mut m = H2Mux::new(0);
        m.push_record(1, 100, false); // [0,109)
        m.push_record(3, 100, false); // [109,218)
        m.prune(150);
        assert!(m.descs_in(0, 109).is_empty(), "fully acked record pruned");
        assert_eq!(m.descs_in(109, 218).len(), 1);
    }

    #[test]
    fn demux_in_order_delivery() {
        let mut m = H2Mux::new(0);
        m.push_record(1, 1000, true);
        let mut d = H2Demux::new(0);
        d.on_descs(&m.descs_in(0, 2000));
        let ev = d.advance(1009);
        assert_eq!(
            ev,
            vec![
                H2Event::StreamOpened(1),
                H2Event::StreamData {
                    stream: 1,
                    bytes: 1000
                },
                H2Event::StreamFin(1),
            ]
        );
    }

    #[test]
    fn demux_partial_delivery_is_incremental() {
        let mut m = H2Mux::new(0);
        m.push_record(1, 1000, true);
        let mut d = H2Demux::new(0);
        d.on_descs(&m.descs_in(0, 2000));
        let ev = d.advance(500);
        assert_eq!(
            ev,
            vec![
                H2Event::StreamOpened(1),
                H2Event::StreamData {
                    stream: 1,
                    bytes: 491
                },
            ]
        );
        let ev = d.advance(1009);
        assert_eq!(
            ev,
            vec![
                H2Event::StreamData {
                    stream: 1,
                    bytes: 509
                },
                H2Event::StreamFin(1),
            ]
        );
    }

    #[test]
    fn demux_waits_for_header_bytes() {
        let mut m = H2Mux::new(0);
        m.push_record(1, 100, false);
        let mut d = H2Demux::new(0);
        d.on_descs(&m.descs_in(0, 200));
        assert!(d.advance(5).is_empty(), "header incomplete");
        let ev = d.advance(59);
        assert_eq!(ev.len(), 2); // opened + 50 bytes
    }

    #[test]
    fn demux_multiplexed_streams_in_order() {
        let mut m = H2Mux::new(0);
        m.push_record(1, 100, true); // [0,109)
        m.push_record(3, 100, true); // [109,218)
        let mut d = H2Demux::new(0);
        d.on_descs(&m.descs_in(0, 300));
        let ev = d.advance(218);
        assert_eq!(
            ev,
            vec![
                H2Event::StreamOpened(1),
                H2Event::StreamData {
                    stream: 1,
                    bytes: 100
                },
                H2Event::StreamFin(1),
                H2Event::StreamOpened(3),
                H2Event::StreamData {
                    stream: 3,
                    bytes: 100
                },
                H2Event::StreamFin(3),
            ]
        );
    }

    #[test]
    fn hol_blocking_stalls_later_streams() {
        // Stream 1's record occupies bytes [0,109); stream 3's [109,218).
        // Even if stream 3's bytes all arrived (rcv_nxt can't advance past
        // the hole), nothing on stream 3 is delivered until the hole fills.
        let mut m = H2Mux::new(0);
        m.push_record(1, 100, true);
        m.push_record(3, 100, true);
        let mut d = H2Demux::new(0);
        d.on_descs(&m.descs_in(0, 300));
        // rcv_nxt stuck at 50 because segment [50,109) was lost.
        let ev = d.advance(50);
        assert_eq!(ev.len(), 2, "only stream 1 partially delivered");
        // After the hole fills, everything flushes at once.
        let ev = d.advance(218);
        assert!(ev.contains(&H2Event::StreamFin(1)));
        assert!(ev.contains(&H2Event::StreamFin(3)));
    }

    #[test]
    fn tls_prefix_is_skipped() {
        let mut m = H2Mux::new(478);
        m.push_record(1, 100, true);
        let mut d = H2Demux::new(478);
        d.on_descs(&m.descs_in(0, 1000));
        assert!(d.advance(400).is_empty(), "still inside TLS prefix");
        let ev = d.advance(478 + 109);
        assert_eq!(ev.len(), 3);
    }

    #[test]
    fn zero_length_fin_record() {
        let mut m = H2Mux::new(0);
        m.push_record(1, 0, true);
        let mut d = H2Demux::new(0);
        d.on_descs(&m.descs_in(0, 100));
        let ev = d.advance(9);
        assert_eq!(ev, vec![H2Event::StreamOpened(1), H2Event::StreamFin(1)]);
    }

    #[test]
    fn duplicate_descs_are_idempotent() {
        let mut m = H2Mux::new(0);
        m.push_record(1, 100, true);
        let descs = m.descs_in(0, 200);
        let mut d = H2Demux::new(0);
        d.on_descs(&descs);
        d.on_descs(&descs);
        let ev = d.advance(109);
        assert_eq!(ev.len(), 3);
    }
}
