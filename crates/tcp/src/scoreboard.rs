//! Sender-side SACK scoreboard: dupack counting with an adaptive duplicate
//! threshold (DSACK / RR-TCP), loss marking, and Karn-compliant RTT
//! sampling metadata.
//!
//! The contrast with QUIC's `SentTracker` is the point of the model:
//!
//! * sequence numbers are *byte ranges* that are reused on retransmission,
//!   so a retransmitted segment's ack is ambiguous and produces **no RTT
//!   sample** (Karn's algorithm);
//! * the duplicate-ack threshold **adapts upward** when a DSACK proves a
//!   retransmission spurious (RR-TCP), which is why TCP tolerates the
//!   packet reordering that cripples QUIC's fixed NACK threshold
//!   (Sec 5.2, Fig 10 of the paper).

use longlook_sim::time::Time;
use std::collections::BTreeMap;

/// Metadata for one transmitted segment.
#[derive(Debug, Clone, Copy)]
struct Seg {
    len: u32,
    sent_at: Time,
    /// Retransmitted at least once (Karn: no RTT sample).
    retransmitted: bool,
    /// Covered by a SACK block.
    sacked: bool,
    /// Marked lost (scheduled for retransmission, out of the pipe).
    lost: bool,
}

/// Result of processing one incoming ack.
#[derive(Debug, Default)]
pub struct TcpAckOutcome {
    /// Bytes newly cumulatively acked.
    pub newly_acked: u64,
    /// Bytes newly SACKed (not yet cumulatively acked).
    pub newly_sacked: u64,
    /// RTT sample (only from a never-retransmitted segment — Karn).
    pub rtt_sample: Option<longlook_sim::time::Dur>,
    /// Send time of the newest segment covered by this ack.
    pub newest_acked_sent_at: Option<Time>,
    /// Segment start offsets newly marked lost (need retransmission).
    pub lost_ranges: Vec<(u64, u32)>,
    /// Whether a fast retransmit should fire now.
    pub fast_retransmit: bool,
    /// Send time of the first segment marked lost (congestion epoch anchor).
    pub lost_sent_at: Option<Time>,
    /// DSACK proved a retransmission spurious.
    pub spurious: bool,
}

/// The scoreboard.
#[derive(Debug)]
pub struct Scoreboard {
    segs: BTreeMap<u64, Seg>,
    snd_una: u64,
    /// Duplicate acks seen at the current snd_una.
    dupacks: u32,
    /// Current duplicate-ack threshold (adapts via DSACK).
    dupthresh: u32,
    /// Upper bound for the adaptive threshold.
    max_dupthresh: u32,
    /// Whether fast retransmit already fired at this snd_una.
    fr_fired: bool,
    /// Bytes in flight (sent, not acked/sacked/lost).
    pipe: u64,
    /// Segments currently marked lost — kept in lockstep with the `lost`
    /// flags so the per-poll retransmission check is O(1) instead of an
    /// allocating full scan.
    lost_segs: usize,
}

impl Scoreboard {
    /// New scoreboard with the classic initial dupthresh of 3.
    pub fn new() -> Self {
        Scoreboard {
            segs: BTreeMap::new(),
            snd_una: 0,
            dupacks: 0,
            dupthresh: 3,
            max_dupthresh: 64,
            fr_fired: false,
            pipe: 0,
            lost_segs: 0,
        }
    }

    /// Record a (re)transmission of `[seq, seq+len)`.
    pub fn on_sent(&mut self, seq: u64, len: u32, now: Time) {
        match self.segs.get_mut(&seq) {
            Some(seg) => {
                // Retransmission: back in the pipe, tainted for Karn.
                debug_assert_eq!(seg.len, len, "segment boundaries are stable");
                if seg.lost {
                    seg.lost = false;
                    self.lost_segs -= 1;
                    self.pipe += seg.len as u64;
                }
                seg.retransmitted = true;
                seg.sent_at = now;
            }
            None => {
                self.segs.insert(
                    seq,
                    Seg {
                        len,
                        sent_at: now,
                        retransmitted: false,
                        sacked: false,
                        lost: false,
                    },
                );
                self.pipe += len as u64;
            }
        }
    }

    /// Bytes outstanding (sent, un-acked, un-sacked, not marked lost).
    pub fn pipe(&self) -> u64 {
        self.pipe
    }

    /// Current cumulative-ack point.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Current adaptive duplicate threshold.
    pub fn dupthresh(&self) -> u32 {
        self.dupthresh
    }

    /// Whether anything is outstanding.
    pub fn has_outstanding(&self) -> bool {
        !self.segs.is_empty()
    }

    /// Oldest unacked, un-sacked segment (RTO retransmission target).
    pub fn oldest_unsacked(&self) -> Option<(u64, u32)> {
        self.segs
            .iter()
            .find(|(_, s)| !s.sacked)
            .map(|(&seq, s)| (seq, s.len))
    }

    /// Mark the oldest unsacked segment lost (RTO) and return it.
    pub fn mark_oldest_lost(&mut self) -> Option<(u64, u32)> {
        let (seq, len) = self.oldest_unsacked()?;
        let seg = self.segs.get_mut(&seq).expect("just found");
        if !seg.lost {
            seg.lost = true;
            self.lost_segs += 1;
            self.pipe -= seg.len as u64;
        }
        Some((seq, len))
    }

    /// RTO handling per RFC 6675 / Linux: consider *every* outstanding
    /// unsacked segment lost and rebuild from slow start. Marking only
    /// the oldest would leave phantom bytes in the pipe and starve the
    /// retransmission path after a burst of drops.
    pub fn mark_all_lost(&mut self) -> usize {
        let mut n = 0;
        for seg in self.segs.values_mut() {
            if !seg.sacked && !seg.lost {
                seg.lost = true;
                self.lost_segs += 1;
                self.pipe -= seg.len as u64;
                n += 1;
            }
        }
        n
    }

    /// Process an incoming ack. `carries_data` marks a piggybacked ack on
    /// a data segment — those never count as duplicate acks (RFC 5681).
    pub fn on_ack(
        &mut self,
        now: Time,
        ack: u64,
        sacks: &[(u64, u64)],
        dsack: bool,
        carries_data: bool,
    ) -> TcpAckOutcome {
        let mut out = TcpAckOutcome::default();

        if dsack {
            out.spurious = true;
            // RR-TCP style: raise the tolerance for reordering.
            self.dupthresh = (self.dupthresh * 2).min(self.max_dupthresh);
        }

        // Cumulative ack advance.
        if ack > self.snd_una {
            out.newly_acked = ack - self.snd_una;
            self.snd_una = ack;
            self.dupacks = 0;
            self.fr_fired = false;
            // Pop covered segments in ascending order without collecting
            // the key set first.
            while let Some((&seq, _)) = self.segs.range(..ack).next() {
                let seg = self.segs.remove(&seq).expect("present");
                if !seg.sacked && !seg.lost {
                    self.pipe -= seg.len as u64;
                }
                if seg.lost {
                    self.lost_segs -= 1;
                }
                let newest = out.newest_acked_sent_at.get_or_insert(seg.sent_at);
                if seg.sent_at > *newest {
                    *newest = seg.sent_at;
                }
                // Karn: only clean samples, from the newest covered seg.
                if !seg.retransmitted && seq + seg.len as u64 == ack {
                    out.rtt_sample = Some(now.saturating_since(seg.sent_at));
                }
            }
        } else if ack == self.snd_una && self.has_outstanding() && !carries_data {
            self.dupacks += 1;
        }

        // SACK marking (skip the DSACK block — it reports old data).
        let plain = if dsack {
            &sacks[1.min(sacks.len())..]
        } else {
            sacks
        };
        let mut highest_sacked = 0u64;
        for &(s, e) in plain {
            highest_sacked = highest_sacked.max(e);
            // Marking never changes keys, so mutate in place through the
            // range cursor instead of collecting the key set.
            for (&k, seg) in self.segs.range_mut(s..e) {
                if k >= s && k + seg.len as u64 <= e && !seg.sacked {
                    seg.sacked = true;
                    if !seg.lost {
                        self.pipe -= seg.len as u64;
                    } else {
                        seg.lost = false;
                        self.lost_segs -= 1;
                    }
                    out.newly_sacked += seg.len as u64;
                    let newest = out.newest_acked_sent_at.get_or_insert(seg.sent_at);
                    if seg.sent_at > *newest {
                        *newest = seg.sent_at;
                    }
                }
            }
        }

        // Loss inference, RFC 6675 style: on every ack, a hole is lost
        // once at least `dupthresh` SACKed segments lie above it. Running
        // this continuously (not once per window) is what lets SACK
        // recovery handle multiple losses per window without an RTO.
        if highest_sacked > self.snd_una {
            // Walk the hole region newest-first, marking losses in place:
            // the verdict for a segment depends only on SACKed segments
            // *above* it, which the reverse cursor has already consumed,
            // so no snapshot is needed.
            let mut sacked_above = 0u32;
            let mut latest_sacked_sent = None::<Time>;
            let dupthresh = self.dupthresh;
            for (&k, seg) in self.segs.range_mut(self.snd_una..highest_sacked).rev() {
                if seg.sacked {
                    sacked_above += 1;
                    latest_sacked_sent = Some(match latest_sacked_sent {
                        Some(t) if t >= seg.sent_at => t,
                        _ => seg.sent_at,
                    });
                } else if !seg.lost
                    && sacked_above >= dupthresh
                    // Time-order guard: only declare the hole lost if some
                    // SACKed segment was *sent after* it — otherwise a
                    // just-retransmitted segment would be instantly
                    // re-marked lost (and retransmitted forever).
                    && latest_sacked_sent.is_some_and(|t| t > seg.sent_at)
                {
                    seg.lost = true;
                    self.lost_segs += 1;
                    self.pipe -= seg.len as u64;
                    match out.lost_sent_at {
                        Some(t) if t <= seg.sent_at => {}
                        _ => out.lost_sent_at = Some(seg.sent_at),
                    }
                    out.lost_ranges.push((k, seg.len));
                }
            }
            if !out.lost_ranges.is_empty() {
                out.fast_retransmit = true;
                self.fr_fired = true;
            }
        }
        // Pure-dupack fallback (no SACK information): classic fast
        // retransmit of the first outstanding segment, once per window.
        if self.dupacks >= self.dupthresh && !self.fr_fired {
            self.fr_fired = true;
            out.fast_retransmit = true;
            if let Some((seq, len)) = self.oldest_unsacked() {
                let seg = self.segs.get_mut(&seq).expect("found");
                if !seg.lost {
                    seg.lost = true;
                    self.lost_segs += 1;
                    self.pipe -= seg.len as u64;
                }
                out.lost_sent_at = Some(seg.sent_at);
                out.lost_ranges.push((seq, len));
            }
        }
        out
    }

    /// Lost ranges currently awaiting retransmission.
    pub fn lost_ranges(&self) -> Vec<(u64, u32)> {
        self.segs
            .iter()
            .filter(|(_, s)| s.lost)
            .map(|(&k, s)| (k, s.len))
            .collect()
    }

    /// Number of segments currently marked lost (O(1)).
    pub fn lost_count(&self) -> usize {
        self.lost_segs
    }

    /// Lowest-sequence lost segment — the next retransmission target.
    /// Early-exits on the counter so the no-loss steady state pays nothing.
    pub fn first_lost(&self) -> Option<(u64, u32)> {
        if self.lost_segs == 0 {
            return None;
        }
        self.segs
            .iter()
            .find(|(_, s)| s.lost)
            .map(|(&k, s)| (k, s.len))
    }
}

impl Default for Scoreboard {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longlook_sim::time::Dur;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    /// Send k mss-sized segments starting at byte 0.
    fn send_n(sb: &mut Scoreboard, n: u64, mss: u32) {
        for i in 0..n {
            sb.on_sent(i * mss as u64, mss, t(i));
        }
    }

    #[test]
    fn cumulative_ack_frees_pipe_and_samples_rtt() {
        let mut sb = Scoreboard::new();
        send_n(&mut sb, 4, 1000);
        assert_eq!(sb.pipe(), 4000);
        let out = sb.on_ack(t(40), 2000, &[], false, false);
        assert_eq!(out.newly_acked, 2000);
        assert_eq!(sb.pipe(), 2000);
        // Sample from the segment ending at 2000 (sent at t=1).
        assert_eq!(out.rtt_sample, Some(Dur::from_millis(39)));
    }

    #[test]
    fn karn_suppresses_samples_from_retransmissions() {
        let mut sb = Scoreboard::new();
        sb.on_sent(0, 1000, t(0));
        sb.on_sent(0, 1000, t(100)); // retransmission of the same range
        let out = sb.on_ack(t(140), 1000, &[], false, false);
        assert_eq!(out.newly_acked, 1000);
        assert_eq!(out.rtt_sample, None, "ambiguous ack gives no sample");
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut sb = Scoreboard::new();
        send_n(&mut sb, 5, 1000);
        sb.on_ack(t(40), 1000, &[], false, false);
        let o1 = sb.on_ack(t(41), 1000, &[], false, false);
        let o2 = sb.on_ack(t(42), 1000, &[], false, false);
        assert!(!o1.fast_retransmit && !o2.fast_retransmit);
        let o3 = sb.on_ack(t(43), 1000, &[], false, false);
        assert!(o3.fast_retransmit);
        assert_eq!(o3.lost_ranges, vec![(1000, 1000)]);
        // Only once per window.
        let o4 = sb.on_ack(t(44), 1000, &[], false, false);
        assert!(!o4.fast_retransmit);
    }

    #[test]
    fn sack_based_loss_marking() {
        let mut sb = Scoreboard::new();
        send_n(&mut sb, 6, 1000);
        // Segment [0,1000) lost; SACKs arrive for 1..4.
        sb.on_ack(t(40), 0, &[(1000, 2000)], false, false);
        sb.on_ack(t(41), 0, &[(1000, 3000)], false, false);
        let o = sb.on_ack(t(42), 0, &[(1000, 4000)], false, false);
        assert!(o.fast_retransmit);
        assert_eq!(o.lost_ranges, vec![(0, 1000)]);
        // Pipe excludes sacked and lost bytes: 6000 - 3000 sacked - 1000 lost.
        assert_eq!(sb.pipe(), 2000);
    }

    #[test]
    fn dsack_doubles_dupthresh_and_reports_spurious() {
        let mut sb = Scoreboard::new();
        send_n(&mut sb, 2, 1000);
        assert_eq!(sb.dupthresh(), 3);
        let o = sb.on_ack(t(40), 2000, &[(0, 1000)], true, false);
        assert!(o.spurious);
        assert_eq!(sb.dupthresh(), 6);
        // Caps eventually.
        for _ in 0..10 {
            sb.on_ack(t(50), 2000, &[(0, 1000)], true, false);
        }
        assert_eq!(sb.dupthresh(), 64);
    }

    #[test]
    fn higher_dupthresh_requires_more_dupacks() {
        let mut sb = Scoreboard::new();
        send_n(&mut sb, 10, 1000);
        sb.on_ack(t(40), 1000, &[], false, false);
        // Raise the threshold via DSACK.
        sb.on_ack(t(41), 1000, &[(0, 1000)], true, false); // dupthresh -> 6
        for _ in 0..4 {
            let o = sb.on_ack(t(42), 1000, &[], false, false);
            assert!(!o.fast_retransmit);
        }
        // dupacks: 1 (from the dsack ack at same snd_una)... reach 6.
        let mut fired = false;
        for _ in 0..3 {
            fired |= sb.on_ack(t(43), 1000, &[], false, false).fast_retransmit;
        }
        assert!(fired, "eventually fires at the higher threshold");
    }

    #[test]
    fn retransmission_after_loss_restores_pipe() {
        let mut sb = Scoreboard::new();
        send_n(&mut sb, 5, 1000);
        // One advancing ack, then three duplicates to reach dupthresh.
        for k in 0..4 {
            sb.on_ack(t(40 + k), 1000, &[], false, false);
        }
        let lost = sb.lost_ranges();
        assert_eq!(lost, vec![(1000, 1000)]);
        let pipe_before = sb.pipe();
        sb.on_sent(1000, 1000, t(50)); // retransmit
        assert_eq!(sb.pipe(), pipe_before + 1000);
        assert!(sb.lost_ranges().is_empty());
    }

    #[test]
    fn rto_marks_oldest() {
        let mut sb = Scoreboard::new();
        send_n(&mut sb, 3, 1000);
        let (seq, len) = sb.mark_oldest_lost().unwrap();
        assert_eq!((seq, len), (0, 1000));
        assert_eq!(sb.pipe(), 2000);
    }

    #[test]
    fn lost_counter_tracks_flags_through_full_cycle() {
        let mut sb = Scoreboard::new();
        send_n(&mut sb, 8, 1000);
        assert_eq!(sb.lost_count(), 0);
        assert_eq!(sb.first_lost(), None);
        // SACK-driven loss of segment 0.
        sb.on_ack(t(40), 0, &[(1000, 2000)], false, false);
        sb.on_ack(t(41), 0, &[(1000, 3000)], false, false);
        sb.on_ack(t(42), 0, &[(1000, 4000)], false, false);
        assert_eq!(sb.lost_count(), 1);
        assert_eq!(sb.first_lost(), Some((0, 1000)));
        assert_eq!(sb.lost_ranges(), vec![(0, 1000)]);
        // Retransmission clears the mark.
        sb.on_sent(0, 1000, t(50));
        assert_eq!(sb.lost_count(), 0);
        // RTO marks everything unsacked; cumulative ack clears some.
        sb.mark_all_lost();
        assert_eq!(sb.lost_count(), sb.lost_ranges().len());
        let n_before = sb.lost_count();
        sb.on_ack(t(60), 5000, &[], false, false);
        assert_eq!(sb.lost_count(), sb.lost_ranges().len());
        assert!(sb.lost_count() < n_before);
        assert_eq!(
            sb.first_lost().map(|(s, _)| s),
            sb.lost_ranges().first().map(|&(s, _)| s)
        );
        // SACK covering a lost segment also clears its mark.
        sb.on_ack(t(61), 5000, &[(5000, 6000)], false, false);
        assert_eq!(sb.lost_count(), sb.lost_ranges().len());
    }

    #[test]
    fn newest_acked_sent_time_reported() {
        let mut sb = Scoreboard::new();
        send_n(&mut sb, 3, 1000);
        let o = sb.on_ack(t(40), 3000, &[], false, false);
        assert_eq!(o.newest_acked_sent_at, Some(t(2)));
    }
}
