//! TCP receive path: one ordered byte stream, SACK generation, DSACK
//! duplicate reporting, delayed acks.
//!
//! Unlike QUIC's per-stream reassembly, there is exactly one sequence
//! space here: a hole blocks *all* bytes behind it, which is what gives
//! HTTP/2-over-TCP its head-of-line blocking (Sec 2.1 of the paper).

use longlook_sim::time::{Dur, Time};
use std::collections::BTreeMap;

/// Receiver-side byte-stream state.
#[derive(Debug)]
pub struct TcpReceiver {
    /// Next in-order byte expected (cumulative ack value).
    rcv_nxt: u64,
    /// Out-of-order intervals `start -> end` (exclusive end).
    ooo: BTreeMap<u64, u64>,
    /// Most recently SACKed intervals, newest first (for block ordering).
    recent: Vec<(u64, u64)>,
    /// Pending DSACK block to report (duplicate data received).
    pending_dsack: Option<(u64, u64)>,
    /// Segments received since the last ack went out.
    unacked_segs: u32,
    /// Delayed-ack deadline.
    ack_deadline: Option<Time>,
    /// An event forced an immediate ack (out-of-order arrival, etc.).
    ack_now: bool,
    /// Receive buffer size (drives the advertised window).
    buffer: u64,
}

impl TcpReceiver {
    /// New receiver with the given receive buffer (advertised window).
    pub fn new(buffer: u64) -> Self {
        TcpReceiver {
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            recent: Vec::new(),
            pending_dsack: None,
            unacked_segs: 0,
            ack_deadline: None,
            ack_now: false,
            buffer,
        }
    }

    /// Ingest a data segment `[seq, seq + len)`. Returns the number of
    /// newly in-order bytes.
    pub fn on_segment(&mut self, seq: u64, len: u32, now: Time, delayed_ack: Dur) -> u64 {
        let end = seq + len as u64;
        self.unacked_segs += 1;

        // Fully duplicate data -> DSACK report, immediate ack.
        if end <= self.rcv_nxt {
            self.pending_dsack = Some((seq, end));
            self.ack_now = true;
            return 0;
        }
        let dup_overlap = self
            .ooo
            .range(..=seq)
            .next_back()
            .is_some_and(|(&s, &e)| s <= seq && end <= e);
        if dup_overlap {
            self.pending_dsack = Some((seq, end));
            self.ack_now = true;
            return 0;
        }

        if seq > self.rcv_nxt {
            // Out of order: store and demand an immediate (dup) ack.
            let mut start = seq;
            let mut stop = end;
            let keys: Vec<u64> = self
                .ooo
                .range(..=stop)
                .filter(|&(&s, &e)| e >= start && s <= stop)
                .map(|(&s, _)| s)
                .collect();
            for k in keys {
                let e = self.ooo.remove(&k).expect("key exists");
                start = start.min(k);
                stop = stop.max(e);
            }
            self.ooo.insert(start, stop);
            self.recent.retain(|&(s, _)| s != start);
            self.recent.insert(0, (start, stop));
            self.recent.truncate(3);
            self.ack_now = true;
            return 0;
        }

        // In-order (possibly partially duplicate) data.
        let before = self.rcv_nxt;
        self.rcv_nxt = self.rcv_nxt.max(end);
        // Pull any now-contiguous out-of-order intervals.
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s <= self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.max(e);
                self.ooo.remove(&s);
                self.recent.retain(|&(rs, _)| rs != s);
            } else {
                break;
            }
        }
        // Ack every 2nd segment, else delay.
        if self.unacked_segs >= 2 {
            self.ack_now = true;
        } else if self.ack_deadline.is_none() {
            self.ack_deadline = Some(now + delayed_ack);
        }
        self.rcv_nxt - before
    }

    /// Whether an ack should be emitted now.
    pub fn ack_due(&self, now: Time) -> bool {
        self.ack_now || (self.unacked_segs > 0 && self.ack_deadline.is_some_and(|d| now >= d))
    }

    /// Delayed-ack deadline (for wakeups).
    pub fn deadline(&self) -> Option<Time> {
        if self.unacked_segs > 0 && !self.ack_now {
            self.ack_deadline
        } else {
            None
        }
    }

    /// Produce ack fields `(ack, window, sacks, dsack)`, resetting the
    /// delayed-ack machinery.
    pub fn build_ack(&mut self) -> (u64, u64, Vec<(u64, u64)>, bool) {
        let mut sacks: Vec<(u64, u64)> = Vec::new();
        let mut dsack = false;
        if let Some(block) = self.pending_dsack.take() {
            sacks.push(block);
            dsack = true;
        }
        // Only report blocks strictly above the cumulative ack; merges
        // can leave stale entries in the recency list.
        self.recent
            .retain(|&(s, e)| s > self.rcv_nxt && e > self.rcv_nxt);
        for &(s, e) in &self.recent {
            if sacks.len() >= 4 {
                break;
            }
            sacks.push((s, e));
        }
        self.unacked_segs = 0;
        self.ack_deadline = None;
        self.ack_now = false;
        let buffered: u64 = self.ooo.iter().map(|(&s, &e)| e - s).sum();
        let window = self.buffer.saturating_sub(buffered);
        (self.rcv_nxt, window, sacks, dsack)
    }

    /// Next expected byte (cumulative ack value).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Bytes buffered out of order.
    pub fn buffered(&self) -> u64 {
        self.ooo.iter().map(|(&s, &e)| e - s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DACK: Dur = Dur::from_millis(40);

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn in_order_advances_and_delays_ack() {
        let mut r = TcpReceiver::new(1 << 20);
        assert_eq!(r.on_segment(0, 1000, t(0), DACK), 1000);
        assert!(!r.ack_due(t(0)), "first segment: delayed ack armed");
        assert_eq!(r.deadline(), Some(t(40)));
        assert!(r.ack_due(t(40)), "delack timer");
    }

    #[test]
    fn every_second_segment_acks_immediately() {
        let mut r = TcpReceiver::new(1 << 20);
        r.on_segment(0, 1000, t(0), DACK);
        r.on_segment(1000, 1000, t(1), DACK);
        assert!(r.ack_due(t(1)));
        let (ack, _, sacks, dsack) = r.build_ack();
        assert_eq!(ack, 2000);
        assert!(sacks.is_empty());
        assert!(!dsack);
        assert!(!r.ack_due(t(1)));
    }

    #[test]
    fn out_of_order_sacks_immediately() {
        let mut r = TcpReceiver::new(1 << 20);
        r.on_segment(0, 1000, t(0), DACK);
        assert_eq!(r.on_segment(2000, 1000, t(1), DACK), 0);
        assert!(r.ack_due(t(1)), "out of order demands immediate dup ack");
        let (ack, _, sacks, dsack) = r.build_ack();
        assert_eq!(ack, 1000);
        assert_eq!(sacks, vec![(2000, 3000)]);
        assert!(!dsack);
    }

    #[test]
    fn hole_fill_releases_buffered_bytes() {
        let mut r = TcpReceiver::new(1 << 20);
        r.on_segment(1000, 1000, t(0), DACK);
        r.on_segment(2000, 1000, t(1), DACK);
        assert_eq!(r.buffered(), 2000);
        assert_eq!(r.on_segment(0, 1000, t(2), DACK), 3000);
        assert_eq!(r.rcv_nxt(), 3000);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn duplicate_triggers_dsack() {
        let mut r = TcpReceiver::new(1 << 20);
        r.on_segment(0, 1000, t(0), DACK);
        r.on_segment(0, 1000, t(5), DACK); // spurious retransmission arrives
        let (ack, _, sacks, dsack) = r.build_ack();
        assert_eq!(ack, 1000);
        assert!(dsack);
        assert_eq!(sacks[0], (0, 1000), "DSACK block reports the dup range");
    }

    #[test]
    fn duplicate_of_ooo_data_triggers_dsack() {
        let mut r = TcpReceiver::new(1 << 20);
        r.on_segment(2000, 1000, t(0), DACK);
        r.build_ack();
        r.on_segment(2000, 1000, t(1), DACK);
        let (_, _, sacks, dsack) = r.build_ack();
        assert!(dsack);
        assert_eq!(sacks[0], (2000, 3000));
    }

    #[test]
    fn sack_blocks_newest_first_capped() {
        let mut r = TcpReceiver::new(1 << 20);
        r.on_segment(2000, 500, t(0), DACK);
        r.on_segment(4000, 500, t(1), DACK);
        r.on_segment(6000, 500, t(2), DACK);
        r.on_segment(8000, 500, t(3), DACK);
        let (_, _, sacks, _) = r.build_ack();
        assert_eq!(sacks.len(), 3, "at most 3 plain SACK blocks");
        assert_eq!(sacks[0], (8000, 8500), "newest first");
    }

    #[test]
    fn window_shrinks_with_buffered_data() {
        let mut r = TcpReceiver::new(10_000);
        r.on_segment(5000, 2000, t(0), DACK);
        let (_, window, _, _) = r.build_ack();
        assert_eq!(window, 8000);
    }

    #[test]
    fn adjacent_ooo_intervals_merge() {
        let mut r = TcpReceiver::new(1 << 20);
        r.on_segment(3000, 1000, t(0), DACK);
        r.on_segment(2000, 1000, t(1), DACK);
        let (_, _, sacks, _) = r.build_ack();
        assert_eq!(sacks[0], (2000, 4000));
        assert_eq!(r.buffered(), 2000);
    }
}
