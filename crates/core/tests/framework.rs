//! Framework-level tests: determinism, seed sensitivity, and the
//! testbed's structural guarantees.

use longlook_core::prelude::*;

fn quic() -> ProtoConfig {
    ProtoConfig::Quic(QuicConfig::default())
}

fn tcp() -> ProtoConfig {
    ProtoConfig::Tcp(TcpConfig::default())
}

#[test]
fn identical_seeds_replay_identically_across_protocols() {
    for proto in [quic(), tcp()] {
        let sc = Scenario::new(
            NetProfile::baseline(10.0).with_loss(0.01),
            PageSpec::uniform(3, 100 * 1024),
        )
        .with_rounds(3)
        .with_seed(77);
        let a = plt_samples(&proto, &sc);
        let b = plt_samples(&proto, &sc);
        assert_eq!(a, b, "{} replay mismatch", proto.name());
    }
}

#[test]
fn different_base_seeds_differ_under_loss() {
    let sc1 = Scenario::new(
        NetProfile::baseline(10.0).with_loss(0.02),
        PageSpec::single(1024 * 1024),
    )
    .with_rounds(2)
    .with_seed(1);
    let sc2 = sc1.clone().with_seed(2);
    assert_ne!(plt_samples(&quic(), &sc1), plt_samples(&quic(), &sc2));
}

#[test]
fn rounds_vary_within_one_scenario() {
    // Per-round RTT noise means even a clean path's rounds differ.
    let sc = Scenario::new(NetProfile::baseline(10.0), PageSpec::single(100 * 1024)).with_rounds(4);
    let samples = plt_samples(&quic(), &sc);
    let all_same = samples.windows(2).all(|w| w[0] == w[1]);
    assert!(!all_same, "rounds should not be identical: {samples:?}");
}

#[test]
fn cold_scenario_disables_zero_rtt() {
    let warm = Scenario::new(NetProfile::baseline(10.0), PageSpec::single(5 * 1024)).with_rounds(3);
    let cold = warm.clone().cold();
    let w = Summary::of(&plt_samples(&quic(), &warm));
    let c = Summary::of(&plt_samples(&quic(), &cold));
    assert!(
        c.mean() > w.mean() + 20.0,
        "cold start must pay ~1 RTT more: {} vs {}",
        c.mean(),
        w.mean()
    );
}

#[test]
fn run_record_exposes_server_side_instrumentation() {
    let sc = Scenario::new(
        NetProfile::baseline(50.0).with_loss(0.01),
        PageSpec::single(2 * 1024 * 1024),
    )
    .with_rounds(1);
    let rec = run_page_load(&quic(), &sc, 0);
    let trace = rec.server_trace.expect("trace");
    // The instrumented server must have visited the loss-recovery states.
    let labels = trace.labels();
    assert!(labels.contains(&"Recovery") || labels.contains(&"RetransmissionTimeout"));
    assert!(rec.server_cwnd.len() > 5, "cwnd timeline populated");
    let st = rec.server_stats.expect("stats");
    assert!(st.losses_detected > 0 || st.rto_count > 0);
}

#[test]
fn versions_share_results_below_37() {
    let page = PageSpec::single(1024 * 1024);
    let sc = Scenario::new(NetProfile::baseline(10.0), page).with_rounds(2);
    let base = plt_samples(&ProtoConfig::Quic(QuicVersion::V25.config()), &sc);
    for v in [QuicVersion::V29, QuicVersion::V34, QuicVersion::V36] {
        let s = plt_samples(&ProtoConfig::Quic(v.config()), &sc);
        assert_eq!(s, base, "{v:?} must match V25 given identical config");
    }
}

#[test]
fn proxied_run_matches_direct_topology_semantics() {
    // A QUIC-through-proxy load completes and takes at least as long as a
    // direct one with warm 0-RTT (the proxy cannot use 0-RTT upstream).
    let sc = Scenario::new(NetProfile::baseline(10.0), PageSpec::single(50 * 1024)).with_rounds(1);
    let direct = run_page_load(&quic(), &sc, 0).plt.expect("direct");
    let proxied = run_page_load_proxied(&quic(), &quic(), &sc, 0).expect("proxied");
    assert!(
        proxied.as_millis_f64() > direct.as_millis_f64(),
        "proxy adds handshake latency for small objects: {proxied} <= {direct}"
    );
}

#[test]
fn server_profiles_order_as_figure2() {
    let cal = fig2_measure(ServerProfile::Calibrated, 3, 5);
    let gae = fig2_measure(ServerProfile::GaeLike, 3, 5);
    let def = fig2_measure(ServerProfile::PublicDefault, 3, 5);
    let total =
        |s: &longlook_core::calibration::WaitDownloadSplit| s.wait_ms.mean() + s.download_ms.mean();
    assert!(
        total(&cal) < total(&def),
        "calibrated beats the public default"
    );
    assert!(gae.wait_ms.mean() > 100.0, "GAE's variable wait is visible");
}

#[test]
fn heatmap_sweep_is_deterministic() {
    let rows = vec!["10Mbps".to_string()];
    let cols = vec!["50KB".to_string()];
    let build = || {
        sweep_heatmap("det", &rows, &cols, &quic(), &tcp(), |_r, _c| {
            Scenario::new(NetProfile::baseline(10.0), PageSpec::single(50 * 1024)).with_rounds(3)
        })
    };
    let a = build();
    let b = build();
    assert_eq!(a.get(0, 0).percent, b.get(0, 0).percent);
}

#[test]
fn cellular_profiles_run_end_to_end() {
    for p in CELL_PROFILES {
        let sc =
            Scenario::new(p.net_profile_for_run(9), PageSpec::single(50 * 1024)).with_rounds(1);
        let rec = run_page_load(&quic(), &sc, 0);
        assert!(rec.plt.is_some(), "{} load incomplete", p.name);
    }
}
