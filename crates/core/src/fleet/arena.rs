//! Struct-of-arrays connection state for fleet-scale worlds.
//!
//! One [`ConnArena`] holds every live connection of a fleet cell in
//! parallel columns indexed by a [`SlotPool`] slot: the hot per-event
//! fields (workload cursor, cwnd, RTT, flight counters) sit in dense
//! `Vec`s instead of one heap allocation per connection, so a 100k-client
//! flash crowd costs tens of megabytes at most and an event touches two
//! or three cache lines rather than chasing a `Box` per connection.
//!
//! Handles are generational ([`SlotHandle`]): an ack or deadline event
//! that arrives after its connection finished resolves to `None` and is
//! dropped, instead of silently mutating whichever connection recycled
//! the slot.

use longlook_sim::time::Time;
use longlook_sim::{SlotHandle, SlotPool};

/// Initial state for one fleet connection.
#[derive(Debug, Clone, Copy)]
pub struct ConnInit {
    /// Simulation time the client arrived.
    pub arrived: Time,
    /// Total object bytes to transfer.
    pub object: u32,
    /// Initial congestion window (bytes).
    pub cwnd: u32,
    /// Initial slow-start threshold (bytes).
    pub ssthresh: u32,
    /// Round-trip time for this client (microseconds).
    pub rtt_us: u32,
    /// Global client id `k` — the key of every per-connection hash
    /// stream. Stored so draws made after admission (per-flight loss)
    /// can key on the *client*, not the arena slot: slot assignment
    /// depends on execution grouping, client ids do not.
    pub client: u32,
    /// Bottleneck link this client shares.
    pub link: u16,
    /// Server pool serving this client.
    pub server: u16,
}

/// Dense per-connection state, one column per field.
///
/// All columns are kept exactly `pool.slots()` long; a freed slot's
/// column entries are simply overwritten by the next connection that
/// recycles it. Budget: 42 bytes of column state plus 4 bytes of
/// generation plus amortized free-list per slot — about 48 B/connection,
/// an order of magnitude under the 650 B/connection acceptance budget.
#[derive(Debug, Clone, Default)]
pub struct ConnArena {
    pool: SlotPool,
    /// Arrival time (ns since sim start) — latency is measured from here.
    pub(crate) arrived_ns: Vec<u64>,
    /// Bytes still to deliver (the workload cursor).
    pub(crate) remaining: Vec<u32>,
    /// Total object size (bytes), for diagnostics and byte accounting.
    pub(crate) object: Vec<u32>,
    /// Congestion window (bytes).
    pub(crate) cwnd: Vec<u32>,
    /// Slow-start threshold (bytes).
    pub(crate) ssthresh: Vec<u32>,
    /// Per-client round-trip time (µs).
    pub(crate) rtt_us: Vec<u32>,
    /// Global client id (keys the per-flight loss hash stream).
    pub(crate) client: Vec<u32>,
    /// Flights sent so far (indexes the per-flight loss hash stream;
    /// 32 bits so the loss key never aliases across flights).
    pub(crate) flights: Vec<u32>,
    /// Flights that experienced loss (congestion or random).
    pub(crate) retx: Vec<u16>,
    /// Shared bottleneck link id.
    pub(crate) link: Vec<u16>,
    /// Server pool id.
    pub(crate) server: Vec<u16>,
}

impl ConnArena {
    /// An empty arena.
    pub fn new() -> Self {
        ConnArena::default()
    }

    /// An arena pre-sized for `n` concurrent connections (columns grow
    /// past this only if the live high-water mark does).
    pub fn with_capacity(n: usize) -> Self {
        ConnArena {
            pool: SlotPool::with_capacity(n),
            arrived_ns: Vec::with_capacity(n),
            remaining: Vec::with_capacity(n),
            object: Vec::with_capacity(n),
            cwnd: Vec::with_capacity(n),
            ssthresh: Vec::with_capacity(n),
            rtt_us: Vec::with_capacity(n),
            client: Vec::with_capacity(n),
            flights: Vec::with_capacity(n),
            retx: Vec::with_capacity(n),
            link: Vec::with_capacity(n),
            server: Vec::with_capacity(n),
        }
    }

    /// Admit a connection, recycling a finished connection's slot when
    /// one is free.
    pub fn alloc(&mut self, init: ConnInit) -> SlotHandle {
        let h = self.pool.alloc();
        let i = h.index();
        if i == self.arrived_ns.len() {
            self.arrived_ns.push(init.arrived.as_nanos());
            self.remaining.push(init.object);
            self.object.push(init.object);
            self.cwnd.push(init.cwnd);
            self.ssthresh.push(init.ssthresh);
            self.rtt_us.push(init.rtt_us);
            self.client.push(init.client);
            self.flights.push(0);
            self.retx.push(0);
            self.link.push(init.link);
            self.server.push(init.server);
        } else {
            self.arrived_ns[i] = init.arrived.as_nanos();
            self.remaining[i] = init.object;
            self.object[i] = init.object;
            self.cwnd[i] = init.cwnd;
            self.ssthresh[i] = init.ssthresh;
            self.rtt_us[i] = init.rtt_us;
            self.client[i] = init.client;
            self.flights[i] = 0;
            self.retx[i] = 0;
            self.link[i] = init.link;
            self.server[i] = init.server;
        }
        h
    }

    /// Retire a connection. Stale handles are rejected (`false`).
    pub fn free(&mut self, h: SlotHandle) -> bool {
        self.pool.free(h)
    }

    /// Column index for a live handle, `None` if stale.
    #[inline]
    pub fn resolve(&self, h: SlotHandle) -> Option<usize> {
        self.pool.resolve(h)
    }

    /// Whether `h` still refers to a live connection.
    #[inline]
    pub fn contains(&self, h: SlotHandle) -> bool {
        self.pool.contains(h)
    }

    /// Live connections right now.
    pub fn live(&self) -> usize {
        self.pool.live()
    }

    /// High-water mark of concurrent connections.
    pub fn live_peak(&self) -> usize {
        self.pool.live_peak()
    }

    /// Total slots (and column length) ever needed.
    pub fn slots(&self) -> usize {
        self.pool.slots()
    }

    /// Heap bytes held by all columns plus the slot pool — the number
    /// the `fleet_*` perfbench cells report and gate against the
    /// 64 MiB / 650 B-per-connection budget.
    pub fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.pool.bytes()
            + self.arrived_ns.capacity() * size_of::<u64>()
            + self.remaining.capacity() * size_of::<u32>()
            + self.object.capacity() * size_of::<u32>()
            + self.cwnd.capacity() * size_of::<u32>()
            + self.ssthresh.capacity() * size_of::<u32>()
            + self.rtt_us.capacity() * size_of::<u32>()
            + self.client.capacity() * size_of::<u32>()
            + self.flights.capacity() * size_of::<u32>()
            + self.retx.capacity() * size_of::<u16>()
            + self.link.capacity() * size_of::<u16>()
            + self.server.capacity() * size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longlook_sim::time::Time;

    fn init(object: u32) -> ConnInit {
        ConnInit {
            arrived: Time::ZERO,
            object,
            cwnd: 14_000,
            ssthresh: u32::MAX,
            rtt_us: 36_000,
            client: 17,
            link: 3,
            server: 1,
        }
    }

    #[test]
    fn alloc_reuses_columns_and_rejects_stale() {
        let mut a = ConnArena::new();
        let h1 = a.alloc(init(1000));
        let i = a.resolve(h1).unwrap();
        assert_eq!(a.remaining[i], 1000);
        assert_eq!(a.link[i], 3);
        assert!(a.free(h1));
        let h2 = a.alloc(init(2000));
        assert_eq!(h2.index(), h1.index(), "slot recycled");
        assert_eq!(a.resolve(h1), None, "stale handle rejected");
        let j = a.resolve(h2).unwrap();
        assert_eq!(a.remaining[j], 2000, "columns re-initialized");
        assert_eq!(a.flights[j], 0);
        assert_eq!(a.client[j], 17);
        assert_eq!(a.slots(), 1);
    }

    #[test]
    fn bytes_per_connection_is_far_under_budget() {
        let n = 10_000;
        let mut a = ConnArena::with_capacity(n);
        let hs: Vec<_> = (0..n).map(|_| a.alloc(init(5 * 1024))).collect();
        let per_conn = a.bytes() as f64 / a.live_peak() as f64;
        assert!(
            per_conn <= 650.0,
            "{per_conn:.1} B/conn exceeds the 650 B budget"
        );
        // Churn does not grow the footprint.
        let before = a.bytes();
        for h in hs {
            assert!(a.free(h));
        }
        for _ in 0..n {
            let _ = a.alloc(init(5 * 1024));
        }
        assert_eq!(a.slots(), n);
        assert!(a.bytes() <= before * 2);
    }
}
