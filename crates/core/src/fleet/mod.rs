//! Fleet-scale worlds: population-level QUIC-vs-TCP comparison.
//!
//! The paper's grid (Sec 3.3) compares one client at a time; operators
//! care how the protocols behave when *fleets* of clients share
//! infrastructure — flash crowds hitting a server pool, diurnal load on a
//! bottleneck. This module scales the back-to-back methodology to 10^5
//! concurrent connections by trading packet granularity for flight
//! granularity:
//!
//! * per-connection hot state lives in a struct-of-arrays [`ConnArena`]
//!   with generational handles ([`arena`]),
//! * latency distributions stream into a Welford [`Summary`] and a
//!   log-bucketed [`QuantileSketch`] — no per-sample vectors
//!   ([`longlook_stats`]),
//! * the event loop charges flights against fluid shared-bottleneck
//!   links ([`world`]), and one cell can be split into independent
//!   per-link-range shards ([`ShardPlan`], [`run_fleet_sharded`]) that
//!   run across worker threads and merge deterministically — the path
//!   to 10^6 connections per cell.
//!
//! The headline output is [`fleet_heatmap`]: arrival profiles × load
//! multipliers, QUIC-vs-TCP p99 completion latency, Welch-gated exactly
//! like the paper's figures, executed through the deterministic parallel
//! runner so the matrix is bit-identical at any `LONGLOOK_JOBS`.
//!
//! [`Summary`]: longlook_stats::Summary
//! [`QuantileSketch`]: longlook_stats::QuantileSketch

pub mod arena;
pub mod world;

pub use arena::{ConnArena, ConnInit};
pub use world::{run_fleet, run_fleet_sharded, FleetMetrics, FleetObservables, ShardPlan};

use std::sync::Once;

use longlook_http::host::ProtoConfig;
use longlook_quic::QuicConfig;
use longlook_sim::time::Dur;
use longlook_stats::Heatmap;
use longlook_tcp::TcpConfig;

use crate::experiment::sweep_heatmap_with_par;
use crate::runner::Parallelism;

/// How the fleet's clients arrive inside the window.
///
/// All three are inverse-CDF maps from a per-client unit uniform, so the
/// arrival sequence is sorted by construction and bit-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProfile {
    /// Constant-rate arrivals: client `k` lands near `window * k / n`
    /// with a hash-jittered offset (the order statistics of a Poisson
    /// process conditioned on its count).
    Poisson,
    /// Flash crowd: arrivals compress into the start of the window
    /// (`t = window * x²`), front-loading the bottlenecks.
    FlashCrowd,
    /// Diurnal ramp: a sinusoidally modulated rate that peaks mid-window
    /// at ~6x the trough (`t = window * (x + A/2π · sin 2πx)`, A = 0.85).
    DiurnalRamp,
}

impl ArrivalProfile {
    /// Row label used by heatmaps and reports.
    pub fn label(self) -> &'static str {
        match self {
            ArrivalProfile::Poisson => "poisson",
            ArrivalProfile::FlashCrowd => "flash-crowd",
            ArrivalProfile::DiurnalRamp => "diurnal",
        }
    }

    /// Arrival offset of client `k` of `n`, given its unit jitter `u`.
    /// Monotone in `k`, so chained arrival events never run backwards.
    pub fn time_at(self, window: Dur, k: u32, n: u32, u: f64) -> Dur {
        let n = n.max(1);
        let x = (f64::from(k) + u.clamp(0.0, 1.0 - f64::EPSILON)) / f64::from(n);
        let frac = match self {
            ArrivalProfile::Poisson => x,
            ArrivalProfile::FlashCrowd => x * x,
            ArrivalProfile::DiurnalRamp => {
                const A: f64 = 0.85;
                x + A / (2.0 * std::f64::consts::PI) * (2.0 * std::f64::consts::PI * x).sin()
            }
        };
        window.mul_f64(frac)
    }
}

/// The full parameterization of one fleet cell.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Clients to spawn across the window.
    pub n_conns: usize,
    /// Arrival window.
    pub window: Dur,
    /// Arrival process shape.
    pub profile: ArrivalProfile,
    /// Shared bottleneck links (clients round-robin across them).
    pub n_links: usize,
    /// Server pools (each adds its own per-flight service delay).
    pub n_servers: usize,
    /// Raw capacity per bottleneck link (Mbps).
    pub link_mbps: f64,
    /// Fraction of each link consumed by non-fleet cross traffic.
    pub cross_traffic_frac: f64,
    /// Buffer drain time per link; flights that would queue longer are
    /// marked lost (drop-tail congestion loss).
    pub buffer: Dur,
    /// Base client RTT; per-client jitter stretches it upward.
    pub base_rtt: Dur,
    /// Max fractional RTT stretch (0.5 = up to 1.5x base).
    pub rtt_jitter_frac: f64,
    /// Random per-flight loss probability (on top of congestion loss).
    pub loss: f64,
    /// Per-flight service delay unit; pool `s` charges `(s+1)` units.
    pub server_service: Dur,
    /// Per-connection completion deadline (measured from arrival).
    pub deadline: Dur,
    /// Fraction of clients that are repeat visitors (QUIC may 0-RTT).
    pub repeat_visit_frac: f64,
    /// Experiment seed; every draw in the world derives from it.
    pub seed: u64,
}

impl FleetConfig {
    /// A fleet of `n` clients over infrastructure sized so the *average*
    /// load sits below capacity while flash crowds transiently overload
    /// it — the regime where tail latency separates the protocols.
    pub fn new(n: usize) -> Self {
        FleetConfig {
            n_conns: n,
            window: Dur::from_secs(10),
            profile: ArrivalProfile::FlashCrowd,
            // ~1500 clients per 500 Mbps link keeps average utilization
            // below capacity for the workload mixture's ~280 KB mean.
            n_links: (n / 1500).max(4),
            n_servers: ((n / 1500).max(4) / 4).max(2),
            link_mbps: 500.0,
            cross_traffic_frac: 0.15,
            buffer: Dur::from_millis(50),
            base_rtt: Dur::from_millis(36),
            rtt_jitter_frac: 0.5,
            loss: 0.001,
            server_service: Dur::from_micros(200),
            deadline: Dur::from_secs(40),
            repeat_visit_frac: 0.5,
            seed: 0xF1EE7,
        }
    }

    /// Re-key the run (fleet worlds derive every draw from the seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Change the arrival shape.
    pub fn with_profile(mut self, profile: ArrivalProfile) -> Self {
        self.profile = profile;
        self
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig::new(2_000)
    }
}

/// Fleet size for interactive runs: `default` unless `LONGLOOK_FLEET_N`
/// overrides it (warn-once on junk, like every other knob). The perfbench
/// `fleet_10k` / `fleet_100k` cells pin exact counts and ignore this.
pub fn fleet_n(default: usize) -> usize {
    static WARNED: Once = Once::new();
    longlook_wire::env_knob(
        "LONGLOOK_FLEET_N",
        "a positive integer",
        "the experiment default",
        &WARNED,
        |v| v.trim().parse::<usize>().ok().filter(|n| *n > 0),
    )
    .unwrap_or(default)
}

/// Shard count for fleet cells: `default` unless `LONGLOOK_FLEET_SHARDS`
/// overrides it (warn-once on junk, like every other knob). The value is
/// re-clamped to the cell's link count by [`ShardPlan::new`], so an
/// oversized setting degrades gracefully instead of erroring. Sharding
/// never changes the observables — `fleet_shard_differential` pins that —
/// so this knob only trades wall-clock against thread count.
pub fn fleet_shards(default: usize) -> usize {
    static WARNED: Once = Once::new();
    longlook_wire::env_knob(
        "LONGLOOK_FLEET_SHARDS",
        "a positive integer",
        "the experiment default",
        &WARNED,
        |v| v.trim().parse::<usize>().ok().filter(|n| *n > 0),
    )
    .unwrap_or(default)
}

/// Arrival profiles × load multipliers, QUIC vs TCP on p99 completion
/// latency, Welch-gated. Rows are the three [`ArrivalProfile`]s; columns
/// scale `base.n_conns` by 0.5 / 1 / 2. Runs through the deterministic
/// parallel runner: bit-identical at any `LONGLOOK_JOBS` setting.
pub fn fleet_heatmap(
    quic: &QuicConfig,
    tcp: &TcpConfig,
    base: &FleetConfig,
    rounds: u64,
    par: Parallelism,
) -> Heatmap {
    const PROFILES: [ArrivalProfile; 3] = [
        ArrivalProfile::Poisson,
        ArrivalProfile::FlashCrowd,
        ArrivalProfile::DiurnalRamp,
    ];
    const LOADS: [f64; 3] = [0.5, 1.0, 2.0];
    let rows: Vec<String> = PROFILES.iter().map(|p| p.label().to_string()).collect();
    let cols: Vec<String> = LOADS.iter().map(|l| format!("{l}x load")).collect();
    sweep_heatmap_with_par(
        "fleet p99 completion latency: QUIC vs TCP",
        &rows,
        &cols,
        rounds,
        |cand, r, c, k| {
            let mut cfg = base.clone().with_profile(PROFILES[r]);
            cfg.n_conns = ((base.n_conns as f64 * LOADS[c]).round() as usize).max(1);
            cfg.seed = base
                .seed
                .wrapping_add((k + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let proto = if cand {
                ProtoConfig::Quic(quic.clone())
            } else {
                ProtoConfig::Tcp(tcp.clone())
            };
            run_fleet(&proto, &cfg).p99_ms()
        },
        par,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_profiles_are_monotone_and_bounded() {
        let w = Dur::from_secs(10);
        for profile in [
            ArrivalProfile::Poisson,
            ArrivalProfile::FlashCrowd,
            ArrivalProfile::DiurnalRamp,
        ] {
            let mut last = Dur::from_nanos(0);
            for k in 0..1_000u32 {
                let u = longlook_sim::rng::hash_unit(7, k.into());
                let t = profile.time_at(w, k, 1_000, u);
                assert!(t >= last, "{profile:?} ran backwards at k={k}");
                assert!(t <= w, "{profile:?} escaped the window at k={k}");
                last = t;
            }
        }
    }

    #[test]
    fn flash_crowd_front_loads() {
        let w = Dur::from_secs(10);
        // Half the clients land in the first quarter of the window.
        let mid = ArrivalProfile::FlashCrowd.time_at(w, 500, 1_000, 0.0);
        assert!(mid <= w.mul_f64(0.26), "median arrival {mid:?}");
    }

    #[test]
    fn small_fleet_completes_with_quic_ahead_on_handshakes() {
        let cfg = FleetConfig::new(400);
        let q = run_fleet(&ProtoConfig::Quic(QuicConfig::default()), &cfg);
        let t = run_fleet(&ProtoConfig::Tcp(TcpConfig::default()), &cfg);
        assert_eq!(q.completed + q.timed_out, 400);
        assert_eq!(t.completed + t.timed_out, 400);
        assert!(q.completed > 380, "QUIC completed only {}", q.completed);
        // Same seed, same arrival draws: the handshake gap (0/1 RTT vs 3)
        // must show up in the medians.
        assert!(
            q.p50_ms() < t.p50_ms(),
            "QUIC p50 {} vs TCP {}",
            q.p50_ms(),
            t.p50_ms()
        );
        assert!(q.bytes_per_conn() <= 650.0);
    }

    #[test]
    fn same_config_is_bit_identical() {
        let cfg = FleetConfig::new(300);
        let proto = ProtoConfig::Quic(QuicConfig::default());
        let a = run_fleet(&proto, &cfg);
        let b = run_fleet(&proto, &cfg);
        assert_eq!(a, b);
        let c = run_fleet(&proto, &cfg.clone().with_seed(99));
        assert_ne!(a.latency_ms, c.latency_ms, "seed must matter");
    }

    #[test]
    fn fleet_n_defaults_without_env() {
        // The env var is absent in tests; the default must pass through.
        assert_eq!(fleet_n(1234), 1234);
    }

    #[test]
    fn fleet_shards_defaults_without_env() {
        // The CI shard matrix exports the knob for the referee binaries;
        // only pin the default when this process didn't inherit it.
        if std::env::var_os("LONGLOOK_FLEET_SHARDS").is_none() {
            assert_eq!(fleet_shards(4), 4);
        }
    }
}
