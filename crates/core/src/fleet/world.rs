//! The fleet event loop: N clients against server pools over shared
//! bottleneck links, at flight granularity.
//!
//! A fleet cell does not build N packet-level testbeds — that is what
//! the arena-backed model avoids. Each connection advances in *flights*:
//! one event per congestion window of data, charged against a fluid model
//! of its bottleneck link (a busy horizon per link; queueing delay is the
//! gap between "now" and the horizon, and a flight that would wait longer
//! than the buffer drains is marked lost). Handshakes are charged as
//! whole RTTs from the protocol configs' `handshake_rtts` — QUIC's 0/1
//! RTT versus TCP+TLS's 3 — which is exactly the asymmetry the paper's
//! Fig 7 isolates, scaled up to a population.
//!
//! Everything is a pure function of the [`FleetConfig`] (including its
//! seed): per-connection draws come from `hash_unit` streams keyed by
//! connection and flight number, never from shared mutable RNG state, so
//! a fleet cell is bit-identical no matter how cells are scheduled across
//! worker threads.

use longlook_http::host::ProtoConfig;
use longlook_http::workload::fleet_object_bytes;
use longlook_sim::rng::hash_unit;
use longlook_sim::sched::{EventQueue, SchedKind};
use longlook_sim::time::{Dur, Time};
use longlook_sim::SlotHandle;
use longlook_stats::{QuantileSketch, Summary};

use super::arena::{ConnArena, ConnInit};
use super::FleetConfig;
use crate::runner::note_cell_events;

/// Hash-stream salts: one independent draw stream per decision kind.
const SALT_SIZE: u64 = 0x517E_0000_0000_0001;
const SALT_ARRIVE: u64 = 0x4121_0000_0000_0002;
const SALT_RTT: u64 = 0x0177_0000_0000_0003;
const SALT_REPEAT: u64 = 0x0E77_0000_0000_0004;
const SALT_LOSS: u64 = 0x1055_0000_0000_0005;

/// One scheduled occurrence in a fleet world.
enum FleetEvent {
    /// The `k`-th client arrives (chained: processing arrival `k`
    /// schedules arrival `k + 1`, so the queue holds one at a time).
    Arrival(u32),
    /// A flight's ack returns. `delivered` bytes made it; `lost` marks a
    /// congestion or random loss in the flight.
    Ack {
        h: SlotHandle,
        delivered: u32,
        lost: bool,
    },
    /// The per-connection completion deadline.
    Deadline(SlotHandle),
}

/// Everything a fleet run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Events processed (arrivals + acks + deadlines).
    pub events: u64,
    /// Peak simultaneously scheduled events in the queue.
    pub scheduled_peak: usize,
    /// Peak simultaneously live connections.
    pub peak_live: usize,
    /// Peak connection-arena heap bytes (columns + slot pool).
    pub arena_bytes_peak: usize,
    /// Connections that delivered their full object before the deadline.
    pub completed: u64,
    /// Connections cut off at the deadline.
    pub timed_out: u64,
    /// Completion latency (ms), streaming mean/variance — no per-sample
    /// vector is ever retained.
    pub latency_ms: Summary,
    /// Completion latency (ms), log-bucketed tail sketch.
    pub latency_sketch: QuantileSketch,
    /// Simulated time when the last event fired.
    pub finished_at: Time,
}

impl FleetMetrics {
    /// Median completion latency (ms).
    pub fn p50_ms(&self) -> f64 {
        self.latency_sketch.p50()
    }

    /// 99th-percentile completion latency (ms).
    pub fn p99_ms(&self) -> f64 {
        self.latency_sketch.p99()
    }

    /// 99.9th-percentile completion latency (ms).
    pub fn p999_ms(&self) -> f64 {
        self.latency_sketch.p999()
    }

    /// Peak arena bytes per connection at the concurrency high-water
    /// mark — the number the 650 B/connection budget gates.
    pub fn bytes_per_conn(&self) -> f64 {
        if self.peak_live == 0 {
            0.0
        } else {
            self.arena_bytes_peak as f64 / self.peak_live as f64
        }
    }
}

/// Per-world constants derived from the protocol config.
struct ProtoModel {
    mss: u32,
    init_cwnd: u32,
    max_cwnd: u32,
    /// Handshake RTTs when the client has no cached server state.
    hs_cold: u32,
    /// Handshake RTTs on a repeat visit (QUIC 0-RTT when enabled).
    hs_repeat: u32,
}

impl ProtoModel {
    fn of(proto: &ProtoConfig) -> ProtoModel {
        match proto {
            ProtoConfig::Quic(q) => {
                let mss = q.mss as u32;
                ProtoModel {
                    mss,
                    init_cwnd: q.cubic.initial_cwnd_packets as u32 * mss,
                    max_cwnd: q
                        .cubic
                        .max_cwnd_packets
                        .map_or(q.conn_recv_window_max, |p| p * q.mss)
                        as u32,
                    hs_cold: q.handshake_rtts(false),
                    hs_repeat: q.handshake_rtts(true),
                }
            }
            ProtoConfig::Tcp(t) => {
                let mss = t.mss as u32;
                ProtoModel {
                    mss,
                    init_cwnd: t.cubic.initial_cwnd_packets as u32 * mss,
                    max_cwnd: t
                        .cubic
                        .max_cwnd_packets
                        .map_or(t.recv_buffer, |p| p * t.mss) as u32,
                    hs_cold: t.handshake_rtts(),
                    hs_repeat: t.handshake_rtts(),
                }
            }
        }
    }
}

struct World<'a> {
    cfg: &'a FleetConfig,
    model: ProtoModel,
    queue: EventQueue<FleetEvent>,
    arena: ConnArena,
    /// Fluid busy horizon per bottleneck link (ns).
    link_busy_ns: Vec<u64>,
    /// Serialization cost on the cross-traffic-reduced link (ns/byte).
    ns_per_byte: f64,
    buffer_ns: u64,
    metrics: FleetMetrics,
}

/// Run one fleet cell to completion. Deterministic in `cfg` (including
/// `cfg.seed`) and `proto`; independent of thread scheduling, the
/// `LONGLOOK_SCHED` backend, and everything else environmental.
pub fn run_fleet(proto: &ProtoConfig, cfg: &FleetConfig) -> FleetMetrics {
    let eff_mbps = cfg.link_mbps * (1.0 - cfg.cross_traffic_frac).max(1e-3);
    let mut w = World {
        cfg,
        model: ProtoModel::of(proto),
        queue: EventQueue::new(SchedKind::from_env()),
        arena: ConnArena::with_capacity((cfg.n_conns / 4).max(16)),
        link_busy_ns: vec![0; cfg.n_links.max(1)],
        // mbps → bytes/ns is mbps / 8000; invert for ns/byte.
        ns_per_byte: 8000.0 / eff_mbps,
        buffer_ns: cfg.buffer.as_nanos(),
        metrics: FleetMetrics {
            events: 0,
            scheduled_peak: 0,
            peak_live: 0,
            arena_bytes_peak: 0,
            completed: 0,
            timed_out: 0,
            latency_ms: Summary::new(),
            latency_sketch: QuantileSketch::new(),
            finished_at: Time::ZERO,
        },
    };
    if cfg.n_conns > 0 {
        let t0 = w.arrival_time(0);
        w.queue.push(Time::ZERO + t0, FleetEvent::Arrival(0));
    }
    while let Some((now, ev)) = w.queue.pop() {
        w.metrics.events += 1;
        w.metrics.finished_at = now;
        match ev {
            FleetEvent::Arrival(k) => w.on_arrival(now, k),
            FleetEvent::Ack { h, delivered, lost } => w.on_ack(now, h, delivered, lost),
            FleetEvent::Deadline(h) => {
                // Completed connections freed their slot; the generation
                // check rejects the stale handle and the deadline is moot.
                if w.arena.free(h) {
                    w.metrics.timed_out += 1;
                }
            }
        }
    }
    w.metrics.scheduled_peak = w.queue.scheduled_peak();
    w.metrics.peak_live = w.arena.live_peak();
    w.metrics.arena_bytes_peak = w.metrics.arena_bytes_peak.max(w.arena.bytes());
    note_cell_events(w.metrics.events);
    w.metrics
}

impl World<'_> {
    /// Arrival offset of client `k` under the configured profile.
    fn arrival_time(&self, k: u32) -> Dur {
        let u = hash_unit(self.cfg.seed ^ SALT_ARRIVE, k.into());
        self.cfg
            .profile
            .time_at(self.cfg.window, k, self.cfg.n_conns as u32, u)
    }

    fn on_arrival(&mut self, now: Time, k: u32) {
        if (k as usize) + 1 < self.cfg.n_conns {
            let t = self.arrival_time(k + 1);
            self.queue.push(Time::ZERO + t, FleetEvent::Arrival(k + 1));
        }
        let object = fleet_object_bytes(hash_unit(self.cfg.seed ^ SALT_SIZE, k.into())) as u32;
        let rtt_jitter = hash_unit(self.cfg.seed ^ SALT_RTT, k.into());
        let rtt_us = (self.cfg.base_rtt.as_nanos() as f64 / 1_000.0
            * (1.0 + self.cfg.rtt_jitter_frac * rtt_jitter)) as u32;
        let h = self.arena.alloc(ConnInit {
            arrived: now,
            object,
            cwnd: self.model.init_cwnd,
            ssthresh: self.model.max_cwnd,
            rtt_us,
            link: (k as usize % self.cfg.n_links.max(1)) as u16,
            server: (k as usize % self.cfg.n_servers.max(1)) as u16,
        });
        self.metrics.arena_bytes_peak = self.metrics.arena_bytes_peak.max(self.arena.bytes());
        self.queue
            .push(now + self.cfg.deadline, FleetEvent::Deadline(h));
        let repeat = hash_unit(self.cfg.seed ^ SALT_REPEAT, k.into()) < self.cfg.repeat_visit_frac;
        let hs_rtts = if repeat {
            self.model.hs_repeat
        } else {
            self.model.hs_cold
        };
        if hs_rtts == 0 {
            // 0-RTT: the first flight rides the handshake packet.
            self.send_flight(now, h);
        } else {
            let hs = Dur::from_nanos(u64::from(hs_rtts) * u64::from(rtt_us) * 1_000);
            self.queue.push(
                now + hs,
                FleetEvent::Ack {
                    h,
                    delivered: 0,
                    lost: false,
                },
            );
        }
    }

    /// Send one congestion window of data and schedule its ack, charging
    /// the shared link's fluid queue.
    fn send_flight(&mut self, now: Time, h: SlotHandle) {
        let i = self.arena.resolve(h).expect("send_flight on stale handle");
        let flight = self.arena.remaining[i].min(self.arena.cwnd[i]).max(1);
        let f = self.arena.flights[i];
        self.arena.flights[i] = f.saturating_add(1);
        let li = self.arena.link[i] as usize;
        let now_ns = now.as_nanos();
        let wait_ns = self.link_busy_ns[li].saturating_sub(now_ns);
        let ser_ns = (f64::from(flight) * self.ns_per_byte).round() as u64;
        self.link_busy_ns[li] = self.link_busy_ns[li].max(now_ns) + ser_ns;
        // Congestion loss: the flight would queue past the buffer's drain
        // time. Random loss: an independent per-flight draw keyed by the
        // handle's (generation, index) so recycled slots get fresh streams.
        let key =
            (u64::from(h.generation()) << 32) | ((h.index() as u64) << 12) | (u64::from(f) & 0xfff);
        let lost =
            wait_ns > self.buffer_ns || hash_unit(self.cfg.seed ^ SALT_LOSS, key) < self.cfg.loss;
        let delivered = if lost { flight / 2 } else { flight };
        let rtt_ns = u64::from(self.arena.rtt_us[i]) * 1_000;
        let service_ns = self.cfg.server_service.as_nanos() * (1 + u64::from(self.arena.server[i]));
        self.queue.push(
            now + Dur::from_nanos(wait_ns + ser_ns + rtt_ns + service_ns),
            FleetEvent::Ack { h, delivered, lost },
        );
    }

    fn on_ack(&mut self, now: Time, h: SlotHandle, delivered: u32, lost: bool) {
        // Stale = the deadline already retired this connection.
        let Some(i) = self.arena.resolve(h) else {
            return;
        };
        let mss = self.model.mss;
        if lost {
            self.arena.retx[i] = self.arena.retx[i].saturating_add(1);
            let half = (self.arena.cwnd[i] / 2).max(2 * mss);
            self.arena.ssthresh[i] = half;
            self.arena.cwnd[i] = half;
        } else if self.arena.cwnd[i] < self.arena.ssthresh[i] {
            // Slow start: grow by the bytes acked.
            self.arena.cwnd[i] =
                (self.arena.cwnd[i].saturating_add(delivered)).min(self.model.max_cwnd);
        } else {
            // Congestion avoidance: ~one MSS per cwnd of acked data.
            let grow = (u64::from(mss) * u64::from(delivered)
                / u64::from(self.arena.cwnd[i].max(1))) as u32;
            self.arena.cwnd[i] = (self.arena.cwnd[i].saturating_add(grow)).min(self.model.max_cwnd);
        }
        self.arena.remaining[i] = self.arena.remaining[i].saturating_sub(delivered);
        if self.arena.remaining[i] == 0 {
            let latency_ms = (now.as_nanos().saturating_sub(self.arena.arrived_ns[i])) as f64 / 1e6;
            self.metrics.latency_ms.add(latency_ms);
            self.metrics.latency_sketch.add(latency_ms);
            self.metrics.completed += 1;
            self.arena.free(h);
        } else {
            self.send_flight(now, h);
        }
    }
}
