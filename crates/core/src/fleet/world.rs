//! The fleet event loop: N clients against server pools over shared
//! bottleneck links, at flight granularity — shardable across workers
//! with a deterministic merge.
//!
//! A fleet cell does not build N packet-level testbeds — that is what
//! the arena-backed model avoids. Each connection advances in *flights*:
//! one event per congestion window of data, charged against a fluid model
//! of its bottleneck link (a busy horizon per link; queueing delay is the
//! gap between "now" and the horizon, and a flight that would wait longer
//! than the buffer drains is marked lost). Handshakes are charged as
//! whole RTTs from the protocol configs' `handshake_rtts` — QUIC's 0/1
//! RTT versus TCP+TLS's 3 — which is exactly the asymmetry the paper's
//! Fig 7 isolates, scaled up to a population.
//!
//! # Sharding
//!
//! Connections interact only through their bottleneck link (`k %
//! n_links`) and the per-connection state itself; server pools are
//! stateless delay terms. So the link space partitions: a [`ShardPlan`]
//! splits the links into contiguous ranges, [`run_fleet_sharded`] runs
//! one independent event loop per range (serially through one reused
//! queue, or fanned across the deterministic runner's worker threads),
//! and the per-shard [`FleetMetrics`] merge in fixed shard order.
//!
//! Two design rules make the merged observables *bit-identical* across
//! `shards=1` serial, `shards=S` serial, and `shards=S` threaded:
//!
//! 1. **Every same-time queue tie that touches shared state is between
//!    events of one link.** Arrivals chain per link (`Arrival(k)`
//!    schedules `Arrival(k + n_links)`, the next client of the *same*
//!    link; the queue is seeded with one arrival per link), and acks /
//!    deadlines are pushed while processing events of their own link. So
//!    each link's event subsequence — and therefore each connection's
//!    trajectory — is invariant under how links are grouped into queues.
//! 2. **No draw or decision keys on execution-dependent identifiers.**
//!    Random draws hash (seed, client id, flight), never arena slots,
//!    whose assignment depends on grouping.
//!
//! Merging is then exact: counters sum, the [`QuantileSketch`] merges
//! bucket-wise in `u64`s, and the Welford [`Summary`] — whose batch
//! merge *is* float-order-sensitive — is accumulated per link and folded
//! in global link order in every mode, so the fold sequence never
//! depends on sharding. Capacity diagnostics (queue/arena peaks) are
//! per-shard peaks summed in shard order; see
//! [`FleetMetrics::observables`] for the exact invariance contract.

use std::ops::Range;

use longlook_http::host::ProtoConfig;
use longlook_http::workload::fleet_object_bytes;
use longlook_sim::rng::hash_unit;
use longlook_sim::sched::{EventQueue, SchedKind};
use longlook_sim::time::{Dur, Time};
use longlook_sim::SlotHandle;
use longlook_stats::{QuantileSketch, Summary};

use super::arena::{ConnArena, ConnInit};
use super::FleetConfig;
use crate::runner::{note_cell_events, run_ordered, Parallelism};

/// Hash-stream salts: one independent draw stream per decision kind.
const SALT_SIZE: u64 = 0x517E_0000_0000_0001;
const SALT_ARRIVE: u64 = 0x4121_0000_0000_0002;
const SALT_RTT: u64 = 0x0177_0000_0000_0003;
const SALT_REPEAT: u64 = 0x0E77_0000_0000_0004;
const SALT_LOSS: u64 = 0x1055_0000_0000_0005;

/// One scheduled occurrence in a fleet world.
enum FleetEvent {
    /// The `k`-th client arrives. Chained **per link**: processing
    /// arrival `k` schedules arrival `k + n_links` — the next client of
    /// the same link — so the queue holds one pending arrival per link
    /// and cross-link arrivals never contend on push order.
    Arrival(u32),
    /// A flight's ack returns. `delivered` bytes made it; `lost` marks a
    /// congestion or random loss in the flight.
    Ack {
        h: SlotHandle,
        delivered: u32,
        lost: bool,
    },
    /// The per-connection completion deadline.
    Deadline(SlotHandle),
}

/// Everything a fleet run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Events processed (arrivals + acks + deadlines), summed over shards.
    pub events: u64,
    /// Peak simultaneously scheduled events — the per-shard queue peaks,
    /// summed in shard order (a capacity diagnostic: the total queue
    /// footprint the run provisioned, not a single instant's snapshot).
    pub scheduled_peak: usize,
    /// Peak simultaneously live connections — per-shard arena peaks,
    /// summed in shard order (capacity diagnostic, like
    /// [`scheduled_peak`](FleetMetrics::scheduled_peak)).
    pub peak_live: usize,
    /// Peak connection-arena heap bytes (columns + slot pool), summed
    /// over shards.
    pub arena_bytes_peak: usize,
    /// Connections that delivered their full object before the deadline.
    pub completed: u64,
    /// Connections cut off at the deadline.
    pub timed_out: u64,
    /// Deadline events that fired after their connection had already
    /// completed and were rejected by the arena's generation check.
    /// Each completed connection leaves exactly one such tombstone in
    /// the queue — this counter makes that queue bloat visible at 10^6
    /// connections instead of silent (the determinism suite pins
    /// `stale_deadline_pops == completed`).
    pub stale_deadline_pops: u64,
    /// Completion latency (ms), streaming mean/variance — no per-sample
    /// vector is ever retained. Accumulated per link, folded in global
    /// link order: bit-identical across shard counts and thread counts.
    pub latency_ms: Summary,
    /// Completion latency (ms), log-bucketed tail sketch.
    pub latency_sketch: QuantileSketch,
    /// Simulated time when the last event fired (max over shards).
    pub finished_at: Time,
}

impl FleetMetrics {
    fn empty() -> FleetMetrics {
        FleetMetrics {
            events: 0,
            scheduled_peak: 0,
            peak_live: 0,
            arena_bytes_peak: 0,
            completed: 0,
            timed_out: 0,
            stale_deadline_pops: 0,
            latency_ms: Summary::new(),
            latency_sketch: QuantileSketch::new(),
            finished_at: Time::ZERO,
        }
    }

    /// Median completion latency (ms).
    pub fn p50_ms(&self) -> f64 {
        self.latency_sketch.p50()
    }

    /// 99th-percentile completion latency (ms).
    pub fn p99_ms(&self) -> f64 {
        self.latency_sketch.p99()
    }

    /// 99.9th-percentile completion latency (ms).
    pub fn p999_ms(&self) -> f64 {
        self.latency_sketch.p999()
    }

    /// Peak arena bytes per connection at the concurrency high-water
    /// mark — the number the 650 B/connection budget gates.
    pub fn bytes_per_conn(&self) -> f64 {
        if self.peak_live == 0 {
            0.0
        } else {
            self.arena_bytes_peak as f64 / self.peak_live as f64
        }
    }

    /// The shard-invariant observables: bit-identical for `shards=1`
    /// serial, `shards=S` serial, and `shards=S` threaded, for any `S`
    /// (the `fleet_shard_differential` referee pins this).
    ///
    /// The capacity diagnostics (`scheduled_peak`, `peak_live`,
    /// `arena_bytes_peak`) are excluded: they are per-shard peaks summed
    /// in shard order, and a peak legitimately depends on which links
    /// share a queue/arena (four quarter-fleet peaks at different
    /// instants sum higher than one global peak). They *are* still exact
    /// between serial and threaded execution at a fixed shard count,
    /// which the referee checks via full `FleetMetrics` equality.
    pub fn observables(&self) -> FleetObservables {
        FleetObservables {
            events: self.events,
            completed: self.completed,
            timed_out: self.timed_out,
            stale_deadline_pops: self.stale_deadline_pops,
            latency_ms: self.latency_ms,
            latency_sketch: self.latency_sketch.clone(),
            finished_at: self.finished_at,
        }
    }
}

/// The subset of [`FleetMetrics`] that is invariant under sharding —
/// see [`FleetMetrics::observables`] for the contract.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetObservables {
    /// Events processed.
    pub events: u64,
    /// Connections completed before their deadline.
    pub completed: u64,
    /// Connections cut off at the deadline.
    pub timed_out: u64,
    /// Generation-rejected deadline tombstones popped.
    pub stale_deadline_pops: u64,
    /// Completion latency stream (ms).
    pub latency_ms: Summary,
    /// Completion latency tail sketch (ms).
    pub latency_sketch: QuantileSketch,
    /// Simulated time of the last event.
    pub finished_at: Time,
}

/// A contiguous, balanced partition of the fleet's link space into
/// shards. Links (and with them connections, `k % n_links`) are the unit
/// of sharding because they are the only state connections share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    n_links: usize,
    shards: usize,
}

impl ShardPlan {
    /// Plan `shards` shards over `n_links` links. The shard count is
    /// clamped to `[1, n_links]` — a shard must own at least one link.
    pub fn new(n_links: usize, shards: usize) -> ShardPlan {
        let n_links = n_links.max(1);
        ShardPlan {
            n_links,
            shards: shards.clamp(1, n_links),
        }
    }

    /// Number of shards after clamping.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total links being partitioned.
    pub fn n_links(&self) -> usize {
        self.n_links
    }

    /// Global link ids owned by shard `s`: the standard balanced split
    /// `s·L/S .. (s+1)·L/S`, so shard sizes differ by at most one even
    /// when `n_links` is not divisible by the shard count, and
    /// concatenating the ranges in shard order walks the links in global
    /// order (which is what pins the merge's Summary fold).
    pub fn link_range(&self, s: usize) -> Range<usize> {
        assert!(s < self.shards, "shard {s} out of {}", self.shards);
        (s * self.n_links / self.shards)..((s + 1) * self.n_links / self.shards)
    }
}

/// Per-world constants derived from the protocol config.
struct ProtoModel {
    mss: u32,
    init_cwnd: u32,
    max_cwnd: u32,
    /// Handshake RTTs when the client has no cached server state.
    hs_cold: u32,
    /// Handshake RTTs on a repeat visit (QUIC 0-RTT when enabled).
    hs_repeat: u32,
}

impl ProtoModel {
    fn of(proto: &ProtoConfig) -> ProtoModel {
        match proto {
            ProtoConfig::Quic(q) => {
                let mss = q.mss as u32;
                ProtoModel {
                    mss,
                    init_cwnd: q.cubic.initial_cwnd_packets as u32 * mss,
                    max_cwnd: q
                        .cubic
                        .max_cwnd_packets
                        .map_or(q.conn_recv_window_max, |p| p * q.mss)
                        as u32,
                    hs_cold: q.handshake_rtts(false),
                    hs_repeat: q.handshake_rtts(true),
                }
            }
            ProtoConfig::Tcp(t) => {
                let mss = t.mss as u32;
                ProtoModel {
                    mss,
                    init_cwnd: t.cubic.initial_cwnd_packets as u32 * mss,
                    max_cwnd: t
                        .cubic
                        .max_cwnd_packets
                        .map_or(t.recv_buffer, |p| p * t.mss) as u32,
                    hs_cold: t.handshake_rtts(),
                    hs_repeat: t.handshake_rtts(),
                }
            }
        }
    }
}

/// One shard's event loop over its owned link range. The queue is
/// borrowed so the serial path can reuse (and reset) one allocation
/// across every shard of the cell.
struct World<'a> {
    cfg: &'a FleetConfig,
    model: ProtoModel,
    queue: &'a mut EventQueue<FleetEvent>,
    arena: ConnArena,
    /// First global link id this shard owns (local index = global - lo).
    link_lo: usize,
    /// Fluid busy horizon per owned link (ns), locally indexed.
    link_busy_ns: Vec<u64>,
    /// Per-link completion-latency accumulators, locally indexed. Kept
    /// per link (not per shard) so the merge can fold them in global
    /// link order — the one pinned order every sharding reproduces.
    link_latency: Vec<Summary>,
    /// Serialization cost on the cross-traffic-reduced link (ns/byte).
    ns_per_byte: f64,
    buffer_ns: u64,
    metrics: FleetMetrics,
}

/// What one shard hands to the merge.
struct ShardRun {
    /// Shard-local metrics; `latency_ms` is left empty here (the merge
    /// folds `link_latency` instead, in global link order).
    metrics: FleetMetrics,
    /// Per-owned-link latency summaries, in link order.
    link_latency: Vec<Summary>,
}

/// Run one fleet cell to completion on a single shard (the whole link
/// space, serial). Deterministic in `cfg` (including `cfg.seed`) and
/// `proto`; independent of thread scheduling, the `LONGLOOK_SCHED`
/// backend, and everything else environmental — and, via
/// [`run_fleet_sharded`], bit-identical on the observables to any
/// sharded execution of the same cell.
pub fn run_fleet(proto: &ProtoConfig, cfg: &FleetConfig) -> FleetMetrics {
    run_fleet_sharded(proto, cfg, 1, Parallelism::Serial)
}

/// Run one fleet cell split into `shards` independent event loops over
/// the plan's link ranges, under `par`.
///
/// Serial execution (either `par` resolving to one job or a single
/// shard) runs the shards back to back through one reused event queue;
/// threaded execution fans the shards across the deterministic runner
/// and reassembles in shard order. Either way the merged
/// [`FleetMetrics::observables`] are bit-identical for every `(shards,
/// par)` combination, and the full metrics (capacity diagnostics
/// included) are bit-identical across `par` at fixed `shards`.
pub fn run_fleet_sharded(
    proto: &ProtoConfig,
    cfg: &FleetConfig,
    shards: usize,
    par: Parallelism,
) -> FleetMetrics {
    let plan = ShardPlan::new(cfg.n_links, shards);
    let runs: Vec<ShardRun> = if plan.shards() == 1 || par.jobs() == 1 {
        let mut queue = EventQueue::new(SchedKind::from_env());
        (0..plan.shards())
            .map(|s| {
                let run = run_shard(proto, cfg, plan.link_range(s), &mut queue);
                // A reset queue is observationally a fresh one (seq and
                // peak rewound), so this loop is bit-identical to the
                // threaded path's queue-per-shard.
                queue.reset();
                run
            })
            .collect()
    } else {
        run_ordered(par, plan.shards(), |s| {
            let mut queue = EventQueue::new(SchedKind::from_env());
            run_shard(proto, cfg, plan.link_range(s), &mut queue)
        })
    };
    let merged = merge_shards(runs);
    note_cell_events(merged.events);
    merged
}

/// Merge per-shard results in fixed shard order. Exactness argument:
/// counters sum in `u64`; the sketch merge is bucket-wise `u64` addition
/// (grouping-invariant, canonical representation); `finished_at` is a
/// max; and the float-order-sensitive Summary is folded from the
/// per-*link* accumulators — shard ranges are contiguous and ascending,
/// so shard-order concatenation *is* global link order, the same fold
/// sequence at any shard count.
fn merge_shards(runs: Vec<ShardRun>) -> FleetMetrics {
    let mut total = FleetMetrics::empty();
    for r in &runs {
        total.events += r.metrics.events;
        total.scheduled_peak += r.metrics.scheduled_peak;
        total.peak_live += r.metrics.peak_live;
        total.arena_bytes_peak += r.metrics.arena_bytes_peak;
        total.completed += r.metrics.completed;
        total.timed_out += r.metrics.timed_out;
        total.stale_deadline_pops += r.metrics.stale_deadline_pops;
        total.latency_sketch.merge(&r.metrics.latency_sketch);
        total.finished_at = total.finished_at.max(r.metrics.finished_at);
    }
    total.latency_ms = Summary::merge_all(runs.iter().flat_map(|r| r.link_latency.iter()));
    total
}

/// One shard's event loop: seed an arrival per owned link, drain.
fn run_shard(
    proto: &ProtoConfig,
    cfg: &FleetConfig,
    links: Range<usize>,
    queue: &mut EventQueue<FleetEvent>,
) -> ShardRun {
    debug_assert!(
        queue.is_empty() && queue.scheduled_peak() == 0,
        "shard queue must start (or reset to) fresh"
    );
    let n_links = cfg.n_links.max(1);
    let owned = links.len();
    // This shard admits the connections whose link lands in its range:
    // about n_conns * owned / n_links of them over the whole window.
    let approx_conns = (cfg.n_conns / n_links).saturating_mul(owned) + owned;
    let eff_mbps = cfg.link_mbps * (1.0 - cfg.cross_traffic_frac).max(1e-3);
    let mut w = World {
        cfg,
        model: ProtoModel::of(proto),
        queue,
        arena: ConnArena::with_capacity((approx_conns / 4).max(16)),
        link_lo: links.start,
        link_busy_ns: vec![0; owned],
        link_latency: vec![Summary::new(); owned],
        // mbps → bytes/ns is mbps / 8000; invert for ns/byte.
        ns_per_byte: 8000.0 / eff_mbps,
        buffer_ns: cfg.buffer.as_nanos(),
        metrics: FleetMetrics::empty(),
    };
    // Seed one arrival per owned link: client `l` is the first client of
    // link `l` (links assign round-robin, `k % n_links`), and arrivals
    // chain per link from there.
    for l in links {
        if l < cfg.n_conns {
            let t = w.arrival_time(l as u32);
            w.queue.push(Time::ZERO + t, FleetEvent::Arrival(l as u32));
        }
    }
    while let Some((now, ev)) = w.queue.pop() {
        w.metrics.events += 1;
        w.metrics.finished_at = now;
        match ev {
            FleetEvent::Arrival(k) => w.on_arrival(now, k),
            FleetEvent::Ack { h, delivered, lost } => w.on_ack(now, h, delivered, lost),
            FleetEvent::Deadline(h) => {
                if w.arena.free(h) {
                    w.metrics.timed_out += 1;
                } else {
                    // Completed connections freed their slot earlier and
                    // left this deadline behind as a tombstone; the
                    // generation check rejected the stale handle. Counted
                    // so the queue bloat is visible, and bounded: exactly
                    // one tombstone per completed connection.
                    w.metrics.stale_deadline_pops += 1;
                }
            }
        }
    }
    w.metrics.scheduled_peak = w.queue.scheduled_peak();
    w.metrics.peak_live = w.arena.live_peak();
    w.metrics.arena_bytes_peak = w.metrics.arena_bytes_peak.max(w.arena.bytes());
    ShardRun {
        metrics: w.metrics,
        link_latency: w.link_latency,
    }
}

impl World<'_> {
    /// Arrival offset of client `k` under the configured profile.
    fn arrival_time(&self, k: u32) -> Dur {
        let u = hash_unit(self.cfg.seed ^ SALT_ARRIVE, k.into());
        self.cfg
            .profile
            .time_at(self.cfg.window, k, self.cfg.n_conns as u32, u)
    }

    /// Local (shard-relative) index of a connection's link.
    #[inline]
    fn local_link(&self, i: usize) -> usize {
        let li = self.arena.link[i] as usize;
        debug_assert!(
            li >= self.link_lo && li - self.link_lo < self.link_busy_ns.len(),
            "connection routed to a link outside this shard"
        );
        li - self.link_lo
    }

    fn on_arrival(&mut self, now: Time, k: u32) {
        let n_links = self.cfg.n_links.max(1);
        // Chain to the next client of the *same* link (arrival times are
        // monotone in k, so the subsequence for one link is monotone too).
        let next = k as usize + n_links;
        if next < self.cfg.n_conns {
            let t = self.arrival_time(next as u32);
            self.queue
                .push(Time::ZERO + t, FleetEvent::Arrival(next as u32));
        }
        let object = fleet_object_bytes(hash_unit(self.cfg.seed ^ SALT_SIZE, k.into())) as u32;
        let rtt_jitter = hash_unit(self.cfg.seed ^ SALT_RTT, k.into());
        let rtt_us = (self.cfg.base_rtt.as_nanos() as f64 / 1_000.0
            * (1.0 + self.cfg.rtt_jitter_frac * rtt_jitter)) as u32;
        let h = self.arena.alloc(ConnInit {
            arrived: now,
            object,
            cwnd: self.model.init_cwnd,
            ssthresh: self.model.max_cwnd,
            rtt_us,
            client: k,
            link: (k as usize % n_links) as u16,
            server: (k as usize % self.cfg.n_servers.max(1)) as u16,
        });
        self.metrics.arena_bytes_peak = self.metrics.arena_bytes_peak.max(self.arena.bytes());
        self.queue
            .push(now + self.cfg.deadline, FleetEvent::Deadline(h));
        let repeat = hash_unit(self.cfg.seed ^ SALT_REPEAT, k.into()) < self.cfg.repeat_visit_frac;
        let hs_rtts = if repeat {
            self.model.hs_repeat
        } else {
            self.model.hs_cold
        };
        if hs_rtts == 0 {
            // 0-RTT: the first flight rides the handshake packet.
            self.send_flight(now, h);
        } else {
            let hs = Dur::from_nanos(u64::from(hs_rtts) * u64::from(rtt_us) * 1_000);
            self.queue.push(
                now + hs,
                FleetEvent::Ack {
                    h,
                    delivered: 0,
                    lost: false,
                },
            );
        }
    }

    /// Send one congestion window of data and schedule its ack, charging
    /// the shared link's fluid queue.
    fn send_flight(&mut self, now: Time, h: SlotHandle) {
        let i = self.arena.resolve(h).expect("send_flight on stale handle");
        let flight = self.arena.remaining[i].min(self.arena.cwnd[i]).max(1);
        let f = self.arena.flights[i];
        self.arena.flights[i] = f.saturating_add(1);
        let li = self.local_link(i);
        let now_ns = now.as_nanos();
        let wait_ns = self.link_busy_ns[li].saturating_sub(now_ns);
        let ser_ns = (f64::from(flight) * self.ns_per_byte).round() as u64;
        self.link_busy_ns[li] = self.link_busy_ns[li].max(now_ns) + ser_ns;
        // Congestion loss: the flight would queue past the buffer's drain
        // time. Random loss: an independent per-flight draw keyed by
        // (client id, flight) — injective over the full 32-bit flight
        // counter (the old key masked flights to 12 bits, aliasing flight
        // 4096 onto flight 0's draw) and keyed by the *client*, not the
        // arena slot, so the stream is invariant under sharding (slot
        // assignment depends on execution grouping). `hash_unit`'s
        // SplitMix64 finalizer does the 64-bit mixing.
        let key = (u64::from(self.arena.client[i]) << 32) | u64::from(f);
        let lost =
            wait_ns > self.buffer_ns || hash_unit(self.cfg.seed ^ SALT_LOSS, key) < self.cfg.loss;
        let delivered = if lost { flight / 2 } else { flight };
        let rtt_ns = u64::from(self.arena.rtt_us[i]) * 1_000;
        let service_ns = self.cfg.server_service.as_nanos() * (1 + u64::from(self.arena.server[i]));
        self.queue.push(
            now + Dur::from_nanos(wait_ns + ser_ns + rtt_ns + service_ns),
            FleetEvent::Ack { h, delivered, lost },
        );
    }

    fn on_ack(&mut self, now: Time, h: SlotHandle, delivered: u32, lost: bool) {
        // Stale = the deadline already retired this connection.
        let Some(i) = self.arena.resolve(h) else {
            return;
        };
        let mss = self.model.mss;
        if lost {
            self.arena.retx[i] = self.arena.retx[i].saturating_add(1);
            let half = (self.arena.cwnd[i] / 2).max(2 * mss);
            self.arena.ssthresh[i] = half;
            self.arena.cwnd[i] = half;
        } else if self.arena.cwnd[i] < self.arena.ssthresh[i] {
            // Slow start: grow by the bytes acked.
            self.arena.cwnd[i] =
                (self.arena.cwnd[i].saturating_add(delivered)).min(self.model.max_cwnd);
        } else {
            // Congestion avoidance: ~one MSS per cwnd of acked data.
            let grow = (u64::from(mss) * u64::from(delivered)
                / u64::from(self.arena.cwnd[i].max(1))) as u32;
            self.arena.cwnd[i] = (self.arena.cwnd[i].saturating_add(grow)).min(self.model.max_cwnd);
        }
        self.arena.remaining[i] = self.arena.remaining[i].saturating_sub(delivered);
        if self.arena.remaining[i] == 0 {
            let latency_ms = (now.as_nanos().saturating_sub(self.arena.arrived_ns[i])) as f64 / 1e6;
            let li = self.local_link(i);
            self.link_latency[li].add(latency_ms);
            self.metrics.latency_sketch.add(latency_ms);
            self.metrics.completed += 1;
            self.arena.free(h);
        } else {
            self.send_flight(now, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_partitions_the_link_space() {
        for (n_links, shards) in [(1, 1), (4, 4), (5, 3), (7, 2), (666, 4), (3, 9)] {
            let plan = ShardPlan::new(n_links, shards);
            assert!(plan.shards() >= 1 && plan.shards() <= n_links);
            let mut covered = Vec::new();
            for s in 0..plan.shards() {
                let r = plan.link_range(s);
                assert!(!r.is_empty(), "shard {s} of {plan:?} owns no links");
                covered.extend(r);
            }
            assert_eq!(
                covered,
                (0..n_links).collect::<Vec<_>>(),
                "{plan:?} is not a partition"
            );
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = (0..plan.shards())
                .map(|s| plan.link_range(s).len())
                .collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "{plan:?} unbalanced: {sizes:?}");
        }
    }

    #[test]
    fn shard_plan_clamps_degenerate_inputs() {
        assert_eq!(ShardPlan::new(8, 0).shards(), 1);
        assert_eq!(ShardPlan::new(8, 100).shards(), 8);
        assert_eq!(ShardPlan::new(0, 4).shards(), 1);
        assert_eq!(ShardPlan::new(0, 4).n_links(), 1);
    }

    #[test]
    fn loss_key_does_not_alias_across_flights() {
        // The old key masked flights to 12 bits: flight 4096 reused
        // flight 0's draw. The (client << 32) | flight key is injective,
        // so the hash inputs — and with overwhelming probability the
        // draws — differ.
        let client = 7u32;
        let draw = |f: u32| {
            let key = (u64::from(client) << 32) | u64::from(f);
            hash_unit(0xF1EE7 ^ SALT_LOSS, key)
        };
        assert_ne!(draw(0), draw(4096), "flight 4096 aliased flight 0");
        assert_ne!(draw(1), draw(4097));
        // And distinct clients get independent streams at equal flights.
        let other = u64::from(8u32) << 32;
        assert_ne!(draw(0), hash_unit(0xF1EE7 ^ SALT_LOSS, other));
    }
}
