//! The experiment runner: back-to-back protocol pairs, >= 10 rounds,
//! Welch-gated comparisons, heatmap sweeps.
//!
//! Methodology per Sec 3.3: "we run experiments in 10 rounds or more, each
//! consisting of a download using TCP and one using QUIC, back-to-back. We
//! present the percent differences in performance between TCP and QUIC and
//! indicate whether they are statistically significant (p < 0.01)."
//! Back-to-back here means the two protocols see the *same* round seed —
//! the identical network realization — which is a paired design stronger
//! than the paper's wall-clock adjacency.
//!
//! Every `_par` entry point shards its `(scenario, protocol, round)` cells
//! through [`run_ordered`], the chunked deterministic scheduler: results
//! are reassembled in cell order regardless of worker count or chunk size
//! (`LONGLOOK_JOBS` / `LONGLOOK_CHUNK`), and in debug builds the runner
//! wraps each cell in a `CellGuard` so a closure that leaked a `SimRng`
//! or `World` across cells panics naming both cells instead of silently
//! correlating rounds.

use crate::runner::{run_ordered, Parallelism};
use crate::testbed::{FlowSpec, NetProfile, ProxyTestbed, Testbed};
use longlook_http::app::WebClient;
use longlook_http::host::ProtoConfig;
use longlook_http::workload::PageSpec;
use longlook_sim::time::{Dur, Time};
use longlook_sim::DeviceProfile;
use longlook_stats::{Comparison, Heatmap, HeatmapCell};
use longlook_transport::ccstate::StateTrace;
use longlook_transport::conn::ConnStats;

/// One measurement scenario.
#[derive(Clone)]
pub struct Scenario {
    /// Emulated network.
    pub net: NetProfile,
    /// Client device model.
    pub device: DeviceProfile,
    /// Page to load.
    pub page: PageSpec,
    /// Rounds per protocol (paper: at least 10).
    pub rounds: u64,
    /// Base seed; round `k` uses `base_seed + k`.
    pub base_seed: u64,
    /// Whether the QUIC client holds 0-RTT state.
    pub zero_rtt: bool,
    /// Simulated-time budget per run.
    pub deadline: Dur,
}

impl Scenario {
    /// Defaults: desktop client, 10 rounds, 0-RTT warm, 10-minute budget.
    pub fn new(net: NetProfile, page: PageSpec) -> Self {
        Scenario {
            net,
            device: DeviceProfile::DESKTOP,
            page,
            rounds: 10,
            base_seed: 1,
            zero_rtt: true,
            deadline: Dur::from_secs(600),
        }
    }

    /// Builder: device model.
    pub fn on_device(mut self, device: DeviceProfile) -> Self {
        self.device = device;
        self
    }

    /// Builder: rounds.
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Builder: base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Builder: disable 0-RTT (cold cache).
    pub fn cold(mut self) -> Self {
        self.zero_rtt = false;
        self
    }
}

/// Everything one run produces. `PartialEq` compares every field, which
/// is what the determinism-equivalence suite relies on: two runs are
/// "identical" only if every counter, trace visit, and cwnd sample agrees.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Page load time; `None` if the deadline expired first.
    pub plt: Option<Dur>,
    /// Client connection counters.
    pub client_stats: ConnStats,
    /// Server connection counters (the instrumented side in the paper).
    pub server_stats: Option<ConnStats>,
    /// Server-side congestion-control state trace.
    pub server_trace: Option<StateTrace>,
    /// Server congestion window timeline.
    pub server_cwnd: Vec<(Time, u64)>,
    /// When the run's world clock stopped.
    pub ended_at: Time,
}

/// Load `sc.page` once over `proto` with per-round seed `round`.
pub fn run_page_load(proto: &ProtoConfig, sc: &Scenario, round: u64) -> RunRecord {
    let seed = sc.base_seed.wrapping_mul(1_000_003).wrapping_add(round);
    let net = per_round_net(sc, round);
    let mut tb = Testbed::direct(
        seed,
        &net,
        sc.device,
        sc.page.clone(),
        vec![FlowSpec {
            proto: proto.clone(),
            zero_rtt: sc.zero_rtt,
            app: Box::new(WebClient::new(sc.page.clone())),
        }],
        None,
        true,
    );
    tb.run(sc.deadline);
    crate::runner::note_cell_events(tb.world.events_processed());
    collect(&tb, sc)
}

/// Per-round network realization: the base RTT varies by ±3% from round
/// to round, modelling the path-latency noise any physical testbed has.
/// Without this, the deterministic simulator would report sub-percent
/// differences as maximally significant, which no real measurement could.
pub(crate) fn per_round_net(sc: &Scenario, round: u64) -> NetProfile {
    let mut net = sc.net.clone();
    let u = longlook_sim::rng::hash_unit(sc.base_seed ^ 0xA11CE, round);
    net.rtt = net.rtt.mul_f64(0.97 + 0.06 * u);
    net
}

fn collect(tb: &Testbed, _sc: &Scenario) -> RunRecord {
    let now = tb.world.now();
    let host = tb.client_host();
    let app = host.app::<WebClient>(0);
    let flow = tb.flows[0];
    let server = tb.server_host();
    RunRecord {
        plt: app.plt(),
        client_stats: host.conn_stats(0),
        server_stats: server.conn_stats(flow),
        server_trace: server.state_trace(flow, now),
        server_cwnd: server
            .cwnd_timeline(flow)
            .map(<[(Time, u64)]>::to_vec)
            .unwrap_or_default(),
        ended_at: now,
    }
}

/// Load the page through a midpoint proxy.
pub fn run_page_load_proxied(
    down: &ProtoConfig,
    up: &ProtoConfig,
    sc: &Scenario,
    round: u64,
) -> Option<Dur> {
    let seed = sc.base_seed.wrapping_mul(1_000_003).wrapping_add(round);
    let mut tb = ProxyTestbed::midpoint(
        seed,
        &sc.net,
        sc.device,
        sc.page.clone(),
        down.clone(),
        up.clone(),
        sc.zero_rtt,
        Box::new(WebClient::new(sc.page.clone())),
    );
    tb.run(sc.deadline);
    crate::runner::note_cell_events(tb.world.events_processed());
    tb.client_host().app::<WebClient>(0).plt()
}

/// PLT samples in milliseconds over all rounds (deadline misses are
/// recorded at the deadline — a conservative penalty). Rounds are sharded
/// across [`Parallelism::auto`] workers; results keep round order.
pub fn plt_samples(proto: &ProtoConfig, sc: &Scenario) -> Vec<f64> {
    plt_samples_par(proto, sc, Parallelism::auto())
}

/// [`plt_samples`] under an explicit parallelism policy.
pub fn plt_samples_par(proto: &ProtoConfig, sc: &Scenario, par: Parallelism) -> Vec<f64> {
    run_ordered(par, sc.rounds as usize, |k| {
        run_page_load(proto, sc, k as u64)
            .plt
            .unwrap_or(sc.deadline)
            .as_millis_f64()
    })
}

/// Full records over all rounds, sharded across [`Parallelism::auto`]
/// workers; the returned vector is in round order regardless of which
/// worker ran which round.
pub fn run_records(proto: &ProtoConfig, sc: &Scenario) -> Vec<RunRecord> {
    run_records_par(proto, sc, Parallelism::auto())
}

/// [`run_records`] under an explicit parallelism policy.
pub fn run_records_par(proto: &ProtoConfig, sc: &Scenario, par: Parallelism) -> Vec<RunRecord> {
    run_ordered(par, sc.rounds as usize, |k| {
        run_page_load(proto, sc, k as u64)
    })
}

/// A finished QUIC-vs-TCP comparison for one scenario.
pub struct PairResult {
    /// The statistical comparison (positive percent = QUIC faster).
    pub comparison: Comparison,
    /// QUIC PLT samples (ms).
    pub quic_ms: Vec<f64>,
    /// TCP PLT samples (ms).
    pub tcp_ms: Vec<f64>,
}

/// Run both protocols back-to-back and compare PLTs.
pub fn compare_pair(quic: &ProtoConfig, tcp: &ProtoConfig, sc: &Scenario) -> PairResult {
    compare_pair_par(quic, tcp, sc, Parallelism::auto())
}

/// [`compare_pair`] under an explicit parallelism policy. Both protocols'
/// rounds go into one shard pool (2×rounds independent cells), so the
/// worker set stays busy even when one protocol's runs are much slower.
pub fn compare_pair_par(
    quic: &ProtoConfig,
    tcp: &ProtoConfig,
    sc: &Scenario,
    par: Parallelism,
) -> PairResult {
    let n = sc.rounds as usize;
    let mut all = run_ordered(par, 2 * n, |i| {
        let (proto, k) = if i < n { (quic, i) } else { (tcp, i - n) };
        run_page_load(proto, sc, k as u64)
            .plt
            .unwrap_or(sc.deadline)
            .as_millis_f64()
    });
    let tcp_ms = all.split_off(n);
    let quic_ms = all;
    PairResult {
        comparison: Comparison::lower_is_better(&quic_ms, &tcp_ms),
        quic_ms,
        tcp_ms,
    }
}

/// Sweep a full heatmap: rows x columns of scenarios, one Welch-gated
/// cell each. `make_scenario(row, col)` builds the scenario (serially, so
/// it may be stateful); the `(cell, protocol, round)` runs themselves are
/// sharded across [`Parallelism::auto`] workers.
pub fn sweep_heatmap(
    title: &str,
    row_labels: &[String],
    col_labels: &[String],
    quic: &ProtoConfig,
    tcp: &ProtoConfig,
    make_scenario: impl FnMut(usize, usize) -> Scenario,
) -> Heatmap {
    sweep_heatmap_par(
        title,
        row_labels,
        col_labels,
        quic,
        tcp,
        make_scenario,
        Parallelism::auto(),
    )
}

/// [`sweep_heatmap`] under an explicit parallelism policy. The whole
/// matrix is flattened into one `(cell, protocol, round)` work list so a
/// single slow cell cannot straggle behind a per-cell partition; samples
/// are reassembled into per-cell round order before the Welch gate runs,
/// which makes the verdicts bit-identical to a serial sweep.
#[allow(clippy::too_many_arguments)]
pub fn sweep_heatmap_par(
    title: &str,
    row_labels: &[String],
    col_labels: &[String],
    quic: &ProtoConfig,
    tcp: &ProtoConfig,
    mut make_scenario: impl FnMut(usize, usize) -> Scenario,
    par: Parallelism,
) -> Heatmap {
    let ncols = col_labels.len();
    let mut scenarios = Vec::with_capacity(row_labels.len() * ncols);
    for r in 0..row_labels.len() {
        for c in 0..ncols {
            scenarios.push(make_scenario(r, c));
        }
    }

    // Flatten to (scenario, candidate?, round) cells, candidate (QUIC)
    // rounds first within each scenario — the same sample order the
    // serial `compare_pair` produced.
    let mut cells = Vec::new();
    for (s, sc) in scenarios.iter().enumerate() {
        for cand in [true, false] {
            for k in 0..sc.rounds {
                cells.push((s, cand, k));
            }
        }
    }
    let samples = run_ordered(par, cells.len(), |i| {
        let (s, cand, k) = cells[i];
        let sc = &scenarios[s];
        let proto = if cand { quic } else { tcp };
        run_page_load(proto, sc, k)
            .plt
            .unwrap_or(sc.deadline)
            .as_millis_f64()
    });

    let mut map = Heatmap::new(title, row_labels.to_vec(), col_labels.to_vec());
    let mut pos = 0;
    for (s, sc) in scenarios.iter().enumerate() {
        let n = sc.rounds as usize;
        let quic_ms = &samples[pos..pos + n];
        let tcp_ms = &samples[pos + n..pos + 2 * n];
        pos += 2 * n;
        let cmp = Comparison::lower_is_better(quic_ms, tcp_ms);
        map.set(s / ncols, s % ncols, HeatmapCell::from_comparison(&cmp));
    }
    map
}

/// Generic sweep comparing any two PLT-producing closures (used for
/// QUIC-vs-QUIC ablations like Fig 7's 0-RTT on/off and the proxy
/// figures). `run(candidate?, row, col, round)` returns a PLT in ms; it
/// must be thread-safe because rounds are sharded across
/// [`Parallelism::auto`] workers.
pub fn sweep_heatmap_with(
    title: &str,
    row_labels: &[String],
    col_labels: &[String],
    rounds: u64,
    run: impl Fn(bool, usize, usize, u64) -> f64 + Sync,
) -> Heatmap {
    sweep_heatmap_with_par(
        title,
        row_labels,
        col_labels,
        rounds,
        run,
        Parallelism::auto(),
    )
}

/// [`sweep_heatmap_with`] under an explicit parallelism policy.
pub fn sweep_heatmap_with_par(
    title: &str,
    row_labels: &[String],
    col_labels: &[String],
    rounds: u64,
    run: impl Fn(bool, usize, usize, u64) -> f64 + Sync,
    par: Parallelism,
) -> Heatmap {
    let ncols = col_labels.len();
    let mut cells = Vec::new();
    for r in 0..row_labels.len() {
        for c in 0..ncols {
            for cand in [true, false] {
                for k in 0..rounds {
                    cells.push((r, c, cand, k));
                }
            }
        }
    }
    let samples = run_ordered(par, cells.len(), |i| {
        let (r, c, cand, k) = cells[i];
        run(cand, r, c, k)
    });

    let n = rounds as usize;
    let mut map = Heatmap::new(title, row_labels.to_vec(), col_labels.to_vec());
    let mut pos = 0;
    for r in 0..row_labels.len() {
        for c in 0..ncols {
            let cand = &samples[pos..pos + n];
            let base = &samples[pos + n..pos + 2 * n];
            pos += 2 * n;
            let cmp = Comparison::lower_is_better(cand, base);
            map.set(r, c, HeatmapCell::from_comparison(&cmp));
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use longlook_quic::QuicConfig;
    use longlook_stats::Verdict;
    use longlook_tcp::TcpConfig;

    fn quic() -> ProtoConfig {
        ProtoConfig::Quic(QuicConfig::default())
    }

    fn tcp() -> ProtoConfig {
        ProtoConfig::Tcp(TcpConfig::default())
    }

    #[test]
    fn single_run_produces_full_record() {
        let sc =
            Scenario::new(NetProfile::baseline(10.0), PageSpec::single(50 * 1024)).with_rounds(1);
        let rec = run_page_load(&quic(), &sc, 0);
        assert!(rec.plt.is_some());
        assert!(rec.client_stats.packets_sent > 0);
        let srv = rec.server_stats.expect("server connection existed");
        assert!(srv.packets_sent > 0);
        let trace = rec.server_trace.expect("trace");
        assert!(!trace.visits.is_empty());
        assert!(!rec.server_cwnd.is_empty());
    }

    #[test]
    fn paired_comparison_small_object_quic_wins() {
        let sc =
            Scenario::new(NetProfile::baseline(10.0), PageSpec::single(10 * 1024)).with_rounds(5);
        let pair = compare_pair(&quic(), &tcp(), &sc);
        assert_eq!(pair.comparison.verdict, Verdict::CandidateWins);
        assert!(
            pair.comparison.percent > 20.0,
            "{}",
            pair.comparison.percent
        );
    }

    #[test]
    fn sweep_builds_shaped_heatmap() {
        let rows = vec!["10Mbps".to_string()];
        let cols = vec!["10KB".to_string(), "100KB".to_string()];
        let sizes = [10 * 1024, 100 * 1024];
        let map = sweep_heatmap("mini", &rows, &cols, &quic(), &tcp(), |_r, c| {
            Scenario::new(NetProfile::baseline(10.0), PageSpec::single(sizes[c])).with_rounds(4)
        });
        assert_eq!(map.cells.len(), 1);
        assert_eq!(map.cells[0].len(), 2);
        let (red, _, _) = map.verdict_counts();
        assert!(red >= 1, "QUIC should win at least one cell");
    }

    #[test]
    fn deterministic_given_seed() {
        let sc =
            Scenario::new(NetProfile::baseline(10.0), PageSpec::single(50 * 1024)).with_rounds(2);
        assert_eq!(plt_samples(&quic(), &sc), plt_samples(&quic(), &sc));
    }
}
