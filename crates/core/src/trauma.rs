//! Trauma cells: page loads run under a deterministic [`FaultPlan`] with
//! everything the fault-injection oracles need extracted alongside the
//! ordinary [`RunRecord`].
//!
//! A trauma cell is the fuzzer's unit of work: one protocol, one
//! scenario whose `net.fault` carries the schedule, one round. The record
//! keeps the run outcome (no silent livelock means the world either
//! stopped or went idle before the deadline), both endpoints' typed
//! errors, and the client's app-level delivered byte count (the wire
//! level would double-count duplicated packets).

use crate::experiment::{per_round_net, RunRecord, Scenario};
use crate::runner::{run_ordered, Parallelism};
use crate::testbed::{FlowSpec, Testbed};
use longlook_http::app::{ClientApp, WebClient};
use longlook_http::host::ProtoConfig;
use longlook_sim::time::Time;
use longlook_sim::trace::{merge_by_time, TraceRecord};
use longlook_sim::RunOutcome;
use longlook_transport::ccstate::StateTrace;
use longlook_transport::conn::{ConnError, ConnStats};

/// Everything one faulted run produces. `PartialEq` compares every field
/// so same-seed replay equality is exact (the determinism oracle).
#[derive(Debug, Clone, PartialEq)]
pub struct TraumaRecord {
    /// The ordinary run record (PLT, counters, trace, cwnd).
    pub record: RunRecord,
    /// How the world loop ended.
    pub outcome: RunOutcome,
    /// Whether the page load finished.
    pub completed: bool,
    /// Client connection's terminal error, if it gave up.
    pub client_error: Option<ConnError>,
    /// Server connection's terminal error, if it gave up.
    pub server_error: Option<ConnError>,
    /// App-level response bytes delivered in order to the client. Unlike
    /// wire counters this cannot be inflated by duplication faults.
    pub app_bytes: u64,
}

impl TraumaRecord {
    /// The run terminated cleanly: completed, or surfaced a typed error
    /// on at least one endpoint before the deadline. The negation is the
    /// "silent livelock" the fuzzer's oracle hunts.
    pub fn accounted_for(&self) -> bool {
        self.completed || self.client_error.is_some() || self.server_error.is_some()
    }
}

/// Run one trauma cell: same seeding and per-round network realization
/// as [`crate::experiment::run_page_load`], plus the oracle extras.
pub fn run_trauma_cell(proto: &ProtoConfig, sc: &Scenario, round: u64) -> TraumaRecord {
    run_trauma_cell_inner(proto, sc, round).0
}

/// Run one trauma cell with the structured trace layer forced on for the
/// duration of the run (`LONGLOOK_TRACE=on`; the previous value is
/// restored afterwards — env vars are process-global, so concurrent
/// tests flipping trace spellings must serialize, as the referee suites
/// do). Returns the record plus the server connection's event trace
/// merged with the fault plan's synthesized window edges, so the trace
/// explains *when* the network was faulted as well as how the transport
/// reacted.
pub fn run_trauma_cell_traced(
    proto: &ProtoConfig,
    sc: &Scenario,
    round: u64,
) -> (TraumaRecord, Vec<TraceRecord>) {
    let saved = std::env::var("LONGLOOK_TRACE").ok();
    std::env::set_var("LONGLOOK_TRACE", "on");
    let (rec, conn_trace) = run_trauma_cell_inner(proto, sc, round);
    match saved {
        Some(v) => std::env::set_var("LONGLOOK_TRACE", v),
        None => std::env::remove_var("LONGLOOK_TRACE"),
    }
    let edges = per_round_net(sc, round)
        .fault
        .map(|p| p.trace_window_edges())
        .unwrap_or_default();
    (rec, merge_by_time(&conn_trace, &edges))
}

fn run_trauma_cell_inner(
    proto: &ProtoConfig,
    sc: &Scenario,
    round: u64,
) -> (TraumaRecord, Vec<TraceRecord>) {
    let seed = sc.base_seed.wrapping_mul(1_000_003).wrapping_add(round);
    let net = per_round_net(sc, round);
    let mut tb = Testbed::direct(
        seed,
        &net,
        sc.device,
        sc.page.clone(),
        vec![FlowSpec {
            proto: proto.clone(),
            zero_rtt: sc.zero_rtt,
            app: Box::new(WebClient::new(sc.page.clone())),
        }],
        None,
        true,
    );
    let outcome = tb.world.run_until(Time::ZERO + sc.deadline);
    crate::runner::note_cell_events(tb.world.events_processed());

    let now = tb.world.now();
    let host = tb.client_host();
    let app = host.app::<WebClient>(0);
    let flow = tb.flows[0];
    let server = tb.server_host();
    let record = RunRecord {
        plt: app.plt(),
        client_stats: host.conn_stats(0),
        server_stats: server.conn_stats(flow),
        server_trace: server.state_trace(flow, now),
        server_cwnd: server
            .cwnd_timeline(flow)
            .map(<[(Time, u64)]>::to_vec)
            .unwrap_or_default(),
        ended_at: now,
    };
    let conn_trace = server
        .conn_trace(flow)
        .map(<[_]>::to_vec)
        .unwrap_or_default();
    let rec = TraumaRecord {
        completed: app.done(),
        app_bytes: app.har().iter().map(|r| r.bytes).sum(),
        client_error: host.conn_error(0),
        server_error: server.conn_error(flow),
        outcome,
        record,
    };
    (rec, conn_trace)
}

/// All rounds of a trauma scenario, sharded like
/// [`crate::experiment::run_records_par`]; results keep round order.
pub fn run_trauma_records_par(
    proto: &ProtoConfig,
    sc: &Scenario,
    par: Parallelism,
) -> Vec<TraumaRecord> {
    run_ordered(par, sc.rounds as usize, |k| {
        run_trauma_cell(proto, sc, k as u64)
    })
}

/// Convenience accessor used by reports and oracles: the server's
/// counters or zeroed stats when no server connection ever existed (a
/// blackout can eat the entire first flight).
pub fn server_stats_or_zero(rec: &TraumaRecord) -> ConnStats {
    rec.record.server_stats.unwrap_or_default()
}

/// The server trace, if a server connection ever existed.
pub fn server_trace(rec: &TraumaRecord) -> Option<&StateTrace> {
    rec.record.server_trace.as_ref()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::NetProfile;
    use longlook_http::workload::PageSpec;
    use longlook_quic::QuicConfig;
    use longlook_sim::fault::{FaultDir, FaultEvent, FaultKind, FaultPlan};
    use longlook_sim::time::Dur;
    use longlook_tcp::TcpConfig;

    fn faulted_scenario(plan: FaultPlan) -> Scenario {
        Scenario::new(
            NetProfile::baseline(5.0).with_fault(plan),
            PageSpec::single(60 * 1024),
        )
        .with_rounds(1)
        .with_seed(4242)
    }

    #[test]
    fn clean_fault_plan_still_completes() {
        // A plan whose windows sit far past the page load is a no-op.
        let plan = FaultPlan::new().with_event(FaultEvent {
            at: Time::ZERO + Dur::from_secs(500),
            dur: Dur::from_secs(1),
            dir: FaultDir::Both,
            kind: FaultKind::Blackout,
        });
        for proto in [
            ProtoConfig::Quic(QuicConfig::default()),
            ProtoConfig::Tcp(TcpConfig::default()),
        ] {
            let rec = run_trauma_cell(&proto, &faulted_scenario(plan.clone()), 0);
            assert!(rec.completed, "{}: load must complete", proto.name());
            assert!(rec.accounted_for());
            assert!(rec.app_bytes > 0);
            assert_eq!(rec.client_error, None);
        }
    }

    #[test]
    fn same_seed_same_trauma_record() {
        let plan = FaultPlan::new().with_event(FaultEvent {
            at: Time::ZERO + Dur::from_millis(100),
            dur: Dur::from_millis(400),
            dir: FaultDir::Both,
            kind: FaultKind::Blackout,
        });
        let sc = faulted_scenario(plan);
        let proto = ProtoConfig::Quic(QuicConfig::default());
        let a = run_trauma_cell(&proto, &sc, 0);
        let b = run_trauma_cell(&proto, &sc, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn blackout_past_deadline_surfaces_typed_error() {
        // A blackout covering the whole run: the handshake can never
        // complete, so the armed watchdog must surface a typed error and
        // the world must go idle rather than run to the deadline.
        let plan = FaultPlan::new().with_event(FaultEvent {
            at: Time::ZERO,
            dur: Dur::from_secs(600),
            dir: FaultDir::Both,
            kind: FaultKind::Blackout,
        });
        let mut sc = faulted_scenario(plan);
        sc.deadline = Dur::from_secs(120);
        for proto in [
            ProtoConfig::Quic(QuicConfig::default()),
            ProtoConfig::Tcp(TcpConfig::default()),
        ] {
            let rec = run_trauma_cell(&proto, &sc, 0);
            assert!(!rec.completed, "{}: nothing can complete", proto.name());
            // A warm 0-RTT QUIC client is locally "established" from t=0,
            // so its watchdog reads the dead path as idleness; the TCP
            // client is still in the SYN handshake.
            let expect = match &proto {
                ProtoConfig::Quic(_) => ConnError::IdleTimeout,
                ProtoConfig::Tcp(_) => ConnError::HandshakeTimeout,
            };
            assert_eq!(
                rec.client_error,
                Some(expect),
                "{}: client must give up with a typed error",
                proto.name()
            );
            assert!(rec.accounted_for());
            assert_ne!(
                rec.outcome,
                RunOutcome::DeadlineReached,
                "{}: the world must quiesce, not spin to the deadline",
                proto.name()
            );
        }
    }
}
