//! `longlook` — a rigorous evaluation framework for rapidly evolving
//! application-layer transport protocols.
//!
//! This crate is the reproduction of the methodology of *"Taking a Long
//! Look at QUIC"* (Kakhki et al., IMC 2017): a deterministic testbed for
//! head-to-head transport comparisons with
//!
//! * **calibration** against a deployed reference configuration
//!   ([`calibration`], Sec 4.1 / Fig 2),
//! * **back-to-back paired experiments** with Welch-gated significance
//!   ([`experiment`], Sec 3.3 / 5.2),
//! * **state-machine inference from execution traces** for root-cause
//!   analysis ([`rootcause`], Sec 4.2 / Figs 3, 13),
//! * **fairness instrumentation** on shared bottlenecks ([`fairness`],
//!   Sec 5.1 / Fig 4-5 / Table 4),
//! * **a protocol version model** for longitudinal comparison
//!   ([`versions`], Sec 5.4), and
//! * **operational-network profiles** ([`cellular`], Table 5 / Fig 14).
//!
//! # Quickstart
//!
//! ```
//! use longlook_core::prelude::*;
//!
//! // Compare QUIC and TCP loading a 100 KB page at 10 Mbps, 36 ms RTT.
//! let scenario = Scenario::new(
//!     NetProfile::baseline(10.0),
//!     PageSpec::single(100 * 1024),
//! ).with_rounds(5);
//! let result = compare_pair(
//!     &ProtoConfig::Quic(QuicConfig::default()),
//!     &ProtoConfig::Tcp(TcpConfig::default()),
//!     &scenario,
//! );
//! println!("QUIC is {:+.0}% vs TCP (p gate: {:?})",
//!          result.comparison.percent, result.comparison.verdict);
//! assert!(result.comparison.percent > 0.0);
//! ```

pub mod calibration;
pub mod cellular;
pub mod experiment;
pub mod fairness;
pub mod fleet;
pub mod params;
pub mod rootcause;
pub mod runner;
pub mod testbed;
pub mod traceview;
pub mod trauma;
pub mod versions;

/// Everything a downstream experiment typically needs.
pub mod prelude {
    pub use crate::calibration::{
        fig2_measure, grey_box_search, reference_plt_ms, Candidate, ServerProfile,
    };
    pub use crate::cellular::{render_table5, CellProfile, CELL_PROFILES};
    pub use crate::experiment::{
        compare_pair, compare_pair_par, plt_samples, plt_samples_par, run_page_load,
        run_page_load_proxied, run_records, run_records_par, sweep_heatmap, sweep_heatmap_par,
        sweep_heatmap_with, sweep_heatmap_with_par, PairResult, RunRecord, Scenario,
    };
    pub use crate::fairness::{
        fairness_net, quic_vs_n_tcp, run_fairness, FairnessRun, FlowThroughput,
    };
    pub use crate::fleet::{
        fleet_heatmap, fleet_n, fleet_shards, run_fleet, run_fleet_sharded, ArrivalProfile,
        ConnArena, ConnInit, FleetConfig, FleetMetrics, FleetObservables, ShardPlan,
    };
    pub use crate::params::{render_table1, ParameterSpace};
    pub use crate::rootcause::{compare_machines, infer_from_records, infer_from_traces};
    pub use crate::runner::{
        run_ordered, run_ordered_chunked, run_ordered_reporting, Parallelism, RunnerReport,
    };
    pub use crate::testbed::{FlowSpec, NetProfile, ProxyTestbed, Testbed};
    pub use crate::traceview::{
        dwell_table, fault_windows, loss_episodes, render_report, render_timeline, FaultWindow,
        LossEpisode,
    };
    pub use crate::trauma::{
        run_trauma_cell, run_trauma_cell_traced, run_trauma_records_par, TraumaRecord,
    };
    pub use crate::versions::QuicVersion;
    pub use longlook_http::app::{BulkClient, ClientApp, WebClient};
    pub use longlook_http::host::{ClientHost, ProtoConfig, ServerHost, WaitModel};
    pub use longlook_http::workload::{table2, PageSpec};
    pub use longlook_quic::{CcKind, QuicConfig};
    pub use longlook_sim::time::{Dur, Time};
    pub use longlook_sim::{
        DeviceProfile, FaultDir, FaultEvent, FaultKind, FaultPlan, GeParams, Jitter, PeerSide,
        RateSchedule, ReorderSpec, RunOutcome,
    };
    pub use longlook_stats::{Comparison, Heatmap, HeatmapCell, Summary, Verdict};
    pub use longlook_tcp::TcpConfig;
    pub use longlook_transport::conn::ConnError;
    pub use longlook_video::{QoeMetrics, VideoClient, VideoConfig, QUALITIES};
}
