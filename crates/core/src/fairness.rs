//! Fairness experiments (paper Sec 5.1, Fig 4/5, Table 4): competing
//! flows on one bottleneck.
//!
//! Setup per the paper: a shared 5 Mbps link, RTT 36 ms, 30 KB drop-tail
//! buffer; each flow bulk-downloads a 210 MB object. The finding to
//! reproduce: although both protocols run Cubic, one QUIC flow takes
//! roughly *twice* the bandwidth of the competing TCP flows combined —
//! driven by N-connection emulation and per-ack window growth.

use crate::testbed::{FlowSpec, NetProfile, Testbed};
use longlook_http::app::BulkClient;
use longlook_http::host::ProtoConfig;
use longlook_http::workload::PageSpec;
use longlook_sim::time::{Dur, Time};
use longlook_sim::DeviceProfile;

/// The paper's bottleneck for these tests.
pub fn fairness_net() -> NetProfile {
    NetProfile::baseline(5.0).with_buffer(30 * 1024)
}

/// Result for one competing flow.
#[derive(Debug, Clone)]
pub struct FlowThroughput {
    /// Flow label (e.g. "QUIC", "TCP 1").
    pub label: String,
    /// Mean throughput over the measurement window, Mbps.
    pub mean_mbps: f64,
    /// Per-second throughput timeline, Mbps.
    pub timeline_mbps: Vec<f64>,
}

/// Result of one fairness run.
#[derive(Debug, Clone)]
pub struct FairnessRun {
    /// Per-flow outcomes, in the order the flows were specified.
    pub flows: Vec<FlowThroughput>,
}

impl FairnessRun {
    /// Throughput of flow 0 divided by the mean of the rest.
    pub fn first_vs_rest_ratio(&self) -> f64 {
        if self.flows.len() < 2 {
            return 1.0;
        }
        let rest: f64 = self.flows[1..].iter().map(|f| f.mean_mbps).sum::<f64>()
            / (self.flows.len() - 1) as f64;
        if rest == 0.0 {
            f64::INFINITY
        } else {
            self.flows[0].mean_mbps / rest
        }
    }
}

/// Run `flows` (label, protocol) concurrently over the shared bottleneck
/// for `duration`; throughput is measured in 1-second buckets, skipping
/// the first 2 seconds of warm-up.
pub fn run_fairness(
    flows: &[(String, ProtoConfig)],
    net: &NetProfile,
    duration: Dur,
    seed: u64,
) -> FairnessRun {
    // Per-run path-latency noise, as in the PLT experiments.
    let mut net = net.clone();
    let u = longlook_sim::rng::hash_unit(seed ^ 0xFA1A, 0);
    net.rtt = net.rtt.mul_f64(0.97 + 0.06 * u);
    let net = &net;
    // The server must have a huge object: 210 MB (catalog entry 0).
    let catalog = PageSpec::single(210 * 1024 * 1024);
    // Stagger flow starts by 200 ms each so handshakes don't collide in
    // the 30 KB bottleneck buffer (processes never start in lockstep).
    let specs: Vec<FlowSpec> = flows
        .iter()
        .enumerate()
        .map(|(i, (_, proto))| FlowSpec {
            proto: proto.clone(),
            zero_rtt: true,
            app: Box::new(BulkClient::with_delay(
                0,
                Dur::from_secs(1),
                Dur::from_millis(200 * i as u64),
            )),
        })
        .collect();
    let mut tb = Testbed::direct(
        seed,
        net,
        DeviceProfile::DESKTOP,
        catalog,
        specs,
        None,
        false,
    );
    tb.world.run_until(Time::ZERO + duration);
    let host = tb.client_host();
    let mut out = Vec::new();
    let full_buckets = (duration.as_secs_f64()).floor() as usize;
    for (i, (label, _)) in flows.iter().enumerate() {
        let app = host.app::<BulkClient>(i);
        let mut tl = app.throughput_mbps();
        // Pad to the full window (a stalled flow's silence counts as zero
        // throughput), then trim warm-up and the partial final bucket.
        if tl.len() < full_buckets {
            tl.resize(full_buckets, 0.0);
        }
        let skip = 2.min(tl.len());
        tl.drain(..skip);
        if !tl.is_empty() {
            tl.pop();
        }
        let mean = if tl.is_empty() {
            0.0
        } else {
            tl.iter().sum::<f64>() / tl.len() as f64
        };
        out.push(FlowThroughput {
            label: label.clone(),
            mean_mbps: mean,
            timeline_mbps: tl,
        });
    }
    FairnessRun { flows: out }
}

/// The paper's Table 4 scenarios: QUIC vs N competing TCP flows.
pub fn quic_vs_n_tcp(
    quic: &ProtoConfig,
    tcp: &ProtoConfig,
    n_tcp: usize,
    duration: Dur,
    seed: u64,
) -> FairnessRun {
    let mut flows = vec![("QUIC".to_string(), quic.clone())];
    for k in 1..=n_tcp {
        flows.push((format!("TCP {k}"), tcp.clone()));
    }
    run_fairness(&flows, &fairness_net(), duration, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use longlook_quic::QuicConfig;
    use longlook_tcp::TcpConfig;

    fn quic() -> ProtoConfig {
        ProtoConfig::Quic(QuicConfig::default())
    }

    fn tcp() -> ProtoConfig {
        ProtoConfig::Tcp(TcpConfig::default())
    }

    #[test]
    fn two_quic_flows_share_fairly() {
        let run = run_fairness(
            &[("QUIC A".into(), quic()), ("QUIC B".into(), quic())],
            &fairness_net(),
            Dur::from_secs(30),
            1,
        );
        let ratio = run.first_vs_rest_ratio();
        assert!(
            (0.6..1.67).contains(&ratio),
            "same-protocol flows split evenly: ratio = {ratio:.2}"
        );
    }

    #[test]
    fn quic_beats_tcp_for_bandwidth() {
        let run = quic_vs_n_tcp(&quic(), &tcp(), 1, Dur::from_secs(30), 2);
        let ratio = run.first_vs_rest_ratio();
        assert!(
            ratio > 1.3,
            "QUIC should take well over its fair share: ratio = {ratio:.2} ({:?})",
            run.flows.iter().map(|f| f.mean_mbps).collect::<Vec<_>>()
        );
    }

    #[test]
    fn link_is_fully_utilized() {
        let run = quic_vs_n_tcp(&quic(), &tcp(), 1, Dur::from_secs(30), 3);
        let total: f64 = run.flows.iter().map(|f| f.mean_mbps).sum();
        assert!(
            total > 3.5 && total < 5.5,
            "aggregate goodput near the 5 Mbps cap: {total:.2}"
        );
    }

    #[test]
    fn timelines_have_expected_length() {
        let run = quic_vs_n_tcp(&quic(), &tcp(), 2, Dur::from_secs(20), 4);
        assert_eq!(run.flows.len(), 3);
        for f in &run.flows {
            assert!(f.timeline_mbps.len() >= 15, "{}", f.timeline_mbps.len());
        }
    }
}
