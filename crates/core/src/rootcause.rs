//! Root-cause analysis: turning execution traces into inferred state
//! machines and side-by-side reports (paper Figs 3 and 13).

use crate::experiment::RunRecord;
use longlook_sim::time::Time;
use longlook_sim::trace::TraceRecord;
use longlook_statemachine::{
    infer, trace_from_records, trace_from_transport, InferredMachine, Trace,
};
use longlook_transport::ccstate::StateTrace;
use std::fmt::Write as _;

/// Infer a machine from server-side state traces of finished runs.
pub fn infer_from_records(records: &[RunRecord]) -> InferredMachine {
    let traces: Vec<Trace> = records
        .iter()
        .filter_map(|r| {
            r.server_trace
                .as_ref()
                .map(|t| transport_trace(t, r.ended_at))
        })
        .collect();
    infer(&traces)
}

/// Infer a machine from captured structured event traces
/// (`LONGLOOK_TRACE` / `repro trace` evidence): each trace's `CcState`
/// events are the state-visit sequence, observed until its last record.
/// Empty traces contribute nothing.
pub fn infer_from_traces(traces: &[Vec<TraceRecord>]) -> InferredMachine {
    let traces: Vec<Trace> = traces
        .iter()
        .filter(|t| !t.is_empty())
        .map(|t| {
            let end = Time::from_nanos(t.last().map(|r| r.t).unwrap_or(0));
            trace_from_records(t, end)
        })
        .collect();
    infer(&traces)
}

/// Convert one transport trace.
pub fn transport_trace(t: &StateTrace, end: Time) -> Trace {
    trace_from_transport(t, end)
}

/// Fig 13-style comparison: two inferred machines (e.g. Desktop vs MotoG)
/// with their time-in-state fractions side by side.
pub fn compare_machines(
    label_a: &str,
    a: &InferredMachine,
    label_b: &str,
    b: &InferredMachine,
) -> String {
    let mut states: Vec<&str> = a
        .states
        .iter()
        .chain(b.states.iter())
        .map(String::as_str)
        .collect();
    states.sort_unstable();
    states.dedup();
    let mut out = String::new();
    let _ = writeln!(out, "{:<26} {:>10} {:>10}", "state", label_a, label_b);
    for s in states {
        let _ = writeln!(
            out,
            "{:<26} {:>9.1}% {:>9.1}%",
            s,
            a.time_fraction(s) * 100.0,
            b.time_fraction(s) * 100.0,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_records, Scenario};
    use crate::testbed::NetProfile;
    use longlook_http::host::ProtoConfig;
    use longlook_http::workload::PageSpec;
    use longlook_quic::QuicConfig;

    #[test]
    fn inference_pipeline_produces_cubic_states() {
        let sc = Scenario::new(
            NetProfile::baseline(10.0).with_loss(0.005),
            PageSpec::single(2 * 1024 * 1024),
        )
        .with_rounds(3);
        let records = run_records(&ProtoConfig::Quic(QuicConfig::default()), &sc);
        let machine = infer_from_records(&records);
        assert!(machine.states.iter().any(|s| s == "Init"));
        assert!(machine.states.iter().any(|s| s == "SlowStart"));
        assert!(machine.trace_count == 3);
        let dot = machine.to_dot("fig3a test");
        assert!(dot.contains("SlowStart"));
    }

    #[test]
    fn comparison_report_renders_both_columns() {
        let sc =
            Scenario::new(NetProfile::baseline(10.0), PageSpec::single(200 * 1024)).with_rounds(2);
        let records = run_records(&ProtoConfig::Quic(QuicConfig::default()), &sc);
        let m = infer_from_records(&records);
        let report = compare_machines("Desktop", &m, "MotoG", &m);
        assert!(report.contains("Desktop"));
        assert!(report.contains("MotoG"));
        assert!(report.contains("SlowStart"));
    }
}
