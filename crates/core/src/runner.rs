//! Chunked work-stealing parallel execution of independent experiment
//! cells (runner v2).
//!
//! The experiment matrix of Sec 3.3 — `(scenario, protocol, round)` cells,
//! ≥ 10 rounds per scenario, swept over bandwidth × loss × RTT grids — is
//! embarrassingly parallel: each cell is a self-contained [`World`]
//! (crate `longlook-sim`) keyed only by its derived seed, sharing no
//! state with any other cell. This module shards those cells across OS
//! threads and reassembles results **in deterministic cell order**, so
//! parallel execution is bit-identical to serial execution. That claim is
//! not an assumption: the `determinism_equivalence` suite in
//! `longlook-integration` regression-tests it field-for-field, and the
//! debug-build RNG isolation guard ([`longlook_sim::CellGuard`]) panics
//! the moment an experiment closure shares a `SimRng` or `World` across
//! cells.
//!
//! Scheduling is dynamic self-scheduling over **chunks**: each worker
//! claims a contiguous run of cell indices from a shared atomic cursor
//! (auto-tuned size, override with `LONGLOOK_CHUNK`), so long cells do
//! not straggle behind a static partition while the cursor stops
//! ping-ponging between cores on large heatmap sweeps. Finished chunks
//! travel back over the mpsc channel as one message each and are placed
//! into their slots before any `longlook-stats` aggregation (Welch tests,
//! heatmap cells) runs. [`run_ordered_reporting`] additionally returns a
//! [`RunnerReport`] with per-cell wall-clock and per-worker claim
//! counters, so chunking wins are measurable (`repro --timing`) rather
//! than asserted.
//!
//! No external crates: `std::thread`, `std::sync::atomic`, and
//! `std::sync::mpsc` only (the build environment has no crate registry).

use longlook_sim::{CellGuard, CellId};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, Once};
use std::thread;
use std::time::{Duration, Instant};

thread_local! {
    /// Simulation-event counter for the cell currently executing on this
    /// thread. The runner zeroes it before each cell and snapshots it
    /// after; experiment drivers deposit via [`note_cell_events`].
    static CELL_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Credit `n` simulation events to the experiment cell currently running
/// on this thread (no-op outside a runner batch). Drivers call this with
/// `World::events_processed()` after each run so `repro --timing` can
/// report events/sec.
pub fn note_cell_events(n: u64) {
    CELL_EVENTS.with(|c| c.set(c.get().saturating_add(n)));
}

fn reset_cell_events() {
    CELL_EVENTS.with(|c| c.set(0));
}

fn take_cell_events() -> u64 {
    CELL_EVENTS.with(|c| c.replace(0))
}

/// How to execute a batch of independent experiment cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Run every cell on the calling thread, in index order.
    Serial,
    /// Shard cells across this many worker threads (values ≤ 1 degrade
    /// to [`Parallelism::Serial`]).
    Threads(usize),
}

impl Parallelism {
    /// The environment variable overriding the default worker count.
    pub const JOBS_ENV: &'static str = "LONGLOOK_JOBS";

    /// Resolve the session default: `LONGLOOK_JOBS` if set (`0` or `1`
    /// mean serial), otherwise one worker per available hardware thread.
    /// An unparsable value falls back to auto-detection with a one-time
    /// warning on stderr.
    pub fn auto() -> Self {
        static WARNED: Once = Once::new();
        // An unset *or* unparsable value (warned once via the shared knob
        // parser) falls back to one worker per hardware thread.
        match longlook_wire::env_knob(
            Self::JOBS_ENV,
            "a non-negative integer",
            "hardware thread count",
            &WARNED,
            |v| v.trim().parse::<usize>().ok(),
        ) {
            Some(0) | Some(1) => Parallelism::Serial,
            Some(n) => Parallelism::Threads(n),
            None => Parallelism::Threads(
                thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            ),
        }
    }

    /// Worker count this policy resolves to (≥ 1).
    pub fn jobs(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// The environment variable overriding the claim-chunk size (`0` or unset
/// means auto-tune; see [`chunk_size`]).
pub const CHUNK_ENV: &str = "LONGLOOK_CHUNK";

/// Cap on the auto-tuned chunk size: past this, cursor traffic is already
/// negligible and bigger chunks only hurt load balance.
const CHUNK_CAP: usize = 64;

/// Chunks each worker should get to claim, on average, under the
/// auto-tune: enough that one slow chunk cannot straggle the batch.
const CHUNKS_PER_WORKER: usize = 8;

/// Resolve the claim-chunk size for a batch of `n` cells on `jobs`
/// workers: `LONGLOOK_CHUNK` if set and non-zero, otherwise
/// `ceil(n / (jobs * 8))` capped at 64 — large sweeps claim tens of cells
/// per atomic op, while small batches keep chunk 1 and lose nothing.
pub fn chunk_size(n: usize, jobs: usize) -> usize {
    static WARNED: Once = Once::new();
    let configured = longlook_wire::env_knob(
        CHUNK_ENV,
        "a non-negative integer",
        "auto-tuned chunk size",
        &WARNED,
        |v| v.trim().parse::<usize>().ok(),
    );
    match configured {
        Some(c) if c > 0 => c,
        _ => n
            .div_ceil(jobs.max(1) * CHUNKS_PER_WORKER)
            .clamp(1, CHUNK_CAP),
    }
}

/// What one worker thread did during a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Cells this worker computed.
    pub cells: usize,
    /// Chunks this worker claimed from the cursor.
    pub chunks: usize,
}

/// Timing and scheduling telemetry for one [`run_ordered_reporting`]
/// batch. Results stay bit-identical whatever these numbers say; the
/// report exists so chunking/parallelism wins are measured, not asserted.
#[derive(Debug, Clone)]
pub struct RunnerReport {
    /// Worker threads used (1 = serial on the calling thread).
    pub jobs: usize,
    /// Claim-chunk size used (serial batches claim everything at once).
    pub chunk: usize,
    /// Wall-clock for the whole batch, including reassembly.
    pub elapsed: Duration,
    /// Per-cell wall-clock, indexed by cell.
    pub cell_wall: Vec<Duration>,
    /// Per-cell simulation events (zero unless the cell's driver deposits
    /// via [`note_cell_events`]), indexed by cell.
    pub cell_events: Vec<u64>,
    /// Per-worker claim counters (one entry per worker thread).
    pub workers: Vec<WorkerStats>,
}

impl RunnerReport {
    /// Sum of all per-cell wall-clock times (the serial-equivalent work).
    pub fn total_cell_time(&self) -> Duration {
        self.cell_wall.iter().sum()
    }

    /// Parallel speedup actually achieved: total cell time / elapsed.
    pub fn speedup(&self) -> f64 {
        let e = self.elapsed.as_secs_f64();
        if e == 0.0 {
            return 1.0;
        }
        self.total_cell_time().as_secs_f64() / e
    }

    /// Total simulation events across all cells (zero when no driver
    /// deposited counts).
    pub fn total_events(&self) -> u64 {
        self.cell_events.iter().sum()
    }

    /// Aggregate events/sec against summed per-cell wall-clock (the
    /// single-core scheduler throughput); `None` when no events were
    /// deposited or no time elapsed.
    pub fn events_per_sec(&self) -> Option<f64> {
        let total = self.total_events();
        let secs = self.total_cell_time().as_secs_f64();
        (total > 0 && secs > 0.0).then(|| total as f64 / secs)
    }

    /// One-paragraph human-readable rendering (the `repro --timing`
    /// output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{} cells in {:.3}s (cell time {:.3}s, {:.2}x), jobs {}, chunk {}",
            self.cell_wall.len(),
            self.elapsed.as_secs_f64(),
            self.total_cell_time().as_secs_f64(),
            self.speedup(),
            self.jobs,
            self.chunk,
        );
        if let Some(eps) = self.events_per_sec() {
            let _ = write!(
                out,
                ", {} events ({:.2} Mev/s)",
                self.total_events(),
                eps / 1e6
            );
        }
        if self.jobs > 1 {
            let claims: Vec<String> = self
                .workers
                .iter()
                .map(|w| format!("{}c/{}k", w.cells, w.chunks))
                .collect();
            let _ = write!(out, ", workers [{}]", claims.join(" "));
        }
        // Name the slowest cells: these are the stragglers chunking must
        // not glue together.
        let mut ranked: Vec<(usize, Duration)> =
            self.cell_wall.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let slow: Vec<String> = ranked
            .iter()
            .take(3)
            .filter(|(_, d)| *d > Duration::ZERO)
            .map(|(i, d)| {
                // Per-cell events/sec, when the cell's driver deposited a
                // count (sweep cells do; synthetic test cells don't).
                let ev = self.cell_events.get(*i).copied().unwrap_or(0);
                if ev > 0 && d.as_secs_f64() > 0.0 {
                    format!(
                        "#{i} {:.0}ms ({:.2} Mev/s)",
                        d.as_secs_f64() * 1e3,
                        ev as f64 / d.as_secs_f64() / 1e6
                    )
                } else {
                    format!("#{i} {:.0}ms", d.as_secs_f64() * 1e3)
                }
            })
            .collect();
        if !slow.is_empty() {
            let _ = write!(out, ", slowest cells: {}", slow.join(", "));
        }
        out
    }
}

/// Global timing sink: when enabled (`repro --timing`), every
/// [`run_ordered`] batch deposits its [`RunnerReport`] here for the CLI
/// to drain and print after the experiment.
static TIMING_ENABLED: AtomicUsize = AtomicUsize::new(0);
static TIMING_REPORTS: Mutex<Vec<RunnerReport>> = Mutex::new(Vec::new());

/// Enable/disable the process-wide timing sink.
pub fn set_timing(enabled: bool) {
    TIMING_ENABLED.store(usize::from(enabled), Ordering::Relaxed);
}

/// Drain every report deposited since the last call.
pub fn take_timing_reports() -> Vec<RunnerReport> {
    std::mem::take(&mut *TIMING_REPORTS.lock().expect("timing sink poisoned"))
}

/// Monotonic batch counter feeding [`CellId::batch`], so cell identities
/// never collide across successive `run_ordered` calls and the isolation
/// guard can name the offending pair exactly.
static BATCH: AtomicU64 = AtomicU64::new(0);

/// One worker→collector message: a finished chunk. Carrying whole chunks
/// (rather than one message per cell) is what lets large sweeps scale —
/// channel traffic drops by the chunk factor alongside cursor traffic.
struct ChunkMsg<T> {
    worker: usize,
    start: usize,
    values: Vec<T>,
    walls: Vec<Duration>,
    /// Simulation events each cell deposited via [`note_cell_events`].
    events: Vec<u64>,
    /// Panic payload of cell `start + values.len()`, if that cell blew up.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Execute `f(0..n)` under `par` and return results **in index order**.
///
/// `f` must be a pure function of its index for the determinism guarantee
/// to hold (every experiment cell in this workspace is: the cell derives
/// its own seed and builds its own `World` — and the debug-build RNG
/// isolation guard enforces exactly that). Worker panics propagate to the
/// caller once all workers have drained.
pub fn run_ordered<T, F>(par: Parallelism, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let (values, report) = run_ordered_reporting(par, n, f);
    if TIMING_ENABLED.load(Ordering::Relaxed) != 0 {
        TIMING_REPORTS
            .lock()
            .expect("timing sink poisoned")
            .push(report);
    }
    values
}

/// [`run_ordered`] plus a [`RunnerReport`] describing how the batch was
/// scheduled and where the time went.
pub fn run_ordered_reporting<T, F>(par: Parallelism, n: usize, f: F) -> (Vec<T>, RunnerReport)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_ordered_chunked(par, None, n, f)
}

/// [`run_ordered_reporting`] with an explicit chunk-size override
/// (`None` = resolve from `LONGLOOK_CHUNK` / auto-tune). The override
/// exists so the determinism-equivalence suite can pin chunk sizes
/// without mutating process environment.
pub fn run_ordered_chunked<T, F>(
    par: Parallelism,
    chunk: Option<usize>,
    n: usize,
    f: F,
) -> (Vec<T>, RunnerReport)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let started = Instant::now();
    let batch = BATCH.fetch_add(1, Ordering::Relaxed);
    let jobs = par.jobs().min(n.max(1));
    if jobs <= 1 {
        return run_serial(batch, n, started, f);
    }
    let chunk = chunk
        .filter(|&c| c > 0)
        .unwrap_or_else(|| chunk_size(n, jobs));

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<ChunkMsg<T>>();
    let mut report = RunnerReport {
        jobs,
        chunk,
        elapsed: Duration::ZERO,
        cell_wall: vec![Duration::ZERO; n],
        cell_events: vec![0; n],
        workers: vec![WorkerStats::default(); jobs],
    };
    let mut slots: Vec<Option<T>> = thread::scope(|scope| {
        for worker in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                // Dynamic self-scheduling: claim the next unclaimed run of
                // `chunk` cells in one atomic op.
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                // Buffer the whole chunk locally; the channel carries one
                // message per chunk, not per cell.
                let mut values = Vec::with_capacity(end - start);
                let mut walls = Vec::with_capacity(end - start);
                let mut events = Vec::with_capacity(end - start);
                let mut panic = None;
                for i in start..end {
                    let cell = CellId {
                        batch,
                        index: i as u64,
                    };
                    reset_cell_events();
                    let t0 = Instant::now();
                    // Catch a cell's panic so its original payload reaches
                    // the caller (a bare scoped-thread panic would be
                    // replaced by "a scoped thread panicked"). The guard
                    // drops (restoring the scope) during unwinding too.
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _guard = CellGuard::enter(cell);
                        f(i)
                    })) {
                        Ok(v) => {
                            walls.push(t0.elapsed());
                            events.push(take_cell_events());
                            values.push(v);
                        }
                        Err(payload) => {
                            panic = Some(payload);
                            break;
                        }
                    }
                }
                let failed = panic.is_some();
                let msg = ChunkMsg {
                    worker,
                    start,
                    values,
                    walls,
                    events,
                    panic,
                };
                // A send error means the collector is gone; just stop.
                if tx.send(msg).is_err() || failed {
                    break;
                }
            });
        }
        drop(tx);
        // Reassemble in deterministic index order. The iterator ends when
        // every worker has exited (all senders dropped).
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut panic_payload = None;
        for msg in rx {
            let stats = &mut report.workers[msg.worker];
            stats.chunks += 1;
            stats.cells += msg.values.len();
            for (j, (value, (wall, events))) in msg
                .values
                .into_iter()
                .zip(msg.walls.into_iter().zip(msg.events))
                .enumerate()
            {
                slots[msg.start + j] = Some(value);
                report.cell_wall[msg.start + j] = wall;
                report.cell_events[msg.start + j] = events;
            }
            if let Some(payload) = msg.panic {
                panic_payload.get_or_insert(payload);
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        slots
    });

    slots
        .iter()
        .for_each(|s| debug_assert!(s.is_some(), "worker skipped a cell"));
    report.elapsed = started.elapsed();
    (
        slots
            .drain(..)
            .map(|s| s.expect("every cell index was claimed and computed"))
            .collect(),
        report,
    )
}

/// Serial path: the calling thread claims the whole batch as one chunk.
/// Cells still run under per-cell guards, so the RNG isolation check is
/// exactly as strict at `-j 1` as it is threaded.
fn run_serial<T, F>(batch: u64, n: usize, started: Instant, f: F) -> (Vec<T>, RunnerReport)
where
    F: Fn(usize) -> T,
{
    // A driver may fan a nested batch out from *inside* an outer cell
    // (the sharded fleet loop degrades to a serial inner batch when a
    // shard count or job count resolves to one). The inner batch runs on
    // the calling thread, so save the outer cell's in-progress event
    // count and restore it afterwards — otherwise the inner reset would
    // silently zero the outer cell's tally.
    let outer_events = CELL_EVENTS.with(Cell::get);
    let mut report = RunnerReport {
        jobs: 1,
        chunk: n.max(1),
        elapsed: Duration::ZERO,
        cell_wall: Vec::with_capacity(n),
        cell_events: Vec::with_capacity(n),
        workers: vec![WorkerStats {
            cells: n,
            chunks: usize::from(n > 0),
        }],
    };
    let values = (0..n)
        .map(|i| {
            let cell = CellId {
                batch,
                index: i as u64,
            };
            reset_cell_events();
            let t0 = Instant::now();
            let _guard = CellGuard::enter(cell);
            let v = f(i);
            drop(_guard);
            report.cell_wall.push(t0.elapsed());
            report.cell_events.push(take_cell_events());
            v
        })
        .collect();
    CELL_EVENTS.with(|c| c.set(outer_events));
    report.elapsed = started.elapsed();
    (values, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_threads_agree_on_order_and_values() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
        let serial = run_ordered(Parallelism::Serial, 100, f);
        for jobs in [2, 4, 16] {
            assert_eq!(serial, run_ordered(Parallelism::Threads(jobs), 100, f));
        }
    }

    #[test]
    fn explicit_chunk_sizes_are_result_invariant() {
        let f = |i: usize| (i as u64).wrapping_mul(0xD134_2543_DE82_EF95);
        let (serial, _) = run_ordered_chunked(Parallelism::Serial, None, 97, f);
        for chunk in [1, 2, 7, 16, 64, 1000] {
            let (par, rep) = run_ordered_chunked(Parallelism::Threads(4), Some(chunk), 97, f);
            assert_eq!(serial, par, "chunk {chunk} changed results");
            assert_eq!(rep.chunk, chunk);
            assert_eq!(rep.workers.iter().map(|w| w.cells).sum::<usize>(), 97);
            assert_eq!(rep.cell_wall.len(), 97);
        }
    }

    #[test]
    fn handles_more_workers_than_cells() {
        let out = run_ordered(Parallelism::Threads(32), 3, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn handles_empty_batch() {
        let out: Vec<usize> = run_ordered(Parallelism::Threads(4), 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_cells_still_reassemble_in_order() {
        // Make early indices slow so late indices finish first.
        let out = run_ordered(Parallelism::Threads(4), 16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cell 7 exploded")]
    fn worker_panic_propagates() {
        let _ = run_ordered(Parallelism::Threads(4), 16, |i| {
            assert!(i != 7, "cell {i} exploded");
            i
        });
    }

    #[test]
    #[should_panic(expected = "cell 2 exploded")]
    fn panic_mid_chunk_propagates() {
        let _ = run_ordered_chunked(Parallelism::Threads(2), Some(8), 16, |i| {
            assert!(i != 2, "cell {i} exploded");
            i
        });
    }

    #[test]
    fn jobs_resolution() {
        assert_eq!(Parallelism::Serial.jobs(), 1);
        assert_eq!(Parallelism::Threads(0).jobs(), 1);
        assert_eq!(Parallelism::Threads(6).jobs(), 6);
    }

    #[test]
    fn chunk_auto_tune_shape() {
        // Small batches stay at 1 — nothing to amortize.
        assert_eq!(chunk_size(4, 4), 1);
        assert_eq!(chunk_size(0, 4), 1);
        // Large sweeps amortize the cursor but keep ~8 chunks per worker.
        assert_eq!(chunk_size(320, 4), 10);
        assert_eq!(chunk_size(1000, 2), 63);
        // Capped so balance survives very large n.
        assert_eq!(chunk_size(1_000_000, 4), CHUNK_CAP);
    }

    #[test]
    fn report_accounts_for_every_cell() {
        let (_, rep) = run_ordered_reporting(Parallelism::Threads(3), 50, |i| i);
        assert_eq!(rep.jobs, 3);
        assert_eq!(rep.cell_wall.len(), 50);
        assert_eq!(rep.workers.len(), 3);
        assert_eq!(rep.workers.iter().map(|w| w.cells).sum::<usize>(), 50);
        assert!(rep.workers.iter().map(|w| w.chunks).sum::<usize>() >= 1);
        let text = rep.render();
        assert!(text.contains("50 cells"), "{text}");
        assert!(text.contains("jobs 3"), "{text}");
    }

    #[test]
    fn serial_report_shape() {
        let (vals, rep) = run_ordered_reporting(Parallelism::Serial, 5, |i| i);
        assert_eq!(vals, vec![0, 1, 2, 3, 4]);
        assert_eq!(rep.jobs, 1);
        assert_eq!(
            rep.workers,
            vec![WorkerStats {
                cells: 5,
                chunks: 1
            }]
        );
        assert_eq!(rep.cell_wall.len(), 5);
    }

    #[test]
    fn cell_events_flow_into_report_threaded_and_serial() {
        let (_, rep) = run_ordered_reporting(Parallelism::Threads(2), 10, |i| {
            note_cell_events(i as u64 + 1);
            i
        });
        assert_eq!(rep.cell_events, (1..=10).collect::<Vec<u64>>());
        assert_eq!(rep.total_events(), 55);
        let (_, rep) = run_ordered_reporting(Parallelism::Serial, 3, |i| {
            note_cell_events(7);
            note_cell_events(2); // accumulates within a cell
            i
        });
        assert_eq!(rep.cell_events, vec![9, 9, 9]);
        let text = rep.render();
        assert!(text.contains("events"), "{text}");
    }

    #[test]
    fn nested_serial_batches_preserve_outer_cell_events() {
        // An outer cell that fans out a nested serial batch (as the
        // sharded fleet loop does at one shard/job) must keep its own
        // event tally: the inner batch's per-cell resets are invisible
        // to it.
        let (_, rep) = run_ordered_reporting(Parallelism::Serial, 2, |_| {
            note_cell_events(5);
            let inner = run_ordered(Parallelism::Serial, 3, |i| {
                note_cell_events(1);
                i
            });
            assert_eq!(inner, vec![0, 1, 2]);
            note_cell_events(7);
        });
        assert_eq!(rep.cell_events, vec![12, 12]);
    }

    #[test]
    fn cells_without_events_report_zero() {
        let (_, rep) = run_ordered_reporting(Parallelism::Threads(3), 8, |i| i);
        assert_eq!(rep.cell_events, vec![0; 8]);
        assert_eq!(rep.events_per_sec(), None);
        assert!(!rep.render().contains("Mev/s"));
    }

    #[test]
    fn timing_sink_collects_when_enabled() {
        set_timing(true);
        let _ = take_timing_reports(); // drop anything a sibling test left
        let _ = run_ordered(Parallelism::Threads(2), 10, |i| i);
        let reports = take_timing_reports();
        set_timing(false);
        // Sibling tests may deposit concurrently; just require ours landed.
        assert!(reports.iter().any(|r| r.cell_wall.len() == 10));
    }
}
