//! Work-stealing parallel execution of independent experiment cells.
//!
//! The experiment matrix of Sec 3.3 — `(scenario, protocol, round)` cells,
//! ≥ 10 rounds per scenario, swept over bandwidth × loss × RTT grids — is
//! embarrassingly parallel: each cell is a self-contained [`World`]
//! (crate `longlook-sim`) keyed only by its derived seed, sharing no
//! state with any other cell. This module shards those cells across OS
//! threads and reassembles results **in deterministic cell order**, so
//! parallel execution is bit-identical to serial execution. That claim is
//! not an assumption: the `determinism_equivalence` suite in
//! `longlook-integration` regression-tests it field-for-field.
//!
//! Scheduling is dynamic self-scheduling (a shared atomic cursor): each
//! worker repeatedly claims the next unclaimed cell index, so long cells
//! (e.g. 10 MB transfers at 5 Mbps) do not straggle behind a static
//! partition. Results flow back over an mpsc channel tagged with their
//! cell index and are placed into their slot before any
//! `longlook-stats` aggregation (Welch tests, heatmap cells) runs.
//!
//! No external crates: `std::thread`, `std::sync::atomic`, and
//! `std::sync::mpsc` only (the build environment has no crate registry).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// How to execute a batch of independent experiment cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Run every cell on the calling thread, in index order.
    Serial,
    /// Shard cells across this many worker threads (values ≤ 1 degrade
    /// to [`Parallelism::Serial`]).
    Threads(usize),
}

impl Parallelism {
    /// The environment variable overriding the default worker count.
    pub const JOBS_ENV: &'static str = "LONGLOOK_JOBS";

    /// Resolve the session default: `LONGLOOK_JOBS` if set (`0` or `1`
    /// mean serial), otherwise one worker per available hardware thread.
    pub fn auto() -> Self {
        match std::env::var(Self::JOBS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(0) | Some(1) => Parallelism::Serial,
            Some(n) => Parallelism::Threads(n),
            None => Parallelism::Threads(
                thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            ),
        }
    }

    /// Worker count this policy resolves to (≥ 1).
    pub fn jobs(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// Execute `f(0..n)` under `par` and return results **in index order**.
///
/// `f` must be a pure function of its index for the determinism guarantee
/// to hold (every experiment cell in this workspace is: the cell derives
/// its own seed and builds its own `World`). Worker panics propagate to
/// the caller once all workers have drained.
pub fn run_ordered<T, F>(par: Parallelism, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = par.jobs().min(n.max(1));
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, thread::Result<T>)>();
    let mut slots: Vec<Option<T>> = thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                // Dynamic self-scheduling: claim the next unclaimed cell.
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Catch a cell's panic so its original payload reaches
                // the caller (a bare scoped-thread panic would be
                // replaced by "a scoped thread panicked").
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)));
                let failed = result.is_err();
                // A send error means the collector is gone; just stop.
                if tx.send((i, result)).is_err() || failed {
                    break;
                }
            });
        }
        drop(tx);
        // Reassemble in deterministic index order. The iterator ends when
        // every worker has exited (all senders dropped).
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut panic_payload = None;
        for (i, result) in rx {
            match result {
                Ok(value) => slots[i] = Some(value),
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            };
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        slots
    });

    slots
        .iter()
        .for_each(|s| debug_assert!(s.is_some(), "worker skipped a cell"));
    slots
        .drain(..)
        .map(|s| s.expect("every cell index was claimed and computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_threads_agree_on_order_and_values() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
        let serial = run_ordered(Parallelism::Serial, 100, f);
        for jobs in [2, 4, 16] {
            assert_eq!(serial, run_ordered(Parallelism::Threads(jobs), 100, f));
        }
    }

    #[test]
    fn handles_more_workers_than_cells() {
        let out = run_ordered(Parallelism::Threads(32), 3, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn handles_empty_batch() {
        let out: Vec<usize> = run_ordered(Parallelism::Threads(4), 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_cells_still_reassemble_in_order() {
        // Make early indices slow so late indices finish first.
        let out = run_ordered(Parallelism::Threads(4), 16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cell 7 exploded")]
    fn worker_panic_propagates() {
        let _ = run_ordered(Parallelism::Threads(4), 16, |i| {
            assert!(i != 7, "cell {i} exploded");
            i
        });
    }

    #[test]
    fn jobs_resolution() {
        assert_eq!(Parallelism::Serial.jobs(), 1);
        assert_eq!(Parallelism::Threads(0).jobs(), 1);
        assert_eq!(Parallelism::Threads(6).jobs(), 6);
    }
}
