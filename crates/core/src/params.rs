//! The paper's experiment parameter space (Table 2) and the related-work
//! comparison matrix (Table 1).

/// Table 2 — parameters used in the paper's tests.
#[derive(Debug, Clone)]
pub struct ParameterSpace {
    /// Rate limits in Mbps.
    pub rate_limits_mbps: Vec<f64>,
    /// Extra RTT added (ms).
    pub extra_delay_ms: Vec<u64>,
    /// Extra random loss rates.
    pub extra_loss: Vec<f64>,
    /// Number of objects per page.
    pub num_objects: Vec<usize>,
    /// Object sizes in KB.
    pub object_sizes_kb: Vec<u64>,
    /// Proxy configurations.
    pub proxies: Vec<&'static str>,
    /// Client devices.
    pub clients: Vec<&'static str>,
    /// Video qualities.
    pub video_qualities: Vec<&'static str>,
}

impl ParameterSpace {
    /// The exact values of Table 2.
    pub fn table2() -> Self {
        ParameterSpace {
            rate_limits_mbps: vec![5.0, 10.0, 50.0, 100.0],
            extra_delay_ms: vec![0, 50, 100],
            extra_loss: vec![0.001, 0.01],
            num_objects: vec![1, 2, 5, 10, 100, 200],
            object_sizes_kb: vec![5, 10, 100, 200, 500, 1000, 10_000, 210_000],
            proxies: vec!["QUIC proxy", "TCP proxy"],
            clients: vec!["Desktop", "Nexus6", "MotoG"],
            video_qualities: vec!["tiny", "medium", "hd720", "hd2160"],
        }
    }

    /// Render as the paper's two-column table.
    pub fn render(&self) -> String {
        let fmt_f = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let fmt_u = |v: &[u64]| {
            v.iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "Parameter            | Values tested\n\
             ---------------------+--------------------------------------------\n\
             Rate limits (Mbps)   | {}\n\
             Extra Delay (RTT ms) | {}\n\
             Extra Loss           | {}\n\
             Number of objects    | {}\n\
             Object sizes (KB)    | {}\n\
             Proxy                | {}\n\
             Clients              | {}\n\
             Video qualities      | {}\n",
            fmt_f(&self.rate_limits_mbps),
            fmt_u(&self.extra_delay_ms),
            fmt_f(&self.extra_loss),
            self.num_objects
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            fmt_u(&self.object_sizes_kb),
            self.proxies.join(", "),
            self.clients.join(", "),
            self.video_qualities.join(", "),
        )
    }
}

/// Table 1 — one row of the related-work comparison.
#[derive(Debug, Clone)]
pub struct RelatedWorkRow {
    /// Study name.
    pub study: &'static str,
    /// QUIC versions evaluated.
    pub quic_version: &'static str,
    /// Performed calibration against deployed servers.
    pub calibration: bool,
    /// Performed root-cause analysis.
    pub root_cause: bool,
    /// Pages tested.
    pub tested_pages: &'static str,
    /// Emulated network scenarios.
    pub emulated_scenarios: &'static str,
    /// Network types (F fixed, C cellular).
    pub networks: &'static str,
    /// Devices (D desktop, M mobile).
    pub devices: &'static str,
    /// Fairness studied.
    pub fairness: bool,
    /// Video QoE studied.
    pub video_qoe: bool,
    /// Packet reordering studied.
    pub reordering: bool,
    /// Proxying studied.
    pub proxying: bool,
}

/// Table 1 — the full related-work matrix.
pub fn table1() -> Vec<RelatedWorkRow> {
    vec![
        RelatedWorkRow {
            study: "Megyesi [30]",
            quic_version: "20",
            calibration: false,
            root_cause: false,
            tested_pages: "6",
            emulated_scenarios: "12",
            networks: "F",
            devices: "D",
            fairness: true,
            video_qoe: false,
            reordering: false,
            proxying: false,
        },
        RelatedWorkRow {
            study: "Carlucci [17]",
            quic_version: "21",
            calibration: false,
            root_cause: false,
            tested_pages: "3",
            emulated_scenarios: "9",
            networks: "F",
            devices: "D",
            fairness: false,
            video_qoe: false,
            reordering: false,
            proxying: false,
        },
        RelatedWorkRow {
            study: "Biswal [16]",
            quic_version: "23",
            calibration: false,
            root_cause: false,
            tested_pages: "20",
            emulated_scenarios: "10",
            networks: "F",
            devices: "D",
            fairness: false,
            video_qoe: false,
            reordering: false,
            proxying: false,
        },
        RelatedWorkRow {
            study: "Das [20]",
            quic_version: "23",
            calibration: false,
            root_cause: false,
            tested_pages: "500",
            emulated_scenarios: "100 (9)",
            networks: "F/C",
            devices: "D",
            fairness: false,
            video_qoe: false,
            reordering: false,
            proxying: false,
        },
        RelatedWorkRow {
            study: "This work",
            quic_version: "25 to 37",
            calibration: true,
            root_cause: true,
            tested_pages: "13",
            emulated_scenarios: "18",
            networks: "F/C",
            devices: "D/M",
            fairness: true,
            video_qoe: true,
            reordering: true,
            proxying: true,
        },
    ]
}

/// Render Table 1 as text.
pub fn render_table1() -> String {
    let mut out = String::from(
        "Study         | QUIC | Calib | RCA | Pages | Scen. | Net | Dev | Fair | QoE | Reord | Proxy\n",
    );
    out.push_str(
        "--------------+------+-------+-----+-------+-------+-----+-----+------+-----+-------+------\n",
    );
    let b = |v: bool| if v { "yes" } else { "no" };
    for r in table1() {
        out.push_str(&format!(
            "{:<13} | {:<4} | {:<5} | {:<3} | {:<5} | {:<5} | {:<3} | {:<3} | {:<4} | {:<3} | {:<5} | {}\n",
            r.study,
            r.quic_version,
            b(r.calibration),
            b(r.root_cause),
            r.tested_pages,
            r.emulated_scenarios,
            r.networks,
            r.devices,
            b(r.fairness),
            b(r.video_qoe),
            b(r.reordering),
            b(r.proxying),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let p = ParameterSpace::table2();
        assert_eq!(p.rate_limits_mbps, vec![5.0, 10.0, 50.0, 100.0]);
        assert_eq!(p.object_sizes_kb.last(), Some(&210_000));
        assert_eq!(p.num_objects, vec![1, 2, 5, 10, 100, 200]);
        let text = p.render();
        assert!(text.contains("Rate limits"));
        assert!(text.contains("210000"));
    }

    #[test]
    fn table1_has_five_rows_and_only_this_work_does_everything() {
        let rows = table1();
        assert_eq!(rows.len(), 5);
        let this = rows.last().expect("present");
        assert!(this.calibration && this.root_cause && this.video_qoe && this.proxying);
        assert!(rows[..4].iter().all(|r| !r.calibration && !r.root_cause));
        assert!(render_table1().contains("This work"));
    }
}
