//! Cellular network profiles (paper Table 5, Fig 14).
//!
//! The paper measured Verizon and Sprint 3G/LTE characteristics and then
//! explained QUIC's cellular behavior in terms of exactly four quantities:
//! throughput, RTT (mean and variation), reordering rate, and loss rate.
//! These profiles parameterize the emulator with those measurements, so
//! the Fig 14 heatmaps are regenerated from the same four knobs.
//!
//! Note: the LTE RTT cell for Verizon is illegible in the source scan of
//! Table 5; we use 61 (8) ms, consistent with the surrounding values
//! (documented in DESIGN.md).

use crate::testbed::NetProfile;
use longlook_sim::link::{Jitter, ReorderSpec};
use longlook_sim::schedule::RateSchedule;
use longlook_sim::time::Dur;

/// One measured cellular network.
#[derive(Debug, Clone, Copy)]
pub struct CellProfile {
    /// Carrier + technology label.
    pub name: &'static str,
    /// Mean downlink throughput, Mbps.
    pub throughput_mbps: f64,
    /// Mean RTT, ms.
    pub rtt_ms: u64,
    /// RTT standard deviation, ms.
    pub rtt_std_ms: u64,
    /// Fraction of packets reordered.
    pub reordering: f64,
    /// Random loss rate.
    pub loss: f64,
}

/// Table 5: the four measured networks.
pub const CELL_PROFILES: [CellProfile; 4] = [
    CellProfile {
        name: "Verizon-3G",
        throughput_mbps: 0.17,
        rtt_ms: 109,
        rtt_std_ms: 20,
        reordering: 0.0143,
        loss: 0.0005,
    },
    CellProfile {
        name: "Verizon-LTE",
        throughput_mbps: 4.0,
        rtt_ms: 61,
        rtt_std_ms: 8,
        reordering: 0.0025,
        loss: 0.0,
    },
    CellProfile {
        name: "Sprint-3G",
        throughput_mbps: 0.31,
        rtt_ms: 70,
        rtt_std_ms: 39,
        reordering: 0.0138,
        loss: 0.0002,
    },
    CellProfile {
        name: "Sprint-LTE",
        throughput_mbps: 2.4,
        rtt_ms: 55,
        rtt_std_ms: 11,
        reordering: 0.0013,
        loss: 0.0002,
    },
];

impl CellProfile {
    /// Convert to an emulation profile: throughput becomes the token
    /// bucket rate, and the reordering rate drives an explicit
    /// netem-style reorder model whose jump is a couple of RTT deviations
    /// (deep enough to defeat a NACK threshold of 3 at cellular packet
    /// rates). Per-packet jitter is kept mild (sigma/8) because cellular
    /// RTT variation is mostly *run-to-run* (bufferbloat, scheduling),
    /// not i.i.d. per packet (sigma/20, clamped to 0.2-2 ms) — see
    /// [`CellProfile::net_profile_for_run`].
    pub fn net_profile(&self) -> NetProfile {
        let mut p = NetProfile::baseline(self.throughput_mbps);
        p.rate = RateSchedule::fixed_mbps(self.throughput_mbps);
        p.rtt = Dur::from_millis(self.rtt_ms);
        p.loss = self.loss;
        p.jitter = Jitter::Normal(Dur::from_micros(
            (self.rtt_std_ms * 1000 / 20).clamp(200, 2_000),
        ));
        if self.reordering > 0.0 {
            // Hold a packet long enough for at least one successor to
            // pass it even on sub-Mbps links.
            let spacing_ms = 1200.0 * 8.0 / (self.throughput_mbps * 1e6) * 1e3;
            let hold_ms = (2 * self.rtt_std_ms.max(5)).max((spacing_ms * 1.5) as u64);
            p.reorder = Some(ReorderSpec {
                prob: self.reordering,
                hold: Dur::from_millis(hold_ms),
            });
        }
        p
    }

    /// Per-run profile: the base RTT is drawn from
    /// `Normal(rtt, rtt_std)` so repeated rounds see the run-to-run RTT
    /// variability the paper measured — this is what drives the high
    /// p-values (white cells) in the 3G results of Fig 14.
    pub fn net_profile_for_run(&self, run_seed: u64) -> NetProfile {
        let mut rng = longlook_sim::SimRng::new(run_seed ^ 0xCE11);
        let rtt = rng
            .normal(self.rtt_ms as f64, self.rtt_std_ms as f64)
            .max(self.rtt_ms as f64 / 3.0);
        let mut p = self.net_profile();
        p.rtt = Dur::from_secs_f64(rtt / 1000.0);
        p
    }
}

/// Render Table 5.
pub fn render_table5() -> String {
    let mut out =
        String::from("Network      | Thrghpt (Mbps) | RTT ms (std) | Reordering (%) | Loss (%)\n");
    out.push_str("-------------+----------------+--------------+----------------+---------\n");
    for p in CELL_PROFILES {
        out.push_str(&format!(
            "{:<12} | {:>14.2} | {:>7} ({:>2}) | {:>14.2} | {:.2}\n",
            p.name,
            p.throughput_mbps,
            p.rtt_ms,
            p.rtt_std_ms,
            p.reordering * 100.0,
            p.loss * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_networks() {
        assert_eq!(CELL_PROFILES.len(), 4);
        // 3G is slower and reorders more than LTE for both carriers.
        let find = |n: &str| {
            CELL_PROFILES
                .iter()
                .find(|p| p.name == n)
                .copied()
                .expect("profile present")
        };
        for carrier in ["Verizon", "Sprint"] {
            let g3 = find(&format!("{carrier}-3G"));
            let lte = find(&format!("{carrier}-LTE"));
            assert!(g3.throughput_mbps < lte.throughput_mbps);
            assert!(g3.reordering > lte.reordering);
            assert!(g3.rtt_ms > lte.rtt_ms);
        }
    }

    #[test]
    fn profiles_convert_to_net_profiles() {
        for p in CELL_PROFILES {
            let net = p.net_profile();
            assert_eq!(net.rtt, Dur::from_millis(p.rtt_ms));
            assert_eq!(net.loss, p.loss);
            assert_eq!(net.reorder.is_some(), p.reordering > 0.0);
        }
    }

    #[test]
    fn table_renders() {
        let t = render_table5();
        assert!(t.contains("Verizon-3G"));
        assert!(t.contains("Sprint-LTE"));
    }
}
