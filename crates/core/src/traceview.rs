//! Trace analysis: turning a captured structured event trace
//! (`LONGLOOK_TRACE`, qlog-inspired JSON-SEQ) into human-readable
//! evidence — an event timeline, a per-state dwell table, and extracted
//! loss episodes attributed to the fault windows that caused them.
//!
//! This is the read side of the trace layer: `repro trace FILE` parses a
//! `.jsonseq` file (e.g. the trace a shrunk trauma repro carries) and
//! renders [`render_report`], which is designed to *explain* a failure —
//! the dwell table names the state the connection stalled in, and the
//! loss-episode extraction locates the injected fault window.

use longlook_sim::time::{Dur, Time};
use longlook_sim::trace::{TraceEvent, TraceRecord};
use std::fmt::Write as _;

/// A burst of declared losses, grouped by proximity in virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LossEpisode {
    /// First loss declaration in the episode.
    pub start: Time,
    /// Last loss declaration in the episode.
    pub end: Time,
    /// How many losses were declared.
    pub losses: usize,
    /// The fault window (`kind/dir`) this episode overlaps or follows,
    /// if the trace carries window edges. Loss is *declared* after the
    /// window opens (often after it closes, once a timer fires), so an
    /// episode is attributed to the most recent window that opened at or
    /// before its start.
    pub fault: Option<String>,
}

/// A fault window reconstructed from `FaultOn`/`FaultOff` edge records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultWindow {
    /// Window opened.
    pub on: Time,
    /// Window closed (`Time::MAX` when the trace ends inside it).
    pub off: Time,
    /// `kind/dir` label, repro spelling (e.g. `blackout/both`).
    pub label: String,
}

/// Gap between loss declarations above which a new episode starts.
pub const EPISODE_GAP: Dur = Dur::from_millis(500);

/// Reconstruct fault windows from the trace's synthesized edge records.
/// Edges are matched by label in order; an unmatched `FaultOn` yields a
/// window open to `Time::MAX`.
pub fn fault_windows(records: &[TraceRecord]) -> Vec<FaultWindow> {
    let mut open: Vec<(String, Time)> = Vec::new();
    let mut out = Vec::new();
    for r in records {
        match &r.ev {
            TraceEvent::FaultOn { kind, dir } => {
                open.push((format!("{kind}/{dir}"), Time::from_nanos(r.t)));
            }
            TraceEvent::FaultOff { kind, dir } => {
                let label = format!("{kind}/{dir}");
                if let Some(i) = open.iter().position(|(l, _)| *l == label) {
                    let (label, on) = open.remove(i);
                    out.push(FaultWindow {
                        on,
                        off: Time::from_nanos(r.t),
                        label,
                    });
                }
            }
            _ => {}
        }
    }
    for (label, on) in open {
        out.push(FaultWindow {
            on,
            off: Time::MAX,
            label,
        });
    }
    out.sort_by_key(|w| w.on);
    out
}

/// Group `Loss` events into episodes separated by more than
/// [`EPISODE_GAP`], attributing each to the most recent fault window
/// opened at or before the episode's first loss.
pub fn loss_episodes(records: &[TraceRecord]) -> Vec<LossEpisode> {
    let windows = fault_windows(records);
    let mut out: Vec<LossEpisode> = Vec::new();
    for r in records {
        if !matches!(r.ev, TraceEvent::Loss { .. }) {
            continue;
        }
        let t = Time::from_nanos(r.t);
        match out.last_mut() {
            Some(ep) if t.saturating_since(ep.end) <= EPISODE_GAP => {
                ep.end = t;
                ep.losses += 1;
            }
            _ => {
                let fault = windows.iter().rfind(|w| w.on <= t).map(|w| w.label.clone());
                out.push(LossEpisode {
                    start: t,
                    end: t,
                    losses: 1,
                    fault,
                });
            }
        }
    }
    out
}

/// Per-state dwell fractions from the trace's `CcState` events:
/// `(state, dwell, fraction_of_span)`, in order of first entry, summed
/// over repeat visits. Observation ends at the trace's last record.
pub fn dwell_table(records: &[TraceRecord]) -> Vec<(String, Dur, f64)> {
    let end = match records.last() {
        Some(r) => Time::from_nanos(r.t),
        None => return Vec::new(),
    };
    let visits: Vec<(Time, &str)> = records
        .iter()
        .filter_map(|r| match &r.ev {
            TraceEvent::CcState { state } => Some((Time::from_nanos(r.t), state.as_str())),
            _ => None,
        })
        .collect();
    let mut out: Vec<(String, Dur, f64)> = Vec::new();
    for (i, &(t, s)) in visits.iter().enumerate() {
        let next = visits.get(i + 1).map(|&(t, _)| t).unwrap_or(end);
        let dwell = next.saturating_since(t);
        match out.iter_mut().find(|(name, _, _)| name == s) {
            Some(row) => row.1 += dwell,
            None => out.push((s.to_string(), dwell, 0.0)),
        }
    }
    let span = match visits.first() {
        Some(&(t0, _)) => end.saturating_since(t0),
        None => Dur::ZERO,
    };
    if span > Dur::ZERO {
        for row in &mut out {
            row.2 = row.1 / span;
        }
    }
    out
}

/// One human-readable line per event (the qlog "sequence diagram" view).
fn event_line(r: &TraceRecord) -> String {
    let t = Time::from_nanos(r.t);
    let body = match &r.ev {
        TraceEvent::PktTx { pn, size, elicit } => {
            format!(
                "tx    pn={pn} size={size}{}",
                if *elicit { "" } else { " (ctrl)" }
            )
        }
        TraceEvent::PktRx { pn, size } => format!("rx    pn={pn} size={size}"),
        TraceEvent::AckProcessed { newly_acked } => format!("ack   newly_acked={newly_acked}"),
        TraceEvent::Loss { pn } => format!("loss  pn={pn}"),
        TraceEvent::CcState { state } => format!("state -> {state}"),
        TraceEvent::Cwnd { bytes } => format!("cwnd  {bytes}"),
        TraceEvent::Recovery { kind } => format!("recov {}", kind.label()),
        TraceEvent::TimerArm { deadline_ns } => {
            format!("timer arm -> {}", Time::from_nanos(*deadline_ns))
        }
        TraceEvent::TimerFire { kind } => format!("timer fire {}", kind.label()),
        TraceEvent::FaultOn { kind, dir } => format!("FAULT on  {kind}/{dir}"),
        TraceEvent::FaultOff { kind, dir } => format!("FAULT off {kind}/{dir}"),
    };
    format!("{t:>14}  {body}")
}

/// Render the event timeline, eliding the middle when the trace exceeds
/// `max_lines` (the head and tail carry the handshake and the failure).
pub fn render_timeline(records: &[TraceRecord], max_lines: usize) -> String {
    let mut out = String::new();
    if records.len() <= max_lines {
        for r in records {
            let _ = writeln!(out, "{}", event_line(r));
        }
        return out;
    }
    let head = max_lines / 2;
    let tail = max_lines - head;
    for r in &records[..head] {
        let _ = writeln!(out, "{}", event_line(r));
    }
    let _ = writeln!(out, "  ... {} events elided ...", records.len() - max_lines);
    for r in &records[records.len() - tail..] {
        let _ = writeln!(out, "{}", event_line(r));
    }
    out
}

/// Render the per-state dwell table.
pub fn render_dwell_table(records: &[TraceRecord]) -> String {
    let rows = dwell_table(records);
    let mut out = String::new();
    let _ = writeln!(out, "{:<26} {:>12} {:>8}", "state", "dwell", "share");
    for (state, dwell, frac) in rows {
        let _ = writeln!(
            out,
            "{:<26} {:>12} {:>7.1}%",
            state,
            format!("{dwell}"),
            frac * 100.0
        );
    }
    out
}

/// Render the loss-episode report with fault attribution.
pub fn render_loss_episodes(records: &[TraceRecord]) -> String {
    let episodes = loss_episodes(records);
    let mut out = String::new();
    if episodes.is_empty() {
        let _ = writeln!(out, "no losses declared");
        return out;
    }
    for (i, ep) in episodes.iter().enumerate() {
        let _ = writeln!(
            out,
            "episode {}: {} losses in [{} .. {}]{}",
            i + 1,
            ep.losses,
            ep.start,
            ep.end,
            match &ep.fault {
                Some(f) => format!("  <- fault window {f}"),
                None => String::new(),
            },
        );
    }
    out
}

/// The full analyzer report: summary counters, fault windows, the dwell
/// table, loss episodes, and an elided timeline.
pub fn render_report(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    let n_tx = records
        .iter()
        .filter(|r| matches!(r.ev, TraceEvent::PktTx { .. }))
        .count();
    let n_rx = records
        .iter()
        .filter(|r| matches!(r.ev, TraceEvent::PktRx { .. }))
        .count();
    let n_loss = records
        .iter()
        .filter(|r| matches!(r.ev, TraceEvent::Loss { .. }))
        .count();
    let span = match (records.first(), records.last()) {
        (Some(a), Some(b)) => Time::from_nanos(b.t).saturating_since(Time::from_nanos(a.t)),
        _ => Dur::ZERO,
    };
    let _ = writeln!(
        out,
        "trace: {} events over {span}  (tx {n_tx}, rx {n_rx}, losses {n_loss})",
        records.len(),
    );
    let windows = fault_windows(records);
    if !windows.is_empty() {
        let _ = writeln!(out, "\nfault windows:");
        for w in &windows {
            let off = if w.off == Time::MAX {
                "end-of-trace".to_string()
            } else {
                format!("{}", w.off)
            };
            let _ = writeln!(out, "  {:<20} [{} .. {}]", w.label, w.on, off);
        }
    }
    let _ = writeln!(out, "\nper-state dwell:");
    out.push_str(&render_dwell_table(records));
    let _ = writeln!(out, "\nloss episodes:");
    out.push_str(&render_loss_episodes(records));
    let _ = writeln!(out, "\ntimeline:");
    out.push_str(&render_timeline(records, 40));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ms: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord {
            t: t_ms * 1_000_000,
            ev,
        }
    }

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn windows_pair_on_off_edges() {
        let recs = vec![
            rec(
                100,
                TraceEvent::FaultOn {
                    kind: "blackout".into(),
                    dir: "both".into(),
                },
            ),
            rec(
                600,
                TraceEvent::FaultOff {
                    kind: "blackout".into(),
                    dir: "both".into(),
                },
            ),
        ];
        let ws = fault_windows(&recs);
        assert_eq!(
            ws,
            vec![FaultWindow {
                on: t(100),
                off: t(600),
                label: "blackout/both".into()
            }]
        );
    }

    #[test]
    fn unclosed_window_extends_to_max() {
        let recs = vec![rec(
            50,
            TraceEvent::FaultOn {
                kind: "stall".into(),
                dir: "down".into(),
            },
        )];
        let ws = fault_windows(&recs);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].off, Time::MAX);
    }

    #[test]
    fn episodes_split_on_gap_and_attribute_fault() {
        let recs = vec![
            rec(
                100,
                TraceEvent::FaultOn {
                    kind: "blackout".into(),
                    dir: "both".into(),
                },
            ),
            rec(150, TraceEvent::Loss { pn: 1 }),
            rec(200, TraceEvent::Loss { pn: 2 }),
            rec(
                400,
                TraceEvent::FaultOff {
                    kind: "blackout".into(),
                    dir: "both".into(),
                },
            ),
            // > EPISODE_GAP after the last loss: a second episode, still
            // attributed to the only window that ever opened.
            rec(2000, TraceEvent::Loss { pn: 3 }),
        ];
        let eps = loss_episodes(&recs);
        assert_eq!(eps.len(), 2);
        assert_eq!(eps[0].losses, 2);
        assert_eq!(eps[0].start, t(150));
        assert_eq!(eps[0].end, t(200));
        assert_eq!(eps[0].fault.as_deref(), Some("blackout/both"));
        assert_eq!(eps[1].losses, 1);
        assert_eq!(eps[1].fault.as_deref(), Some("blackout/both"));
    }

    #[test]
    fn losses_before_any_window_are_unattributed() {
        let recs = vec![rec(10, TraceEvent::Loss { pn: 1 })];
        let eps = loss_episodes(&recs);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].fault, None);
    }

    #[test]
    fn dwell_table_sums_repeat_visits() {
        let recs = vec![
            rec(0, TraceEvent::CcState { state: "A".into() }),
            rec(10, TraceEvent::CcState { state: "B".into() }),
            rec(30, TraceEvent::CcState { state: "A".into() }),
            rec(100, TraceEvent::Cwnd { bytes: 1 }),
        ];
        let rows = dwell_table(&recs);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "A");
        assert_eq!(rows[0].1, Dur::from_millis(80)); // 10 + 70
        assert_eq!(rows[1].0, "B");
        assert_eq!(rows[1].1, Dur::from_millis(20));
        assert!((rows[0].2 - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_renders_without_panic() {
        assert!(dwell_table(&[]).is_empty());
        assert!(loss_episodes(&[]).is_empty());
        let report = render_report(&[]);
        assert!(report.contains("0 events"));
    }

    #[test]
    fn timeline_elides_middle() {
        let recs: Vec<TraceRecord> = (0..100)
            .map(|i| rec(i, TraceEvent::Cwnd { bytes: i }))
            .collect();
        let text = render_timeline(&recs, 10);
        assert!(text.contains("90 events elided"));
        assert_eq!(text.lines().count(), 11);
    }
}
