//! The QUIC version model (paper Sec 5.4, "Historical Comparison").
//!
//! Twelve QUIC versions shipped during the paper's study window. The
//! changelogs show most changes touched crypto, flags, and connection IDs;
//! the *transport-relevant* deltas the paper isolates are:
//!
//! * versions 25-36: identical transport behavior given the same
//!   configuration (the paper measured 25-34 and found near-identical
//!   results; 35/36 "exhibit identical performance" to 34);
//! * version 34: N = 2 connection emulation, calibrated MACW 430;
//! * version 37 (Chromium 60): MACW raised to 2000, N = 1.

use longlook_quic::QuicConfig;

/// A gQUIC protocol version in the paper's study range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QuicVersion {
    /// Oldest version testable with Chrome 52 (the paper's floor).
    V25,
    /// Q026.
    V26,
    /// Q027.
    V27,
    /// Q028.
    V28,
    /// Q029.
    V29,
    /// Q030.
    V30,
    /// Q031.
    V31,
    /// Q032.
    V32,
    /// Q033.
    V33,
    /// Q034 — the paper's workhorse version.
    V34,
    /// Q035.
    V35,
    /// Q036.
    V36,
    /// Q037 — Chromium 60's latest stable (MACW 2000, N = 1).
    V37,
}

impl QuicVersion {
    /// All versions in study order.
    pub fn all() -> Vec<QuicVersion> {
        use QuicVersion::*;
        vec![
            V25, V26, V27, V28, V29, V30, V31, V32, V33, V34, V35, V36, V37,
        ]
    }

    /// Numeric version.
    pub fn number(self) -> u32 {
        use QuicVersion::*;
        match self {
            V25 => 25,
            V26 => 26,
            V27 => 27,
            V28 => 28,
            V29 => 29,
            V30 => 30,
            V31 => 31,
            V32 => 32,
            V33 => 33,
            V34 => 34,
            V35 => 35,
            V36 => 36,
            V37 => 37,
        }
    }

    /// The transport configuration this version deploys with (calibrated
    /// per Sec 4.1 — i.e. matching Google's servers, not the public
    /// defaults).
    pub fn config(self) -> QuicConfig {
        if self.number() >= 37 {
            QuicConfig::quic37()
        } else {
            // 25-36 share QUIC 34's transport behavior under the paper's
            // fixed configuration.
            QuicConfig::default()
        }
    }

    /// Changelog summary (what actually changed, per the paper's
    /// analysis of the wire-layout changelogs).
    pub fn changelog(self) -> &'static str {
        match self.number() {
            25..=33 => "crypto logic, QUIC flags, connection ID handling — no transport impact",
            34 => "baseline studied version (N=2 emulation, MACW 430 calibrated)",
            35 | 36 => "identical performance to 34 (changelog: crypto/flags only)",
            37 => "MACW raised to 2000 in Chromium 60; N=1 connection emulation",
            _ => "unknown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_versions_in_order() {
        let all = QuicVersion::all();
        assert_eq!(all.len(), 13);
        assert_eq!(all[0].number(), 25);
        assert_eq!(all[12].number(), 37);
        assert!(all.windows(2).all(|w| w[0].number() < w[1].number()));
    }

    #[test]
    fn transport_configs_match_paper() {
        // 25..=36 share the same transport config.
        let base = QuicVersion::V34.config();
        for v in QuicVersion::all() {
            if v.number() < 37 {
                let c = v.config();
                assert_eq!(c.cubic.max_cwnd_packets, base.cubic.max_cwnd_packets);
                assert_eq!(c.cubic.num_connections, base.cubic.num_connections);
            }
        }
        let v37 = QuicVersion::V37.config();
        assert_eq!(v37.cubic.max_cwnd_packets, Some(2000));
        assert_eq!(v37.cubic.num_connections, 1);
    }

    #[test]
    fn changelogs_non_empty() {
        for v in QuicVersion::all() {
            assert!(!v.changelog().is_empty());
        }
    }
}
