//! Testbed construction: the paper's Fig 1 topology (client — emulating
//! router — server) and its variants (shared bottleneck for fairness,
//! proxy midpoint, cellular profiles).
//!
//! The emulating router collapses into the link pair: since the paper's
//! router only shapes/impairs traffic, the two directions of a
//! [`NetProfile`] carry all of its behavior.

use longlook_http::app::ClientApp;
use longlook_http::host::{ClientHost, ProtoConfig, ServerHost, WaitModel};
use longlook_http::workload::PageSpec;
use longlook_proxy::ProxyHost;
use longlook_sim::link::{Jitter, LinkConfig, ReorderSpec};
use longlook_sim::schedule::RateSchedule;
use longlook_sim::time::{Dur, Time};
use longlook_sim::world::World;
use longlook_sim::{DeviceProfile, FaultPlan, FlowId, NodeId, PeerSide};

/// A network environment: everything `tc`/`netem` controlled on the
/// paper's router.
#[derive(Debug, Clone)]
pub struct NetProfile {
    /// Link rate schedule (both directions).
    pub rate: RateSchedule,
    /// Path round-trip time (split evenly across directions).
    pub rtt: Dur,
    /// Random loss per direction.
    pub loss: f64,
    /// Delay jitter per direction.
    pub jitter: Jitter,
    /// Explicit reordering per direction.
    pub reorder: Option<ReorderSpec>,
    /// Drop-tail buffer override in bytes (`None` = one BDP, min 64 KB).
    pub buffer_bytes: Option<u64>,
    /// Deterministic fault schedule layered on the path. `None` keeps the
    /// link transit paths and RNG streams byte-identical to a profile
    /// built before the fault layer existed (the golden-seed referee
    /// pins this). When set, the testbed also arms both endpoints'
    /// connection watchdogs so faulted runs terminate with typed errors.
    pub fault: Option<FaultPlan>,
}

impl NetProfile {
    /// The paper's baseline: `rate` Mbps, 36 ms RTT, clean path.
    pub fn baseline(rate_mbps: f64) -> Self {
        NetProfile {
            rate: RateSchedule::fixed_mbps(rate_mbps),
            rtt: Dur::from_millis(36),
            loss: 0.0,
            jitter: Jitter::None,
            reorder: None,
            buffer_bytes: None,
            fault: None,
        }
    }

    /// Builder: attach a deterministic fault schedule.
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Builder: add random loss.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Builder: add extra RTT.
    pub fn with_extra_rtt(mut self, extra: Dur) -> Self {
        self.rtt += extra;
        self
    }

    /// Builder: netem-style jitter (causes reordering).
    pub fn with_jitter(mut self, j: Dur) -> Self {
        self.jitter = Jitter::Uniform(j);
        self
    }

    /// Builder: explicit reordering.
    pub fn with_reorder(mut self, spec: ReorderSpec) -> Self {
        self.reorder = Some(spec);
        self
    }

    /// Builder: fixed buffer (e.g. the fairness tests' 30 KB).
    pub fn with_buffer(mut self, bytes: u64) -> Self {
        self.buffer_bytes = Some(bytes);
        self
    }

    /// One direction's link configuration.
    pub fn link(&self) -> LinkConfig {
        let owd = Dur::from_nanos(self.rtt.as_nanos() / 2);
        let mut cfg = LinkConfig::shaped(self.rate.clone(), owd, self.rtt)
            .with_loss(self.loss)
            .with_jitter(self.jitter);
        if let Some(spec) = self.reorder {
            cfg = cfg.with_reorder(spec);
        }
        if let Some(b) = self.buffer_bytes {
            cfg = cfg.with_buffer(b);
        }
        cfg
    }
}

/// One client workload to install: protocol, 0-RTT availability, app.
pub struct FlowSpec {
    /// Protocol + configuration.
    pub proto: ProtoConfig,
    /// Whether the client holds cached 0-RTT state (QUIC only).
    pub zero_rtt: bool,
    /// The application.
    pub app: Box<dyn ClientApp>,
}

/// A built direct-topology testbed.
pub struct Testbed {
    /// The world, ready to run.
    pub world: World,
    /// Client node.
    pub client: NodeId,
    /// Server node.
    pub server: NodeId,
    /// Flow ids in the order the specs were given.
    pub flows: Vec<FlowId>,
}

impl Testbed {
    /// Build the Fig 1 topology with the given flows sharing one link.
    pub fn direct(
        seed: u64,
        net: &NetProfile,
        device: DeviceProfile,
        catalog: PageSpec,
        flows: Vec<FlowSpec>,
        wait: Option<WaitModel>,
        stop_when_done: bool,
    ) -> Testbed {
        let mut world = World::new(seed);
        let server_id = NodeId(1);
        // Under a fault plan both endpoints run with armed watchdogs:
        // blackouts and stalls must end in a typed error, never a hang.
        let arm = |proto: ProtoConfig| -> ProtoConfig {
            if net.fault.is_some() {
                proto.with_watchdog()
            } else {
                proto
            }
        };
        let mut client = ClientHost::new(server_id, stop_when_done);
        let mut server = ServerHost::new(
            arm(flows
                .first()
                .map(|f| f.proto.clone())
                .unwrap_or(ProtoConfig::Quic(Default::default()))),
            catalog,
            seed ^ 0x6C6F_6E67, // "long"
        );
        if let Some(w) = wait {
            server = server.with_wait(w);
        }
        let mut flow_ids = Vec::new();
        for (i, spec) in flows.into_iter().enumerate() {
            let flow = FlowId(i as u64 + 1);
            // Memory-constrained devices advertise smaller QUIC windows
            // (mobile Chrome scales flow control by device memory) and
            // stop auto-tuning them upward. The *server* still runs the
            // calibrated config; only the client's receive side shrinks.
            let client_proto = match (&spec.proto, device.quic_recv_window_cap) {
                (ProtoConfig::Quic(cfg), Some(cap)) => {
                    let mut c = cfg.clone();
                    c.conn_recv_window = cap.min(c.conn_recv_window_max);
                    c.stream_recv_window = (cap * 2 / 3).min(c.stream_recv_window_max);
                    c.flow_auto_tune = false;
                    ProtoConfig::Quic(c)
                }
                _ => spec.proto.clone(),
            };
            server.expect_flow(flow, arm(spec.proto.clone()));
            client.add(
                flow,
                &arm(client_proto),
                spec.zero_rtt,
                spec.app,
                Time::ZERO,
            );
            flow_ids.push(flow);
        }
        let c = world.add_node(Box::new(client), device);
        let s = world.add_node(Box::new(server), DeviceProfile::SERVER);
        debug_assert_eq!(s, server_id);
        // Per-direction fault views: "up" is client -> server (the first
        // `connect` argument), "down" the reverse.
        let (up, down) = match &net.fault {
            Some(plan) => (
                net.link().with_fault(plan.link_view(true)),
                net.link().with_fault(plan.link_view(false)),
            ),
            None => (net.link(), net.link()),
        };
        world.connect(c, s, up, down);
        if let Some(plan) = &net.fault {
            for (from, until) in plan.stall_windows(PeerSide::Client) {
                world.stall_node(c, from, until);
            }
            for (from, until) in plan.stall_windows(PeerSide::Server) {
                world.stall_node(s, from, until);
            }
        }
        world.kick(c);
        Testbed {
            world,
            client: c,
            server: s,
            flows: flow_ids,
        }
    }

    /// Run until the client stops, the world idles, or `deadline`.
    pub fn run(&mut self, deadline: Dur) {
        self.world.run_until(Time::ZERO + deadline);
    }

    /// The client host (for result extraction).
    pub fn client_host(&self) -> &ClientHost {
        self.world.agent::<ClientHost>(self.client)
    }

    /// The server host.
    pub fn server_host(&self) -> &ServerHost {
        self.world.agent::<ServerHost>(self.server)
    }
}

/// A built proxy-topology testbed: client — leg — proxy — leg — origin.
pub struct ProxyTestbed {
    /// The world.
    pub world: World,
    /// Client node.
    pub client: NodeId,
    /// Proxy node.
    pub proxy: NodeId,
    /// Origin node.
    pub origin: NodeId,
}

impl ProxyTestbed {
    /// Build with the proxy "located midway between client and server"
    /// (Fig 16): each leg gets half the RTT and the full rate/impairments
    /// of `net`.
    #[allow(clippy::too_many_arguments)]
    pub fn midpoint(
        seed: u64,
        net: &NetProfile,
        device: DeviceProfile,
        catalog: PageSpec,
        down_proto: ProtoConfig,
        up_proto: ProtoConfig,
        zero_rtt: bool,
        app: Box<dyn ClientApp>,
    ) -> ProxyTestbed {
        let mut world = World::new(seed);
        let proxy_id = NodeId(1);
        let origin_id = NodeId(2);
        let mut client = ClientHost::new(proxy_id, true);
        client.add(FlowId(1), &down_proto, zero_rtt, app, Time::ZERO);
        let c = world.add_node(Box::new(client), device);
        let proxy = ProxyHost::new(origin_id, down_proto, up_proto.clone(), 1 << 32);
        let p = world.add_node(Box::new(proxy), DeviceProfile::SERVER);
        debug_assert_eq!(p, proxy_id);
        let origin = ServerHost::new(up_proto, catalog, seed ^ 0x7072_6F78); // "prox"
        let o = world.add_node(Box::new(origin), DeviceProfile::SERVER);
        debug_assert_eq!(o, origin_id);
        // Each leg: half the path RTT, same rate and impairments.
        let half = NetProfile {
            rtt: Dur::from_nanos(net.rtt.as_nanos() / 2),
            ..net.clone()
        };
        world.connect(c, p, half.link(), half.link());
        world.connect(p, o, half.link(), half.link());
        world.kick(c);
        ProxyTestbed {
            world,
            client: c,
            proxy: p,
            origin: o,
        }
    }

    /// Run until stop/idle/deadline.
    pub fn run(&mut self, deadline: Dur) {
        self.world.run_until(Time::ZERO + deadline);
    }

    /// The client host.
    pub fn client_host(&self) -> &ClientHost {
        self.world.agent::<ClientHost>(self.client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longlook_http::app::WebClient;
    use longlook_quic::QuicConfig;
    use longlook_tcp::TcpConfig;

    #[test]
    fn net_profile_builders_compose() {
        let p = NetProfile::baseline(10.0)
            .with_loss(0.01)
            .with_extra_rtt(Dur::from_millis(100))
            .with_jitter(Dur::from_millis(10))
            .with_buffer(30 * 1024);
        assert_eq!(p.rtt, Dur::from_millis(136));
        assert_eq!(p.loss, 0.01);
        let link = p.link();
        assert_eq!(link.delay, Dur::from_millis(68));
        assert_eq!(link.buffer_bytes, 30 * 1024);
        assert_eq!(link.loss, 0.01);
    }

    #[test]
    fn direct_testbed_runs_a_page_load() {
        let page = PageSpec::single(50 * 1024);
        let mut tb = Testbed::direct(
            1,
            &NetProfile::baseline(10.0),
            DeviceProfile::DESKTOP,
            page.clone(),
            vec![FlowSpec {
                proto: ProtoConfig::Quic(QuicConfig::default()),
                zero_rtt: true,
                app: Box::new(WebClient::new(page)),
            }],
            None,
            true,
        );
        tb.run(Dur::from_secs(30));
        let app = tb.client_host().app::<WebClient>(0);
        assert!(app.done());
    }

    #[test]
    fn mixed_protocol_flows_share_one_bottleneck() {
        let page = PageSpec::single(200 * 1024);
        let mut tb = Testbed::direct(
            2,
            &NetProfile::baseline(5.0).with_buffer(30 * 1024),
            DeviceProfile::DESKTOP,
            page.clone(),
            vec![
                FlowSpec {
                    proto: ProtoConfig::Quic(QuicConfig::default()),
                    zero_rtt: true,
                    app: Box::new(WebClient::new(page.clone())),
                },
                FlowSpec {
                    proto: ProtoConfig::Tcp(TcpConfig::default()),
                    zero_rtt: false,
                    app: Box::new(WebClient::new(page)),
                },
            ],
            None,
            true,
        );
        tb.run(Dur::from_secs(60));
        let host = tb.client_host();
        assert!(host.app::<WebClient>(0).done(), "QUIC flow finished");
        assert!(host.app::<WebClient>(1).done(), "TCP flow finished");
    }

    #[test]
    fn proxy_testbed_runs() {
        let page = PageSpec::single(50 * 1024);
        let mut tb = ProxyTestbed::midpoint(
            3,
            &NetProfile::baseline(10.0),
            DeviceProfile::DESKTOP,
            page.clone(),
            ProtoConfig::Tcp(TcpConfig::default()),
            ProtoConfig::Tcp(TcpConfig::default()),
            false,
            Box::new(WebClient::new(page)),
        );
        tb.run(Dur::from_secs(30));
        assert!(tb.client_host().app::<WebClient>(0).done());
    }
}
