//! Calibration (paper Sec 4.1, Fig 2): making the tested QUIC server
//! behave like the deployed one.
//!
//! The paper found the public QUIC release is *not* what Google runs:
//! the default maximum allowed congestion window was 107 packets (vs 430
//! in Chromium's dev channel) and a bug kept the slow-start threshold from
//! being raised to the receiver-advertised buffer — together costing 2x on
//! a 10 MB download. Google App Engine, the other tempting test target,
//! adds a large *variable* wait before responses. This module reproduces
//! all three server profiles and the grey-box search that recovers the
//! deployed parameters.

use crate::experiment::Scenario;
use crate::testbed::{FlowSpec, NetProfile, Testbed};
use longlook_http::app::WebClient;
use longlook_http::host::{ProtoConfig, WaitModel};
use longlook_http::workload::PageSpec;
use longlook_quic::QuicConfig;
use longlook_sim::time::Dur;
use longlook_sim::DeviceProfile;
use longlook_stats::Summary;

/// The three server profiles of Fig 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerProfile {
    /// The public code release, unconfigured (MACW 107 + ssthresh bug).
    PublicDefault,
    /// Google App Engine: well-tuned transport but a variable wait before
    /// content is served.
    GaeLike,
    /// Tuned to match Google's production QUIC servers (MACW 430, bug
    /// fixed) — the configuration the whole paper uses.
    Calibrated,
}

impl ServerProfile {
    /// Transport configuration for this profile.
    pub fn quic_config(self) -> QuicConfig {
        match self {
            ServerProfile::PublicDefault => QuicConfig::uncalibrated(),
            ServerProfile::GaeLike | ServerProfile::Calibrated => QuicConfig::default(),
        }
    }

    /// Server-side response wait, if any.
    pub fn wait_model(self) -> Option<WaitModel> {
        match self {
            ServerProfile::GaeLike => Some(WaitModel {
                min: Dur::from_millis(150),
                max: Dur::from_millis(900),
            }),
            _ => None,
        }
    }

    /// Display label (Fig 2 bar names).
    pub fn label(self) -> &'static str {
        match self {
            ServerProfile::PublicDefault => "EC2-default",
            ServerProfile::GaeLike => "GAE",
            ServerProfile::Calibrated => "EC2-calibrated",
        }
    }
}

/// One Fig 2 bar: wait vs download split, averaged over rounds.
#[derive(Debug, Clone)]
pub struct WaitDownloadSplit {
    /// Profile label.
    pub profile: &'static str,
    /// Time between the request reaching the server and the first
    /// response byte arriving (ms): the "wait".
    pub wait_ms: Summary,
    /// First byte to completion (ms): the "download".
    pub download_ms: Summary,
}

/// Run the Fig 2 measurement: a 10 MB image over a 100 Mbps link with the
/// paper's 12 ms empirical RTT, 10 rounds.
pub fn fig2_measure(profile: ServerProfile, rounds: u64, base_seed: u64) -> WaitDownloadSplit {
    let mut net = NetProfile::baseline(100.0);
    net.rtt = Dur::from_millis(12);
    let page = PageSpec::single(10 * 1024 * 1024);
    let mut wait = Summary::new();
    let mut download = Summary::new();
    for k in 0..rounds {
        let seed = base_seed.wrapping_mul(7_919).wrapping_add(k);
        let mut tb = Testbed::direct(
            seed,
            &net,
            DeviceProfile::DESKTOP,
            page.clone(),
            vec![FlowSpec {
                proto: ProtoConfig::Quic(profile.quic_config()),
                zero_rtt: true,
                app: Box::new(WebClient::new(page.clone())),
            }],
            profile.wait_model(),
            true,
        );
        tb.run(Dur::from_secs(120));
        let app = tb.client_host().app::<WebClient>(0);
        let rt = app.har()[0];
        let (Some(first), Some(fin)) = (rt.first_byte, rt.finished) else {
            continue;
        };
        // Wait = first-byte latency minus one path RTT (request up +
        // response down).
        let fb_ms = first.saturating_since(rt.started).as_millis_f64();
        wait.add((fb_ms - net.rtt.as_millis_f64()).max(0.0));
        download.add(fin.saturating_since(first).as_millis_f64());
    }
    WaitDownloadSplit {
        profile: profile.label(),
        wait_ms: wait,
        download_ms: download,
    }
}

/// One grey-box calibration candidate.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Max allowed congestion window (packets).
    pub macw: u64,
    /// Whether the ssthresh-from-receiver-buffer fix is applied.
    pub ssthresh_fixed: bool,
}

impl Candidate {
    fn config(self) -> QuicConfig {
        let mut cfg = QuicConfig::default();
        cfg.cubic.max_cwnd_packets = Some(self.macw);
        cfg.cubic.initial_ssthresh_packets = if self.ssthresh_fixed { None } else { Some(38) };
        cfg
    }
}

/// Grey-box calibration (Sec 4.1): "we vary server-side parameters until
/// we obtain performance that matches QUIC from Google servers." The
/// reference PLT plays the role of the measurement against Google; the
/// search sweeps the candidate grid and returns the closest match.
pub fn grey_box_search(
    reference_plt_ms: f64,
    candidates: &[Candidate],
    rounds: u64,
    base_seed: u64,
) -> (Candidate, f64) {
    let mut net = NetProfile::baseline(100.0);
    net.rtt = Dur::from_millis(12);
    let page = PageSpec::single(10 * 1024 * 1024);
    let mut best: Option<(Candidate, f64)> = None;
    for &cand in candidates {
        let sc = Scenario::new(net.clone(), page.clone())
            .with_rounds(rounds)
            .with_seed(base_seed);
        let samples = crate::experiment::plt_samples(&ProtoConfig::Quic(cand.config()), &sc);
        let mean = Summary::of(&samples).mean();
        let err = (mean - reference_plt_ms).abs();
        if best.as_ref().is_none_or(|(_, e)| err < *e) {
            best = Some((cand, err));
        }
    }
    best.expect("non-empty candidate list")
}

/// Measure the reference ("Google server") PLT for the grey-box demo.
pub fn reference_plt_ms(rounds: u64, base_seed: u64) -> f64 {
    let mut net = NetProfile::baseline(100.0);
    net.rtt = Dur::from_millis(12);
    let sc = Scenario::new(net, PageSpec::single(10 * 1024 * 1024))
        .with_rounds(rounds)
        .with_seed(base_seed ^ 0x600613); // "Google"
    let samples = crate::experiment::plt_samples(&ProtoConfig::Quic(QuicConfig::default()), &sc);
    Summary::of(&samples).mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncalibrated_server_is_much_slower() {
        let cal = fig2_measure(ServerProfile::Calibrated, 3, 1);
        let def = fig2_measure(ServerProfile::PublicDefault, 3, 1);
        let ratio = def.download_ms.mean() / cal.download_ms.mean();
        assert!(
            ratio > 1.5,
            "public default should be >=1.5x slower (paper: 2x): {ratio:.2}"
        );
    }

    #[test]
    fn gae_has_large_variable_wait() {
        let cal = fig2_measure(ServerProfile::Calibrated, 4, 2);
        let gae = fig2_measure(ServerProfile::GaeLike, 4, 2);
        assert!(
            gae.wait_ms.mean() > cal.wait_ms.mean() + 100.0,
            "GAE wait {} vs calibrated {}",
            gae.wait_ms.mean(),
            cal.wait_ms.mean()
        );
        assert!(
            gae.wait_ms.sample_std_dev() > 50.0,
            "GAE wait should be highly variable"
        );
    }

    #[test]
    fn grey_box_search_recovers_deployed_parameters() {
        let reference = reference_plt_ms(2, 3);
        let candidates = [
            Candidate {
                macw: 107,
                ssthresh_fixed: false,
            },
            Candidate {
                macw: 107,
                ssthresh_fixed: true,
            },
            Candidate {
                macw: 430,
                ssthresh_fixed: false,
            },
            Candidate {
                macw: 430,
                ssthresh_fixed: true,
            },
        ];
        let (best, err) = grey_box_search(reference, &candidates, 2, 3);
        assert_eq!(best.macw, 430);
        assert!(best.ssthresh_fixed);
        assert!(err < reference * 0.05, "match within 5%: err = {err}");
    }
}
