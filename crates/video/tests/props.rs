//! Property-based tests for the playback-buffer model.

use longlook_sim::time::{Dur, Time};
use longlook_video::Player;
use proptest::prelude::*;

fn t(ms: u64) -> Time {
    Time::ZERO + Dur::from_millis(ms)
}

proptest! {
    /// Conservation: played seconds never exceed loaded seconds, buffers
    /// never go negative, and played + buffered == loaded.
    #[test]
    fn playback_conserves_video_seconds(
        downloads in proptest::collection::vec((1u64..5_000, 0.1f64..10.0), 1..50),
    ) {
        let mut p = Player::new(t(0), 2.0, 5.0);
        let mut clock = 0u64;
        let mut loaded = 0.0f64;
        for &(gap_ms, secs) in &downloads {
            clock += gap_ms;
            p.on_downloaded(t(clock), secs);
            loaded += secs;
            prop_assert!(p.buffer_secs() >= -1e-9);
            prop_assert!(p.buffer_secs() <= loaded + 1e-9);
        }
        let m = p.metrics(t(clock + 10_000));
        prop_assert!((m.loaded_secs - loaded).abs() < 1e-9);
        prop_assert!(m.played_secs <= loaded + 1e-9);
        prop_assert!(m.played_secs >= -1e-9);
    }

    /// Wall-clock accounting: played + rebuffering + startup wait can
    /// never exceed the observation span.
    #[test]
    fn time_accounting_bounded_by_span(
        downloads in proptest::collection::vec((1u64..3_000, 0.1f64..8.0), 1..40),
        extra_ms in 0u64..30_000,
    ) {
        let mut p = Player::new(t(0), 2.0, 5.0);
        let mut clock = 0u64;
        for &(gap_ms, secs) in &downloads {
            clock += gap_ms;
            p.on_downloaded(t(clock), secs);
        }
        let end = clock + extra_ms;
        let m = p.metrics(t(end));
        let span = end as f64 / 1000.0;
        prop_assert!(
            m.played_secs + m.rebuffer_time.as_secs_f64() <= span + 1e-6,
            "played {} + rebuffer {} > span {}",
            m.played_secs,
            m.rebuffer_time.as_secs_f64(),
            span
        );
    }

    /// Monotonicity: more download at the same instants never reduces
    /// played seconds.
    #[test]
    fn more_data_never_hurts(
        downloads in proptest::collection::vec((100u64..2_000, 0.5f64..5.0), 2..20),
    ) {
        let run = |scale: f64| {
            let mut p = Player::new(t(0), 2.0, 5.0);
            let mut clock = 0u64;
            for &(gap_ms, secs) in &downloads {
                clock += gap_ms;
                p.on_downloaded(t(clock), secs * scale);
            }
            p.metrics(t(clock + 5_000)).played_secs
        };
        let base = run(1.0);
        let more = run(1.5);
        prop_assert!(more >= base - 1e-6, "{more} < {base}");
    }

    /// A player that never crosses the start threshold reports no
    /// rebuffering and no start time.
    #[test]
    fn below_threshold_never_starts(n in 1usize..20) {
        let mut p = Player::new(t(0), 10.0, 15.0);
        for k in 0..n {
            // 0.3s of video per download, capped well below the 10s
            // threshold by playback never starting (buffer only grows).
            if p.buffer_secs() > 9.0 {
                break;
            }
            p.on_downloaded(t((k as u64 + 1) * 500), 0.3);
        }
        let m = p.metrics(t(60_000));
        if m.loaded_secs < 10.0 {
            prop_assert_eq!(m.time_to_start, None);
            prop_assert_eq!(m.rebuffer_count, 0);
            prop_assert_eq!(m.played_secs, 0.0);
        }
    }
}
