//! The playback-buffer model: a fluid player that drains one video-second
//! per wall-second while playing and stalls when the buffer empties.
//!
//! The QoE metrics of the paper's Table 6 fall out of this model: time to
//! start (buffer reaches the start threshold), rebuffer count and
//! rebuffering time (stalls), and fraction of the video loaded in the
//! watch window.

use longlook_sim::time::{Dur, Time};

/// Playback QoE counters.
#[derive(Debug, Clone, Copy)]
pub struct QoeMetrics {
    /// Wall time from load start to first frame.
    pub time_to_start: Option<Dur>,
    /// Seconds of video played.
    pub played_secs: f64,
    /// Seconds of video downloaded.
    pub loaded_secs: f64,
    /// Number of mid-playback stalls.
    pub rebuffer_count: u32,
    /// Total time stalled after playback started.
    pub rebuffer_time: Dur,
}

impl QoeMetrics {
    /// Buffering time / playing time, as a percentage (Table 6).
    pub fn buffer_play_ratio_pct(&self) -> f64 {
        if self.played_secs <= 0.0 {
            return 0.0;
        }
        self.rebuffer_time.as_secs_f64() / self.played_secs * 100.0
    }

    /// Rebuffers per played second (Table 6's final column).
    pub fn rebuffers_per_playing_sec(&self) -> f64 {
        if self.played_secs <= 0.0 {
            0.0
        } else {
            self.rebuffer_count as f64 / self.played_secs
        }
    }

    /// Fraction of a `total_secs` video loaded, as a percentage.
    pub fn loaded_pct(&self, total_secs: f64) -> f64 {
        self.loaded_secs / total_secs * 100.0
    }
}

/// Fluid playback-buffer simulation.
#[derive(Debug)]
pub struct Player {
    /// Video seconds buffered ahead of the playhead.
    buffer_secs: f64,
    /// Video seconds downloaded in total.
    loaded_secs: f64,
    played_secs: f64,
    playing: bool,
    started: Option<Time>,
    load_began: Time,
    last_update: Time,
    rebuffer_count: u32,
    rebuffer_time: Dur,
    /// Buffer needed before first play.
    start_threshold: f64,
    /// Buffer needed to resume after a stall.
    resume_threshold: f64,
}

impl Player {
    /// New player; `now` is when loading begins.
    pub fn new(now: Time, start_threshold: f64, resume_threshold: f64) -> Self {
        Player {
            buffer_secs: 0.0,
            loaded_secs: 0.0,
            played_secs: 0.0,
            playing: false,
            started: None,
            load_began: now,
            last_update: now,
            rebuffer_count: 0,
            rebuffer_time: Dur::ZERO,
            start_threshold,
            resume_threshold,
        }
    }

    /// Advance the fluid model to `now`.
    pub fn update(&mut self, now: Time) {
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        self.last_update = now;
        if dt <= 0.0 {
            return;
        }
        if self.playing {
            let play = dt.min(self.buffer_secs);
            self.played_secs += play;
            self.buffer_secs -= play;
            if play < dt {
                // Stalled mid-interval.
                self.playing = false;
                self.rebuffer_count += 1;
                self.rebuffer_time += Dur::from_secs_f64(dt - play);
            }
        } else if self.started.is_some() {
            // Stalled: the whole interval is rebuffering time.
            self.rebuffer_time += Dur::from_secs_f64(dt);
        }
    }

    /// Account `secs` of newly downloaded video at `now`.
    pub fn on_downloaded(&mut self, now: Time, secs: f64) {
        self.update(now);
        self.buffer_secs += secs;
        self.loaded_secs += secs;
        match self.started {
            None => {
                if self.buffer_secs >= self.start_threshold {
                    self.started = Some(now);
                    self.playing = true;
                }
            }
            Some(_) => {
                if !self.playing && self.buffer_secs >= self.resume_threshold {
                    self.playing = true;
                }
            }
        }
    }

    /// Current buffered seconds ahead of the playhead.
    pub fn buffer_secs(&self) -> f64 {
        self.buffer_secs
    }

    /// Whether playback has begun.
    pub fn started(&self) -> bool {
        self.started.is_some()
    }

    /// Finalize at `now` and report metrics.
    pub fn metrics(&mut self, now: Time) -> QoeMetrics {
        self.update(now);
        QoeMetrics {
            time_to_start: self.started.map(|s| s.saturating_since(self.load_began)),
            played_secs: self.played_secs,
            loaded_secs: self.loaded_secs,
            rebuffer_count: self.rebuffer_count,
            rebuffer_time: self.rebuffer_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn playback_starts_at_threshold() {
        let mut p = Player::new(t(0), 2.0, 5.0);
        p.on_downloaded(t(100), 1.0);
        assert!(!p.started());
        p.on_downloaded(t(200), 1.5);
        assert!(p.started());
        let m = p.metrics(t(200));
        assert_eq!(m.time_to_start, Some(Dur::from_millis(200)));
    }

    #[test]
    fn steady_download_plays_smoothly() {
        let mut p = Player::new(t(0), 2.0, 5.0);
        // Download 5s of video every second for 10 seconds.
        for k in 1..=10u64 {
            p.on_downloaded(t(k * 1000), 5.0);
        }
        let m = p.metrics(t(10_000));
        assert_eq!(m.rebuffer_count, 0);
        // Started after the first download (t=1s), played ~9s since.
        assert!((m.played_secs - 9.0).abs() < 0.01, "{}", m.played_secs);
        assert_eq!(m.loaded_secs, 50.0);
    }

    #[test]
    fn slow_download_rebuffers() {
        let mut p = Player::new(t(0), 2.0, 5.0);
        // 2s of video arrives at t=1: play starts.
        p.on_downloaded(t(1000), 2.0);
        // Nothing more until t=10: buffer drains at t=3, stall 7s.
        p.on_downloaded(t(10_000), 5.0);
        let m = p.metrics(t(10_000));
        assert_eq!(m.rebuffer_count, 1);
        assert!((m.rebuffer_time.as_secs_f64() - 7.0).abs() < 0.01);
        assert!((m.played_secs - 2.0).abs() < 0.01);
    }

    #[test]
    fn resume_waits_for_resume_threshold() {
        let mut p = Player::new(t(0), 2.0, 5.0);
        p.on_downloaded(t(0), 2.0);
        assert!(p.started());
        // Drain fully by t=3.
        p.update(t(3000));
        // Trickle in 1s of video: below resume threshold, still stalled.
        p.on_downloaded(t(4000), 1.0);
        p.update(t(5000));
        let m = p.metrics(t(5000));
        assert!((m.played_secs - 2.0).abs() < 0.01, "still stalled");
        // Cross the threshold: playback resumes.
        p.on_downloaded(t(5000), 4.5);
        p.update(t(6000));
        let m = p.metrics(t(6000));
        assert!(m.played_secs > 2.5);
        assert_eq!(m.rebuffer_count, 1);
    }

    #[test]
    fn never_started_has_no_rebuffers() {
        let mut p = Player::new(t(0), 2.0, 5.0);
        p.on_downloaded(t(1000), 0.5);
        let m = p.metrics(t(60_000));
        assert_eq!(m.time_to_start, None);
        assert_eq!(m.rebuffer_count, 0);
        assert_eq!(m.rebuffer_time, Dur::ZERO);
        assert_eq!(m.played_secs, 0.0);
    }

    #[test]
    fn metrics_ratios() {
        let m = QoeMetrics {
            time_to_start: Some(Dur::from_secs(1)),
            played_secs: 20.0,
            loaded_secs: 36.0,
            rebuffer_count: 4,
            rebuffer_time: Dur::from_secs(10),
        };
        assert!((m.buffer_play_ratio_pct() - 50.0).abs() < 1e-9);
        assert!((m.rebuffers_per_playing_sec() - 0.2).abs() < 1e-9);
        assert!((m.loaded_pct(3600.0) - 1.0).abs() < 1e-9);
    }
}
