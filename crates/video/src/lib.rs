//! Video-streaming QoE over either transport (paper Sec 5.3, Table 6).
//!
//! A fixed-quality segment-streaming client (the paper streams one quality
//! at a time via the YouTube iFrame API, no ABR) feeding a fluid playback
//! buffer; QoE metrics are time-to-start, fraction loaded in the watch
//! window, rebuffer counts, and buffering/playing ratio.

pub mod client;
pub mod player;

pub use client::{Quality, VideoClient, VideoConfig, QUALITIES};
pub use player::{Player, QoeMetrics};

#[cfg(test)]
mod world_tests {
    use crate::client::{VideoClient, VideoConfig, QUALITIES};
    use longlook_http::host::{ClientHost, ProtoConfig, ServerHost};
    use longlook_quic::QuicConfig;
    use longlook_sim::link::LinkConfig;
    use longlook_sim::schedule::RateSchedule;
    use longlook_sim::time::{Dur, Time};
    use longlook_sim::world::World;
    use longlook_sim::{DeviceProfile, FlowId, NodeId};
    use longlook_tcp::TcpConfig;

    fn run_video(
        proto: ProtoConfig,
        cfg: VideoConfig,
        rate_mbps: f64,
        loss: f64,
        seed: u64,
    ) -> crate::QoeMetrics {
        let mut world = World::new(seed);
        let server_id = NodeId(1);
        let mut client = ClientHost::new(server_id, false);
        client.add(
            FlowId(1),
            &proto,
            true,
            Box::new(VideoClient::new(cfg.clone())),
            Time::ZERO,
        );
        let c = world.add_node(Box::new(client), DeviceProfile::DESKTOP);
        let server = ServerHost::new(proto, cfg.catalog(), seed ^ 0x77);
        world.add_node(Box::new(server), DeviceProfile::SERVER);
        let link = LinkConfig::shaped(
            RateSchedule::fixed_mbps(rate_mbps),
            Dur::from_millis(18),
            Dur::from_millis(36),
        )
        .with_loss(loss);
        world.connect(c, server_id, link.clone(), link);
        world.kick(c);
        world.run_until(Time::ZERO + cfg.watch_time + Dur::from_secs(5));
        let client = world.agent::<ClientHost>(c);
        let app = client.app::<VideoClient>(0);
        app.qoe().expect("watch window elapsed")
    }

    fn quic() -> ProtoConfig {
        ProtoConfig::Quic(QuicConfig::default())
    }

    #[test]
    fn low_quality_plays_without_rebuffering() {
        let cfg = VideoConfig::table6(QUALITIES[0]); // tiny
        let m = run_video(quic(), cfg, 100.0, 0.0, 1);
        assert_eq!(m.rebuffer_count, 0);
        assert!(m.time_to_start.is_some());
        assert!(m.played_secs > 50.0, "played = {}", m.played_secs);
    }

    #[test]
    fn fraction_loaded_capped_by_buffer_limit() {
        let mut cfg = VideoConfig::table6(QUALITIES[0]);
        cfg.max_buffer_ahead = 100.0;
        let m = run_video(quic(), cfg, 100.0, 0.0, 2);
        // Loaded ~ played (60s) + cap (100s) + one segment of slack.
        assert!(m.loaded_secs < 175.0, "loaded = {}", m.loaded_secs);
        assert!(m.loaded_secs > 100.0);
    }

    #[test]
    fn uhd_on_a_thin_lossy_pipe_rebuffers() {
        let cfg = VideoConfig::table6(QUALITIES[3]); // hd2160 (18 Mbps)
        let m = run_video(quic(), cfg, 20.0, 0.01, 3);
        assert!(m.rebuffer_count >= 1, "{m:?}");
        assert!(m.loaded_secs < 120.0);
    }

    #[test]
    fn quic_loads_more_uhd_than_tcp_under_loss() {
        // The Table 6 headline at hd2160 / 100 Mbps / 1% loss.
        let cfg = VideoConfig::table6(QUALITIES[3]);
        let q = run_video(quic(), cfg.clone(), 100.0, 0.01, 4);
        let t = run_video(ProtoConfig::Tcp(TcpConfig::default()), cfg, 100.0, 0.01, 4);
        assert!(
            q.loaded_secs > t.loaded_secs,
            "QUIC {} vs TCP {}",
            q.loaded_secs,
            t.loaded_secs
        );
    }

    #[test]
    fn time_to_start_reflects_handshake_difference() {
        let cfg = VideoConfig::table6(QUALITIES[1]); // medium
        let q = run_video(quic(), cfg.clone(), 100.0, 0.0, 5);
        let t = run_video(ProtoConfig::Tcp(TcpConfig::default()), cfg, 100.0, 0.0, 5);
        let qs = q.time_to_start.expect("started").as_millis_f64();
        let ts = t.time_to_start.expect("started").as_millis_f64();
        assert!(qs < ts, "QUIC starts faster: {qs} vs {ts}");
    }
}
