//! The streaming client: sequential segment fetches over either transport,
//! feeding the playback-buffer model.
//!
//! Mirrors the paper's tool (Sec 5.3): "opens a one-hour-long YouTube
//! video, selects a specific quality level, lets the video run for 60
//! seconds, and logs ... time to start the video, video quality, ...
//! re-buffering events, and fraction of video loaded."

use crate::player::{Player, QoeMetrics};
use longlook_http::app::ClientApp;
use longlook_http::workload::PageSpec;
use longlook_sim::time::{Dur, Time};
use longlook_transport::conn::{AppEvent, Connection, StreamId};
use std::any::Any;

/// A fixed video quality level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Label as in the YouTube API.
    pub name: &'static str,
    /// Encoded bitrate, bits/sec.
    pub bitrate_bps: f64,
}

/// The quality ladder of Table 6.
pub const QUALITIES: [Quality; 4] = [
    Quality {
        name: "tiny",
        bitrate_bps: 125e3,
    },
    Quality {
        name: "medium",
        bitrate_bps: 750e3,
    },
    Quality {
        name: "hd720",
        bitrate_bps: 2.5e6,
    },
    Quality {
        name: "hd2160",
        bitrate_bps: 18e6,
    },
];

/// Streaming client configuration.
#[derive(Debug, Clone)]
pub struct VideoConfig {
    /// Selected quality.
    pub quality: Quality,
    /// Segment duration in video seconds.
    pub segment_secs: f64,
    /// Total video length in seconds (the paper uses a 1-hour video).
    pub video_secs: f64,
    /// How long the experiment watches (the paper: 60 s).
    pub watch_time: Dur,
    /// Buffered seconds needed to start playback.
    pub start_threshold: f64,
    /// Buffered seconds needed to resume after a stall.
    pub resume_threshold: f64,
    /// Stop fetching when this much video is buffered ahead.
    pub max_buffer_ahead: f64,
}

impl VideoConfig {
    /// Table 6 defaults for the given quality.
    pub fn table6(quality: Quality) -> Self {
        VideoConfig {
            quality,
            segment_secs: 5.0,
            video_secs: 3600.0,
            watch_time: Dur::from_secs(60),
            start_threshold: 2.0,
            resume_threshold: 5.0,
            max_buffer_ahead: 1200.0,
        }
    }

    /// Bytes per segment at this quality.
    pub fn segment_bytes(&self) -> u64 {
        (self.quality.bitrate_bps * self.segment_secs / 8.0) as u64
    }

    /// Number of segments in the whole video.
    pub fn segment_count(&self) -> usize {
        (self.video_secs / self.segment_secs).ceil() as usize
    }

    /// Server catalog for this stream: every segment has the same size, so
    /// a single catalog entry (index 0) suffices.
    pub fn catalog(&self) -> PageSpec {
        PageSpec::single(self.segment_bytes())
    }
}

/// The streaming client app.
pub struct VideoClient {
    cfg: VideoConfig,
    player: Player,
    /// Deadline after which the experiment stops (watch window).
    deadline: Option<Time>,
    /// Outstanding segment request.
    inflight: Option<StreamId>,
    received_this_segment: u64,
    segments_fetched: usize,
    established: bool,
    finished: bool,
    /// Final metrics, captured at the deadline.
    result: Option<QoeMetrics>,
}

impl VideoClient {
    /// New client for the given configuration.
    pub fn new(cfg: VideoConfig) -> Self {
        let player = Player::new(Time::ZERO, cfg.start_threshold, cfg.resume_threshold);
        VideoClient {
            cfg,
            player,
            deadline: None,
            inflight: None,
            received_this_segment: 0,
            segments_fetched: 0,
            established: false,
            finished: false,
            result: None,
        }
    }

    fn maybe_request(&mut self, conn: &mut dyn Connection, now: Time) {
        if self.finished
            || self.inflight.is_some()
            || self.segments_fetched >= self.cfg.segment_count()
        {
            return;
        }
        self.player.update(now);
        if self.player.buffer_secs() >= self.cfg.max_buffer_ahead {
            return; // buffer full; on_tick will resume fetching
        }
        if let Some(id) = conn.open_stream(now) {
            self.received_this_segment = 0;
            self.inflight = Some(id);
            conn.stream_send(now, id, PageSpec::request_len(0), true);
        }
    }

    fn finish(&mut self, now: Time) {
        if !self.finished {
            self.finished = true;
            self.result = Some(self.player.metrics(now));
        }
    }

    /// The QoE metrics (after the watch window closed).
    pub fn qoe(&self) -> Option<QoeMetrics> {
        self.result
    }

    /// The configuration (for reporting).
    pub fn config(&self) -> &VideoConfig {
        &self.cfg
    }
}

impl ClientApp for VideoClient {
    fn on_start(&mut self, conn: &mut dyn Connection, now: Time) {
        self.deadline = Some(now + self.cfg.watch_time);
        self.player = Player::new(now, self.cfg.start_threshold, self.cfg.resume_threshold);
        if conn.is_established() {
            self.established = true;
            self.maybe_request(conn, now);
        }
    }

    fn on_event(&mut self, ev: AppEvent, conn: &mut dyn Connection, now: Time) {
        if self.deadline.is_some_and(|d| now >= d) {
            self.finish(self.deadline.expect("checked"));
            return;
        }
        match ev {
            AppEvent::HandshakeDone => {
                if !self.established {
                    self.established = true;
                    self.maybe_request(conn, now);
                }
            }
            AppEvent::StreamData { id, bytes } => {
                if self.inflight == Some(id) {
                    self.received_this_segment += bytes;
                }
            }
            AppEvent::StreamFin(id) => {
                if self.inflight == Some(id) {
                    self.inflight = None;
                    self.segments_fetched += 1;
                    self.player.on_downloaded(now, self.cfg.segment_secs);
                    self.maybe_request(conn, now);
                }
            }
            AppEvent::StreamOpened(_) => {}
        }
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn next_wakeup(&self) -> Option<Time> {
        if self.finished {
            return None;
        }
        self.deadline
    }

    fn on_tick(&mut self, conn: &mut dyn Connection, now: Time) {
        if let Some(d) = self.deadline {
            if now >= d {
                self.finish(d);
                return;
            }
        }
        // Buffer may have drained below the cap: resume fetching.
        if self.established {
            self.maybe_request(conn, now);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_ladder_matches_table6() {
        assert_eq!(QUALITIES.len(), 4);
        assert_eq!(QUALITIES[0].name, "tiny");
        assert_eq!(QUALITIES[3].name, "hd2160");
        assert!(QUALITIES
            .windows(2)
            .all(|w| w[0].bitrate_bps < w[1].bitrate_bps));
    }

    #[test]
    fn segment_sizing() {
        let cfg = VideoConfig::table6(QUALITIES[3]);
        // 18 Mbps * 5 s / 8 = 11.25 MB per segment.
        assert_eq!(cfg.segment_bytes(), 11_250_000);
        assert_eq!(cfg.segment_count(), 720);
        assert_eq!(cfg.catalog().objects, vec![11_250_000]);
    }

    #[test]
    fn tiny_segments_are_small() {
        let cfg = VideoConfig::table6(QUALITIES[0]);
        assert_eq!(cfg.segment_bytes(), 78_125);
    }
}
