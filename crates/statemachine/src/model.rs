//! The inferred state machine: states, transition counts/probabilities,
//! time-in-state fractions, and DOT rendering in the style of the paper's
//! Figures 3 and 13 (red time fractions, black transition probabilities).

use crate::invariants::{mine, Invariant};
use crate::trace::Trace;
use longlook_sim::time::Dur;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Synthetic initial/terminal markers (as in Synoptic's graphs).
pub const INITIAL: &str = "INITIAL";
/// Synthetic terminal state.
pub const TERMINAL: &str = "TERMINAL";

/// An inferred state machine.
#[derive(Debug, Clone)]
pub struct InferredMachine {
    /// All observed state labels (sorted).
    pub states: Vec<String>,
    /// Transition counts `(from, to) -> n`, including INITIAL/TERMINAL.
    pub transitions: BTreeMap<(String, String), u64>,
    /// Total time spent per state across all traces.
    pub time_in: BTreeMap<String, Dur>,
    /// Total observed span across traces.
    pub total_span: Dur,
    /// Number of traces.
    pub trace_count: usize,
    /// Mined temporal invariants.
    pub invariants: Vec<Invariant>,
}

/// Infer a machine from execution traces.
pub fn infer(traces: &[Trace]) -> InferredMachine {
    let mut transitions: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut time_in: BTreeMap<String, Dur> = BTreeMap::new();
    let mut states: BTreeMap<String, ()> = BTreeMap::new();
    let mut total_span = Dur::ZERO;

    for tr in traces {
        let labels = tr.labels();
        total_span += tr.span();
        for (i, &s) in labels.iter().enumerate() {
            states.insert(s.to_string(), ());
            *time_in.entry(s.to_string()).or_insert(Dur::ZERO) += tr.dwell(i);
            let from = if i == 0 {
                INITIAL.to_string()
            } else {
                labels[i - 1].to_string()
            };
            *transitions.entry((from, s.to_string())).or_insert(0) += 1;
        }
        if let Some(&last) = labels.last() {
            *transitions
                .entry((last.to_string(), TERMINAL.to_string()))
                .or_insert(0) += 1;
        }
    }

    InferredMachine {
        states: states.into_keys().collect(),
        transitions,
        time_in,
        total_span,
        trace_count: traces.len(),
        invariants: mine(traces),
    }
}

impl InferredMachine {
    /// Probability of moving to `to` when leaving `from`.
    pub fn transition_probability(&self, from: &str, to: &str) -> f64 {
        let total: u64 = self
            .transitions
            .iter()
            .filter(|((f, _), _)| f == from)
            .map(|(_, &n)| n)
            .sum();
        if total == 0 {
            return 0.0;
        }
        let n = self
            .transitions
            .get(&(from.to_string(), to.to_string()))
            .copied()
            .unwrap_or(0);
        n as f64 / total as f64
    }

    /// Fraction of total observed time spent in `state`.
    pub fn time_fraction(&self, state: &str) -> f64 {
        if self.total_span == Dur::ZERO {
            return 0.0;
        }
        self.time_in
            .get(state)
            .map_or(0.0, |d| d.as_secs_f64() / self.total_span.as_secs_f64())
    }

    /// Number of times `state` was visited.
    pub fn visit_count(&self, state: &str) -> u64 {
        self.transitions
            .iter()
            .filter(|((_, t), _)| t == state)
            .map(|(_, &n)| n)
            .sum()
    }

    /// States reachable from `from` in one step (with counts).
    pub fn successors(&self, from: &str) -> Vec<(&str, u64)> {
        self.transitions
            .iter()
            .filter(|((f, _), _)| f == from)
            .map(|((_, t), &n)| (t.as_str(), n))
            .collect()
    }

    /// Render Graphviz DOT in the style of the paper's Fig 13: nodes carry
    /// the time-in-state fraction (red), edges the transition probability
    /// (black).
    pub fn to_dot(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{title}\" {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=ellipse, fontsize=11];");
        let _ = writeln!(out, "  \"{INITIAL}\" [shape=point];");
        let _ = writeln!(out, "  \"{TERMINAL}\" [shape=doublecircle, label=\"\"];");
        for s in &self.states {
            let frac = self.time_fraction(s);
            let _ = writeln!(
                out,
                "  \"{s}\" [label=\"{s}\\n{:.2}\", fontcolor=black, xlabel=<<font color=\"red\">{:.2}</font>>];",
                frac, frac
            );
        }
        for ((from, to), n) in &self.transitions {
            let p = self.transition_probability(from, to);
            let _ = writeln!(
                out,
                "  \"{from}\" -> \"{to}\" [label=\"{p:.2}\", weight={n}];"
            );
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Compact text rendering for terminal output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "inferred machine: {} states, {} traces, span {}",
            self.states.len(),
            self.trace_count,
            self.total_span
        );
        for s in &self.states {
            let _ = writeln!(
                out,
                "  [{s}] time={:.1}% visits={}",
                self.time_fraction(s) * 100.0,
                self.visit_count(s)
            );
            let mut succ = self.successors(s);
            succ.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            for (t, n) in succ {
                let _ = writeln!(
                    out,
                    "     -> {t} (p={:.2}, n={n})",
                    self.transition_probability(s, t)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longlook_sim::time::Time;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    fn trace(labels: &[&str], step_ms: u64) -> Trace {
        let visits: Vec<(Time, &str)> = labels
            .iter()
            .enumerate()
            .map(|(i, &s)| (t(i as u64 * step_ms), s))
            .collect();
        Trace::from_labels(&visits, t(labels.len() as u64 * step_ms))
    }

    #[test]
    fn infers_states_and_transitions() {
        let m = infer(&[
            trace(&["Init", "SlowStart", "CA"], 10),
            trace(&["Init", "SlowStart", "Recovery", "CA"], 10),
        ]);
        assert_eq!(m.states, vec!["CA", "Init", "Recovery", "SlowStart"]);
        assert_eq!(m.transitions[&("INITIAL".into(), "Init".into())], 2);
        assert_eq!(m.transitions[&("Init".into(), "SlowStart".into())], 2);
        assert_eq!(m.transitions[&("CA".into(), "TERMINAL".into())], 2);
        assert_eq!(m.trace_count, 2);
    }

    #[test]
    fn transition_probabilities_sum_to_one() {
        let m = infer(&[
            trace(&["A", "B"], 10),
            trace(&["A", "C"], 10),
            trace(&["A", "B"], 10),
        ]);
        let p_b = m.transition_probability("A", "B");
        let p_c = m.transition_probability("A", "C");
        assert!((p_b - 2.0 / 3.0).abs() < 1e-12);
        assert!((p_c - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.transition_probability("A", "Z"), 0.0);
    }

    #[test]
    fn time_fractions_aggregate_across_traces() {
        // Trace 1: A for 10ms, B for 10ms. Trace 2: A for 20ms.
        let m = infer(&[trace(&["A", "B"], 10), trace(&["A"], 20)]);
        assert!((m.time_fraction("A") - 0.75).abs() < 1e-9);
        assert!((m.time_fraction("B") - 0.25).abs() < 1e-9);
    }

    #[test]
    fn visit_counts() {
        let m = infer(&[trace(&["A", "B", "A", "B"], 5)]);
        assert_eq!(m.visit_count("A"), 2);
        assert_eq!(m.visit_count("B"), 2); // the terminal edge is from B
    }

    #[test]
    fn dot_output_is_wellformed() {
        let m = infer(&[trace(&["Init", "SlowStart"], 10)]);
        let dot = m.to_dot("QUIC Cubic");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"Init\" -> \"SlowStart\""));
        assert!(dot.contains("INITIAL"));
        assert!(dot.contains("TERMINAL"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn text_rendering_mentions_all_states() {
        let m = infer(&[trace(&["Init", "SlowStart", "CA"], 10)]);
        let text = m.render_text();
        for s in ["Init", "SlowStart", "CA"] {
            assert!(text.contains(s));
        }
    }

    #[test]
    fn invariants_included() {
        let m = infer(&[trace(&["Init", "SlowStart"], 10)]);
        assert!(m.invariants.contains(&Invariant::AlwaysPrecedes(
            "Init".into(),
            "SlowStart".into()
        )));
    }

    #[test]
    fn empty_input() {
        let m = infer(&[]);
        assert!(m.states.is_empty());
        assert_eq!(m.time_fraction("X"), 0.0);
        assert_eq!(m.trace_count, 0);
    }
}
