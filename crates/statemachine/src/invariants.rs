//! Temporal invariant mining, after Synoptic (Beschastnikh et al., the
//! paper's citation 15).
//!
//! Synoptic mines three families of invariants from traces and uses them
//! to constrain the inferred model:
//!
//! * `a AlwaysFollowedBy b` — every occurrence of `a` is eventually
//!   followed by an occurrence of `b` in the same trace;
//! * `a NeverFollowedBy b` — no occurrence of `a` is ever followed by `b`;
//! * `a AlwaysPrecedes b` — every occurrence of `b` has some earlier `a`.

use crate::trace::Trace;
use std::collections::{BTreeMap, BTreeSet};

/// One mined invariant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Invariant {
    /// `a` is always eventually followed by `b`.
    AlwaysFollowedBy(String, String),
    /// `a` is never followed by `b`.
    NeverFollowedBy(String, String),
    /// `a` always precedes `b`.
    AlwaysPrecedes(String, String),
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Invariant::AlwaysFollowedBy(a, b) => write!(f, "{a} AlwaysFollowedBy {b}"),
            Invariant::NeverFollowedBy(a, b) => write!(f, "{a} NeverFollowedBy {b}"),
            Invariant::AlwaysPrecedes(a, b) => write!(f, "{a} AlwaysPrecedes {b}"),
        }
    }
}

/// Mine all invariants that hold over every trace.
///
/// Only label pairs where both labels actually occur somewhere are
/// considered (vacuous invariants over absent labels are uninteresting).
pub fn mine(traces: &[Trace]) -> Vec<Invariant> {
    let mut alphabet: BTreeSet<String> = BTreeSet::new();
    for t in traces {
        for (_, s) in &t.visits {
            alphabet.insert(s.clone());
        }
    }
    let labels: Vec<String> = alphabet.into_iter().collect();

    // Per-pair counters across all traces.
    // followed[a][b]: in how many a-occurrences was b seen later?
    let mut occurrences: BTreeMap<&str, u64> = BTreeMap::new();
    let mut followed: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    let mut b_occurrences: BTreeMap<&str, u64> = BTreeMap::new();
    let mut preceded: BTreeMap<(&str, &str), u64> = BTreeMap::new();

    for t in traces {
        let seq = t.labels();
        for (i, &a) in seq.iter().enumerate() {
            // Register against the global alphabet keys.
            let a_key = labels
                .iter()
                .find(|l| l.as_str() == a)
                .expect("in alphabet");
            *occurrences.entry(a_key).or_insert(0) += 1;
            let after: BTreeSet<&str> = seq[i + 1..].iter().copied().collect();
            for b in &labels {
                if after.contains(b.as_str()) {
                    *followed.entry((a_key, b)).or_insert(0) += 1;
                }
            }
            let before: BTreeSet<&str> = seq[..i].iter().copied().collect();
            *b_occurrences.entry(a_key).or_insert(0) += 1;
            for b in &labels {
                if before.contains(b.as_str()) {
                    *preceded.entry((b, a_key)).or_insert(0) += 1;
                }
            }
        }
    }

    let mut out = Vec::new();
    for a in &labels {
        for b in &labels {
            let occ_a = occurrences.get(a.as_str()).copied().unwrap_or(0);
            let fol = followed
                .get(&(a.as_str(), b.as_str()))
                .copied()
                .unwrap_or(0);
            if occ_a > 0 {
                if fol == occ_a {
                    out.push(Invariant::AlwaysFollowedBy(a.clone(), b.clone()));
                } else if fol == 0 {
                    out.push(Invariant::NeverFollowedBy(a.clone(), b.clone()));
                }
            }
            let occ_b = b_occurrences.get(b.as_str()).copied().unwrap_or(0);
            let prec = preceded
                .get(&(a.as_str(), b.as_str()))
                .copied()
                .unwrap_or(0);
            if occ_b > 0 && prec == occ_b && a != b {
                out.push(Invariant::AlwaysPrecedes(a.clone(), b.clone()));
            }
        }
    }
    out.sort();
    out
}

/// Check a single trace against an invariant (for counterexample search).
pub fn holds(inv: &Invariant, trace: &Trace) -> bool {
    let seq = trace.labels();
    match inv {
        Invariant::AlwaysFollowedBy(a, b) => seq
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == a)
            .all(|(i, _)| seq[i + 1..].contains(&b.as_str())),
        Invariant::NeverFollowedBy(a, b) => !seq
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == a)
            .any(|(i, _)| seq[i + 1..].contains(&b.as_str())),
        Invariant::AlwaysPrecedes(a, b) => seq
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == b)
            .all(|(i, _)| seq[..i].contains(&a.as_str())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longlook_sim::time::{Dur, Time};

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    fn trace(labels: &[&str]) -> Trace {
        let visits: Vec<(Time, &str)> = labels
            .iter()
            .enumerate()
            .map(|(i, &s)| (t(i as u64 * 10), s))
            .collect();
        Trace::from_labels(&visits, t(labels.len() as u64 * 10))
    }

    #[test]
    fn mines_always_followed_by() {
        let traces = vec![
            trace(&["Init", "SlowStart", "CA"]),
            trace(&["Init", "SlowStart"]),
        ];
        let invs = mine(&traces);
        assert!(invs.contains(&Invariant::AlwaysFollowedBy(
            "Init".into(),
            "SlowStart".into()
        )));
        // CA does not always follow SlowStart (second trace lacks it).
        assert!(!invs.contains(&Invariant::AlwaysFollowedBy(
            "SlowStart".into(),
            "CA".into()
        )));
    }

    #[test]
    fn mines_never_followed_by() {
        let traces = vec![trace(&["Init", "SlowStart", "CA"])];
        let invs = mine(&traces);
        assert!(invs.contains(&Invariant::NeverFollowedBy("CA".into(), "Init".into())));
        assert!(invs.contains(&Invariant::NeverFollowedBy(
            "SlowStart".into(),
            "Init".into()
        )));
    }

    #[test]
    fn mines_always_precedes() {
        let traces = vec![
            trace(&["Init", "SlowStart", "CA", "Recovery", "CA"]),
            trace(&["Init", "SlowStart", "CA"]),
        ];
        let invs = mine(&traces);
        assert!(invs.contains(&Invariant::AlwaysPrecedes("Init".into(), "Recovery".into())));
        assert!(invs.contains(&Invariant::AlwaysPrecedes("Init".into(), "CA".into())));
    }

    #[test]
    fn holds_checks_counterexamples() {
        let good = trace(&["A", "B"]);
        let bad = trace(&["A"]);
        let inv = Invariant::AlwaysFollowedBy("A".into(), "B".into());
        assert!(holds(&inv, &good));
        assert!(!holds(&inv, &bad));
        let nfb = Invariant::NeverFollowedBy("B".into(), "A".into());
        assert!(holds(&nfb, &good));
        assert!(!holds(&nfb, &trace(&["B", "A"])));
        let ap = Invariant::AlwaysPrecedes("A".into(), "B".into());
        assert!(holds(&ap, &good));
        assert!(!holds(&ap, &trace(&["B"])));
    }

    #[test]
    fn mined_invariants_hold_on_inputs() {
        let traces = vec![
            trace(&["Init", "SlowStart", "CA", "Recovery", "CA", "AppLimited"]),
            trace(&["Init", "SlowStart", "AppLimited", "SlowStart", "CA"]),
            trace(&["Init", "SlowStart"]),
        ];
        for inv in mine(&traces) {
            for tr in &traces {
                assert!(holds(&inv, tr), "{inv} violated");
            }
        }
    }

    #[test]
    fn empty_traces_mine_nothing() {
        assert!(mine(&[]).is_empty());
    }
}
