//! Execution traces: the raw material of state-machine inference.

use longlook_sim::time::{Dur, Time};

/// One observed execution: an ordered sequence of `(enter_time, state)`
/// visits plus the total observation span.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Ordered visits; the first entry is the initial state.
    pub visits: Vec<(Time, String)>,
    /// End of observation (for the final dwell time).
    pub end: Time,
}

impl Trace {
    /// Build from `(time, label)` pairs and an end-of-observation time.
    pub fn new(visits: Vec<(Time, String)>, end: Time) -> Self {
        Trace { visits, end }
    }

    /// Build from string slices (convenient for transport StateTraces).
    pub fn from_labels(visits: &[(Time, &str)], end: Time) -> Self {
        Trace {
            visits: visits.iter().map(|&(t, s)| (t, s.to_string())).collect(),
            end,
        }
    }

    /// The label sequence.
    pub fn labels(&self) -> Vec<&str> {
        self.visits.iter().map(|(_, s)| s.as_str()).collect()
    }

    /// Dwell time of the `i`-th visit.
    pub fn dwell(&self, i: usize) -> Dur {
        let start = self.visits[i].0;
        let end = self.visits.get(i + 1).map(|&(t, _)| t).unwrap_or(self.end);
        end.saturating_since(start)
    }

    /// Total observation span.
    pub fn span(&self) -> Dur {
        match self.visits.first() {
            Some(&(t0, _)) => self.end.saturating_since(t0),
            None => Dur::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn labels_and_dwells() {
        let tr = Trace::from_labels(&[(t(0), "A"), (t(10), "B"), (t(30), "A")], t(100));
        assert_eq!(tr.labels(), vec!["A", "B", "A"]);
        assert_eq!(tr.dwell(0), Dur::from_millis(10));
        assert_eq!(tr.dwell(1), Dur::from_millis(20));
        assert_eq!(tr.dwell(2), Dur::from_millis(70));
        assert_eq!(tr.span(), Dur::from_millis(100));
    }

    #[test]
    fn empty_trace_span_is_zero() {
        let tr = Trace::new(vec![], t(50));
        assert_eq!(tr.span(), Dur::ZERO);
        assert!(tr.labels().is_empty());
    }
}
