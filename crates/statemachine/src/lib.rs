//! Synoptic-style state-machine inference from execution traces.
//!
//! The paper's methodological contribution is using *inferred* protocol
//! state machines — generated automatically from instrumented execution
//! traces via Synoptic (Beschastnikh et al., the paper's citation 15) —
//! as the root-cause-analysis instrument: which
//! states a run visits, with what transition probabilities, and what
//! fraction of time it dwells in each, explains performance differences
//! (e.g. MotoG spending 58% of its time Application-Limited, Fig 13).
//!
//! This crate reimplements that pipeline: [`trace::Trace`] ingestion,
//! temporal-invariant mining ([`invariants`]), and graph construction with
//! dwell-time fractions and DOT export ([`model`]).

pub mod invariants;
pub mod model;
pub mod trace;

pub use invariants::{holds, mine, Invariant};
pub use model::{infer, InferredMachine, INITIAL, TERMINAL};
pub use trace::Trace;

/// Convenience: build a [`Trace`] from a transport-layer
/// [`longlook_transport::ccstate::StateTrace`].
pub fn trace_from_transport(
    st: &longlook_transport::ccstate::StateTrace,
    end: longlook_sim::time::Time,
) -> Trace {
    Trace::new(
        st.visits.iter().map(|&(t, s)| (t, s.to_string())).collect(),
        end,
    )
}

/// Convenience: build a [`Trace`] from structured trace records
/// (`longlook_sim::trace`, the `LONGLOOK_TRACE` layer). The `CcState`
/// events carry the same state-visit evidence as a transport
/// `StateTrace`, so a captured qlog-style trace file can feed inference
/// directly.
pub fn trace_from_records(
    records: &[longlook_sim::trace::TraceRecord],
    end: longlook_sim::time::Time,
) -> Trace {
    use longlook_sim::time::Time;
    use longlook_sim::trace::TraceEvent;
    let visits = records
        .iter()
        .filter_map(|r| match &r.ev {
            TraceEvent::CcState { state } => Some((Time::from_nanos(r.t), state.clone())),
            _ => None,
        })
        .collect();
    Trace::new(visits, end)
}
