//! Property-based tests for the statistics layer.

use longlook_stats::beta::{binomial_ci, incomplete_beta, student_t_two_sided_p};
use longlook_stats::heatmap::HeatmapCell;
use longlook_stats::summary::{median, percentile};
use longlook_stats::{welch_t_test, Comparison, QuantileSketch, Summary, Verdict};
use proptest::prelude::*;

/// Exact nearest-rank quantile: smallest value with at least `⌈q·n⌉`
/// samples `<=` it. This is the semantics `QuantileSketch::quantile`
/// guarantees its `±α` relative-error bound against.
fn exact_nearest_rank(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Deterministic Fisher–Yates driven by proptest-chosen indices: swap
/// element `i` with `swaps[i].index(i + 1)` for `i = len-1 .. 1`.
fn permuted(xs: &[f64], swaps: &[prop::sample::Index]) -> Vec<f64> {
    let mut out = xs.to_vec();
    if out.len() < 2 || swaps.is_empty() {
        return out;
    }
    for i in (1..out.len()).rev() {
        let j = swaps[i % swaps.len()].index(i + 1);
        out.swap(i, j);
    }
    out
}

proptest! {
    /// Welford summary matches the naive two-pass computation.
    #[test]
    fn summary_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let s = Summary::of(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.sample_variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging split summaries equals the bulk summary.
    #[test]
    fn summary_merge_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        cut in any::<prop::sample::Index>(),
    ) {
        let k = cut.index(xs.len() - 1) + 1;
        let mut a = Summary::of(&xs[..k]);
        let b = Summary::of(&xs[k..]);
        a.merge(&b);
        let bulk = Summary::of(&xs);
        prop_assert_eq!(a.count(), bulk.count());
        prop_assert!((a.mean() - bulk.mean()).abs() < 1e-9 * (1.0 + bulk.mean().abs()));
        prop_assert!(
            (a.sample_variance() - bulk.sample_variance()).abs()
                < 1e-6 * (1.0 + bulk.sample_variance())
        );
    }

    /// The streaming mean is pinned to the exact batch formula
    /// `Σx / n` and the streaming M2 to `Σ(x − mean)²` — the Welford
    /// recurrence must be an implementation detail, not a different
    /// statistic. (Complements `summary_matches_naive` by checking the
    /// incremental path one `add` at a time against a fresh batch
    /// recomputation at every prefix.)
    #[test]
    fn summary_prefixes_match_batch(xs in proptest::collection::vec(-1e5f64..1e5, 1..60)) {
        let mut s = Summary::new();
        for (i, &x) in xs.iter().enumerate() {
            s.add(x);
            let prefix = &xs[..=i];
            let n = prefix.len() as f64;
            let mean = prefix.iter().sum::<f64>() / n;
            let m2 = prefix.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>();
            prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            prop_assert!(
                (s.population_variance() - m2 / n).abs() < 1e-4 * (1.0 + m2 / n),
                "prefix {} var {} vs batch {}", i + 1, s.population_variance(), m2 / n
            );
        }
    }

    /// The quantile sketch's estimate is within its configured relative
    /// error of the exact nearest-rank quantile, for arbitrary positive
    /// samples (up to 10k) and arbitrary quantiles.
    #[test]
    fn sketch_within_alpha_of_exact(
        xs in proptest::collection::vec(1e-3f64..1e6, 1..2_000),
        q in 0.0f64..1.0,
    ) {
        let mut sk = QuantileSketch::new();
        for &x in &xs {
            sk.add(x);
        }
        let exact = exact_nearest_rank(&xs, q);
        let est = sk.quantile(q);
        prop_assert!(
            (est - exact).abs() / exact <= sk.alpha() + 1e-9,
            "q={q}: est {est} vs exact {exact} on {} samples", xs.len()
        );
    }

    /// Merging split sketches is exactly equivalent to the bulk sketch —
    /// the property the deterministic parallel runner relies on for
    /// jobs-invariant fleet quantiles.
    #[test]
    fn sketch_merge_matches_bulk(
        xs in proptest::collection::vec(1e-3f64..1e6, 2..500),
        cut in any::<prop::sample::Index>(),
    ) {
        let k = cut.index(xs.len() - 1) + 1;
        let mut bulk = QuantileSketch::new();
        for &x in &xs {
            bulk.add(x);
        }
        let mut a = QuantileSketch::new();
        for &x in &xs[..k] {
            a.add(x);
        }
        let mut b = QuantileSketch::new();
        for &x in &xs[k..] {
            b.add(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), bulk.count());
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(a.quantile(p).to_bits(), bulk.quantile(p).to_bits());
        }
    }

    /// The sharded-fleet merge contract for `Summary`: partials computed
    /// in *any* worker order, folded by `merge_all` in pinned shard
    /// order, are bit-exact — the fold is a pure function of the ordered
    /// parts list, so worker interleaving (simulated here by computing
    /// the shards in a permuted order before slotting them back) cannot
    /// perturb even the low bits of `mean`/`m2`.
    #[test]
    fn summary_merge_all_pinned_order_is_interleaving_invariant(
        xs in proptest::collection::vec(-1e5f64..1e5, 1..200),
        parts in 1usize..8,
        swaps in proptest::collection::vec(any::<prop::sample::Index>(), 1..16),
    ) {
        let chunks: Vec<&[f64]> = xs.chunks(xs.len().div_ceil(parts)).collect();
        // Workers finishing in index order.
        let in_order: Vec<Summary> = chunks.iter().map(|c| Summary::of(c)).collect();
        // Workers finishing in an arbitrary permuted order, each result
        // placed back into its shard's slot.
        let mut order: Vec<usize> = (0..chunks.len()).collect();
        for i in (1..order.len()).rev() {
            let j = swaps[i % swaps.len()].index(i + 1);
            order.swap(i, j);
        }
        let mut slots: Vec<Option<Summary>> = vec![None; chunks.len()];
        for &s in &order {
            slots[s] = Some(Summary::of(chunks[s]));
        }
        let interleaved: Vec<Summary> = slots.into_iter().map(Option::unwrap).collect();
        let a = Summary::merge_all(in_order.iter());
        let b = Summary::merge_all(interleaved.iter());
        // Derived PartialEq over raw f64 fields: exact equality, not
        // tolerance — this is the bit-identity the referees pin.
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.count(), xs.len() as u64);
    }

    /// The sharded-fleet merge contract for `QuantileSketch` is stronger:
    /// bucket counts are `u64`s and the stored representation is
    /// canonical, so `merge_all` is bit-exact under *any* order or
    /// grouping of the same parts — structurally equal to the bulk
    /// sketch, not just quantile-equal.
    #[test]
    fn sketch_merge_all_any_order_or_grouping_is_bit_exact(
        xs in proptest::collection::vec(1e-3f64..1e6, 1..500),
        parts in 1usize..8,
        swaps in proptest::collection::vec(any::<prop::sample::Index>(), 1..16),
    ) {
        let mut bulk = QuantileSketch::new();
        for &x in &xs {
            bulk.add(x);
        }
        let mut shard: Vec<QuantileSketch> = xs
            .chunks(xs.len().div_ceil(parts))
            .map(|c| {
                let mut s = QuantileSketch::new();
                for &x in c {
                    s.add(x);
                }
                s
            })
            .collect();
        for i in (1..shard.len()).rev() {
            let j = swaps[i % swaps.len()].index(i + 1);
            shard.swap(i, j);
        }
        let merged = QuantileSketch::merge_all(shard.iter());
        prop_assert_eq!(&merged, &bulk);
        // Regrouped: fold adjacent pairs first, then merge the partials.
        let paired: Vec<QuantileSketch> = shard
            .chunks(2)
            .map(|p| QuantileSketch::merge_all(p.iter()))
            .collect();
        let tree = QuantileSketch::merge_all(paired.iter());
        prop_assert_eq!(&tree, &bulk);
    }

    /// Sketch quantiles are monotone in the rank, like any CDF inverse.
    #[test]
    fn sketch_quantiles_monotone(
        xs in proptest::collection::vec(1e-3f64..1e6, 1..300),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut sk = QuantileSketch::new();
        for &x in &xs {
            sk.add(x);
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(sk.quantile(lo) <= sk.quantile(hi) + 1e-12);
    }

    /// p-values are probabilities, symmetric in argument order, and the
    /// t statistics negate.
    #[test]
    fn welch_p_is_probability_and_symmetric(
        a in proptest::collection::vec(0.0f64..1e4, 2..40),
        b in proptest::collection::vec(0.0f64..1e4, 2..40),
    ) {
        if let (Some(r1), Some(r2)) = (welch_t_test(&a, &b), welch_t_test(&b, &a)) {
            prop_assert!((0.0..=1.0).contains(&r1.p), "p = {}", r1.p);
            prop_assert!((r1.t + r2.t).abs() < 1e-9 * (1.0 + r1.t.abs()));
            prop_assert!((r1.p - r2.p).abs() < 1e-9);
            prop_assert!(r1.df > 0.0);
        }
    }

    /// Shifting one sample set away monotonically shrinks (or holds) the
    /// p-value.
    #[test]
    fn p_shrinks_with_separation(
        base in proptest::collection::vec(0.0f64..100.0, 3..30),
        shift in 1.0f64..50.0,
    ) {
        let near: Vec<f64> = base.iter().map(|x| x + shift).collect();
        let far: Vec<f64> = base.iter().map(|x| x + 10.0 * shift).collect();
        if let (Some(rn), Some(rf)) = (welch_t_test(&base, &near), welch_t_test(&base, &far)) {
            prop_assert!(rf.p <= rn.p + 1e-9, "{} > {}", rf.p, rn.p);
        }
    }

    /// The incomplete beta is a CDF in x: monotone, 0 at 0, 1 at 1.
    #[test]
    fn incomplete_beta_is_cdf(a in 0.2f64..20.0, b in 0.2f64..20.0, x1 in 0.0f64..1.0, x2 in 0.0f64..1.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let f_lo = incomplete_beta(a, b, lo);
        let f_hi = incomplete_beta(a, b, hi);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f_lo));
        prop_assert!(f_lo <= f_hi + 1e-9);
    }

    /// Student-t two-sided p decreases in |t| and increases toward 1 at 0.
    #[test]
    fn student_t_monotone(df in 1.0f64..100.0, t1 in 0.0f64..20.0, t2 in 0.0f64..20.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(
            student_t_two_sided_p(hi, df) <= student_t_two_sided_p(lo, df) + 1e-9
        );
        prop_assert!((student_t_two_sided_p(0.0, df) - 1.0).abs() < 1e-9);
    }

    /// Percentiles lie within [min, max] and are monotone in the rank.
    #[test]
    fn percentiles_ordered(xs in proptest::collection::vec(-1e4f64..1e4, 1..80)) {
        let p25 = percentile(&xs, 25.0);
        let p50 = median(&xs);
        let p75 = percentile(&xs, 75.0);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= p25 && p25 <= p50 && p50 <= p75 && p75 <= hi);
    }

    /// A comparison's verdict is never a win when the two sample sets are
    /// identical.
    #[test]
    fn identical_samples_never_win(xs in proptest::collection::vec(1.0f64..1e4, 2..30)) {
        let c = Comparison::lower_is_better(&xs, &xs);
        prop_assert_eq!(c.verdict, Verdict::Inconclusive);
        prop_assert!(c.percent.abs() < 1e-9);
    }

    /// Welch's t is antisymmetric under swapping the two sample sets
    /// (t → -t, identical p and df) and invariant under scaling both sets
    /// by a common positive factor — the statistic is dimensionless, so
    /// measuring PLT in seconds vs milliseconds cannot change a verdict.
    #[test]
    fn welch_swap_antisymmetric_and_scale_invariant(
        a in proptest::collection::vec(1.0f64..1e4, 2..40),
        b in proptest::collection::vec(1.0f64..1e4, 2..40),
        scale in 1e-3f64..1e3,
    ) {
        let sa: Vec<f64> = a.iter().map(|x| x * scale).collect();
        let sb: Vec<f64> = b.iter().map(|x| x * scale).collect();
        if let (Some(ab), Some(ba), Some(scaled)) =
            (welch_t_test(&a, &b), welch_t_test(&b, &a), welch_t_test(&sa, &sb))
        {
            // Antisymmetry under swap.
            prop_assert!((ab.t + ba.t).abs() < 1e-9 * (1.0 + ab.t.abs()));
            prop_assert!((ab.p - ba.p).abs() < 1e-9);
            prop_assert!((ab.df - ba.df).abs() < 1e-9 * (1.0 + ab.df));
            // Invariance under common positive scaling.
            prop_assert!(
                (ab.t - scaled.t).abs() < 1e-6 * (1.0 + ab.t.abs()),
                "t {} vs {} at scale {}", ab.t, scaled.t, scale
            );
            prop_assert!((ab.df - scaled.df).abs() < 1e-6 * (1.0 + ab.df));
            prop_assert!((ab.p - scaled.p).abs() < 1e-6);
        }
    }

    /// Clopper–Pearson binomial intervals always lie in [0, 1], are
    /// properly ordered, and contain the point estimate `s/n`.
    #[test]
    fn binomial_ci_contains_point_estimate(
        trials in 1u64..400,
        s_pick in any::<prop::sample::Index>(),
        alpha in 0.001f64..0.5,
    ) {
        let successes = s_pick.index(trials as usize + 1) as u64;
        let (lo, hi) = binomial_ci(successes, trials, alpha);
        let p_hat = successes as f64 / trials as f64;
        prop_assert!((0.0..=1.0).contains(&lo), "lo = {lo}");
        prop_assert!((0.0..=1.0).contains(&hi), "hi = {hi}");
        prop_assert!(lo <= hi, "({lo}, {hi})");
        prop_assert!(lo <= p_hat + 1e-12 && p_hat <= hi + 1e-12,
            "({lo}, {hi}) misses p̂ = {p_hat} at s = {successes}, n = {trials}");
        // Tighter alpha (more confidence) can only widen the interval.
        let (lo2, hi2) = binomial_ci(successes, trials, alpha / 2.0);
        prop_assert!(lo2 <= lo + 1e-12 && hi <= hi2 + 1e-12);
    }

    /// Heatmap cell classification is a function of the sample *sets*,
    /// not their order: permuting each side's samples reproduces the exact
    /// same percent, p-value and verdict. (Welch's statistic is computed
    /// from exact streaming summaries, so this holds bit-for-bit modulo
    /// float summation tolerance.)
    #[test]
    fn heatmap_cell_stable_under_permutation(
        a in proptest::collection::vec(1.0f64..1e4, 2..40),
        b in proptest::collection::vec(1.0f64..1e4, 2..40),
        swaps in proptest::collection::vec(any::<prop::sample::Index>(), 1..64),
    ) {
        let cell = HeatmapCell::from_comparison(&Comparison::lower_is_better(&a, &b));
        let pa = permuted(&a, &swaps);
        let pb = permuted(&b, &swaps);
        // Permutation really happened on the same multiset.
        let mut sa = a.clone(); let mut spa = pa.clone();
        sa.sort_by(f64::total_cmp); spa.sort_by(f64::total_cmp);
        prop_assert_eq!(sa, spa);
        let pcell = HeatmapCell::from_comparison(&Comparison::lower_is_better(&pa, &pb));
        prop_assert_eq!(cell.verdict, pcell.verdict);
        prop_assert!((cell.percent - pcell.percent).abs() < 1e-6 * (1.0 + cell.percent.abs()));
        match (cell.p_value, pcell.p_value) {
            (Some(p1), Some(p2)) => prop_assert!((p1 - p2).abs() < 1e-6),
            (n1, n2) => prop_assert_eq!(n1, n2),
        }
    }
}
