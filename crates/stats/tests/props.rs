//! Property-based tests for the statistics layer.

use longlook_stats::beta::{incomplete_beta, student_t_two_sided_p};
use longlook_stats::summary::{median, percentile};
use longlook_stats::{welch_t_test, Comparison, Summary, Verdict};
use proptest::prelude::*;

proptest! {
    /// Welford summary matches the naive two-pass computation.
    #[test]
    fn summary_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let s = Summary::of(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.sample_variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging split summaries equals the bulk summary.
    #[test]
    fn summary_merge_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        cut in any::<prop::sample::Index>(),
    ) {
        let k = cut.index(xs.len() - 1) + 1;
        let mut a = Summary::of(&xs[..k]);
        let b = Summary::of(&xs[k..]);
        a.merge(&b);
        let bulk = Summary::of(&xs);
        prop_assert_eq!(a.count(), bulk.count());
        prop_assert!((a.mean() - bulk.mean()).abs() < 1e-9 * (1.0 + bulk.mean().abs()));
        prop_assert!(
            (a.sample_variance() - bulk.sample_variance()).abs()
                < 1e-6 * (1.0 + bulk.sample_variance())
        );
    }

    /// p-values are probabilities, symmetric in argument order, and the
    /// t statistics negate.
    #[test]
    fn welch_p_is_probability_and_symmetric(
        a in proptest::collection::vec(0.0f64..1e4, 2..40),
        b in proptest::collection::vec(0.0f64..1e4, 2..40),
    ) {
        if let (Some(r1), Some(r2)) = (welch_t_test(&a, &b), welch_t_test(&b, &a)) {
            prop_assert!((0.0..=1.0).contains(&r1.p), "p = {}", r1.p);
            prop_assert!((r1.t + r2.t).abs() < 1e-9 * (1.0 + r1.t.abs()));
            prop_assert!((r1.p - r2.p).abs() < 1e-9);
            prop_assert!(r1.df > 0.0);
        }
    }

    /// Shifting one sample set away monotonically shrinks (or holds) the
    /// p-value.
    #[test]
    fn p_shrinks_with_separation(
        base in proptest::collection::vec(0.0f64..100.0, 3..30),
        shift in 1.0f64..50.0,
    ) {
        let near: Vec<f64> = base.iter().map(|x| x + shift).collect();
        let far: Vec<f64> = base.iter().map(|x| x + 10.0 * shift).collect();
        if let (Some(rn), Some(rf)) = (welch_t_test(&base, &near), welch_t_test(&base, &far)) {
            prop_assert!(rf.p <= rn.p + 1e-9, "{} > {}", rf.p, rn.p);
        }
    }

    /// The incomplete beta is a CDF in x: monotone, 0 at 0, 1 at 1.
    #[test]
    fn incomplete_beta_is_cdf(a in 0.2f64..20.0, b in 0.2f64..20.0, x1 in 0.0f64..1.0, x2 in 0.0f64..1.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let f_lo = incomplete_beta(a, b, lo);
        let f_hi = incomplete_beta(a, b, hi);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f_lo));
        prop_assert!(f_lo <= f_hi + 1e-9);
    }

    /// Student-t two-sided p decreases in |t| and increases toward 1 at 0.
    #[test]
    fn student_t_monotone(df in 1.0f64..100.0, t1 in 0.0f64..20.0, t2 in 0.0f64..20.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(
            student_t_two_sided_p(hi, df) <= student_t_two_sided_p(lo, df) + 1e-9
        );
        prop_assert!((student_t_two_sided_p(0.0, df) - 1.0).abs() < 1e-9);
    }

    /// Percentiles lie within [min, max] and are monotone in the rank.
    #[test]
    fn percentiles_ordered(xs in proptest::collection::vec(-1e4f64..1e4, 1..80)) {
        let p25 = percentile(&xs, 25.0);
        let p50 = median(&xs);
        let p75 = percentile(&xs, 75.0);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= p25 && p25 <= p50 && p50 <= p75 && p75 <= hi);
    }

    /// A comparison's verdict is never a win when the two sample sets are
    /// identical.
    #[test]
    fn identical_samples_never_win(xs in proptest::collection::vec(1.0f64..1e4, 2..30)) {
        let c = Comparison::lower_is_better(&xs, &xs);
        prop_assert_eq!(c.verdict, Verdict::Inconclusive);
        prop_assert!(c.percent.abs() < 1e-9);
    }
}
