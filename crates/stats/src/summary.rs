//! Streaming summary statistics (Welford's online algorithm).

/// Online mean / variance / extrema accumulator.
///
/// Uses Welford's algorithm so that adding millions of samples (e.g. one per
/// simulated packet) stays numerically stable. The paper reports results as
/// `mean (std)` over at least 10 experiment rounds; [`Summary`] is the type
/// every experiment in this workspace aggregates into.
///
/// ```
/// use longlook_stats::Summary;
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's `M2`).
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build a summary from a slice in one call.
    pub fn of(samples: &[f64]) -> Self {
        samples.iter().copied().collect()
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Fold `parts` into one summary **in iteration order** with the
    /// batch merge formula.
    ///
    /// The batch formula is floating-point order-sensitive: merging the
    /// same parts in a different order (or grouping) can change the low
    /// bits of `mean`/`m2`. Callers that need bit-identical aggregates
    /// across execution strategies (the sharded fleet's deterministic
    /// merge, the parallel runner) must therefore fold their partials in
    /// one *pinned* canonical order — this helper is that fold, and given
    /// the same parts in the same order it is bit-exact no matter which
    /// threads computed the parts.
    pub fn merge_all<'a, I: IntoIterator<Item = &'a Summary>>(parts: I) -> Summary {
        let mut total = Summary::new();
        for p in parts {
            total.merge(p);
        }
        total
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean. Zero for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`n - 1` denominator). Zero when `n < 2`.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator). Zero when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation, or `NaN` if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation, or `NaN` if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// `mean (std)` formatting used throughout the paper's tables.
    pub fn mean_std(&self) -> String {
        format!("{:.2} ({:.2})", self.mean(), self.sample_std_dev())
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

/// Median of a sample slice (interpolated for even lengths). `NaN` if empty.
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 50.0)
}

/// Linear-interpolated percentile in `[0, 100]`. `NaN` if empty.
pub fn percentile(samples: &[f64], pct: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let rank = (pct / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_benign() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn known_variance() {
        // Var of 1..=10 is 9.1666... (sample), 8.25 (population).
        let s: Summary = (1..=10).map(f64::from).collect();
        assert!((s.mean() - 5.5).abs() < 1e-12);
        assert!((s.sample_variance() - 55.0 / 6.0).abs() < 1e-9);
        assert!((s.population_variance() - 8.25).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_bulk() {
        let all: Summary = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a: Summary = (0..37).map(|i| (i as f64).sin() * 10.0).collect();
        let b: Summary = (37..100).map(|i| (i as f64).sin() * 10.0).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::of(&[1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn median_and_percentiles() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0, 5.0], 100.0), 5.0);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn mean_std_format() {
        let s = Summary::of(&[2.0, 4.0]);
        assert_eq!(s.mean_std(), "3.00 (1.41)");
    }
}
