//! Paired protocol comparison: percent difference + significance verdict.

use crate::summary::Summary;
use crate::welch::{welch_t_test, WelchResult, DEFAULT_ALPHA};

/// Who wins a comparison cell, in the paper's color language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// QUIC (the "candidate") is significantly better — a red cell.
    CandidateWins,
    /// TCP (the "baseline") is significantly better — a blue cell.
    BaselineWins,
    /// Difference not statistically significant — a white cell.
    Inconclusive,
}

impl Verdict {
    /// One-character cell marker used in ASCII heatmaps.
    pub fn glyph(&self) -> char {
        match self {
            Verdict::CandidateWins => 'R',
            Verdict::BaselineWins => 'B',
            Verdict::Inconclusive => '.',
        }
    }
}

/// Result of comparing candidate-protocol samples against baseline samples
/// for one scenario, where *lower is better* (e.g. page load time).
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Candidate (QUIC) sample summary.
    pub candidate: Summary,
    /// Baseline (TCP) sample summary.
    pub baseline: Summary,
    /// Percent improvement of candidate over baseline; positive means the
    /// candidate is faster. See [`percent_difference`].
    pub percent: f64,
    /// The Welch test outcome, when computable.
    pub welch: Option<WelchResult>,
    /// Significance-gated verdict at the paper's `p < 0.01`.
    pub verdict: Verdict,
}

/// Percent difference used in the paper's heatmaps: how much smaller the
/// candidate metric is relative to the baseline, as a percentage of the
/// baseline. Positive = candidate (QUIC) better for lower-is-better metrics.
pub fn percent_difference(candidate_mean: f64, baseline_mean: f64) -> f64 {
    if baseline_mean == 0.0 {
        return 0.0;
    }
    (baseline_mean - candidate_mean) / baseline_mean * 100.0
}

impl Comparison {
    /// Compare lower-is-better metric samples (e.g. PLT in ms).
    pub fn lower_is_better(candidate: &[f64], baseline: &[f64]) -> Self {
        Self::with_alpha(candidate, baseline, DEFAULT_ALPHA)
    }

    /// Same as [`Comparison::lower_is_better`] with an explicit alpha.
    pub fn with_alpha(candidate: &[f64], baseline: &[f64], alpha: f64) -> Self {
        let c = Summary::of(candidate);
        let b = Summary::of(baseline);
        let percent = percent_difference(c.mean(), b.mean());
        let welch = welch_t_test(candidate, baseline);
        let verdict = match welch {
            Some(w) if w.significant_at(alpha) => {
                if percent > 0.0 {
                    Verdict::CandidateWins
                } else {
                    Verdict::BaselineWins
                }
            }
            _ => Verdict::Inconclusive,
        };
        Comparison {
            candidate: c,
            baseline: b,
            percent,
            welch,
            verdict,
        }
    }

    /// Compare higher-is-better samples (e.g. throughput). The candidate
    /// wins when its mean is significantly *larger*.
    pub fn higher_is_better(candidate: &[f64], baseline: &[f64]) -> Self {
        let c = Summary::of(candidate);
        let b = Summary::of(baseline);
        let percent = if b.mean() == 0.0 {
            0.0
        } else {
            (c.mean() - b.mean()) / b.mean() * 100.0
        };
        let welch = welch_t_test(candidate, baseline);
        let verdict = match welch {
            Some(w) if w.significant_at(DEFAULT_ALPHA) => {
                if percent > 0.0 {
                    Verdict::CandidateWins
                } else {
                    Verdict::BaselineWins
                }
            }
            _ => Verdict::Inconclusive,
        };
        Comparison {
            candidate: c,
            baseline: b,
            percent,
            welch,
            verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_sign_convention() {
        // Candidate PLT 80 ms vs baseline 100 ms: 20% faster.
        assert_eq!(percent_difference(80.0, 100.0), 20.0);
        // Candidate slower: negative.
        assert_eq!(percent_difference(150.0, 100.0), -50.0);
        assert_eq!(percent_difference(5.0, 0.0), 0.0);
    }

    #[test]
    fn candidate_wins_lower_is_better() {
        let quic = [80.0, 81.0, 79.5, 80.2, 80.8];
        let tcp = [100.0, 101.0, 99.0, 100.5, 100.1];
        let c = Comparison::lower_is_better(&quic, &tcp);
        assert_eq!(c.verdict, Verdict::CandidateWins);
        assert!(c.percent > 15.0);
    }

    #[test]
    fn baseline_wins_lower_is_better() {
        let quic = [130.0, 131.0, 129.5, 130.2, 130.8];
        let tcp = [100.0, 101.0, 99.0, 100.5, 100.1];
        let c = Comparison::lower_is_better(&quic, &tcp);
        assert_eq!(c.verdict, Verdict::BaselineWins);
        assert!(c.percent < 0.0);
    }

    #[test]
    fn noisy_overlap_is_inconclusive() {
        let quic = [100.0, 140.0, 90.0, 130.0, 95.0];
        let tcp = [105.0, 135.0, 92.0, 128.0, 99.0];
        let c = Comparison::lower_is_better(&quic, &tcp);
        assert_eq!(c.verdict, Verdict::Inconclusive);
    }

    #[test]
    fn higher_is_better_flips_direction() {
        let quic_tput = [79.0, 80.0, 78.0, 80.5, 79.2];
        let tcp_tput = [46.0, 45.0, 47.0, 46.5, 45.8];
        let c = Comparison::higher_is_better(&quic_tput, &tcp_tput);
        assert_eq!(c.verdict, Verdict::CandidateWins);
        assert!(
            c.percent > 60.0,
            "QUIC ~72% more throughput, got {}",
            c.percent
        );
    }

    #[test]
    fn verdict_glyphs() {
        assert_eq!(Verdict::CandidateWins.glyph(), 'R');
        assert_eq!(Verdict::BaselineWins.glyph(), 'B');
        assert_eq!(Verdict::Inconclusive.glyph(), '.');
    }
}
