//! Regularized incomplete beta function, the numerical core of the
//! Student-t CDF used by [`crate::welch`].
//!
//! Implementation follows the classic Lentz continued-fraction evaluation
//! (Numerical Recipes §6.4): `I_x(a, b)` is computed directly for
//! `x < (a + 1) / (a + b + 2)` and via the symmetry
//! `I_x(a, b) = 1 - I_{1-x}(b, a)` otherwise, where the continued fraction
//! converges quickly.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~15 significant digits for positive arguments, which is far
/// more than the p-value gate (`p < 0.01`) requires.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, quoted at published precision
    // (beyond f64 — the rounding is the compiler's, not ours).
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `0 <= x <= 1`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must lie in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1-x)^b / (a B(a, b)).
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Modified Lentz evaluation of the continued fraction for `I_x(a, b)`.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided survival probability of Student's t distribution:
/// `P(|T_df| >= |t|)`.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if !t.is_finite() {
        return 0.0;
    }
    // P(|T| >= |t|) = I_{df/(df+t^2)}(df/2, 1/2).
    incomplete_beta(df / 2.0, 0.5, df / (df + t * t))
}

/// Inverse of the regularized incomplete beta function: the `x` in [0, 1]
/// with `I_x(a, b) = p`.
///
/// Bisection on the monotone CDF — ~60 halvings reach f64 resolution,
/// which is plenty for confidence bounds (and has no divergence corner
/// cases, unlike Newton steps near 0/1).
pub fn incomplete_beta_inv(a: f64, b: f64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if incomplete_beta(a, b, mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-14 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Exact Clopper–Pearson confidence interval for a binomial proportion:
/// `successes` out of `trials` at confidence `1 - alpha`.
///
/// The beta-quantile form: lower bound `B(α/2; s, n-s+1)` (0 when `s = 0`),
/// upper bound `B(1-α/2; s+1, n-s)` (1 when `s = n`). The interval is
/// conservative (coverage ≥ 1-α) and by construction always contains the
/// point estimate `s/n` — properties the win-rate property tests pin down.
pub fn binomial_ci(successes: u64, trials: u64, alpha: f64) -> (f64, f64) {
    assert!(successes <= trials, "successes cannot exceed trials");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "alpha must lie strictly in (0, 1)"
    );
    if trials == 0 {
        return (0.0, 1.0); // no evidence: the vacuous interval
    }
    let (s, n) = (successes as f64, trials as f64);
    let lower = if successes == 0 {
        0.0
    } else {
        incomplete_beta_inv(s, n - s + 1.0, alpha / 2.0)
    };
    let upper = if successes == trials {
        1.0
    } else {
        incomplete_beta_inv(s + 1.0, n - s, 1.0 - alpha / 2.0)
    };
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-10); // Γ(5) = 24
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn beta_boundaries() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn beta_symmetry() {
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (10.0, 1.0, 0.9)] {
            let lhs = incomplete_beta(a, b, x);
            let rhs = 1.0 - incomplete_beta(b, a, 1.0 - x);
            close(lhs, rhs, 1e-12);
        }
    }

    #[test]
    fn beta_uniform_case() {
        // I_x(1, 1) is the uniform CDF: exactly x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            close(incomplete_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn t_distribution_reference_points() {
        // df = 10, t = 2.228 is the classical 5% two-sided critical value.
        close(student_t_two_sided_p(2.228, 10.0), 0.05, 1e-3);
        // df = 1 (Cauchy): P(|T| >= 1) = 0.5.
        close(student_t_two_sided_p(1.0, 1.0), 0.5, 1e-10);
        // t = 0 is always p = 1.
        close(student_t_two_sided_p(0.0, 7.0), 1.0, 1e-12);
        // Large t: p goes to ~0.
        assert!(student_t_two_sided_p(50.0, 10.0) < 1e-10);
    }

    #[test]
    fn beta_inverse_round_trips() {
        for &(a, b) in &[(2.0, 3.0), (0.5, 0.5), (10.0, 1.0), (7.0, 7.0)] {
            for p in [0.01, 0.1, 0.5, 0.9, 0.99] {
                let x = incomplete_beta_inv(a, b, p);
                close(incomplete_beta(a, b, x), p, 1e-9);
            }
        }
        assert_eq!(incomplete_beta_inv(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta_inv(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn clopper_pearson_reference_values() {
        // 5/10 at 95%: the textbook Clopper–Pearson interval.
        let (lo, hi) = binomial_ci(5, 10, 0.05);
        close(lo, 0.187, 2e-3);
        close(hi, 0.813, 2e-3);
        // Rule of three: 0/n upper bound ~ 3/n.
        let (lo, hi) = binomial_ci(0, 100, 0.05);
        assert_eq!(lo, 0.0);
        close(hi, 0.0362, 1e-3);
        // Degenerate edges.
        assert_eq!(binomial_ci(10, 10, 0.05).1, 1.0);
        assert_eq!(binomial_ci(0, 0, 0.05), (0.0, 1.0));
    }

    #[test]
    fn t_distribution_sign_symmetry() {
        close(
            student_t_two_sided_p(2.5, 9.0),
            student_t_two_sided_p(-2.5, 9.0),
            1e-15,
        );
    }
}
