//! Statistics for rigorous transport-protocol comparison.
//!
//! The paper's methodology hinges on *statistical* rather than anecdotal
//! comparison: every QUIC-vs-TCP difference is gated by a Welch's t-test at
//! `p < 0.01`, and differences that fail the gate are reported as
//! inconclusive (white heatmap cells) rather than as wins or losses.
//!
//! This crate provides exactly that layer:
//!
//! * [`Summary`] — streaming mean / variance / extrema of a sample set,
//! * [`QuantileSketch`] — bounded-memory p50/p99/p999 with a guaranteed
//!   relative-error bound, for fleet-scale cells that cannot retain
//!   per-sample vectors,
//! * [`welch_t_test`] — two-sample unequal-variance location test with a
//!   numerically computed two-sided p-value (no lookup tables),
//! * [`Comparison`] — percent-difference between two sample sets with the
//!   significance verdict attached,
//! * [`heatmap`] — the red/blue/white matrix presentation used by the
//!   paper's Figures 6-8, 12, 14, 15, 17 and 18.

pub mod beta;
pub mod compare;
pub mod heatmap;
pub mod sketch;
pub mod summary;
pub mod welch;

pub use beta::{binomial_ci, incomplete_beta, incomplete_beta_inv};
pub use compare::{percent_difference, Comparison, Verdict};
pub use heatmap::{Heatmap, HeatmapCell};
pub use sketch::QuantileSketch;
pub use summary::Summary;
pub use welch::{welch_t_test, WelchResult, DEFAULT_ALPHA};
