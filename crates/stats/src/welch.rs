//! Welch's unequal-variance t-test (the significance gate of the paper).
//!
//! The paper, Sec 5.2: "We use the Welch's t-test, a two-sample location
//! test which is used to test the hypothesis that two populations have
//! equal means. For each scenario, we calculate the p-value ... if the
//! p-value is smaller than our threshold (0.01), then we reject the null
//! hypothesis ... Otherwise the difference we observe is not significant
//! and is likely due to noise."

use crate::beta::student_t_two_sided_p;
use crate::summary::Summary;

/// Significance threshold used throughout the paper.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Outcome of a Welch's t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchResult {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite effective degrees of freedom.
    pub df: f64,
    /// Two-sided p-value: probability of observing a difference at least
    /// this large under the null hypothesis of equal means.
    pub p: f64,
}

impl WelchResult {
    /// Whether the observed difference is significant at level `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p < alpha
    }

    /// Whether the difference passes the paper's `p < 0.01` gate.
    pub fn significant(&self) -> bool {
        self.significant_at(DEFAULT_ALPHA)
    }
}

/// Run Welch's t-test on two sample sets.
///
/// Returns `None` when either set has fewer than two samples or when both
/// sample variances are zero *and* the means are identical (no test is
/// possible or needed). Two constant-but-different sample sets are reported
/// as maximally significant (`p = 0`), which matches intuition: a
/// deterministic simulator that always produces a faster QUIC run than TCP
/// run is as conclusive as evidence gets.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<WelchResult> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let sa = Summary::of(a);
    let sb = Summary::of(b);
    let va = sa.sample_variance() / a.len() as f64;
    let vb = sb.sample_variance() / b.len() as f64;
    let denom = (va + vb).sqrt();
    if denom == 0.0 {
        return if sa.mean() == sb.mean() {
            None
        } else {
            Some(WelchResult {
                t: f64::INFINITY,
                df: (a.len() + b.len() - 2) as f64,
                p: 0.0,
            })
        };
    }
    let t = (sa.mean() - sb.mean()) / denom;
    // Welch–Satterthwaite equation.
    let df =
        (va + vb).powi(2) / (va * va / (a.len() as f64 - 1.0) + vb * vb / (b.len() as f64 - 1.0));
    let p = student_t_two_sided_p(t, df);
    Some(WelchResult { t, df, p })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_constant_samples_are_untestable() {
        assert!(welch_t_test(&[1.0, 1.0, 1.0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn too_few_samples() {
        assert!(welch_t_test(&[1.0], &[2.0, 3.0]).is_none());
        assert!(welch_t_test(&[], &[]).is_none());
    }

    #[test]
    fn distinct_constants_are_maximally_significant() {
        let r = welch_t_test(&[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(r.p, 0.0);
        assert!(r.significant());
    }

    #[test]
    fn hand_computed_example() {
        // a = 1..5: mean 3, sample var 2.5; b = 2,4,..,10: mean 6, var 10.
        // va = 0.5, vb = 2.0 -> t = -3 / sqrt(2.5) = -1.8974,
        // df = 2.5^2 / (0.5^2/4 + 2^2/4) = 6.25 / 1.0625 = 5.8824.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert!((r.t - (-3.0 / 2.5f64.sqrt())).abs() < 1e-12, "t = {}", r.t);
        assert!((r.df - 6.25 / 1.0625).abs() < 1e-12, "df = {}", r.df);
        // Two-sided p for |t| = 1.897 at ~5.9 df is just above 0.10.
        assert!(r.p > 0.09 && r.p < 0.14, "p = {}", r.p);
        assert!(!r.significant());
    }

    #[test]
    fn p_decreases_with_larger_separation() {
        let base = [10.0, 11.0, 9.0, 10.5, 9.5];
        let near: Vec<f64> = base.iter().map(|x| x + 1.0).collect();
        let far: Vec<f64> = base.iter().map(|x| x + 5.0).collect();
        let p_near = welch_t_test(&base, &near).unwrap().p;
        let p_far = welch_t_test(&base, &far).unwrap().p;
        assert!(p_far < p_near);
    }

    #[test]
    fn clearly_separated_distributions() {
        let a: Vec<f64> = (0..10).map(|i| 100.0 + i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..10).map(|i| 200.0 + i as f64 * 0.1).collect();
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.significant());
        assert!(r.t < 0.0, "a has smaller mean so t is negative");
    }

    #[test]
    fn overlapping_noise_is_insignificant() {
        // Interleaved values drawn from the same arithmetic pattern.
        let a: Vec<f64> = (0..10).map(|i| 10.0 + (i % 5) as f64).collect();
        let b: Vec<f64> = (0..10).map(|i| 10.0 + ((i + 2) % 5) as f64).collect();
        let r = welch_t_test(&a, &b).unwrap();
        assert!(!r.significant(), "p = {}", r.p);
    }

    #[test]
    fn symmetry_in_argument_order() {
        let a = [5.0, 6.0, 7.0, 8.0];
        let b = [7.0, 8.0, 9.0, 11.0];
        let r1 = welch_t_test(&a, &b).unwrap();
        let r2 = welch_t_test(&b, &a).unwrap();
        assert!((r1.t + r2.t).abs() < 1e-12);
        assert!((r1.p - r2.p).abs() < 1e-12);
        assert!((r1.df - r2.df).abs() < 1e-12);
    }
}
