//! Bounded-memory quantile estimation (log-bucketed sketch).
//!
//! Fleet-scale experiments produce one latency sample per *connection* —
//! 10^5–10^6 per cell — and the paper's tail metrics (p50/p99/p999) would
//! naively require retaining every sample for a sort. [`QuantileSketch`]
//! instead buckets samples on a logarithmic grid à la DDSketch: bucket
//! `i` covers `(γ^(i-1), γ^i]` with `γ = (1+α)/(1−α)`, so reporting the
//! bucket's geometric midpoint guarantees a *relative* error of at most
//! `α` for every quantile, at any sample count, in O(buckets) memory
//! (a few KB at the default α = 1%).
//!
//! Sketches are mergeable (bucket-wise addition), so per-shard sketches
//! built inside the deterministic parallel runner combine into exactly
//! the sketch a serial pass would have produced — quantiles stay
//! bit-identical across `LONGLOOK_JOBS` settings.

/// Default relative-error bound (1%).
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Streaming quantile estimator with a guaranteed relative-error bound.
///
/// Non-negative samples only (latencies, byte counts, rates). Samples
/// below a tiny floor (`MIN_VALUE`) land in a dedicated zero bucket and
/// are reported as `0.0`.
///
/// ```
/// use longlook_stats::QuantileSketch;
/// let mut q = QuantileSketch::new();
/// for i in 1..=1000 {
///     q.add(i as f64);
/// }
/// let p99 = q.quantile(0.99);
/// assert!((p99 - 990.0).abs() / 990.0 <= 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    /// `1 / ln γ`, cached for the per-sample bucket computation.
    inv_ln_gamma: f64,
    /// Counts for buckets `lo_index ..`, grown on demand at both ends.
    counts: Vec<u64>,
    /// Bucket index of `counts[0]`.
    lo_index: i32,
    /// Samples `< MIN_VALUE` (including exact zeros).
    zero: u64,
    total: u64,
}

/// Samples below this are indistinguishable from zero for the sketch.
/// One picosecond when samples are milliseconds — far below anything the
/// simulator produces.
const MIN_VALUE: f64 = 1e-9;

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::with_alpha(DEFAULT_ALPHA)
    }
}

impl QuantileSketch {
    /// A sketch with the default 1% relative-error bound.
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    /// A sketch with relative-error bound `alpha` (must be in `(0, 1)`).
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            inv_ln_gamma: 1.0 / gamma.ln(),
            counts: Vec::new(),
            lo_index: 0,
            zero: 0,
            total: 0,
        }
    }

    /// The configured relative-error bound.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of samples added.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Bucket index for a value `>= MIN_VALUE`: the smallest `i` with
    /// `γ^i >= x`, so bucket `i` covers `(γ^(i-1), γ^i]`.
    fn bucket_of(&self, x: f64) -> i32 {
        (x.ln() * self.inv_ln_gamma).ceil() as i32
    }

    /// Add one observation. Negative and NaN samples are rejected with a
    /// panic in debug builds and clamped to zero in release (the fleet
    /// world only produces non-negative latencies; a negative one is a
    /// bug upstream, not a data point).
    pub fn add(&mut self, x: f64) {
        debug_assert!(
            x >= 0.0 && !x.is_nan(),
            "sketch sample must be >= 0, got {x}"
        );
        self.total += 1;
        if x.is_nan() || x < MIN_VALUE {
            self.zero += 1;
            return;
        }
        let idx = self.bucket_of(x);
        self.bump(idx, 1);
    }

    fn bump(&mut self, idx: i32, n: u64) {
        if self.counts.is_empty() {
            self.lo_index = idx;
            self.counts.push(n);
            return;
        }
        if idx < self.lo_index {
            let grow = (self.lo_index - idx) as usize;
            self.counts.splice(0..0, std::iter::repeat_n(0, grow));
            self.lo_index = idx;
        }
        let off = (idx - self.lo_index) as usize;
        if off >= self.counts.len() {
            self.counts.resize(off + 1, 0);
        }
        self.counts[off] += n;
    }

    /// Merge another sketch into this one. Both must share the same
    /// `alpha` (bucket grids must line up).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge sketches with different alpha"
        );
        self.zero += other.zero;
        self.total += other.total;
        for (off, &c) in other.counts.iter().enumerate() {
            if c > 0 {
                self.bump(other.lo_index + off as i32, c);
            }
        }
    }

    /// Merge `parts` into one sketch. Unlike [`Summary::merge_all`]
    /// (order-pinned because the batch formula is float-order-sensitive),
    /// bucket counts are `u64`s and addition is exact, so the result is
    /// bit-identical under **any** order or grouping of the same parts —
    /// the stored representation is canonical (first/last bucket nonzero,
    /// `lo_index` = minimum occupied bucket) and depends only on the
    /// bucket multiset. The shard-merge proptests pin this claim.
    ///
    /// [`Summary::merge_all`]: crate::Summary::merge_all
    /// The result inherits the first part's `alpha` (an empty iterator
    /// yields a default sketch); all parts must share it, as in [`merge`].
    ///
    /// [`merge`]: QuantileSketch::merge
    pub fn merge_all<'a, I: IntoIterator<Item = &'a QuantileSketch>>(parts: I) -> QuantileSketch {
        let mut iter = parts.into_iter();
        let Some(first) = iter.next() else {
            return QuantileSketch::new();
        };
        let mut total = first.clone();
        for p in iter {
            total.merge(p);
        }
        total
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) under nearest-rank
    /// semantics: the smallest value `v` such that at least `⌈q·n⌉`
    /// samples are `<= v`. Returns `NaN` if the sketch is empty.
    ///
    /// The estimate is the geometric midpoint `2γ^i / (γ + 1)` of the
    /// selected bucket, which is within a factor `1 ± α` of every value
    /// in that bucket — hence within relative error `α` of the exact
    /// nearest-rank quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        if rank <= self.zero {
            return 0.0;
        }
        let mut seen = self.zero;
        for (off, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let i = (self.lo_index + off as i32) as f64;
                let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
                // Midpoint of (γ^(i-1), γ^i] with bounded relative error:
                // 2γ^i/(γ+1) = γ^(i-1) · 2γ/(γ+1).
                return 2.0 * gamma.powf(i) / (gamma + 1.0);
            }
        }
        // Unreachable: seen == total >= rank by the loop end.
        f64::NAN
    }

    /// Median shorthand.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile shorthand.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Number of non-empty buckets (diagnostic).
    pub fn buckets(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Heap bytes held by the sketch (bucket vector capacity).
    pub fn bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank quantile for comparison.
    fn exact_nearest_rank(samples: &[f64], q: f64) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn empty_sketch_is_nan() {
        let q = QuantileSketch::new();
        assert_eq!(q.count(), 0);
        assert!(q.p50().is_nan());
    }

    #[test]
    fn single_value_within_alpha() {
        let mut q = QuantileSketch::new();
        q.add(123.456);
        for p in [0.0, 0.5, 0.99, 1.0] {
            let est = q.quantile(p);
            assert!((est - 123.456).abs() / 123.456 <= q.alpha() + 1e-12);
        }
    }

    #[test]
    fn zeros_report_zero() {
        let mut q = QuantileSketch::new();
        for _ in 0..10 {
            q.add(0.0);
        }
        q.add(100.0);
        assert_eq!(q.p50(), 0.0);
        assert!(q.quantile(1.0) > 0.0);
    }

    #[test]
    fn uniform_grid_within_alpha() {
        let mut q = QuantileSketch::new();
        let samples: Vec<f64> = (1..=10_000).map(|i| i as f64 * 0.1).collect();
        for &x in &samples {
            q.add(x);
        }
        for p in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999] {
            let exact = exact_nearest_rank(&samples, p);
            let est = q.quantile(p);
            assert!(
                (est - exact).abs() / exact <= q.alpha() + 1e-9,
                "p={p}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn wide_dynamic_range() {
        // Microseconds to hours in one sketch.
        let mut q = QuantileSketch::new();
        let samples: Vec<f64> = (0..2_000).map(|i| 1e-3 * 1.01f64.powi(i)).collect();
        for &x in &samples {
            q.add(x);
        }
        let exact = exact_nearest_rank(&samples, 0.999);
        let est = q.p999();
        assert!((est - exact).abs() / exact <= q.alpha() + 1e-9);
        // Log-bucketing keeps memory modest even across ~9 decades.
        assert!(q.bytes() < 64 * 1024, "sketch grew to {} bytes", q.bytes());
    }

    #[test]
    fn merge_matches_bulk() {
        let samples: Vec<f64> = (0..5_000)
            .map(|i| 5.0 + ((i * 2654435761u64 % 997) as f64))
            .collect();
        let mut bulk = QuantileSketch::new();
        for &x in &samples {
            bulk.add(x);
        }
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for (i, &x) in samples.iter().enumerate() {
            if i % 3 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), bulk.count());
        for p in [0.1, 0.5, 0.99, 0.999] {
            assert_eq!(
                a.quantile(p),
                bulk.quantile(p),
                "merge must be exact at p={p}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different alpha")]
    fn merge_rejects_mismatched_alpha() {
        let mut a = QuantileSketch::with_alpha(0.01);
        let b = QuantileSketch::with_alpha(0.02);
        a.merge(&b);
    }
}
