//! The paper's heatmap presentation (Figures 6-8, 12, 14, 15, 17, 18).
//!
//! Each cell is the percent PLT difference between QUIC and TCP for one
//! (row, column) scenario — positive/red means QUIC is faster, negative/blue
//! means TCP is faster, and white means the Welch test failed the `p < 0.01`
//! gate.

use crate::compare::{Comparison, Verdict};
use std::fmt::Write as _;

/// One heatmap cell. `PartialEq` compares the exact percent, p-value and
/// verdict — the determinism-equivalence suite uses it to check that a
/// parallel sweep reproduces a serial sweep bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatmapCell {
    /// Percent difference (positive = candidate better).
    pub percent: f64,
    /// p-value of the Welch test, if computable.
    pub p_value: Option<f64>,
    /// Gated verdict.
    pub verdict: Verdict,
}

impl HeatmapCell {
    /// Build a cell from a finished comparison.
    pub fn from_comparison(c: &Comparison) -> Self {
        HeatmapCell {
            percent: c.percent,
            p_value: c.welch.map(|w| w.p),
            verdict: c.verdict,
        }
    }

    /// An empty/unmeasured cell.
    pub fn empty() -> Self {
        HeatmapCell {
            percent: 0.0,
            p_value: None,
            verdict: Verdict::Inconclusive,
        }
    }

    /// Cell text in the paper's style: the rounded percentage, or blank when
    /// insignificant.
    pub fn label(&self) -> String {
        match self.verdict {
            Verdict::Inconclusive => "   .  ".to_string(),
            _ => format!("{:+5.0}%", self.percent),
        }
    }
}

/// A labelled matrix of comparison cells.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Figure-style title, e.g. "QUIC v34 vs TCP, 1% loss".
    pub title: String,
    /// Row labels (the paper uses bandwidths, top-to-bottom).
    pub row_labels: Vec<String>,
    /// Column labels (object sizes or object counts).
    pub col_labels: Vec<String>,
    /// Row-major cells; `cells[r][c]`.
    pub cells: Vec<Vec<HeatmapCell>>,
}

impl Heatmap {
    /// Create an all-empty heatmap with the given shape.
    pub fn new(title: impl Into<String>, row_labels: Vec<String>, col_labels: Vec<String>) -> Self {
        let rows = row_labels.len();
        let cols = col_labels.len();
        Heatmap {
            title: title.into(),
            row_labels,
            col_labels,
            cells: vec![vec![HeatmapCell::empty(); cols]; rows],
        }
    }

    /// Set one cell.
    pub fn set(&mut self, row: usize, col: usize, cell: HeatmapCell) {
        self.cells[row][col] = cell;
    }

    /// Get one cell.
    pub fn get(&self, row: usize, col: usize) -> &HeatmapCell {
        &self.cells[row][col]
    }

    /// Fraction of significant cells won by the candidate (ignores white).
    pub fn candidate_win_rate(&self) -> f64 {
        let mut wins = 0usize;
        let mut decided = 0usize;
        for row in &self.cells {
            for cell in row {
                match cell.verdict {
                    Verdict::CandidateWins => {
                        wins += 1;
                        decided += 1;
                    }
                    Verdict::BaselineWins => decided += 1,
                    Verdict::Inconclusive => {}
                }
            }
        }
        if decided == 0 {
            0.0
        } else {
            wins as f64 / decided as f64
        }
    }

    /// Exact Clopper–Pearson interval on [`Self::candidate_win_rate`] at
    /// confidence `1 - alpha`, treating each decided (non-white) cell as
    /// one Bernoulli trial. With no decided cells the interval is the
    /// vacuous `(0, 1)`.
    pub fn candidate_win_rate_ci(&self, alpha: f64) -> (f64, f64) {
        let (red, blue, _) = self.verdict_counts();
        crate::beta::binomial_ci(red as u64, (red + blue) as u64, alpha)
    }

    /// Count of cells per verdict: `(red, blue, white)`.
    pub fn verdict_counts(&self) -> (usize, usize, usize) {
        let mut r = 0;
        let mut b = 0;
        let mut w = 0;
        for row in &self.cells {
            for cell in row {
                match cell.verdict {
                    Verdict::CandidateWins => r += 1,
                    Verdict::BaselineWins => b += 1,
                    Verdict::Inconclusive => w += 1,
                }
            }
        }
        (r, b, w)
    }

    /// Render the heatmap as fixed-width ASCII, in the paper's orientation.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let rl_width = self
            .row_labels
            .iter()
            .map(|l| l.len())
            .max()
            .unwrap_or(0)
            .max(4);
        let _ = writeln!(out, "{}", self.title);
        // Header row.
        let _ = write!(out, "{:>rl_width$} |", "");
        for c in &self.col_labels {
            let _ = write!(out, " {c:>7}");
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{}-+{}",
            "-".repeat(rl_width),
            "-".repeat(8 * self.col_labels.len())
        );
        for (r, label) in self.row_labels.iter().enumerate() {
            let _ = write!(out, "{label:>rl_width$} |");
            for c in 0..self.col_labels.len() {
                let cell = &self.cells[r][c];
                let _ = write!(out, " {:>7}", cell.label().trim());
            }
            let _ = writeln!(out);
        }
        let (red, blue, white) = self.verdict_counts();
        let _ = writeln!(
            out,
            "legend: +% = QUIC faster (red), -% = TCP faster (blue), . = not significant (white) \
             [{red} red / {blue} blue / {white} white]"
        );
        out
    }

    /// Render as CSV (`row,col,percent,p,verdict`).
    pub fn render_csv(&self) -> String {
        let mut out = String::from("row,col,percent,p_value,verdict\n");
        for (r, rl) in self.row_labels.iter().enumerate() {
            for (c, cl) in self.col_labels.iter().enumerate() {
                let cell = &self.cells[r][c];
                let _ = writeln!(
                    out,
                    "{rl},{cl},{:.2},{},{}",
                    cell.percent,
                    cell.p_value
                        .map_or(String::from("NA"), |p| format!("{p:.4}")),
                    cell.verdict.glyph()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map() -> Heatmap {
        let mut h = Heatmap::new(
            "test map",
            vec!["100Mbps".into(), "5Mbps".into()],
            vec!["5KB".into(), "10MB".into()],
        );
        h.set(
            0,
            0,
            HeatmapCell {
                percent: 40.0,
                p_value: Some(0.001),
                verdict: Verdict::CandidateWins,
            },
        );
        h.set(
            0,
            1,
            HeatmapCell {
                percent: -12.0,
                p_value: Some(0.002),
                verdict: Verdict::BaselineWins,
            },
        );
        h.set(
            1,
            0,
            HeatmapCell {
                percent: 3.0,
                p_value: Some(0.4),
                verdict: Verdict::Inconclusive,
            },
        );
        h
    }

    #[test]
    fn shape_and_access() {
        let h = sample_map();
        assert_eq!(h.cells.len(), 2);
        assert_eq!(h.cells[0].len(), 2);
        assert_eq!(h.get(0, 0).percent, 40.0);
    }

    #[test]
    fn verdict_counts_and_win_rate() {
        let h = sample_map();
        assert_eq!(h.verdict_counts(), (1, 1, 2));
        assert_eq!(h.candidate_win_rate(), 0.5);
    }

    #[test]
    fn empty_heatmap_win_rate_is_zero() {
        let h = Heatmap::new("t", vec!["r".into()], vec!["c".into()]);
        assert_eq!(h.candidate_win_rate(), 0.0);
        assert_eq!(h.candidate_win_rate_ci(0.05), (0.0, 1.0));
    }

    #[test]
    fn win_rate_ci_brackets_the_rate() {
        let h = sample_map(); // 1 red of 2 decided
        let (lo, hi) = h.candidate_win_rate_ci(0.05);
        let rate = h.candidate_win_rate();
        assert!(lo <= rate && rate <= hi, "({lo}, {hi}) vs {rate}");
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn ascii_rendering_contains_cells() {
        let text = sample_map().render_ascii();
        assert!(text.contains("+40%"));
        assert!(text.contains("-12%"));
        assert!(text.contains("legend"));
        assert!(text.contains("100Mbps"));
    }

    #[test]
    fn csv_rendering() {
        let csv = sample_map().render_csv();
        assert!(csv.starts_with("row,col,percent"));
        assert!(csv.contains("100Mbps,5KB,40.00,0.0010,R"));
        assert!(csv.contains("5Mbps,10MB,0.00,NA,."));
    }

    #[test]
    fn insignificant_cell_label_is_dot() {
        let cell = HeatmapCell {
            percent: 33.0,
            p_value: Some(0.5),
            verdict: Verdict::Inconclusive,
        };
        assert!(cell.label().contains('.'));
        assert!(!cell.label().contains("33"));
    }
}
