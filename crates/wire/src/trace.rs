//! qlog-inspired per-connection structured event traces.
//!
//! A [`Tracer`] lives inside each transport connection and appends
//! [`TraceRecord`]s — packet tx/rx, ack processing, loss declarations,
//! congestion-control state and cwnd changes, recovery decisions, timer
//! arms/fires — while the fault layer contributes window-edge records
//! synthesized from the plan. Tracing is selected by `LONGLOOK_TRACE`
//! (`off`, the default / `on` / `rotating`) through the shared warn-once
//! [`env_knob`] parser; when off every emit method is an inlined
//! early-return on one bool, draws zero RNG, and perturbs nothing — a
//! promise the `trace_differential` referee suite holds bit-exactly.
//!
//! On disk a trace is qlog-style JSON-SEQ (RFC 7464): each record is an
//! RS byte (`0x1E`), one minimized-key JSON object, and a newline. The
//! std-only [`RotatingWriter`] splits the stream into size-capped
//! segments without ever splitting a record, and
//! [`parse_seq`] round-trips the concatenated segments back to the typed
//! event sequence.

use crate::mode::env_knob;
use std::sync::Once;

/// RFC 7464 record separator that prefixes every JSON-SEQ record.
pub const RECORD_SEP: char = '\u{1e}';

/// Default per-segment byte cap used by `LONGLOOK_TRACE=rotating`.
pub const DEFAULT_SEGMENT_CAP: usize = 64 * 1024;

/// Tracing selection (`LONGLOOK_TRACE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// No tracing (default): emit methods are inlined no-ops.
    Off,
    /// Record everything into one unbounded segment.
    On,
    /// Record everything into size-capped rotating segments.
    Rotating,
}

impl TraceMode {
    /// Resolve from the `LONGLOOK_TRACE` environment variable.
    ///
    /// Read on every call (not cached) so differential tests can flip
    /// the variable between connection constructions in one process —
    /// mirroring `LONGLOOK_WIRE` and `LONGLOOK_BATCH`.
    pub fn from_env() -> TraceMode {
        static WARN: Once = Once::new();
        env_knob(
            "LONGLOOK_TRACE",
            "\"off\", \"on\" or \"rotating\"",
            "off",
            &WARN,
            |v| {
                if v.eq_ignore_ascii_case("on") {
                    Some(TraceMode::On)
                } else if v.eq_ignore_ascii_case("rotating") {
                    Some(TraceMode::Rotating)
                } else if v.eq_ignore_ascii_case("off") || v.is_empty() {
                    Some(TraceMode::Off)
                } else {
                    None
                }
            },
        )
        .unwrap_or(TraceMode::Off)
    }

    /// True when any tracing is selected.
    pub fn is_on(self) -> bool {
        self != TraceMode::Off
    }

    /// Segment byte cap a [`RotatingWriter`] should use for this mode.
    pub fn segment_cap(self) -> usize {
        match self {
            TraceMode::Rotating => DEFAULT_SEGMENT_CAP,
            _ => usize::MAX,
        }
    }
}

/// Which recovery mechanism acted (or which loss timer fired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// Tail loss probe.
    Tlp,
    /// Retransmission timeout.
    Rto,
    /// Dup-ack / nack-threshold fast retransmit.
    FastRetx,
    /// Watchdog gave the connection up.
    GiveUp,
}

impl RecoveryKind {
    /// Minimized wire label.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryKind::Tlp => "tlp",
            RecoveryKind::Rto => "rto",
            RecoveryKind::FastRetx => "fr",
            RecoveryKind::GiveUp => "gu",
        }
    }

    fn parse(s: &str) -> Option<RecoveryKind> {
        Some(match s {
            "tlp" => RecoveryKind::Tlp,
            "rto" => RecoveryKind::Rto,
            "fr" => RecoveryKind::FastRetx,
            "gu" => RecoveryKind::GiveUp,
            _ => return None,
        })
    }
}

/// One structured trace event. Packet numbers double as TCP sequence
/// numbers; sizes are wire bytes as charged to the link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Packet sent (`elicit` = ack-eliciting, as in qlog's
    /// `packet_sent.ack_eliciting`; pure control/ACK frames are not).
    PktTx {
        /// Packet number (QUIC) or starting sequence number (TCP).
        pn: u64,
        /// Wire size in bytes.
        size: u64,
        /// Ack-eliciting (retransmittable) packet.
        elicit: bool,
    },
    /// Packet received.
    PktRx {
        /// Packet number (QUIC) or starting sequence number (TCP).
        pn: u64,
        /// Wire size in bytes.
        size: u64,
    },
    /// An ack frame/segment was processed; `newly_acked` bytes left the
    /// flight.
    AckProcessed {
        /// Newly acknowledged bytes.
        newly_acked: u64,
    },
    /// A packet was declared lost.
    Loss {
        /// Packet number (QUIC) or starting sequence number (TCP).
        pn: u64,
    },
    /// The congestion-control state label changed.
    CcState {
        /// The new state label (Table 3 vocabulary).
        state: String,
    },
    /// The congestion window changed.
    Cwnd {
        /// New window in bytes.
        bytes: u64,
    },
    /// A recovery decision was taken.
    Recovery {
        /// Which mechanism acted.
        kind: RecoveryKind,
    },
    /// The loss/RTO timer was (re-)armed.
    TimerArm {
        /// Deadline the timer was armed for, nanoseconds.
        deadline_ns: u64,
    },
    /// An armed loss timer fired.
    TimerFire {
        /// Which timer fired.
        kind: RecoveryKind,
    },
    /// A fault window opened (synthesized from the [`FaultPlan`], never
    /// emitted by a connection — pure function of the plan).
    FaultOn {
        /// Fault kind label (`blackout`, `flap`, ... — repro spelling).
        kind: String,
        /// Direction label (`up` / `down` / `both`).
        dir: String,
    },
    /// A fault window closed.
    FaultOff {
        /// Fault kind label.
        kind: String,
        /// Direction label.
        dir: String,
    },
}

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time, nanoseconds since experiment start.
    pub t: u64,
    /// The event.
    pub ev: TraceEvent,
}

/// Per-connection event recorder. Constructed enabled or disabled once
/// (from [`TraceMode::from_env`] at connection construction); when
/// disabled every emit method inlines to a single branch and the record
/// vector never allocates.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    /// Last emitted cc-state label, for change-only emission.
    last_state: Option<String>,
    log: Vec<TraceRecord>,
}

impl Tracer {
    /// A tracer honoring `LONGLOOK_TRACE` (off → disabled no-op).
    pub fn from_env() -> Tracer {
        Tracer::new(TraceMode::from_env().is_on())
    }

    /// Explicitly enabled or disabled tracer.
    pub fn new(enabled: bool) -> Tracer {
        Tracer {
            enabled,
            last_state: None,
            log: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Everything recorded so far, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.log
    }

    #[inline]
    fn push(&mut self, t: u64, ev: TraceEvent) {
        self.log.push(TraceRecord { t, ev });
    }

    /// Packet sent (`elicit` = ack-eliciting).
    #[inline]
    pub fn pkt_tx(&mut self, t: u64, pn: u64, size: u64, elicit: bool) {
        if !self.enabled {
            return;
        }
        self.push(t, TraceEvent::PktTx { pn, size, elicit });
    }

    /// Packet received.
    #[inline]
    pub fn pkt_rx(&mut self, t: u64, pn: u64, size: u64) {
        if !self.enabled {
            return;
        }
        self.push(t, TraceEvent::PktRx { pn, size });
    }

    /// Ack processed.
    #[inline]
    pub fn ack(&mut self, t: u64, newly_acked: u64) {
        if !self.enabled {
            return;
        }
        self.push(t, TraceEvent::AckProcessed { newly_acked });
    }

    /// Packet declared lost.
    #[inline]
    pub fn loss(&mut self, t: u64, pn: u64) {
        if !self.enabled {
            return;
        }
        self.push(t, TraceEvent::Loss { pn });
    }

    /// Congestion-control state observation; deduplicated so only
    /// changes are recorded.
    #[inline]
    pub fn cc_state(&mut self, t: u64, label: &str) {
        if !self.enabled {
            return;
        }
        if self.last_state.as_deref() == Some(label) {
            return;
        }
        self.last_state = Some(label.to_string());
        self.push(
            t,
            TraceEvent::CcState {
                state: label.to_string(),
            },
        );
    }

    /// Congestion window change (callers already emit change-only).
    #[inline]
    pub fn cwnd(&mut self, t: u64, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.push(t, TraceEvent::Cwnd { bytes });
    }

    /// Recovery decision.
    #[inline]
    pub fn recovery(&mut self, t: u64, kind: RecoveryKind) {
        if !self.enabled {
            return;
        }
        self.push(t, TraceEvent::Recovery { kind });
    }

    /// Loss timer armed for `deadline_ns`.
    #[inline]
    pub fn timer_arm(&mut self, t: u64, deadline_ns: u64) {
        if !self.enabled {
            return;
        }
        self.push(t, TraceEvent::TimerArm { deadline_ns });
    }

    /// Loss timer fired.
    #[inline]
    pub fn timer_fire(&mut self, t: u64, kind: RecoveryKind) {
        if !self.enabled {
            return;
        }
        self.push(t, TraceEvent::TimerFire { kind });
    }
}

/// Merge two time-sorted record slices into one time-sorted vector;
/// stable, with `a`-side records first on ties.
pub fn merge_by_time(a: &[TraceRecord], b: &[TraceRecord]) -> Vec<TraceRecord> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].t <= b[j].t {
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

// ---------------------------------------------------------------------------
// JSON-SEQ codec (minimized field names)
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encode one record as RS + minimized-key JSON + newline.
pub fn encode_record(rec: &TraceRecord) -> String {
    let mut s = String::with_capacity(48);
    s.push(RECORD_SEP);
    s.push_str(&format!("{{\"t\":{}", rec.t));
    match &rec.ev {
        TraceEvent::PktTx { pn, size, elicit } => {
            s.push_str(&format!(",\"k\":\"tx\",\"pn\":{pn},\"sz\":{size}"));
            if *elicit {
                s.push_str(",\"el\":1");
            }
        }
        TraceEvent::PktRx { pn, size } => {
            s.push_str(&format!(",\"k\":\"rx\",\"pn\":{pn},\"sz\":{size}"));
        }
        TraceEvent::AckProcessed { newly_acked } => {
            s.push_str(&format!(",\"k\":\"ack\",\"nb\":{newly_acked}"));
        }
        TraceEvent::Loss { pn } => {
            s.push_str(&format!(",\"k\":\"loss\",\"pn\":{pn}"));
        }
        TraceEvent::CcState { state } => {
            s.push_str(",\"k\":\"st\",\"s\":");
            escape_into(&mut s, state);
        }
        TraceEvent::Cwnd { bytes } => {
            s.push_str(&format!(",\"k\":\"cw\",\"b\":{bytes}"));
        }
        TraceEvent::Recovery { kind } => {
            s.push_str(&format!(",\"k\":\"rec\",\"r\":\"{}\"", kind.label()));
        }
        TraceEvent::TimerArm { deadline_ns } => {
            s.push_str(&format!(",\"k\":\"ta\",\"at\":{deadline_ns}"));
        }
        TraceEvent::TimerFire { kind } => {
            s.push_str(&format!(",\"k\":\"tf\",\"r\":\"{}\"", kind.label()));
        }
        TraceEvent::FaultOn { kind, dir } => {
            s.push_str(",\"k\":\"f+\",\"f\":");
            escape_into(&mut s, kind);
            s.push_str(",\"d\":");
            escape_into(&mut s, dir);
        }
        TraceEvent::FaultOff { kind, dir } => {
            s.push_str(",\"k\":\"f-\",\"f\":");
            escape_into(&mut s, kind);
            s.push_str(",\"d\":");
            escape_into(&mut s, dir);
        }
    }
    s.push('}');
    s.push('\n');
    s
}

/// Encode a whole record sequence as one JSON-SEQ string.
pub fn encode_seq(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&encode_record(r));
    }
    out
}

/// Flat field value inside one record object.
enum Field {
    Num(u64),
    Str(String),
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos,
                got.map(|g| g as char)
            )),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain UTF-8 bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.s[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pairs, for completeness; our encoder
                        // only escapes control characters.
                        if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(char::from_u32(c).ok_or_else(|| "bad surrogate".to_string())?);
                        } else {
                            out.push(
                                char::from_u32(cp).ok_or_else(|| "bad codepoint".to_string())?,
                            );
                        }
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                other => return Err(format!("unterminated string ({other:?})")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| "truncated \\u".to_string())?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit {:?}", b as char))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_num(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .unwrap()
            .parse::<u64>()
            .map_err(|e| e.to_string())
    }

    /// Parse one flat `{"key":value,...}` object of numbers and strings.
    fn parse_object(&mut self) -> Result<Vec<(String, Field)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let val = match self.peek() {
                Some(b'"') => Field::Str(self.parse_string()?),
                _ => Field::Num(self.parse_num()?),
            };
            fields.push((key, val));
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(fields),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

fn field_num(fields: &[(String, Field)], key: &str) -> Result<u64, String> {
    fields
        .iter()
        .find_map(|(k, v)| match v {
            Field::Num(n) if k == key => Some(*n),
            _ => None,
        })
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn field_str<'a>(fields: &'a [(String, Field)], key: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find_map(|(k, v)| match v {
            Field::Str(s) if k == key => Some(s.as_str()),
            _ => None,
        })
        .ok_or_else(|| format!("missing string field '{key}'"))
}

/// Parse one JSON-SEQ record line (with or without the RS prefix and
/// trailing newline) back to the typed record.
pub fn parse_record(line: &str) -> Result<TraceRecord, String> {
    let line = line.trim_end_matches('\n').trim_start_matches(RECORD_SEP);
    let mut p = Parser::new(line);
    let fields = p.parse_object()?;
    if p.pos != p.s.len() {
        return Err(format!("trailing bytes after record at {}", p.pos));
    }
    let t = field_num(&fields, "t")?;
    let kind = field_str(&fields, "k")?;
    let ev = match kind {
        "tx" => TraceEvent::PktTx {
            pn: field_num(&fields, "pn")?,
            size: field_num(&fields, "sz")?,
            elicit: field_num(&fields, "el").unwrap_or(0) != 0,
        },
        "rx" => TraceEvent::PktRx {
            pn: field_num(&fields, "pn")?,
            size: field_num(&fields, "sz")?,
        },
        "ack" => TraceEvent::AckProcessed {
            newly_acked: field_num(&fields, "nb")?,
        },
        "loss" => TraceEvent::Loss {
            pn: field_num(&fields, "pn")?,
        },
        "st" => TraceEvent::CcState {
            state: field_str(&fields, "s")?.to_string(),
        },
        "cw" => TraceEvent::Cwnd {
            bytes: field_num(&fields, "b")?,
        },
        "rec" => TraceEvent::Recovery {
            kind: RecoveryKind::parse(field_str(&fields, "r")?)
                .ok_or_else(|| "unknown recovery kind".to_string())?,
        },
        "ta" => TraceEvent::TimerArm {
            deadline_ns: field_num(&fields, "at")?,
        },
        "tf" => TraceEvent::TimerFire {
            kind: RecoveryKind::parse(field_str(&fields, "r")?)
                .ok_or_else(|| "unknown timer kind".to_string())?,
        },
        "f+" => TraceEvent::FaultOn {
            kind: field_str(&fields, "f")?.to_string(),
            dir: field_str(&fields, "d")?.to_string(),
        },
        "f-" => TraceEvent::FaultOff {
            kind: field_str(&fields, "f")?.to_string(),
            dir: field_str(&fields, "d")?.to_string(),
        },
        other => return Err(format!("unknown event kind '{other}'")),
    };
    Ok(TraceRecord { t, ev })
}

/// Parse a whole JSON-SEQ stream (e.g. concatenated writer segments).
pub fn parse_seq(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for chunk in text.split(RECORD_SEP) {
        let chunk = chunk.trim_end_matches('\n');
        if chunk.is_empty() {
            continue;
        }
        out.push(parse_record(chunk)?);
    }
    Ok(out)
}

/// Std-only rotating JSON-SEQ writer: appends encoded records to an
/// in-memory segment and starts a new one when the current segment would
/// exceed the byte cap. A record is never split across segments; a
/// record larger than the cap gets a segment of its own.
#[derive(Debug, Clone)]
pub struct RotatingWriter {
    cap: usize,
    segments: Vec<String>,
}

impl RotatingWriter {
    /// Writer with a per-segment byte cap (`usize::MAX` = never rotate).
    pub fn new(cap: usize) -> RotatingWriter {
        RotatingWriter {
            cap: cap.max(1),
            segments: vec![String::new()],
        }
    }

    /// Writer sized for a [`TraceMode`] (`On` = single unbounded
    /// segment, `Rotating` = [`DEFAULT_SEGMENT_CAP`]).
    pub fn for_mode(mode: TraceMode) -> RotatingWriter {
        RotatingWriter::new(mode.segment_cap())
    }

    /// Append one record, rotating first if it would overflow the cap.
    pub fn push(&mut self, rec: &TraceRecord) {
        let line = encode_record(rec);
        let cur = self.segments.last_mut().expect("always one segment");
        if !cur.is_empty() && cur.len() + line.len() > self.cap {
            self.segments.push(line);
        } else {
            cur.push_str(&line);
        }
    }

    /// Append a whole record sequence.
    pub fn push_all(&mut self, records: &[TraceRecord]) {
        for r in records {
            self.push(r);
        }
    }

    /// The finished segments, in order (the last may be partial; a
    /// fresh writer has one empty segment).
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// All segments joined back into one JSON-SEQ stream.
    pub fn concat(&self) -> String {
        self.segments.concat()
    }

    /// Write the segments as `trace_NNN.jsonseq` files under `dir`.
    pub fn write_dir(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::new();
        for (i, seg) in self.segments.iter().enumerate() {
            let path = dir.join(format!("trace_{i:03}.jsonseq"));
            std::fs::write(&path, seg)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// One test flips the env var through every spelling:
    /// `LONGLOOK_TRACE` is process-global, so separate tests would race.
    #[test]
    fn trace_mode_from_env_resolves_all_spellings() {
        let saved = std::env::var("LONGLOOK_TRACE").ok();
        std::env::remove_var("LONGLOOK_TRACE");
        assert_eq!(TraceMode::from_env(), TraceMode::Off);
        assert!(!TraceMode::Off.is_on());
        assert!(TraceMode::On.is_on());
        assert!(TraceMode::Rotating.is_on());
        for (v, want) in [
            ("off", TraceMode::Off),
            ("OFF", TraceMode::Off),
            ("", TraceMode::Off),
            ("on", TraceMode::On),
            ("On", TraceMode::On),
            ("rotating", TraceMode::Rotating),
            ("ROTATING", TraceMode::Rotating),
            ("junk-value", TraceMode::Off), // warns once, falls back
        ] {
            std::env::set_var("LONGLOOK_TRACE", v);
            assert_eq!(TraceMode::from_env(), want, "LONGLOOK_TRACE={v:?}");
        }
        match saved {
            Some(v) => std::env::set_var("LONGLOOK_TRACE", v),
            None => std::env::remove_var("LONGLOOK_TRACE"),
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(false);
        t.pkt_tx(1, 0, 1200, true);
        t.pkt_rx(2, 0, 40);
        t.ack(3, 1200);
        t.loss(4, 0);
        t.cc_state(5, "SlowStart");
        t.cwnd(6, 14520);
        t.recovery(7, RecoveryKind::Rto);
        t.timer_arm(8, 99);
        t.timer_fire(9, RecoveryKind::Tlp);
        assert!(t.records().is_empty());
        assert!(!t.enabled());
    }

    #[test]
    fn cc_state_emits_changes_only() {
        let mut t = Tracer::new(true);
        t.cc_state(1, "Init");
        t.cc_state(2, "Init");
        t.cc_state(3, "SlowStart");
        t.cc_state(4, "SlowStart");
        t.cc_state(5, "Init");
        let states: Vec<&str> = t
            .records()
            .iter()
            .filter_map(|r| match &r.ev {
                TraceEvent::CcState { state } => Some(state.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(states, ["Init", "SlowStart", "Init"]);
    }

    #[test]
    fn merge_by_time_is_stable() {
        let a = vec![
            TraceRecord {
                t: 1,
                ev: TraceEvent::Loss { pn: 1 },
            },
            TraceRecord {
                t: 5,
                ev: TraceEvent::Loss { pn: 2 },
            },
        ];
        let b = vec![
            TraceRecord {
                t: 1,
                ev: TraceEvent::FaultOn {
                    kind: "blackout".into(),
                    dir: "both".into(),
                },
            },
            TraceRecord {
                t: 3,
                ev: TraceEvent::FaultOff {
                    kind: "blackout".into(),
                    dir: "both".into(),
                },
            },
        ];
        let m = merge_by_time(&a, &b);
        let ts: Vec<u64> = m.iter().map(|r| r.t).collect();
        assert_eq!(ts, [1, 1, 3, 5]);
        // Tie at t=1: a-side (the connection's Loss) first.
        assert!(matches!(m[0].ev, TraceEvent::Loss { .. }));
    }

    #[test]
    fn record_lines_are_rfc7464_shaped() {
        let line = encode_record(&TraceRecord {
            t: 42,
            ev: TraceEvent::PktTx {
                pn: 7,
                size: 1392,
                elicit: true,
            },
        });
        assert!(line.starts_with(RECORD_SEP));
        assert!(line.ends_with('\n'));
        assert_eq!(
            &line[1..line.len() - 1],
            r#"{"t":42,"k":"tx","pn":7,"sz":1392,"el":1}"#
        );
    }

    #[test]
    fn parse_rejects_malformed_records() {
        assert!(parse_record("{}").is_err());
        assert!(parse_record(r#"{"t":1}"#).is_err());
        assert!(parse_record(r#"{"t":1,"k":"melt"}"#).is_err());
        assert!(parse_record(r#"{"t":1,"k":"tx","pn":2}"#).is_err());
        assert!(parse_record(r#"{"t":1,"k":"rec","r":"warp"}"#).is_err());
        assert!(parse_record(r#"{"t":1,"k":"loss","pn":2} extra"#).is_err());
    }

    // ---- proptest strategies -------------------------------------------

    fn arb_label() -> impl Strategy<Value = String> {
        // Realistic state labels plus adversarial strings built from a
        // palette that exercises escaping: quotes, backslashes, control
        // characters (including the RS record separator), and multi-byte
        // UTF-8 up to astral plane.
        const PALETTE: &[char] = &[
            'a', 'B', '3', '_', '-', ' ', '"', '\\', '/', '\n', '\t', '\u{1}', '\u{1e}', 'é', 'λ',
            '汉', '🦀',
        ];
        prop_oneof![
            Just("SlowStart".to_string()),
            Just("CongestionAvoidance".to_string()),
            Just("RetransmissionTimeout".to_string()),
            proptest::collection::vec(any::<u8>(), 0..12).prop_map(|bytes| {
                bytes
                    .iter()
                    .map(|&b| PALETTE[b as usize % PALETTE.len()])
                    .collect()
            }),
        ]
    }

    fn arb_event() -> impl Strategy<Value = TraceEvent> {
        prop_oneof![
            (any::<u64>(), any::<u64>(), any::<bool>())
                .prop_map(|(pn, size, elicit)| TraceEvent::PktTx { pn, size, elicit }),
            (any::<u64>(), any::<u64>()).prop_map(|(pn, size)| TraceEvent::PktRx { pn, size }),
            any::<u64>().prop_map(|newly_acked| TraceEvent::AckProcessed { newly_acked }),
            any::<u64>().prop_map(|pn| TraceEvent::Loss { pn }),
            arb_label().prop_map(|state| TraceEvent::CcState { state }),
            any::<u64>().prop_map(|bytes| TraceEvent::Cwnd { bytes }),
            prop_oneof![
                Just(RecoveryKind::Tlp),
                Just(RecoveryKind::Rto),
                Just(RecoveryKind::FastRetx),
                Just(RecoveryKind::GiveUp),
            ]
            .prop_map(|kind| TraceEvent::Recovery { kind }),
            any::<u64>().prop_map(|deadline_ns| TraceEvent::TimerArm { deadline_ns }),
            prop_oneof![Just(RecoveryKind::Tlp), Just(RecoveryKind::Rto)]
                .prop_map(|kind| TraceEvent::TimerFire { kind }),
            (arb_label(), arb_label()).prop_map(|(kind, dir)| TraceEvent::FaultOn { kind, dir }),
            (arb_label(), arb_label()).prop_map(|(kind, dir)| TraceEvent::FaultOff { kind, dir }),
        ]
    }

    fn arb_records() -> impl Strategy<Value = Vec<TraceRecord>> {
        proptest::collection::vec(
            (any::<u64>(), arb_event()).prop_map(|(t, ev)| TraceRecord { t, ev }),
            0..64,
        )
    }

    proptest! {
        /// Minimized-key encoding parses back to the exact typed enum.
        #[test]
        fn encoding_round_trips_to_typed_events(records in arb_records()) {
            let encoded = encode_seq(&records);
            let parsed = parse_seq(&encoded).expect("parse");
            prop_assert_eq!(parsed, records);
        }

        /// Rotation never splits a record and concat(segments) is the
        /// exact unrotated stream.
        #[test]
        fn rotation_never_splits_records(
            records in arb_records(),
            cap in 16usize..512,
        ) {
            let mut w = RotatingWriter::new(cap);
            w.push_all(&records);
            for seg in w.segments() {
                // Every segment is a whole number of records...
                let n = parse_seq(seg).expect("segment parses standalone").len();
                // ...and respects the cap unless a single record exceeds it.
                if seg.len() > cap {
                    prop_assert_eq!(n, 1, "oversized segment must hold one record");
                }
            }
            prop_assert_eq!(w.concat(), encode_seq(&records));
            let round = parse_seq(&w.concat()).expect("concat parses");
            prop_assert_eq!(round, records);
        }
    }
}
