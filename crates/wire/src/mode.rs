//! Runtime path selection knobs: structured vs encoded payloads
//! (`LONGLOOK_WIRE`) and batched vs per-event hot paths (`LONGLOOK_BATCH`).

use std::sync::Once;

/// Which payload representation the transports put on simulated links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Hand the typed `QuicPacket`/`TcpSegment` to the peer by value,
    /// charging analytic `encoded_len()` sizes (default).
    Structured,
    /// Serialize to `Bytes` and reparse on receipt
    /// (`LONGLOOK_WIRE=encoded`), the reference path.
    Encoded,
}

impl WireMode {
    /// Resolve from the `LONGLOOK_WIRE` environment variable.
    ///
    /// Read on every call (not cached) so differential tests and benches
    /// can flip the variable between connection constructions in one
    /// process — mirroring `LONGLOOK_SCHED`.
    pub fn from_env() -> WireMode {
        match std::env::var("LONGLOOK_WIRE") {
            Ok(v) if v.eq_ignore_ascii_case("encoded") => WireMode::Encoded,
            Ok(v) if v.eq_ignore_ascii_case("structured") || v.is_empty() => WireMode::Structured,
            Ok(v) => {
                static WARN: Once = Once::new();
                WARN.call_once(|| {
                    eprintln!(
                        "warning: unrecognized LONGLOOK_WIRE={v:?} (expected \
                         \"structured\" or \"encoded\"); using structured"
                    );
                });
                WireMode::Structured
            }
            Err(_) => WireMode::Structured,
        }
    }
}

/// Whether the transport hot paths run batched (flight-granular ack
/// bookkeeping, burst delivery, amortized timer re-arming) or strictly
/// per-event.
///
/// The two paths are pinned bit-identical by the `batch_differential`
/// referee suite; `Off` is the reference path kept as an escape hatch
/// while both coexist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// Batched hot path (default): same observable behavior, less
    /// per-event work.
    On,
    /// Per-event reference path (`LONGLOOK_BATCH=off`).
    Off,
}

impl BatchMode {
    /// Resolve from the `LONGLOOK_BATCH` environment variable.
    ///
    /// Read on every call (not cached) so differential tests and benches
    /// can flip the variable between runs in one process — mirroring
    /// `LONGLOOK_WIRE` and `LONGLOOK_SCHED`.
    pub fn from_env() -> BatchMode {
        match std::env::var("LONGLOOK_BATCH") {
            Ok(v) if v.eq_ignore_ascii_case("off") => BatchMode::Off,
            Ok(v) if v.eq_ignore_ascii_case("on") || v.is_empty() => BatchMode::On,
            Ok(v) => {
                static WARN: Once = Once::new();
                WARN.call_once(|| {
                    eprintln!(
                        "warning: unrecognized LONGLOOK_BATCH={v:?} (expected \
                         \"on\" or \"off\"); using on"
                    );
                });
                BatchMode::On
            }
            Err(_) => BatchMode::On,
        }
    }

    /// True when the batched path is selected.
    pub fn is_on(self) -> bool {
        self == BatchMode::On
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test flips the env var through every case: `LONGLOOK_WIRE` is
    /// process-global, so separate tests would race.
    #[test]
    fn from_env_resolves_all_spellings() {
        let saved = std::env::var("LONGLOOK_WIRE").ok();
        std::env::remove_var("LONGLOOK_WIRE");
        assert_eq!(WireMode::from_env(), WireMode::Structured);
        for (v, want) in [
            ("structured", WireMode::Structured),
            ("STRUCTURED", WireMode::Structured),
            ("", WireMode::Structured),
            ("encoded", WireMode::Encoded),
            ("Encoded", WireMode::Encoded),
            ("junk-value", WireMode::Structured), // warns once, falls back
        ] {
            std::env::set_var("LONGLOOK_WIRE", v);
            assert_eq!(WireMode::from_env(), want, "LONGLOOK_WIRE={v:?}");
        }
        match saved {
            Some(v) => std::env::set_var("LONGLOOK_WIRE", v),
            None => std::env::remove_var("LONGLOOK_WIRE"),
        }
    }

    /// Same single-test discipline for `LONGLOOK_BATCH`.
    #[test]
    fn batch_from_env_resolves_all_spellings() {
        let saved = std::env::var("LONGLOOK_BATCH").ok();
        std::env::remove_var("LONGLOOK_BATCH");
        assert_eq!(BatchMode::from_env(), BatchMode::On);
        assert!(BatchMode::On.is_on());
        assert!(!BatchMode::Off.is_on());
        for (v, want) in [
            ("on", BatchMode::On),
            ("ON", BatchMode::On),
            ("", BatchMode::On),
            ("off", BatchMode::Off),
            ("Off", BatchMode::Off),
            ("junk-value", BatchMode::On), // warns once, falls back
        ] {
            std::env::set_var("LONGLOOK_BATCH", v);
            assert_eq!(BatchMode::from_env(), want, "LONGLOOK_BATCH={v:?}");
        }
        match saved {
            Some(v) => std::env::set_var("LONGLOOK_BATCH", v),
            None => std::env::remove_var("LONGLOOK_BATCH"),
        }
    }
}
