//! Wire-path selection: structured in-memory packets vs encoded bytes.

use std::sync::Once;

/// Which payload representation the transports put on simulated links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Hand the typed `QuicPacket`/`TcpSegment` to the peer by value,
    /// charging analytic `encoded_len()` sizes (default).
    Structured,
    /// Serialize to `Bytes` and reparse on receipt
    /// (`LONGLOOK_WIRE=encoded`), the reference path.
    Encoded,
}

impl WireMode {
    /// Resolve from the `LONGLOOK_WIRE` environment variable.
    ///
    /// Read on every call (not cached) so differential tests and benches
    /// can flip the variable between connection constructions in one
    /// process — mirroring `LONGLOOK_SCHED`.
    pub fn from_env() -> WireMode {
        match std::env::var("LONGLOOK_WIRE") {
            Ok(v) if v.eq_ignore_ascii_case("encoded") => WireMode::Encoded,
            Ok(v) if v.eq_ignore_ascii_case("structured") || v.is_empty() => WireMode::Structured,
            Ok(v) => {
                static WARN: Once = Once::new();
                WARN.call_once(|| {
                    eprintln!(
                        "warning: unrecognized LONGLOOK_WIRE={v:?} (expected \
                         \"structured\" or \"encoded\"); using structured"
                    );
                });
                WireMode::Structured
            }
            Err(_) => WireMode::Structured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test flips the env var through every case: `LONGLOOK_WIRE` is
    /// process-global, so separate tests would race.
    #[test]
    fn from_env_resolves_all_spellings() {
        let saved = std::env::var("LONGLOOK_WIRE").ok();
        std::env::remove_var("LONGLOOK_WIRE");
        assert_eq!(WireMode::from_env(), WireMode::Structured);
        for (v, want) in [
            ("structured", WireMode::Structured),
            ("STRUCTURED", WireMode::Structured),
            ("", WireMode::Structured),
            ("encoded", WireMode::Encoded),
            ("Encoded", WireMode::Encoded),
            ("junk-value", WireMode::Structured), // warns once, falls back
        ] {
            std::env::set_var("LONGLOOK_WIRE", v);
            assert_eq!(WireMode::from_env(), want, "LONGLOOK_WIRE={v:?}");
        }
        match saved {
            Some(v) => std::env::set_var("LONGLOOK_WIRE", v),
            None => std::env::remove_var("LONGLOOK_WIRE"),
        }
    }
}
