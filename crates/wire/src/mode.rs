//! Runtime path selection knobs: structured vs encoded payloads
//! (`LONGLOOK_WIRE`) and batched vs per-event hot paths (`LONGLOOK_BATCH`),
//! plus the shared warn-once environment-knob parser every `LONGLOOK_*`
//! variable funnels through.

use std::sync::Once;

/// Read the environment knob `var` and parse it with `parse`.
///
/// Returns `None` when the variable is unset, `Some(value)` when `parse`
/// accepts it, and `None` with a one-time stderr warning (keyed on
/// `warned`, so each knob warns independently) when it does not. All the
/// `LONGLOOK_*` knobs — `LONGLOOK_WIRE`, `LONGLOOK_BATCH`,
/// `LONGLOOK_SCHED`, `LONGLOOK_JOBS`, `LONGLOOK_CHUNK`,
/// `LONGLOOK_FLEET_N` — resolve through this helper, so a misconfigured
/// CI run surfaces the same way for every knob instead of silently
/// falling back.
///
/// The variable is re-read on every call (never cached) so differential
/// tests and benches can flip knobs between constructions in one process.
pub fn env_knob<T>(
    var: &str,
    expected: &str,
    fallback: &str,
    warned: &'static Once,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Option<T> {
    let v = std::env::var(var).ok()?;
    match parse(&v) {
        Some(t) => Some(t),
        None => {
            warned.call_once(|| {
                eprintln!(
                    "warning: unrecognized {var}={v:?} (expected {expected}); using {fallback}"
                );
            });
            None
        }
    }
}

/// Which payload representation the transports put on simulated links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Hand the typed `QuicPacket`/`TcpSegment` to the peer by value,
    /// charging analytic `encoded_len()` sizes (default).
    Structured,
    /// Serialize to `Bytes` and reparse on receipt
    /// (`LONGLOOK_WIRE=encoded`), the reference path.
    Encoded,
}

impl WireMode {
    /// Resolve from the `LONGLOOK_WIRE` environment variable.
    ///
    /// Read on every call (not cached) so differential tests and benches
    /// can flip the variable between connection constructions in one
    /// process — mirroring `LONGLOOK_SCHED`.
    pub fn from_env() -> WireMode {
        static WARN: Once = Once::new();
        env_knob(
            "LONGLOOK_WIRE",
            "\"structured\" or \"encoded\"",
            "structured",
            &WARN,
            |v| {
                if v.eq_ignore_ascii_case("encoded") {
                    Some(WireMode::Encoded)
                } else if v.eq_ignore_ascii_case("structured") || v.is_empty() {
                    Some(WireMode::Structured)
                } else {
                    None
                }
            },
        )
        .unwrap_or(WireMode::Structured)
    }
}

/// Whether the transport hot paths run batched (flight-granular ack
/// bookkeeping, burst delivery, amortized timer re-arming) or strictly
/// per-event.
///
/// The two paths are pinned bit-identical by the `batch_differential`
/// referee suite; `Off` is the reference path kept as an escape hatch
/// while both coexist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// Batched hot path (default): same observable behavior, less
    /// per-event work.
    On,
    /// Per-event reference path (`LONGLOOK_BATCH=off`).
    Off,
}

impl BatchMode {
    /// Resolve from the `LONGLOOK_BATCH` environment variable.
    ///
    /// Read on every call (not cached) so differential tests and benches
    /// can flip the variable between runs in one process — mirroring
    /// `LONGLOOK_WIRE` and `LONGLOOK_SCHED`.
    pub fn from_env() -> BatchMode {
        static WARN: Once = Once::new();
        env_knob("LONGLOOK_BATCH", "\"on\" or \"off\"", "on", &WARN, |v| {
            if v.eq_ignore_ascii_case("off") {
                Some(BatchMode::Off)
            } else if v.eq_ignore_ascii_case("on") || v.is_empty() {
                Some(BatchMode::On)
            } else {
                None
            }
        })
        .unwrap_or(BatchMode::On)
    }

    /// True when the batched path is selected.
    pub fn is_on(self) -> bool {
        self == BatchMode::On
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test flips the env var through every case: `LONGLOOK_WIRE` is
    /// process-global, so separate tests would race.
    #[test]
    fn from_env_resolves_all_spellings() {
        let saved = std::env::var("LONGLOOK_WIRE").ok();
        std::env::remove_var("LONGLOOK_WIRE");
        assert_eq!(WireMode::from_env(), WireMode::Structured);
        for (v, want) in [
            ("structured", WireMode::Structured),
            ("STRUCTURED", WireMode::Structured),
            ("", WireMode::Structured),
            ("encoded", WireMode::Encoded),
            ("Encoded", WireMode::Encoded),
            ("junk-value", WireMode::Structured), // warns once, falls back
        ] {
            std::env::set_var("LONGLOOK_WIRE", v);
            assert_eq!(WireMode::from_env(), want, "LONGLOOK_WIRE={v:?}");
        }
        match saved {
            Some(v) => std::env::set_var("LONGLOOK_WIRE", v),
            None => std::env::remove_var("LONGLOOK_WIRE"),
        }
    }

    /// The shared knob parser: unset → `None`, parsable → `Some`,
    /// junk → `None` (after a one-time warning keyed on the caller's
    /// `Once`). Single test because the env var is process-global.
    #[test]
    fn env_knob_resolves_unset_parsed_and_junk() {
        static WARN: Once = Once::new();
        const VAR: &str = "LONGLOOK_TEST_KNOB";
        let saved = std::env::var(VAR).ok();
        std::env::remove_var(VAR);
        let parse = |v: &str| v.trim().parse::<usize>().ok();
        assert_eq!(env_knob(VAR, "an integer", "default", &WARN, parse), None);
        std::env::set_var(VAR, "17");
        assert_eq!(
            env_knob(VAR, "an integer", "default", &WARN, parse),
            Some(17)
        );
        std::env::set_var(VAR, "junk-value");
        assert_eq!(env_knob(VAR, "an integer", "default", &WARN, parse), None);
        match saved {
            Some(v) => std::env::set_var(VAR, v),
            None => std::env::remove_var(VAR),
        }
    }

    /// Same single-test discipline for `LONGLOOK_BATCH`.
    #[test]
    fn batch_from_env_resolves_all_spellings() {
        let saved = std::env::var("LONGLOOK_BATCH").ok();
        std::env::remove_var("LONGLOOK_BATCH");
        assert_eq!(BatchMode::from_env(), BatchMode::On);
        assert!(BatchMode::On.is_on());
        assert!(!BatchMode::Off.is_on());
        for (v, want) in [
            ("on", BatchMode::On),
            ("ON", BatchMode::On),
            ("", BatchMode::On),
            ("off", BatchMode::Off),
            ("Off", BatchMode::Off),
            ("junk-value", BatchMode::On), // warns once, falls back
        ] {
            std::env::set_var("LONGLOOK_BATCH", v);
            assert_eq!(BatchMode::from_env(), want, "LONGLOOK_BATCH={v:?}");
        }
        match saved {
            Some(v) => std::env::set_var("LONGLOOK_BATCH", v),
            None => std::env::remove_var("LONGLOOK_BATCH"),
        }
    }
}
