//! Recycled payload buffers for the encoded packet path.
//!
//! Every encoded packet used to allocate a fresh `BytesMut::with_capacity(64)`
//! and drop it (via `Bytes`) when the packet was consumed — tens of
//! allocations per simulated round trip, multiplied by thousands of sweep
//! cells. [`PayloadPool`] closes the loop: encoders
//! [`take`](PayloadPool::take) a recycled buffer, freeze it into `Bytes`
//! (zero-copy — the shim backs `Bytes` with `Arc<Vec<u8>>`), and decoders
//! hand the spent payload back with [`reclaim`](PayloadPool::reclaim), which
//! recovers the allocation whenever the `Bytes` is the sole owner of its
//! backing.
//!
//! The pool is deliberately dumb: a bounded LIFO of `Vec<u8>`s. No
//! synchronization (each connection owns its pool, mirroring how each
//! experiment cell owns its world) and no effect on simulation semantics —
//! buffer identity never feeds timing, RNG, or wire contents, so pooling is
//! invisible to determinism. On the structured path
//! ([`WireMode::Structured`](crate::WireMode)) no bytes are produced at all
//! and the pool simply idles.

use bytes::{Bytes, BytesMut};

/// Default bound on pooled buffers; beyond this, reclaimed allocations are
/// simply dropped. A connection has at most a congestion window of packets
/// in flight, and each in-flight packet holds its buffer, so a small pool
/// covers the steady state.
const DEFAULT_CAP: usize = 64;

/// Minimum capacity of a buffer handed out by [`PayloadPool::take`];
/// matches the old `BytesMut::with_capacity(64)` call sites.
const MIN_BUF: usize = 64;

/// A bounded free list of packet payload buffers.
#[derive(Debug, Default)]
pub struct PayloadPool {
    free: Vec<Vec<u8>>,
    cap: usize,
    /// Buffers handed out.
    taken: u64,
    /// `take` calls served from the free list (vs. fresh allocations).
    recycled: u64,
    /// Successful reclaims.
    reclaimed: u64,
}

impl PayloadPool {
    /// An empty pool with the default bound.
    pub fn new() -> Self {
        PayloadPool::with_cap(DEFAULT_CAP)
    }

    /// An empty pool holding at most `cap` recycled buffers.
    pub fn with_cap(cap: usize) -> Self {
        PayloadPool {
            free: Vec::new(),
            cap,
            taken: 0,
            recycled: 0,
            reclaimed: 0,
        }
    }

    /// A cleared buffer ready for encoding, recycled when possible.
    pub fn take(&mut self) -> BytesMut {
        self.taken += 1;
        match self.free.pop() {
            Some(mut v) => {
                self.recycled += 1;
                v.clear();
                BytesMut::from(v)
            }
            None => BytesMut::with_capacity(MIN_BUF),
        }
    }

    /// Return a spent payload's allocation to the pool. Succeeds (returns
    /// `true`) only when `b` is the sole owner of its backing buffer;
    /// shared payloads are just dropped, which is always safe.
    pub fn reclaim(&mut self, b: Bytes) -> bool {
        if self.free.len() >= self.cap {
            return false;
        }
        match b.try_into_vec() {
            Ok(v) => {
                // Capacity-less vectors (e.g. from `Bytes::new()` windows)
                // aren't worth parking.
                if v.capacity() == 0 {
                    return false;
                }
                self.reclaimed += 1;
                self.free.push(v);
                true
            }
            Err(_) => false,
        }
    }

    /// Buffers currently parked in the pool.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// `(taken, recycled, reclaimed)` counters since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.taken, self.recycled, self.reclaimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    #[test]
    fn take_encode_reclaim_recycles_allocation() {
        let mut pool = PayloadPool::new();
        let mut buf = pool.take();
        buf.put_u64(0xFEED);
        let payload = buf.freeze();
        assert!(pool.reclaim(payload));
        assert_eq!(pool.available(), 1);
        let again = pool.take();
        assert!(again.is_empty());
        assert!(again.capacity() >= 8, "recycled allocation kept capacity");
        let (taken, recycled, reclaimed) = pool.stats();
        assert_eq!((taken, recycled, reclaimed), (2, 1, 1));
    }

    #[test]
    fn shared_payload_is_not_reclaimed() {
        let mut pool = PayloadPool::new();
        let payload = pool.take().freeze();
        let held = payload.clone();
        assert!(!pool.reclaim(payload));
        assert_eq!(pool.available(), 0);
        drop(held);
    }

    #[test]
    fn pool_respects_cap() {
        let mut pool = PayloadPool::with_cap(2);
        for _ in 0..4 {
            let b = Bytes::from(vec![1u8, 2, 3]);
            pool.reclaim(b);
        }
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn empty_bytes_are_ignored() {
        let mut pool = PayloadPool::new();
        assert!(!pool.reclaim(Bytes::new()));
        assert_eq!(pool.available(), 0);
    }
}
