//! TCP segment wire format (with SACK/DSACK options) plus the HTTP/2
//! record descriptors that ride alongside synthetic payload.
//!
//! As elsewhere in the testbed, bulk payload is synthetic: a segment
//! carries `payload_len` accounting plus the *descriptors* of any HTTP/2
//! records that begin inside its sequence range, so the receiver can
//! reconstruct the multiplexed record stream exactly as a real h2 parser
//! reading the in-order byte stream would — including head-of-line
//! blocking, because descriptors are only consumed once the byte stream is
//! contiguous up to them.
//!
//! [`TcpSegment::encoded_len`] is the allocation-free analytic size of
//! [`TcpSegment::encode`]'s output, proptest-pinned to `encode().len()`;
//! the structured fast path uses it so links are charged byte-identical
//! sizes without serializing.

use crate::pool::PayloadPool;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// TCP flag bits.
pub mod flags {
    /// Connection-open request.
    pub const SYN: u8 = 0x01;
    /// Acknowledgement field is valid.
    pub const ACK: u8 = 0x02;
    /// Sender is done.
    pub const FIN: u8 = 0x04;
}

/// Most SACK blocks one encoded segment can carry (u8 count field).
pub const MAX_SACKS: usize = 255;

/// Most record descriptors one encoded segment can carry (u16 count
/// field). Unreachable in practice: records are ≥ 9 stream bytes each, so
/// an MSS-sized segment bounds the count far below this.
pub const MAX_RECORDS: usize = 65535;

/// Descriptor of an HTTP/2 record that begins inside a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordDesc {
    /// Absolute stream-byte offset where the record (its 9-byte header)
    /// begins.
    pub offset: u64,
    /// HTTP/2 stream id.
    pub stream: u32,
    /// Record payload length (excluding the 9-byte header).
    pub len: u32,
    /// END_STREAM flag.
    pub fin: bool,
}

/// A TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// First sequence (stream byte) number carried.
    pub seq: u64,
    /// Cumulative ack: next expected sequence number.
    pub ack: u64,
    /// Flag bits.
    pub flags: u8,
    /// Receive window in bytes.
    pub window: u64,
    /// Synthetic payload bytes carried.
    pub payload_len: u32,
    /// SACK blocks `[start, end)`, most recent first (max 3, or 4 with a
    /// leading DSACK block).
    pub sacks: Vec<(u64, u64)>,
    /// Whether the first SACK block reports a duplicate (DSACK, RFC 2883).
    pub dsack: bool,
    /// HTTP/2 records starting inside `[seq, seq + payload_len)`.
    pub records: Vec<RecordDesc>,
}

impl TcpSegment {
    /// A bare control segment (SYN/ACK/FIN carrying no payload).
    pub fn control(seq: u64, ack: u64, flags: u8, window: u64) -> Self {
        TcpSegment {
            seq,
            ack,
            flags,
            window,
            payload_len: 0,
            sacks: Vec::new(),
            dsack: false,
            records: Vec::new(),
        }
    }

    /// Encode control bytes (synthetic payload not materialized).
    pub fn encode(&self) -> Bytes {
        self.encode_into(BytesMut::with_capacity(64))
    }

    /// Encode using a buffer recycled from `pool` (the encoded hot path;
    /// see [`PayloadPool`]). Wire bytes are identical to
    /// [`TcpSegment::encode`].
    pub fn encode_with(&self, pool: &mut PayloadPool) -> Bytes {
        self.encode_into(pool.take())
    }

    fn encode_into(&self, mut buf: BytesMut) -> Bytes {
        buf.put_u64(self.seq);
        buf.put_u64(self.ack);
        buf.put_u8(self.flags);
        buf.put_u64(self.window);
        buf.put_u32(self.payload_len);
        buf.put_u8(u8::from(self.dsack));
        buf.put_u8(self.sacks.len().min(MAX_SACKS) as u8);
        for &(s, e) in self.sacks.iter().take(MAX_SACKS) {
            buf.put_u64(s);
            buf.put_u64(e);
        }
        buf.put_u16(self.records.len().min(MAX_RECORDS) as u16);
        for r in self.records.iter().take(MAX_RECORDS) {
            buf.put_u64(r.offset);
            buf.put_u32(r.stream);
            buf.put_u32(r.len);
            buf.put_u8(u8::from(r.fin));
        }
        buf.freeze()
    }

    /// Decode control bytes (`Bytes` by value or a `&[u8]` borrow).
    pub fn decode(mut b: impl Buf) -> Result<TcpSegment, TcpWireError> {
        if b.remaining() < 31 {
            return Err(TcpWireError::Truncated);
        }
        let seq = b.get_u64();
        let ack = b.get_u64();
        let flags = b.get_u8();
        let window = b.get_u64();
        let payload_len = b.get_u32();
        let dsack = b.get_u8() != 0;
        let n_sacks = b.get_u8() as usize;
        if b.remaining() < n_sacks * 16 + 2 {
            return Err(TcpWireError::Truncated);
        }
        let mut sacks = Vec::with_capacity(n_sacks);
        for _ in 0..n_sacks {
            let s = b.get_u64();
            let e = b.get_u64();
            if s >= e {
                return Err(TcpWireError::Malformed("sack block start >= end"));
            }
            sacks.push((s, e));
        }
        let n_recs = b.get_u16() as usize;
        if b.remaining() < n_recs * 17 {
            return Err(TcpWireError::Truncated);
        }
        let mut records = Vec::with_capacity(n_recs);
        for _ in 0..n_recs {
            records.push(RecordDesc {
                offset: b.get_u64(),
                stream: b.get_u32(),
                len: b.get_u32(),
                fin: b.get_u8() != 0,
            });
        }
        Ok(TcpSegment {
            seq,
            ack,
            flags,
            window,
            payload_len,
            sacks,
            dsack,
            records,
        })
    }

    /// Exact number of control bytes [`TcpSegment::encode`] produces,
    /// computed without allocating: 31 fixed header bytes + 16 per SACK
    /// block + 2 record-count bytes + 17 per record descriptor.
    pub fn encoded_len(&self) -> u32 {
        31 + 16 * self.sacks.len().min(MAX_SACKS) as u32
            + 2
            + 17 * self.records.len().min(MAX_RECORDS) as u32
    }

    /// Wire size including synthetic payload and TCP option estimates
    /// (each SACK block costs 8 bytes of real option space).
    pub fn wire_size_payload(&self) -> u32 {
        self.payload_len + 8 * self.sacks.len() as u32
    }

    /// Whether this is a pure ack (no payload, no SYN/FIN).
    pub fn is_bare_ack(&self) -> bool {
        self.payload_len == 0 && self.flags & (flags::SYN | flags::FIN) == 0
    }
}

/// TCP wire decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpWireError {
    /// Out of bytes.
    Truncated,
    /// Structurally invalid.
    Malformed(&'static str),
}

impl std::fmt::Display for TcpWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpWireError::Truncated => write!(f, "truncated segment"),
            TcpWireError::Malformed(w) => write!(f, "malformed {w}"),
        }
    }
}

impl std::error::Error for TcpWireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_segment_roundtrip() {
        let syn = TcpSegment::control(0, 0, flags::SYN, 65535);
        let dec = TcpSegment::decode(syn.encode()).unwrap();
        assert_eq!(dec, syn);
        assert!(!syn.is_bare_ack());
    }

    #[test]
    fn data_segment_roundtrip() {
        let seg = TcpSegment {
            seq: 1_000_000,
            ack: 777,
            flags: flags::ACK,
            window: 6 << 20,
            payload_len: 1400,
            sacks: vec![(2000, 3400), (5000, 6400)],
            dsack: false,
            records: vec![
                RecordDesc {
                    offset: 1_000_100,
                    stream: 3,
                    len: 5000,
                    fin: false,
                },
                RecordDesc {
                    offset: 1_001_000,
                    stream: 5,
                    len: 100,
                    fin: true,
                },
            ],
        };
        assert_eq!(TcpSegment::decode(seg.encode()).unwrap(), seg);
        assert_eq!(seg.encoded_len() as usize, seg.encode().len());
    }

    #[test]
    fn dsack_flag_roundtrip() {
        let mut seg = TcpSegment::control(0, 100, flags::ACK, 1000);
        seg.sacks = vec![(50, 100)];
        seg.dsack = true;
        let dec = TcpSegment::decode(seg.encode()).unwrap();
        assert!(dec.dsack);
        assert_eq!(dec.sacks, vec![(50, 100)]);
    }

    #[test]
    fn bare_ack_detection() {
        let ack = TcpSegment::control(10, 20, flags::ACK, 1000);
        assert!(ack.is_bare_ack());
        let fin = TcpSegment::control(10, 20, flags::ACK | flags::FIN, 1000);
        assert!(!fin.is_bare_ack());
    }

    #[test]
    fn sack_blocks_add_wire_overhead() {
        let mut seg = TcpSegment::control(0, 0, flags::ACK, 1000);
        assert_eq!(seg.wire_size_payload(), 0);
        seg.sacks = vec![(0, 10), (20, 30)];
        assert_eq!(seg.wire_size_payload(), 16);
    }

    #[test]
    fn encoded_len_matches_encode() {
        let bare = TcpSegment::control(u64::MAX, u64::MAX, flags::ACK, u64::MAX);
        assert_eq!(bare.encoded_len() as usize, bare.encode().len());
        let seg = TcpSegment {
            seq: u64::MAX,
            ack: 0,
            flags: flags::ACK | flags::FIN,
            window: u64::MAX,
            payload_len: u32::MAX,
            sacks: vec![(0, 1), (2, 3), (4, 5), (6, 7)],
            dsack: true,
            records: vec![RecordDesc {
                offset: u64::MAX,
                stream: u32::MAX,
                len: u32::MAX,
                fin: true,
            }],
        };
        assert_eq!(seg.encoded_len() as usize, seg.encode().len());
    }

    #[test]
    fn decode_borrows_a_slice() {
        let seg = TcpSegment::control(5, 6, flags::ACK, 100);
        let enc = seg.encode();
        assert_eq!(TcpSegment::decode(&enc[..]).expect("decode"), seg);
        assert_eq!(enc.len(), seg.encoded_len() as usize);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            TcpSegment::decode(Bytes::from_static(b"\x00\x01")),
            Err(TcpWireError::Truncated)
        );
        let seg = TcpSegment {
            sacks: vec![(1, 2)],
            ..TcpSegment::control(0, 0, flags::ACK, 10)
        };
        let enc = seg.encode();
        let cut = enc.slice(0..enc.len() - 1);
        assert_eq!(TcpSegment::decode(cut), Err(TcpWireError::Truncated));
    }

    #[test]
    fn invalid_sack_block_rejected() {
        let seg = TcpSegment {
            sacks: vec![(5, 5)],
            ..TcpSegment::control(0, 0, flags::ACK, 10)
        };
        assert_eq!(
            TcpSegment::decode(seg.encode()),
            Err(TcpWireError::Malformed("sack block start >= end"))
        );
    }
}
