//! Protocol wire formats, shared below the simulator.
//!
//! This crate sits at the bottom of the workspace (only the `bytes` shim
//! under it) so that *both* the simulator and the transport crates can name
//! the typed packet structures: `sim::packet::Payload` carries a
//! [`quic::QuicPacket`] or [`tcp::TcpSegment`] by value on the structured
//! fast path, while the QUIC/TCP connection crates re-export these types as
//! their `wire` modules.
//!
//! Two invariants everything else leans on:
//!
//! 1. **Analytic sizing**: every frame/header/segment type has an
//!    `encoded_len()` computed without allocating, proptest-pinned to
//!    `encode().len()`. The structured path charges links byte-identical
//!    wire sizes without ever serializing.
//! 2. **Canonical encoding**: `decode(encode(x)) == x` for every value the
//!    transports emit, so handing the typed value to the peer (structured)
//!    is observationally identical to encode→decode (encoded). The
//!    `wire_differential` referee suite enforces this end to end.

pub mod mode;
pub mod pool;
pub mod quic;
pub mod tcp;
pub mod trace;

pub use mode::{env_knob, BatchMode, WireMode};
pub use pool::PayloadPool;
pub use trace::{TraceEvent, TraceMode, TraceRecord, Tracer};
