//! gQUIC-like wire format: packet header and frames.
//!
//! The format follows the shape of the 2016-era gQUIC wire layout the
//! paper studied (connection id + monotonic packet number header, then a
//! sequence of frames), simplified where crypto would be: handshake frames
//! carry a kind tag and a synthetic padding length instead of real crypto
//! handshake messages.
//!
//! Bulk stream data is *synthetic*: a [`Frame::Stream`] encodes its
//! metadata (id, offset, length, fin) but not `length` literal bytes — the
//! simulation charges the link for them via the packet's wire size. This
//! keeps a 210 MB experiment from materializing 210 MB while the encoded
//! control structure stays real and round-trippable.
//!
//! Sizing comes in two flavors: [`Frame::encoded_len`] is exactly the
//! number of control bytes [`Frame::encode`] would produce (proptest-pinned
//! to `encode().len()`), and [`Frame::wire_size`] adds the synthetic
//! payload bytes the link is charged for. The structured fast path uses
//! these analytic sizes and never serializes.

use crate::pool::PayloadPool;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Fixed public header size: 1 flags byte + 8 connection id + 8 packet
/// number.
pub const HEADER_SIZE: u32 = 17;

/// Maximum QUIC packet payload budget (frames + synthetic data), chosen so
/// header + payload + UDP/IP framing lands near a 1400-byte wire packet.
pub const MAX_PACKET_PAYLOAD: u32 = 1350;

/// Most ack blocks one encoded ack frame can carry (u8 count field).
/// Senders canonicalize to this cap at frame build time so the structured
/// path carries exactly what an encode→decode round trip would deliver.
pub const MAX_ACK_BLOCKS: usize = 255;

/// Handshake message kinds (crypto stream stand-ins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeKind {
    /// Client hello without server config (first contact).
    InchoateChlo,
    /// Server reject carrying the server config (enables future 0-RTT).
    Rej,
    /// Complete client hello (enables sending encrypted data now).
    FullChlo,
    /// Server hello completing the handshake.
    Shlo,
}

impl HandshakeKind {
    fn code(self) -> u8 {
        match self {
            HandshakeKind::InchoateChlo => 1,
            HandshakeKind::Rej => 2,
            HandshakeKind::FullChlo => 3,
            HandshakeKind::Shlo => 4,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            1 => HandshakeKind::InchoateChlo,
            2 => HandshakeKind::Rej,
            3 => HandshakeKind::FullChlo,
            4 => HandshakeKind::Shlo,
            _ => return None,
        })
    }
}

/// An acked packet-number range, inclusive: `[start, end]`.
pub type AckBlock = (u64, u64);

/// QUIC frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Stream data (synthetic payload of `len` bytes).
    Stream {
        /// Stream id.
        id: u32,
        /// Byte offset of this chunk.
        offset: u64,
        /// Chunk length (bytes charged on the wire, not carried).
        len: u32,
        /// Whether this chunk ends the stream.
        fin: bool,
    },
    /// Acknowledgement.
    Ack {
        /// Largest packet number acked.
        largest: u64,
        /// Microseconds between receiving `largest` and sending this ack.
        ack_delay_us: u64,
        /// Acked ranges, descending, inclusive. Must cover `largest`.
        blocks: Vec<AckBlock>,
    },
    /// Flow-control credit. `stream 0` = connection level.
    WindowUpdate {
        /// Stream id (0 = connection).
        stream: u32,
        /// New maximum absolute byte offset the peer may send.
        max_offset: u64,
    },
    /// Handshake message with synthetic padding.
    Handshake {
        /// Message kind.
        kind: HandshakeKind,
        /// Synthetic message + padding size in bytes.
        pad: u16,
    },
    /// Keep-alive / probe.
    Ping,
    /// Flow-control blocked notification (diagnostics).
    Blocked {
        /// Blocked stream (0 = connection).
        stream: u32,
    },
    /// Connection close.
    Close {
        /// Application error code.
        code: u32,
    },
}

impl Frame {
    /// Exact number of control bytes [`Frame::encode`] produces for this
    /// frame, computed without allocating. Pinned to `encode().len()` by
    /// proptest; the structured path relies on this equality for
    /// byte-identical link charging.
    pub fn encoded_len(&self) -> u32 {
        match self {
            Frame::Stream { .. } => 1 + 4 + 8 + 4 + 1,
            Frame::Ack { blocks, .. } => {
                1 + 8 + 8 + 1 + blocks.len().min(MAX_ACK_BLOCKS) as u32 * 16
            }
            Frame::WindowUpdate { .. } => 1 + 4 + 8,
            Frame::Handshake { .. } => 1 + 1 + 2,
            Frame::Ping => 1,
            Frame::Blocked { .. } => 1 + 4,
            Frame::Close { .. } => 1 + 4,
        }
    }

    /// Bytes this frame occupies on the wire: the encoded control bytes
    /// plus synthetic payload (stream data, handshake padding) the link is
    /// charged for but which is never materialized.
    pub fn wire_size(&self) -> u32 {
        let synthetic = match self {
            Frame::Stream { len, .. } => *len,
            Frame::Handshake { pad, .. } => *pad as u32,
            _ => 0,
        };
        self.encoded_len() + synthetic
    }

    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Frame::Stream {
                id,
                offset,
                len,
                fin,
            } => {
                buf.put_u8(0x01);
                buf.put_u32(*id);
                buf.put_u64(*offset);
                buf.put_u32(*len);
                buf.put_u8(u8::from(*fin));
            }
            Frame::Ack {
                largest,
                ack_delay_us,
                blocks,
            } => {
                buf.put_u8(0x02);
                buf.put_u64(*largest);
                buf.put_u64(*ack_delay_us);
                buf.put_u8(blocks.len().min(MAX_ACK_BLOCKS) as u8);
                for &(start, end) in blocks.iter().take(MAX_ACK_BLOCKS) {
                    buf.put_u64(start);
                    buf.put_u64(end);
                }
            }
            Frame::WindowUpdate { stream, max_offset } => {
                buf.put_u8(0x03);
                buf.put_u32(*stream);
                buf.put_u64(*max_offset);
            }
            Frame::Handshake { kind, pad } => {
                buf.put_u8(0x04);
                buf.put_u8(kind.code());
                buf.put_u16(*pad);
            }
            Frame::Ping => buf.put_u8(0x05),
            Frame::Blocked { stream } => {
                buf.put_u8(0x06);
                buf.put_u32(*stream);
            }
            Frame::Close { code } => {
                buf.put_u8(0x07);
                buf.put_u32(*code);
            }
        }
    }

    fn decode(buf: &mut impl Buf) -> Result<Frame, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::Truncated);
        }
        let tag = buf.get_u8();
        match tag {
            0x01 => {
                if buf.remaining() < 17 {
                    return Err(WireError::Truncated);
                }
                let id = buf.get_u32();
                let offset = buf.get_u64();
                let len = buf.get_u32();
                let fin = buf.get_u8() != 0;
                Ok(Frame::Stream {
                    id,
                    offset,
                    len,
                    fin,
                })
            }
            0x02 => {
                if buf.remaining() < 17 {
                    return Err(WireError::Truncated);
                }
                let largest = buf.get_u64();
                let ack_delay_us = buf.get_u64();
                let n = buf.get_u8() as usize;
                if buf.remaining() < n * 16 {
                    return Err(WireError::Truncated);
                }
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    let start = buf.get_u64();
                    let end = buf.get_u64();
                    if start > end {
                        return Err(WireError::Malformed("ack block start > end"));
                    }
                    blocks.push((start, end));
                }
                Ok(Frame::Ack {
                    largest,
                    ack_delay_us,
                    blocks,
                })
            }
            0x03 => {
                if buf.remaining() < 12 {
                    return Err(WireError::Truncated);
                }
                Ok(Frame::WindowUpdate {
                    stream: buf.get_u32(),
                    max_offset: buf.get_u64(),
                })
            }
            0x04 => {
                if buf.remaining() < 3 {
                    return Err(WireError::Truncated);
                }
                let kind = HandshakeKind::from_code(buf.get_u8())
                    .ok_or(WireError::Malformed("handshake kind"))?;
                let pad = buf.get_u16();
                Ok(Frame::Handshake { kind, pad })
            }
            0x05 => Ok(Frame::Ping),
            0x06 => {
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated);
                }
                Ok(Frame::Blocked {
                    stream: buf.get_u32(),
                })
            }
            0x07 => {
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated);
                }
                Ok(Frame::Close {
                    code: buf.get_u32(),
                })
            }
            _ => Err(WireError::UnknownFrame(tag)),
        }
    }
}

/// A decoded QUIC packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuicPacket {
    /// Connection id.
    pub conn_id: u64,
    /// Monotonic packet number (never reused — the no-ambiguity property).
    pub pn: u64,
    /// Frames in order.
    pub frames: Vec<Frame>,
}

/// Wire decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes mid-structure.
    Truncated,
    /// Unknown frame tag.
    UnknownFrame(u8),
    /// Structurally invalid field.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::UnknownFrame(t) => write!(f, "unknown frame tag {t:#x}"),
            WireError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl QuicPacket {
    /// Encode to control bytes. Synthetic stream payload is *not*
    /// materialized; use [`QuicPacket::wire_size`] for link accounting.
    pub fn encode(&self) -> Bytes {
        self.encode_into(BytesMut::with_capacity(64))
    }

    /// Encode using a buffer recycled from `pool` (the encoded hot path;
    /// see [`PayloadPool`]). Wire bytes are identical to
    /// [`QuicPacket::encode`].
    pub fn encode_with(&self, pool: &mut PayloadPool) -> Bytes {
        self.encode_into(pool.take())
    }

    fn encode_into(&self, mut buf: BytesMut) -> Bytes {
        buf.put_u8(0x80); // flags: long-header-style marker
        buf.put_u64(self.conn_id);
        buf.put_u64(self.pn);
        for f in &self.frames {
            f.encode(&mut buf);
        }
        buf.freeze()
    }

    /// Decode from control bytes (`Bytes` by value or a `&[u8]` borrow).
    pub fn decode(mut bytes: impl Buf) -> Result<QuicPacket, WireError> {
        if bytes.remaining() < HEADER_SIZE as usize {
            return Err(WireError::Truncated);
        }
        let flags = bytes.get_u8();
        if flags != 0x80 {
            return Err(WireError::Malformed("flags"));
        }
        let conn_id = bytes.get_u64();
        let pn = bytes.get_u64();
        let mut frames = Vec::new();
        while bytes.has_remaining() {
            frames.push(Frame::decode(&mut bytes)?);
        }
        Ok(QuicPacket {
            conn_id,
            pn,
            frames,
        })
    }

    /// Exact number of control bytes [`QuicPacket::encode`] produces,
    /// computed without allocating.
    pub fn encoded_len(&self) -> u32 {
        HEADER_SIZE + self.frames.iter().map(Frame::encoded_len).sum::<u32>()
    }

    /// Total bytes on the wire excluding UDP/IP framing: header + frames
    /// (+ synthetic payload).
    pub fn wire_size(&self) -> u32 {
        HEADER_SIZE + self.frames.iter().map(Frame::wire_size).sum::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: &QuicPacket) -> QuicPacket {
        QuicPacket::decode(p.encode()).expect("roundtrip")
    }

    #[test]
    fn stream_frame_roundtrip() {
        let p = QuicPacket {
            conn_id: 0xDEADBEEF,
            pn: 42,
            frames: vec![Frame::Stream {
                id: 3,
                offset: 1_000_000,
                len: 1300,
                fin: true,
            }],
        };
        assert_eq!(roundtrip(&p), p);
    }

    #[test]
    fn ack_frame_roundtrip_with_blocks() {
        let p = QuicPacket {
            conn_id: 7,
            pn: 100,
            frames: vec![Frame::Ack {
                largest: 99,
                ack_delay_us: 1250,
                blocks: vec![(90, 99), (50, 80), (1, 10)],
            }],
        };
        assert_eq!(roundtrip(&p), p);
    }

    #[test]
    fn multi_frame_packet_roundtrip() {
        let p = QuicPacket {
            conn_id: 1,
            pn: 7,
            frames: vec![
                Frame::Ack {
                    largest: 3,
                    ack_delay_us: 0,
                    blocks: vec![(0, 3)],
                },
                Frame::WindowUpdate {
                    stream: 0,
                    max_offset: 1 << 24,
                },
                Frame::Stream {
                    id: 5,
                    offset: 0,
                    len: 900,
                    fin: false,
                },
                Frame::Ping,
                Frame::Blocked { stream: 5 },
                Frame::Close { code: 0 },
            ],
        };
        assert_eq!(roundtrip(&p), p);
    }

    #[test]
    fn handshake_kinds_roundtrip() {
        for kind in [
            HandshakeKind::InchoateChlo,
            HandshakeKind::Rej,
            HandshakeKind::FullChlo,
            HandshakeKind::Shlo,
        ] {
            let p = QuicPacket {
                conn_id: 9,
                pn: 1,
                frames: vec![Frame::Handshake { kind, pad: 1200 }],
            };
            assert_eq!(roundtrip(&p), p);
        }
    }

    #[test]
    fn wire_size_counts_synthetic_payload() {
        let f = Frame::Stream {
            id: 1,
            offset: 0,
            len: 1000,
            fin: false,
        };
        assert_eq!(f.wire_size(), 18 + 1000);
        assert_eq!(f.encoded_len(), 18);
        let p = QuicPacket {
            conn_id: 1,
            pn: 1,
            frames: vec![f],
        };
        assert_eq!(p.wire_size(), HEADER_SIZE + 1018);
        assert_eq!(p.encoded_len(), HEADER_SIZE + 18);
        // Encoded control bytes are small even for big synthetic payloads.
        assert!(p.encode().len() < 64);
    }

    #[test]
    fn encoded_len_matches_encode() {
        let p = QuicPacket {
            conn_id: u64::MAX,
            pn: u64::MAX,
            frames: vec![
                Frame::Stream {
                    id: u32::MAX,
                    offset: u64::MAX,
                    len: u32::MAX,
                    fin: true,
                },
                Frame::Ack {
                    largest: u64::MAX,
                    ack_delay_us: u64::MAX,
                    blocks: vec![(0, u64::MAX)],
                },
                Frame::WindowUpdate {
                    stream: 0,
                    max_offset: u64::MAX,
                },
                Frame::Handshake {
                    kind: HandshakeKind::Shlo,
                    pad: u16::MAX,
                },
                Frame::Ping,
                Frame::Blocked { stream: u32::MAX },
                Frame::Close { code: u32::MAX },
            ],
        };
        assert_eq!(p.encoded_len() as usize, p.encode().len());
        for f in &p.frames {
            let mut buf = bytes::BytesMut::new();
            f.encode(&mut buf);
            assert_eq!(f.encoded_len() as usize, buf.len(), "{f:?}");
        }
    }

    #[test]
    fn ack_block_cap_applies_to_encode_and_encoded_len() {
        let f = Frame::Ack {
            largest: 1000,
            ack_delay_us: 0,
            blocks: (0..300).map(|i| (i * 2, i * 2)).collect(),
        };
        let mut buf = bytes::BytesMut::new();
        f.encode(&mut buf);
        assert_eq!(buf.len(), 18 + MAX_ACK_BLOCKS * 16);
        assert_eq!(f.encoded_len() as usize, buf.len());
        assert_eq!(f.wire_size(), f.encoded_len());
    }

    #[test]
    fn decode_borrows_a_slice() {
        let p = QuicPacket {
            conn_id: 3,
            pn: 4,
            frames: vec![Frame::Ping],
        };
        let enc = p.encode();
        // Borrow-based decode: the Bytes stays usable (and reclaimable).
        assert_eq!(QuicPacket::decode(&enc[..]).expect("decode"), p);
        assert_eq!(enc.len(), p.encoded_len() as usize);
    }

    #[test]
    fn truncated_packets_error() {
        assert_eq!(
            QuicPacket::decode(Bytes::from_static(b"\x80\x00")),
            Err(WireError::Truncated)
        );
        // Valid header, truncated frame.
        let p = QuicPacket {
            conn_id: 1,
            pn: 1,
            frames: vec![Frame::Stream {
                id: 1,
                offset: 0,
                len: 10,
                fin: false,
            }],
        };
        let enc = p.encode();
        let cut = enc.slice(0..enc.len() - 3);
        assert_eq!(QuicPacket::decode(cut), Err(WireError::Truncated));
    }

    #[test]
    fn unknown_frame_tag_errors() {
        let mut bad = BytesMut::new();
        bad.put_u8(0x80);
        bad.put_u64(1);
        bad.put_u64(1);
        bad.put_u8(0x7F);
        assert_eq!(
            QuicPacket::decode(bad.freeze()),
            Err(WireError::UnknownFrame(0x7F))
        );
    }

    #[test]
    fn invalid_ack_block_errors() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x80);
        buf.put_u64(1);
        buf.put_u64(2);
        buf.put_u8(0x02);
        buf.put_u64(9); // largest
        buf.put_u64(0); // delay
        buf.put_u8(1); // one block
        buf.put_u64(8); // start
        buf.put_u64(3); // end < start: malformed
        assert_eq!(
            QuicPacket::decode(buf.freeze()),
            Err(WireError::Malformed("ack block start > end"))
        );
    }

    #[test]
    fn bad_flags_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x01);
        buf.put_u64(1);
        buf.put_u64(1);
        assert_eq!(
            QuicPacket::decode(buf.freeze()),
            Err(WireError::Malformed("flags"))
        );
    }
}
