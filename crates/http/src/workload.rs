//! Web-page workloads: the paper's static pages of N objects x S bytes.
//!
//! "Our choice of simple pages ensures that page load time measurements
//! reflect only the efficiency of the transport protocol" (Sec 3.3) — and
//! crucially lets the paper isolate *number* of objects from *size* of
//! objects, which prior work conflated.

/// Base request size in bytes; an object's index is encoded as extra
/// request bytes (`REQUEST_BASE + index`), which is how the synthetic
/// request tells the server which catalog entry to serve.
pub const REQUEST_BASE: u64 = 200;

/// Response header bytes prepended to every object.
pub const RESPONSE_HEADER: u64 = 100;

/// A static web page: an ordered catalog of object sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageSpec {
    /// Object sizes in bytes.
    pub objects: Vec<u64>,
}

impl PageSpec {
    /// `n` objects of `size` bytes each.
    pub fn uniform(n: usize, size: u64) -> Self {
        PageSpec {
            objects: vec![size; n],
        }
    }

    /// A single object.
    pub fn single(size: u64) -> Self {
        Self::uniform(1, size)
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.iter().sum()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the page is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Request length that encodes object `index`.
    pub fn request_len(index: usize) -> u64 {
        REQUEST_BASE + index as u64
    }

    /// Decode an object index from a completed request's byte count;
    /// `None` if the request is malformed (shorter than the base).
    pub fn decode_request(request_bytes: u64) -> Option<usize> {
        request_bytes.checked_sub(REQUEST_BASE).map(|i| i as usize)
    }
}

/// Table 2 of the paper: the object-size and object-count axes.
pub mod table2 {
    /// Object sizes tested (bytes): 5KB ... 10MB.
    pub const OBJECT_SIZES: [u64; 7] = [
        5 * 1024,
        10 * 1024,
        100 * 1024,
        200 * 1024,
        500 * 1024,
        1024 * 1024,
        10 * 1024 * 1024,
    ];
    /// Object counts tested.
    pub const OBJECT_COUNTS: [usize; 6] = [1, 2, 5, 10, 100, 200];
    /// Rate limits tested (Mbps).
    pub const RATES_MBPS: [f64; 4] = [5.0, 10.0, 50.0, 100.0];
    /// Extra one-way delays tested (ms of added RTT).
    pub const EXTRA_RTTS_MS: [u64; 3] = [0, 50, 100];
    /// Random loss rates tested.
    pub const LOSS_RATES: [f64; 2] = [0.001, 0.01];
}

/// Transfer size for one fleet connection, drawn from a heavy-tailed
/// mixture over Table 2's object sizes via a unit uniform `u` in `[0, 1)`.
///
/// Fleet-scale cells need a population of transfers rather than one fixed
/// page: mostly small fetches with a long tail of large ones, which is
/// what makes tail latency interesting under shared bottlenecks. The
/// mixture is 60% small (5–10 KB), 30% medium (100–500 KB), 9% large
/// (1 MB) and 1% huge (10 MB) — all drawn from the paper's own size axis
/// so fleet results stay comparable to the 1-vs-1 grid. Deterministic:
/// the same `u` (e.g. from `hash_unit`) always yields the same size.
pub fn fleet_object_bytes(u: f64) -> u64 {
    let u = u.clamp(0.0, 1.0 - f64::EPSILON);
    if u < 0.60 {
        // Small: interpolate the 5 KB / 10 KB pair.
        if u < 0.30 {
            table2::OBJECT_SIZES[0]
        } else {
            table2::OBJECT_SIZES[1]
        }
    } else if u < 0.90 {
        // Medium: 100 / 200 / 500 KB, equal thirds.
        let band = ((u - 0.60) / 0.10) as usize;
        table2::OBJECT_SIZES[2 + band.min(2)]
    } else if u < 0.99 {
        table2::OBJECT_SIZES[5]
    } else {
        table2::OBJECT_SIZES[6]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_pages() {
        let p = PageSpec::uniform(10, 10 * 1024);
        assert_eq!(p.len(), 10);
        assert_eq!(p.total_bytes(), 100 * 1024);
        assert!(!p.is_empty());
    }

    #[test]
    fn request_encoding_roundtrip() {
        for i in [0usize, 1, 5, 199] {
            let len = PageSpec::request_len(i);
            assert_eq!(PageSpec::decode_request(len), Some(i));
        }
        assert_eq!(PageSpec::decode_request(REQUEST_BASE - 1), None);
    }

    #[test]
    fn table2_axes_match_paper() {
        assert_eq!(table2::OBJECT_SIZES.len(), 7);
        assert_eq!(table2::OBJECT_COUNTS, [1, 2, 5, 10, 100, 200]);
        assert_eq!(table2::RATES_MBPS, [5.0, 10.0, 50.0, 100.0]);
    }

    #[test]
    fn fleet_mixture_covers_table2_sizes_with_heavy_tail() {
        // Every draw must land on a Table 2 size; band boundaries hit the
        // documented proportions.
        let n = 10_000;
        let mut huge = 0;
        for i in 0..n {
            let u = i as f64 / n as f64;
            let b = fleet_object_bytes(u);
            assert!(table2::OBJECT_SIZES.contains(&b), "{b} not a Table 2 size");
            if b == 10 * 1024 * 1024 {
                huge += 1;
            }
        }
        assert_eq!(huge, n / 100, "huge tail should be 1%");
        assert_eq!(fleet_object_bytes(0.0), 5 * 1024);
        assert_eq!(fleet_object_bytes(0.995), 10 * 1024 * 1024);
        // Out-of-range inputs clamp instead of panicking.
        assert_eq!(fleet_object_bytes(1.0), 10 * 1024 * 1024);
        assert_eq!(fleet_object_bytes(-0.5), 5 * 1024);
    }
}
