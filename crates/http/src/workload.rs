//! Web-page workloads: the paper's static pages of N objects x S bytes.
//!
//! "Our choice of simple pages ensures that page load time measurements
//! reflect only the efficiency of the transport protocol" (Sec 3.3) — and
//! crucially lets the paper isolate *number* of objects from *size* of
//! objects, which prior work conflated.

/// Base request size in bytes; an object's index is encoded as extra
/// request bytes (`REQUEST_BASE + index`), which is how the synthetic
/// request tells the server which catalog entry to serve.
pub const REQUEST_BASE: u64 = 200;

/// Response header bytes prepended to every object.
pub const RESPONSE_HEADER: u64 = 100;

/// A static web page: an ordered catalog of object sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageSpec {
    /// Object sizes in bytes.
    pub objects: Vec<u64>,
}

impl PageSpec {
    /// `n` objects of `size` bytes each.
    pub fn uniform(n: usize, size: u64) -> Self {
        PageSpec {
            objects: vec![size; n],
        }
    }

    /// A single object.
    pub fn single(size: u64) -> Self {
        Self::uniform(1, size)
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.iter().sum()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the page is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Request length that encodes object `index`.
    pub fn request_len(index: usize) -> u64 {
        REQUEST_BASE + index as u64
    }

    /// Decode an object index from a completed request's byte count;
    /// `None` if the request is malformed (shorter than the base).
    pub fn decode_request(request_bytes: u64) -> Option<usize> {
        request_bytes.checked_sub(REQUEST_BASE).map(|i| i as usize)
    }
}

/// Table 2 of the paper: the object-size and object-count axes.
pub mod table2 {
    /// Object sizes tested (bytes): 5KB ... 10MB.
    pub const OBJECT_SIZES: [u64; 7] = [
        5 * 1024,
        10 * 1024,
        100 * 1024,
        200 * 1024,
        500 * 1024,
        1024 * 1024,
        10 * 1024 * 1024,
    ];
    /// Object counts tested.
    pub const OBJECT_COUNTS: [usize; 6] = [1, 2, 5, 10, 100, 200];
    /// Rate limits tested (Mbps).
    pub const RATES_MBPS: [f64; 4] = [5.0, 10.0, 50.0, 100.0];
    /// Extra one-way delays tested (ms of added RTT).
    pub const EXTRA_RTTS_MS: [u64; 3] = [0, 50, 100];
    /// Random loss rates tested.
    pub const LOSS_RATES: [f64; 2] = [0.001, 0.01];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_pages() {
        let p = PageSpec::uniform(10, 10 * 1024);
        assert_eq!(p.len(), 10);
        assert_eq!(p.total_bytes(), 100 * 1024);
        assert!(!p.is_empty());
    }

    #[test]
    fn request_encoding_roundtrip() {
        for i in [0usize, 1, 5, 199] {
            let len = PageSpec::request_len(i);
            assert_eq!(PageSpec::decode_request(len), Some(i));
        }
        assert_eq!(PageSpec::decode_request(REQUEST_BASE - 1), None);
    }

    #[test]
    fn table2_axes_match_paper() {
        assert_eq!(table2::OBJECT_SIZES.len(), 7);
        assert_eq!(table2::OBJECT_COUNTS, [1, 2, 5, 10, 100, 200]);
        assert_eq!(table2::RATES_MBPS, [5.0, 10.0, 50.0, 100.0]);
    }
}
