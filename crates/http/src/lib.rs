//! Web workloads over either transport: page fetches, bulk downloads,
//! page-load-time measurement, and the host agents that run them inside
//! the simulated testbed.

pub mod app;
pub mod host;
pub mod workload;

pub use app::{BulkClient, ClientApp, ResourceTiming, WebClient};
pub use host::{ClientHost, ProtoConfig, ServerHost, WaitModel};
pub use workload::{fleet_object_bytes, table2, PageSpec, REQUEST_BASE, RESPONSE_HEADER};

#[cfg(test)]
mod world_tests {
    //! Full-stack tests: client host <-> emulated link <-> server host.

    use crate::app::{ClientApp, WebClient};
    use crate::host::{ClientHost, ProtoConfig, ServerHost, WaitModel};
    use crate::workload::PageSpec;
    use longlook_quic::QuicConfig;
    use longlook_sim::link::LinkConfig;
    use longlook_sim::schedule::RateSchedule;
    use longlook_sim::time::{Dur, Time};
    use longlook_sim::world::World;
    use longlook_sim::{DeviceProfile, FlowId, NodeId};
    use longlook_tcp::TcpConfig;

    /// Build client+server over a shaped 36ms-RTT link; returns
    /// (world, client node, server node).
    fn build(
        proto: &ProtoConfig,
        page: PageSpec,
        zero_rtt: bool,
        rate_mbps: f64,
        loss: f64,
        seed: u64,
    ) -> (World, NodeId, NodeId) {
        let mut world = World::new(seed);
        let server_id = NodeId(1);
        let mut client = ClientHost::new(server_id, true);
        client.add(
            FlowId(1),
            proto,
            zero_rtt,
            Box::new(WebClient::new(page.clone())),
            Time::ZERO,
        );
        let c = world.add_node(Box::new(client), DeviceProfile::DESKTOP);
        let server = ServerHost::new(proto.clone(), page, seed ^ 0xABCD);
        let s = world.add_node(Box::new(server), DeviceProfile::SERVER);
        assert_eq!(s, server_id);
        let rtt = Dur::from_millis(36);
        let owd = Dur::from_millis(18);
        let cfg = LinkConfig::shaped(RateSchedule::fixed_mbps(rate_mbps), owd, rtt).with_loss(loss);
        world.connect(c, s, cfg.clone(), cfg);
        world.kick(c);
        (world, c, s)
    }

    fn run_plt(
        proto: &ProtoConfig,
        page: PageSpec,
        zero_rtt: bool,
        rate_mbps: f64,
        loss: f64,
        seed: u64,
    ) -> Dur {
        let (mut world, c, _) = build(proto, page, zero_rtt, rate_mbps, loss, seed);
        world.run_until(Time::ZERO + Dur::from_secs(120));
        let client = world.agent::<ClientHost>(c);
        let app = client.app::<WebClient>(0);
        assert!(app.done(), "page load must complete");
        app.plt().expect("finished")
    }

    fn quic() -> ProtoConfig {
        ProtoConfig::Quic(QuicConfig::default())
    }

    fn tcp() -> ProtoConfig {
        ProtoConfig::Tcp(TcpConfig::default())
    }

    #[test]
    fn quic_page_load_completes() {
        let plt = run_plt(&quic(), PageSpec::single(100 * 1024), true, 10.0, 0.0, 1);
        // 100KB at 10Mbps is ~82ms of serialization + 1 RTT: sane bounds.
        assert!(plt > Dur::from_millis(80), "plt = {plt}");
        assert!(plt < Dur::from_millis(500), "plt = {plt}");
    }

    #[test]
    fn tcp_page_load_completes() {
        let plt = run_plt(&tcp(), PageSpec::single(100 * 1024), false, 10.0, 0.0, 1);
        assert!(plt > Dur::from_millis(100), "plt = {plt}");
        assert!(plt < Dur::from_millis(800), "plt = {plt}");
    }

    #[test]
    fn zero_rtt_beats_tcp_for_small_objects() {
        // The paper's headline: 0-RTT vs 2-RTT handshake dominates small
        // transfers.
        let q = run_plt(&quic(), PageSpec::single(5 * 1024), true, 10.0, 0.0, 2);
        let t = run_plt(&tcp(), PageSpec::single(5 * 1024), false, 10.0, 0.0, 2);
        assert!(
            q.as_millis_f64() < t.as_millis_f64() * 0.6,
            "QUIC {q} vs TCP {t}"
        );
    }

    #[test]
    fn quic_one_rtt_handshake_costs_one_extra_rtt() {
        let with = run_plt(&quic(), PageSpec::single(5 * 1024), true, 10.0, 0.0, 3);
        let without = run_plt(&quic(), PageSpec::single(5 * 1024), false, 10.0, 0.0, 3);
        let diff = without.as_millis_f64() - with.as_millis_f64();
        assert!(
            (diff - 36.0).abs() < 15.0,
            "1-RTT handshake adds ~1 RTT: diff = {diff}ms"
        );
    }

    #[test]
    fn multi_object_page_fetches_everything() {
        let (mut world, c, _) = build(
            &quic(),
            PageSpec::uniform(10, 20 * 1024),
            true,
            10.0,
            0.0,
            4,
        );
        world.run_until(Time::ZERO + Dur::from_secs(60));
        let client = world.agent::<ClientHost>(c);
        let app = client.app::<WebClient>(0);
        assert!(app.done());
        for rt in app.har() {
            assert!(rt.finished.is_some(), "object {} unfinished", rt.object);
            assert_eq!(rt.bytes, 20 * 1024 + 100, "payload + response header");
        }
    }

    #[test]
    fn loss_increases_plt_but_load_completes() {
        let clean = run_plt(&quic(), PageSpec::single(1024 * 1024), true, 10.0, 0.0, 5);
        let lossy = run_plt(&quic(), PageSpec::single(1024 * 1024), true, 10.0, 0.01, 5);
        assert!(lossy > clean, "1% loss must hurt: {lossy} vs {clean}");
    }

    #[test]
    fn tcp_page_load_with_loss_completes() {
        let plt = run_plt(&tcp(), PageSpec::single(1024 * 1024), false, 10.0, 0.01, 6);
        assert!(plt < Dur::from_secs(20), "plt = {plt}");
    }

    #[test]
    fn server_wait_model_delays_response() {
        let page = PageSpec::single(10 * 1024);
        let mut world = World::new(9);
        let server_id = NodeId(1);
        let mut client = ClientHost::new(server_id, true);
        client.add(
            FlowId(1),
            &quic(),
            true,
            Box::new(WebClient::new(page.clone())),
            Time::ZERO,
        );
        let c = world.add_node(Box::new(client), DeviceProfile::DESKTOP);
        let server = ServerHost::new(quic(), page, 7).with_wait(WaitModel {
            min: Dur::from_millis(300),
            max: Dur::from_millis(600),
        });
        world.add_node(Box::new(server), DeviceProfile::SERVER);
        let cfg = LinkConfig::shaped(
            RateSchedule::fixed_mbps(100.0),
            Dur::from_millis(6),
            Dur::from_millis(12),
        );
        world.connect(c, server_id, cfg.clone(), cfg);
        world.kick(c);
        world.run_until(Time::ZERO + Dur::from_secs(10));
        let app = world.agent::<ClientHost>(c).app::<WebClient>(0);
        let plt = app.plt().expect("done");
        assert!(plt >= Dur::from_millis(300), "wait dominates: {plt}");
    }

    #[test]
    fn deterministic_replay_same_seed() {
        let a = run_plt(
            &quic(),
            PageSpec::uniform(5, 50 * 1024),
            true,
            10.0,
            0.01,
            42,
        );
        let b = run_plt(
            &quic(),
            PageSpec::uniform(5, 50 * 1024),
            true,
            10.0,
            0.01,
            42,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_vary_under_loss() {
        let a = run_plt(&quic(), PageSpec::single(1024 * 1024), true, 10.0, 0.02, 1);
        let b = run_plt(&quic(), PageSpec::single(1024 * 1024), true, 10.0, 0.02, 2);
        assert_ne!(a, b, "loss realizations differ across seeds");
    }

    #[test]
    fn high_bandwidth_large_object_uses_the_pipe() {
        let plt = run_plt(
            &quic(),
            PageSpec::single(10 * 1024 * 1024),
            true,
            100.0,
            0.0,
            8,
        );
        // 10MB at 100Mbps is 0.84s of serialization; allow startup slack.
        assert!(plt < Dur::from_millis(2500), "plt = {plt}");
    }
}
